//! Determinism under concurrency (DESIGN.md §6, determinism contract).
//!
//! The batch scheduler's output must be a pure function of its task
//! factory: [`BatchRunner`] with 1, 2 and 8 workers over the same seeded
//! instance set produces `==`-identical [`BatchReport`]s — verdicts,
//! classical bits, metered quantum peaks, fleet aggregates, everything.
//! Checked for all three backends (dense, parallel-dense, sparse) and
//! for the separation experiment's batched rows. CI runs this suite
//! under `--release` so the optimized parallel paths are the ones
//! exercised.

use onlineq::core::sweep::{complement_sweep_in, ldisj_sweep_in};
use onlineq::core::{separation_rows_batched, separation_rows_scheduled};
use onlineq::lang::{random_member, random_nonmember, Sym};
use onlineq::machine::{BatchReport, BatchRunner, SessionSchedule};
use onlineq::quantum::{
    AdaptiveState, ParallelStateVector, QuantumBackend, SparseState, StateVector,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn seeded_instance_set(seed: u64) -> Vec<Vec<Sym>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..9)
        .map(|i| match i % 3 {
            0 => random_member(1, &mut rng).encode(),
            1 => random_nonmember(1, 1 + rng.gen_range(0..3usize), &mut rng).encode(),
            _ => random_member(2, &mut rng).encode(),
        })
        .collect()
}

fn reports_for<B: QuantumBackend>(words: &[Vec<Sym>]) -> Vec<BatchReport> {
    WORKER_COUNTS
        .iter()
        .map(|&w| complement_sweep_in::<B>(words, 0xDE, &BatchRunner::new(w)))
        .collect()
}

#[test]
fn complement_sweep_identical_at_1_2_and_8_workers() {
    let words = seeded_instance_set(2024);
    for (name, reports) in [
        ("dense", reports_for::<StateVector>(&words)),
        ("parallel-dense", reports_for::<ParallelStateVector>(&words)),
        ("sparse", reports_for::<SparseState>(&words)),
        ("adaptive", reports_for::<AdaptiveState>(&words)),
    ] {
        assert_eq!(reports[0], reports[1], "{name}: 1 vs 2 workers");
        assert_eq!(reports[0], reports[2], "{name}: 1 vs 8 workers");
        assert_eq!(reports[0].len(), words.len(), "{name}");
    }
}

#[test]
fn amplified_sweep_identical_at_1_2_and_8_workers() {
    let words = seeded_instance_set(77);
    let reference = ldisj_sweep_in::<StateVector>(&words, 4, 9, &BatchRunner::serial());
    for workers in [2usize, 8] {
        let report = ldisj_sweep_in::<StateVector>(&words, 4, 9, &BatchRunner::new(workers));
        assert_eq!(report, reference, "workers={workers}");
    }
    // The report carries real quantum metering: 4 copies on k ∈ {1, 2}
    // instances peak at 4·(2·2+2) = 24 qubits.
    assert_eq!(reference.peak_qubits, 24);
    assert!(reference.peak_amplitudes >= 4 * (1 << 4));
}

#[test]
fn parallel_dense_sweep_equals_dense_sweep_exactly() {
    // Backend parallelism and fleet parallelism compose: the
    // parallel-dense fleet report is ==-identical to the dense one.
    let words = seeded_instance_set(4096);
    let runner = BatchRunner::new(2);
    let dense = complement_sweep_in::<StateVector>(&words, 5, &runner);
    let par = complement_sweep_in::<ParallelStateVector>(&words, 5, &runner);
    assert_eq!(dense, par);
}

#[test]
fn adaptive_sweep_matches_dense_verdicts_and_space() {
    // The adaptive backend reports identical verdicts, classical bits and
    // register widths; its stored-amplitude peak is bounded by dense
    // (sparse phase) and reaches dense once promoted.
    let words = seeded_instance_set(515);
    let runner = BatchRunner::new(2);
    let dense = complement_sweep_in::<StateVector>(&words, 5, &runner);
    let adaptive = complement_sweep_in::<AdaptiveState>(&words, 5, &runner);
    assert_eq!(adaptive.accepted, dense.accepted);
    assert_eq!(adaptive.peak_qubits, dense.peak_qubits);
    assert_eq!(adaptive.peak_classical_bits, dense.peak_classical_bits);
    assert!(adaptive.peak_amplitudes <= dense.peak_amplitudes);
    for (a, d) in adaptive.outcomes.iter().zip(&dense.outcomes) {
        assert_eq!(a.accept, d.accept);
        assert_eq!(a.classical_bits, d.classical_bits);
        assert!(a.peak_amplitudes <= d.peak_amplitudes);
    }
}

#[test]
fn migrating_schedule_is_schedule_and_worker_count_independent() {
    // The full determinism contract in one assertion grid: serial
    // uninterrupted = N-worker uninterrupted = N-worker migrating at any
    // segment length, on the adaptive backend (checkpoints cross both a
    // representation seam and worker boundaries).
    let words = seeded_instance_set(90210);
    let reference = complement_sweep_in::<AdaptiveState>(&words, 0xD1, &BatchRunner::serial());
    for workers in [2usize, 8] {
        for segment in [1usize, 17, 4096] {
            let report = onlineq::core::sweep::complement_sweep_scheduled_in::<AdaptiveState>(
                &words,
                0xD1,
                &BatchRunner::new(workers),
                SessionSchedule::MigrateEvery(segment),
            );
            assert_eq!(report, reference, "workers={workers} segment={segment}");
        }
    }
}

#[test]
fn separation_rows_identical_at_1_2_and_8_workers() {
    let seeds = [3u64, 1, 4, 1, 5];
    let reference = separation_rows_batched(1, &seeds, &BatchRunner::serial());
    for workers in [2usize, 8] {
        assert_eq!(
            separation_rows_batched(1, &seeds, &BatchRunner::new(workers)),
            reference,
            "workers={workers}"
        );
    }
    // And the migrating schedule reproduces the table exactly, suspension
    // points and worker hops notwithstanding.
    for segment in [64usize, 1000] {
        assert_eq!(
            separation_rows_scheduled(
                1,
                &seeds,
                &BatchRunner::new(3),
                SessionSchedule::MigrateEvery(segment)
            ),
            reference,
            "segment={segment}"
        );
    }
}
