//! Property-based integration tests across the workspace.

use onlineq::core::recognizer::exact_complement_accept_probability;
use onlineq::core::{ComplementRecognizer, Prop37Decider};
use onlineq::lang::{is_in_ldisj, parse_shape, LdisjInstance, string_len};
use onlineq::machine::{run_decider, StreamingDecider};
use onlineq::quantum::{Gate, StateVector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance_strategy(k: u32) -> impl Strategy<Value = LdisjInstance> {
    let m = string_len(k);
    (
        proptest::collection::vec(any::<bool>(), m),
        proptest::collection::vec(any::<bool>(), m),
    )
        .prop_map(move |(x, y)| LdisjInstance::new(k, x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encode → parse round-trips for arbitrary instances.
    #[test]
    fn prop_encode_parse_roundtrip(inst in instance_strategy(1)) {
        let word = inst.encode();
        let parsed = parse_shape(&word).expect("well shaped");
        prop_assert_eq!(parsed.to_instance().expect("consistent"), inst);
    }

    /// The quantum recognizer NEVER accepts a member (one-sided error is a
    /// hard invariant, for every instance and every coin).
    #[test]
    fn prop_one_sided_error_is_absolute(inst in instance_strategy(1), seed in any::<u64>()) {
        prop_assume!(inst.is_member());
        let word = inst.encode();
        // Exact over all (t, j): probability must be 0...
        prop_assert!(exact_complement_accept_probability(&word) < 1e-12);
        // ...and any sampled run agrees.
        let mut rng = StdRng::seed_from_u64(seed);
        let (accepted, _) = run_decider(ComplementRecognizer::new(&mut rng), &word);
        prop_assert!(!accepted);
    }

    /// Intersecting instances are caught with probability ≥ 1/4, whatever
    /// the intersection pattern.
    #[test]
    fn prop_nonmembers_caught(inst in instance_strategy(1)) {
        prop_assume!(!inst.is_member());
        let p = exact_complement_accept_probability(&inst.encode());
        prop_assert!(p >= 0.25 - 1e-9, "p = {}", p);
    }

    /// Proposition 3.7's decider agrees with the reference on arbitrary
    /// instances (members and non-members alike).
    #[test]
    fn prop_prop37_matches_reference(inst in instance_strategy(2), seed in any::<u64>()) {
        let word = inst.encode();
        let mut rng = StdRng::seed_from_u64(seed);
        let (verdict, _) = run_decider(Prop37Decider::new(&mut rng), &word);
        prop_assert_eq!(verdict, is_in_ldisj(&word));
    }

    /// Arbitrary words over Σ never panic any online decider, and shape
    /// acceptance equals the offline parser's.
    #[test]
    fn prop_arbitrary_words_are_safe(word_bits in proptest::collection::vec(0u8..3, 0..200), seed in any::<u64>()) {
        let word: Vec<onlineq::lang::Sym> = word_bits
            .iter()
            .map(|&b| match b {
                0 => onlineq::lang::Sym::Zero,
                1 => onlineq::lang::Sym::One,
                _ => onlineq::lang::Sym::Hash,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let (a1, _) = run_decider(onlineq::core::FormatChecker::new(), &word);
        prop_assert_eq!(a1, parse_shape(&word).is_ok());
        // The full stack handles garbage gracefully.
        let _ = run_decider(ComplementRecognizer::new(&mut rng), &word);
        let _ = run_decider(Prop37Decider::new(&mut rng), &word);
    }

    /// Random strict circuits keep the state normalized and serialize
    /// round-trip through the paper's output format.
    #[test]
    fn prop_strict_circuits_roundtrip(ops in proptest::collection::vec((0usize..4, 0usize..4, 0u8..3), 1..40)) {
        let mut sc = onlineq::quantum::StrictCircuit::new(4);
        for (a, b, c) in ops {
            match c {
                0 => sc.h(a),
                1 => sc.t(a),
                _ => {
                    if a != b {
                        sc.cnot(a, b);
                    } else {
                        sc.identity();
                    }
                }
            }
        }
        let text = sc.serialize();
        let parsed = onlineq::quantum::StrictCircuit::parse(&text, 4).expect("own output parses");
        prop_assert_eq!(&parsed, &sc);
        let state = sc.run_from_zero();
        prop_assert!((state.norm() - 1.0).abs() < 1e-8);
    }

    /// Fingerprint equality testing is complete for every point (cross-
    /// crate: lang instances through the fingerprint stack).
    #[test]
    fn prop_fingerprint_complete_on_instances(inst in instance_strategy(1), t in 0u64..17) {
        let tester = onlineq::fingerprint::EqualityTester::with_point(17, t);
        prop_assert!(tester.probably_equal(inst.x(), inst.x()));
        prop_assert!(tester.probably_equal(inst.y(), inst.y()));
    }
}

/// Non-proptest sanity: gate application through the facade.
#[test]
fn facade_reexports_work() {
    let mut s = StateVector::zero(2);
    s.apply(&Gate::H(0));
    s.apply(&Gate::Cnot { control: 0, target: 1 });
    assert!((s.prob_one(1) - 0.5).abs() < 1e-12);
}
