//! Property-based integration tests across the workspace.
//!
//! The build environment has no registry access, so instead of `proptest`
//! these properties run as seeded randomized loops (24 cases each, the
//! same budget the original `ProptestConfig::with_cases(24)` used). Each
//! failure message includes the case's seed so it can be replayed.

use onlineq::core::recognizer::exact_complement_accept_probability;
use onlineq::core::{ComplementRecognizer, Prop37Decider};
use onlineq::lang::{is_in_ldisj, parse_shape, string_len, LdisjInstance, Sym};
use onlineq::machine::run_decider;
use onlineq::quantum::{Gate, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

fn random_instance(k: u32, rng: &mut StdRng) -> LdisjInstance {
    let m = string_len(k);
    let x: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
    let y: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
    LdisjInstance::new(k, x, y)
}

/// Encode → parse round-trips for arbitrary instances.
#[test]
fn prop_encode_parse_roundtrip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_instance(1, &mut rng);
        let word = inst.encode();
        let parsed = parse_shape(&word).expect("well shaped");
        assert_eq!(
            parsed.to_instance().expect("consistent"),
            inst,
            "seed {seed}"
        );
    }
}

/// The quantum recognizer NEVER accepts a member (one-sided error is a
/// hard invariant, for every instance and every coin).
#[test]
fn prop_one_sided_error_is_absolute() {
    let mut found = 0;
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    while found < CASES {
        let inst = random_instance(1, &mut rng);
        if !inst.is_member() {
            continue;
        }
        found += 1;
        let word = inst.encode();
        // Exact over all (t, j): probability must be 0...
        assert!(exact_complement_accept_probability(&word) < 1e-12);
        // ...and any sampled run agrees.
        let accepted = run_decider(ComplementRecognizer::new(&mut rng), &word).accept;
        assert!(!accepted);
    }
}

/// Intersecting instances are caught with probability ≥ 1/4, whatever
/// the intersection pattern.
#[test]
fn prop_nonmembers_caught() {
    let mut found = 0;
    let mut rng = StdRng::seed_from_u64(0xB0B);
    while found < CASES {
        let inst = random_instance(1, &mut rng);
        if inst.is_member() {
            continue;
        }
        found += 1;
        let p = exact_complement_accept_probability(&inst.encode());
        assert!(p >= 0.25 - 1e-9, "p = {p}");
    }
}

/// Proposition 3.7's decider agrees with the reference on arbitrary
/// instances (members and non-members alike).
#[test]
fn prop_prop37_matches_reference() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_instance(2, &mut rng);
        let word = inst.encode();
        let verdict = run_decider(Prop37Decider::new(&mut rng), &word).accept;
        assert_eq!(verdict, is_in_ldisj(&word), "seed {seed}");
    }
}

/// Arbitrary words over Σ never panic any online decider, and shape
/// acceptance equals the offline parser's.
#[test]
fn prop_arbitrary_words_are_safe() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0..200usize);
        let word: Vec<Sym> = (0..len)
            .map(|_| match rng.gen_range(0u8..3) {
                0 => Sym::Zero,
                1 => Sym::One,
                _ => Sym::Hash,
            })
            .collect();
        let a1 = run_decider(onlineq::core::FormatChecker::new(), &word).accept;
        assert_eq!(a1, parse_shape(&word).is_ok(), "seed {seed}");
        // The full stack handles garbage gracefully.
        let _ = run_decider(ComplementRecognizer::new(&mut rng), &word);
        let _ = run_decider(Prop37Decider::new(&mut rng), &word);
    }
}

/// Random strict circuits keep the state normalized and serialize
/// round-trip through the paper's output format.
#[test]
fn prop_strict_circuits_roundtrip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sc = onlineq::quantum::StrictCircuit::new(4);
        for _ in 0..rng.gen_range(1..40usize) {
            let a = rng.gen_range(0..4usize);
            let b = rng.gen_range(0..4usize);
            match rng.gen_range(0u8..3) {
                0 => sc.h(a),
                1 => sc.t(a),
                _ => {
                    if a != b {
                        sc.cnot(a, b);
                    } else {
                        sc.identity();
                    }
                }
            }
        }
        let text = sc.serialize();
        let parsed = onlineq::quantum::StrictCircuit::parse(&text, 4).expect("own output parses");
        assert_eq!(&parsed, &sc, "seed {seed}");
        let state = sc.run_from_zero();
        assert!((state.norm() - 1.0).abs() < 1e-8, "seed {seed}");
    }
}

/// Fingerprint equality testing is complete for every point (cross-
/// crate: lang instances through the fingerprint stack).
#[test]
fn prop_fingerprint_complete_on_instances() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_instance(1, &mut rng);
        let t = rng.gen_range(0u64..17);
        let tester = onlineq::fingerprint::EqualityTester::with_point(17, t);
        assert!(tester.probably_equal(inst.x(), inst.x()), "seed {seed}");
        assert!(tester.probably_equal(inst.y(), inst.y()), "seed {seed}");
    }
}

/// Non-proptest sanity: gate application through the facade.
#[test]
fn facade_reexports_work() {
    let mut s = StateVector::zero(2);
    s.apply(&Gate::H(0));
    s.apply(&Gate::Cnot {
        control: 0,
        target: 1,
    });
    assert!((s.prob_one(1) - 0.5).abs() < 1e-12);
}
