//! Cross-backend equivalence of the full A1/A2/A3 pipelines.
//!
//! The quantum-crate suite (`crates/quantum/tests/backend_equivalence.rs`)
//! pins `SparseState` to the dense reference gate by gate; this suite pins
//! the *consumers*: procedure A3's streaming run, the Theorem 3.4
//! complement recognizer, and the Corollary 3.5 amplified recognizer must
//! produce identical statistics (detection probabilities digit-for-digit,
//! fidelity ≥ 1 − 1e−9 where a state is exposed) whichever backend runs
//! underneath. The parallel dense backend is held to the harsher §6
//! determinism contract: **bit-for-bit** equality with dense through the
//! whole A1/A2/A3 pipeline, at every stream position.

use onlineq::core::recognizer::exact_complement_accept_probability;
use onlineq::core::{
    a3_exact_detection_probability, a3_exact_detection_probability_in, ComplementRecognizer,
    GroverStreamer, LdisjRecognizer,
};
use onlineq::lang::{random_member, random_nonmember, string_len, LdisjInstance};
use onlineq::machine::{run_decider, StreamingDecider};
use onlineq::quantum::{
    AdaptiveState, ParallelStateVector, QuantumBackend, SparseState, StateVector,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 12;

fn random_instance(k: u32, rng: &mut StdRng) -> LdisjInstance {
    let m = string_len(k);
    let x: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
    let y: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
    LdisjInstance::new(k, x, y)
}

/// Procedure A3, streamed over both backends with the same pinned `j`:
/// identical detection probabilities and identical drawn `j`.
#[test]
fn a3_streaming_agrees_across_backends() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = 1 + (seed % 3) as u32;
        let inst = random_instance(k, &mut rng);
        let word = inst.encode();
        for j in 0..inst.rounds() as u64 {
            let mut dense = GroverStreamer::<StateVector>::with_j_seed_in(j, 0);
            let mut sparse = GroverStreamer::<SparseState>::with_j_seed_in(j, 0);
            dense.feed_all(&word);
            sparse.feed_all(&word);
            assert_eq!(dense.j(), sparse.j());
            assert_eq!(dense.qubits(), sparse.qubits());
            let (pd, ps) = (
                dense.detection_probability(),
                sparse.detection_probability(),
            );
            assert!(
                (pd - ps).abs() < 1e-9,
                "seed {seed} j {j}: dense {pd} vs sparse {ps}"
            );
            // The sparse run never stores more amplitudes than the dense
            // register holds, and its live support respects the structured
            // bound (index domain × h branch, l populated by marking).
            assert!(sparse.peak_amplitudes() <= dense.peak_amplitudes());
            assert!(sparse.peak_amplitudes() <= 4 * inst.m());
        }
    }
}

/// Procedure A3 on the parallel dense backend is the dense pipeline
/// **digit for digit**: same drawn `j`, bit-identical detection
/// probability at every prefix of the stream, identical space report.
/// (Sparse gets a 1e−9 fidelity pin; parallel-dense gets exact equality —
/// the DESIGN.md §6 determinism contract.)
#[test]
fn a3_streaming_parallel_dense_is_digit_for_digit() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = 1 + (seed % 3) as u32;
        let inst = random_instance(k, &mut rng);
        let word = inst.encode();
        for j in [0u64, inst.rounds() as u64 - 1] {
            let mut dense = GroverStreamer::<StateVector>::with_j_seed_in(j, 0);
            let mut par = GroverStreamer::<ParallelStateVector>::with_j_seed_in(j, 0);
            for (pos, &sym) in word.iter().enumerate() {
                dense.feed(sym);
                par.feed(sym);
                let (pd, pp) = (dense.detection_probability(), par.detection_probability());
                assert_eq!(
                    pd.to_bits(),
                    pp.to_bits(),
                    "seed {seed} j {j} position {pos}: {pd} vs {pp}"
                );
            }
            assert_eq!(dense.j(), par.j());
            assert_eq!(dense.qubits(), par.qubits());
            assert_eq!(dense.peak_amplitudes(), par.peak_amplitudes());
            assert_eq!(dense.space_bits(), par.space_bits());
        }
    }
}

/// The full A1/A2/A3 recognizer pipeline, parallel-dense vs dense: same
/// seeds in, identical verdict, space report and run outcome — including
/// the measurement, which must consume identical randomness.
#[test]
fn complement_recognizer_parallel_dense_is_digit_for_digit() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_instance(1 + (seed % 2) as u32, &mut rng);
        let word = inst.encode();
        for (t_seed, j_seed) in [(0u64, 0u64), (1, 1), (2, 0)] {
            let mut dense = ComplementRecognizer::<StateVector>::with_seeds_in(t_seed, j_seed, 7);
            let mut par =
                ComplementRecognizer::<ParallelStateVector>::with_seeds_in(t_seed, j_seed, 7);
            dense.feed_all(&word);
            par.feed_all(&word);
            assert_eq!(dense.space(), par.space(), "seed {seed}");
            let (pd, pp) = (
                dense.a3_detection_probability(),
                par.a3_detection_probability(),
            );
            assert_eq!(pd.to_bits(), pp.to_bits(), "seed {seed}: {pd} vs {pp}");
            assert_eq!(dense.decide(), par.decide(), "seed {seed}");
        }
        // And through run_decider: the whole RunOutcome matches.
        let dense_out = run_decider(
            ComplementRecognizer::<StateVector>::with_seeds_in(0, 1, 3),
            &word,
        );
        let par_out = run_decider(
            ComplementRecognizer::<ParallelStateVector>::with_seeds_in(0, 1, 3),
            &word,
        );
        assert_eq!(dense_out, par_out, "seed {seed}");
    }
}

/// Procedure A3 on the **adaptive** backend is the dense pipeline digit
/// for digit — the DESIGN.md §7 contract: in its sparse phase every
/// observable follows the dense arithmetic and summation order, the
/// promotion (if the stream densifies) moves bits without recomputing
/// them, and the dense phase is the parallel backend, itself pinned to
/// dense. Checked at every prefix of the stream, like the parallel pin.
#[test]
fn a3_streaming_adaptive_is_digit_for_digit() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = 1 + (seed % 3) as u32;
        let inst = random_instance(k, &mut rng);
        let word = inst.encode();
        for j in [0u64, inst.rounds() as u64 - 1] {
            let mut dense = GroverStreamer::<StateVector>::with_j_seed_in(j, 0);
            let mut ad = GroverStreamer::<AdaptiveState>::with_j_seed_in(j, 0);
            for (pos, &sym) in word.iter().enumerate() {
                dense.feed(sym);
                ad.feed(sym);
                let (pd, pa) = (dense.detection_probability(), ad.detection_probability());
                assert_eq!(
                    pd.to_bits(),
                    pa.to_bits(),
                    "seed {seed} j {j} position {pos}: {pd} vs {pa}"
                );
            }
            assert_eq!(dense.j(), ad.j());
            assert_eq!(dense.qubits(), ad.qubits());
            assert_eq!(dense.space_bits(), ad.space_bits());
            // Memory: the structured stream keeps density at 1/4, so the
            // adaptive run stays sparse and meters the support, not the
            // dimension.
            assert!(ad.peak_amplitudes() <= dense.peak_amplitudes());
        }
    }
}

/// The full A1/A2/A3 recognizer pipeline on the adaptive backend: same
/// seeds in, identical space report, bit-identical detection statistic,
/// identical verdict and `RunOutcome` modulo the metered amplitude peak
/// (which is the point of running adaptive).
#[test]
fn complement_recognizer_adaptive_is_digit_for_digit() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_instance(1 + (seed % 2) as u32, &mut rng);
        let word = inst.encode();
        for (t_seed, j_seed) in [(0u64, 0u64), (1, 1), (2, 0)] {
            let mut dense = ComplementRecognizer::<StateVector>::with_seeds_in(t_seed, j_seed, 7);
            let mut ad = ComplementRecognizer::<AdaptiveState>::with_seeds_in(t_seed, j_seed, 7);
            dense.feed_all(&word);
            ad.feed_all(&word);
            assert_eq!(dense.space(), ad.space(), "seed {seed}");
            let (pd, pa) = (
                dense.a3_detection_probability(),
                ad.a3_detection_probability(),
            );
            assert_eq!(pd.to_bits(), pa.to_bits(), "seed {seed}: {pd} vs {pa}");
            // The measurement consumes identical randomness on identical
            // digits, so the verdict matches too.
            assert_eq!(dense.decide(), ad.decide(), "seed {seed}");
        }
        let dense_out = run_decider(
            ComplementRecognizer::<StateVector>::with_seeds_in(0, 1, 3),
            &word,
        );
        let ad_out = run_decider(
            ComplementRecognizer::<AdaptiveState>::with_seeds_in(0, 1, 3),
            &word,
        );
        assert_eq!(dense_out.accept, ad_out.accept, "seed {seed}");
        assert_eq!(dense_out.classical_bits, ad_out.classical_bits);
        assert_eq!(dense_out.peak_qubits, ad_out.peak_qubits);
        assert!(ad_out.peak_amplitudes <= dense_out.peak_amplitudes);
    }
}

/// The exact averaged A3 detection probability — the number Theorem 3.4's
/// ≥ 1/4 bound is about — is backend-independent, and bit-identical
/// between dense and parallel-dense.
#[test]
fn a3_exact_detection_probability_is_backend_independent() {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    for k in 1..=2u32 {
        let m = string_len(k);
        for t in [0usize, 1, 2, m] {
            let inst = if t == 0 {
                random_member(k, &mut rng)
            } else {
                random_nonmember(k, t, &mut rng)
            };
            let dense = a3_exact_detection_probability(&inst);
            let sparse = a3_exact_detection_probability_in::<SparseState>(&inst);
            let parallel = a3_exact_detection_probability_in::<ParallelStateVector>(&inst);
            let adaptive = a3_exact_detection_probability_in::<AdaptiveState>(&inst);
            assert!(
                (dense - sparse).abs() < 1e-9,
                "k={k} t={t}: dense {dense} vs sparse {sparse}"
            );
            assert_eq!(
                dense.to_bits(),
                parallel.to_bits(),
                "k={k} t={t}: dense {dense} vs parallel-dense {parallel}"
            );
            assert_eq!(
                dense.to_bits(),
                adaptive.to_bits(),
                "k={k} t={t}: dense {dense} vs adaptive {adaptive}"
            );
        }
    }
}

/// The full complement recognizer (A1 ∧ A2 ∧ A3) with pinned seeds reaches
/// the same verdict and the same space report on both backends.
#[test]
fn complement_recognizer_agrees_across_backends() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_instance(1, &mut rng);
        let word = inst.encode();
        for (t_seed, j_seed) in [(0u64, 0u64), (1, 1), (2, 0), (0, 1)] {
            let mut dense = ComplementRecognizer::<StateVector>::with_seeds_in(t_seed, j_seed, 7);
            let mut sparse = ComplementRecognizer::<SparseState>::with_seeds_in(t_seed, j_seed, 7);
            dense.feed_all(&word);
            sparse.feed_all(&word);
            assert_eq!(dense.space(), sparse.space(), "seed {seed}");
            let (pd, ps) = (
                dense.a3_detection_probability(),
                sparse.a3_detection_probability(),
            );
            assert!((pd - ps).abs() < 1e-9, "seed {seed}: {pd} vs {ps}");
        }
    }
}

/// One-sided error is absolute on the sparse backend too: members are
/// never flagged, whatever the coins.
#[test]
fn sparse_recognizer_keeps_one_sided_error() {
    let mut rng = StdRng::seed_from_u64(0x0DD);
    for _ in 0..CASES {
        let inst = random_member(1, &mut rng);
        let word = inst.encode();
        for j in 0..inst.rounds() as u64 {
            let mut a3 = GroverStreamer::<SparseState>::with_j_seed_in(j, 3);
            a3.feed_all(&word);
            assert!(a3.detection_probability() < 1e-12);
            assert!(a3.decide());
        }
        let accepted =
            run_decider(ComplementRecognizer::<SparseState>::new_in(&mut rng), &word).accept;
        assert!(!accepted, "member flagged by sparse recognizer");
    }
}

/// Sampled verdicts of the amplified recognizer over the sparse backend
/// track the exact (backend-independent) acceptance probability.
#[test]
fn sparse_amplified_recognizer_matches_exact_statistics() {
    let mut rng = StdRng::seed_from_u64(0xACC);
    let inst = random_nonmember(1, 1, &mut rng);
    let word = inst.encode();
    let exact = exact_complement_accept_probability(&word);
    let trials = 600;
    let accepts = (0..trials)
        .filter(|_| {
            run_decider(ComplementRecognizer::<SparseState>::new_in(&mut rng), &word).accept
        })
        .count();
    let freq = accepts as f64 / trials as f64;
    assert!(
        (freq - exact).abs() < 0.07,
        "sparse sampled {freq} vs exact {exact}"
    );
    // And the amplified recognizer still meets the Corollary 3.5 error
    // budget when run sparse.
    let wrong = (0..trials)
        .filter(|_| run_decider(LdisjRecognizer::<SparseState>::new_in(4, &mut rng), &word).accept)
        .count();
    assert!((wrong as f64 / trials as f64) < 0.38);
}

/// The final A3 register state itself matches across backends at fidelity
/// ≥ 1 − 1e−9 (not just its summary statistics): compare through the
/// exposed detection probability at every prefix of the stream.
#[test]
fn a3_state_tracks_through_the_stream() {
    let mut rng = StdRng::seed_from_u64(0x57A7E);
    let inst = random_nonmember(2, 3, &mut rng);
    let word = inst.encode();
    let mut dense = GroverStreamer::<StateVector>::with_j_seed_in(2, 0);
    let mut sparse = GroverStreamer::<SparseState>::with_j_seed_in(2, 0);
    for (pos, &sym) in word.iter().enumerate() {
        dense.feed(sym);
        sparse.feed(sym);
        let (pd, ps) = (
            dense.detection_probability(),
            sparse.detection_probability(),
        );
        assert!(
            (pd - ps).abs() < 1e-9,
            "stream position {pos}: dense {pd} vs sparse {ps}"
        );
    }
}

/// Support-scaling sanity at the workspace level: a metering-equivalent
/// sparse register for k=5 (12 qubits, 4096 dense amplitudes) peaks well
/// below the dense dimension on a typical run.
#[test]
fn sparse_support_stays_below_dense_dimension() {
    let mut rng = StdRng::seed_from_u64(0x5CA1E);
    let inst = random_nonmember(5, 4, &mut rng);
    let mut sparse = GroverStreamer::<SparseState>::with_j_seed_in(3, 0);
    sparse.feed_all(&inst.encode());
    let dense_dim = 1usize << (2 * 5 + 2);
    assert!(sparse.peak_amplitudes() < dense_dim);
    assert!(sparse.peak_amplitudes() >= inst.m());
    // The verdict machinery still works on top.
    let _ = sparse.decide();
    let _ = QuantumBackend::support(sparse_probe(&inst).state().expect("allocated"));
}

/// Helper exercising MeteredRegister's public accessors through a fresh
/// sparse run (keeps the machine-layer API in the cross-crate contract).
fn sparse_probe(inst: &LdisjInstance) -> onlineq::machine::MeteredRegister<SparseState> {
    let mut reg = onlineq::machine::MeteredRegister::<SparseState>::unallocated();
    let layout = onlineq::quantum::GroverLayout::for_k(inst.k());
    reg.allocate_with(|| layout.phi_in());
    reg.record();
    reg
}
