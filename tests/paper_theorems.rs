//! One integration test per theorem of the paper, spanning all crates.

use onlineq::comm::lower_bound::disj_fn;
use onlineq::comm::{
    bcw_bounded_error, bcw_detection_probability, communication_matrix, disj_fooling_set,
    one_way_deterministic_cost, simulate_reduction, theorem_3_6_space_bound, verify_fooling_set,
    BcwParams,
};
use onlineq::core::classical::Prop37Decider;
use onlineq::core::recognizer::{
    exact_complement_accept_probability, ComplementRecognizer, LdisjRecognizer,
};
use onlineq::core::{a3_exact_detection_probability, emitted_detection_probability};
use onlineq::grover::averaged_success;
use onlineq::lang::{
    encoded_len, is_in_ldisj, malform, random_member, random_nonmember, string_len,
    ALL_MALFORMATIONS,
};
use onlineq::machine::{run_decider, StreamingDecider};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 3.1 (BCW): the quantum protocol for DISJ_n is correct with
/// communication O(√n log n).
#[test]
fn theorem_3_1_bcw_protocol() {
    let mut rng = StdRng::seed_from_u64(1);
    for k in 1..=2u32 {
        let n = string_len(k);
        let params = BcwParams::for_n(n);
        // Correctness, both sides.
        let member = random_member(k, &mut rng);
        let run = bcw_bounded_error(member.x(), member.y(), 4, &mut rng);
        assert!(run.output, "disjoint pair must be certified");
        assert!(run.transcript.total_qubits() <= 4 * params.worst_case_single_run_qubits());
        // Detection bound on intersecting inputs.
        let non = random_nonmember(k, 1, &mut rng);
        assert!(bcw_detection_probability(non.x(), non.y()) >= 0.25 - 1e-9);
    }
    // Asymptotic shape: worst case within a constant of √n·log n, and below
    // n from n = 1024 on.
    for log_n in 4..=20u32 {
        let params = BcwParams::for_n(1usize << log_n);
        assert!(params.worst_case_single_run_qubits() as f64 <= 3.0 * params.sqrt_n_log_n());
        if log_n >= 10 {
            assert!(params.worst_case_single_run_qubits() < params.n);
        }
    }
}

/// Theorem 3.2 substrate: DISJ_n needs n bits one-way deterministically
/// (exact on enumerable sizes) and has a fooling set of size 2^n.
#[test]
fn theorem_3_2_substrate() {
    for n in 1..=9usize {
        let matrix = communication_matrix(n, disj_fn);
        assert_eq!(one_way_deterministic_cost(&matrix), n);
        let fooling = disj_fooling_set(n);
        assert_eq!(fooling.len(), 1 << n);
        assert!(verify_fooling_set(&fooling, true, disj_fn));
    }
}

/// Theorem 3.4: the online quantum machine recognizes the complement of
/// L_DISJ with one-sided error in logarithmic space.
#[test]
fn theorem_3_4_one_sided_recognizer() {
    let mut rng = StdRng::seed_from_u64(2);
    for k in 1..=2u32 {
        // Members: rejected with probability exactly 1.
        let member = random_member(k, &mut rng);
        assert!(exact_complement_accept_probability(&member.encode()) < 1e-12);
        // Non-members of every flavor: accepted with probability ≥ 1/4.
        let m = string_len(k);
        for t in [1usize, m] {
            let non = random_nonmember(k, t, &mut rng);
            assert!(exact_complement_accept_probability(&non.encode()) >= 0.25 - 1e-9);
        }
        for kind in ALL_MALFORMATIONS {
            let bad = malform(&member, kind, &mut rng);
            assert!(
                exact_complement_accept_probability(&bad) >= 0.25 - 1e-9,
                "k={k} {kind:?}"
            );
        }
        // Space: logarithmic.
        let mut rec = ComplementRecognizer::new(&mut rng);
        rec.feed_all(&member.encode());
        let space = rec.space();
        let log_n = (encoded_len(k) as f64).log2().ceil() as usize;
        assert!(space.classical_bits <= 30 * log_n);
        assert!(space.qubits <= 2 * log_n);
    }
}

/// Definition 2.3 compliance: the machine's output-tape circuit (strict
/// {H, T, CNOT}, a#b#c format) reproduces the streamed statistics.
#[test]
fn definition_2_3_circuit_emission() {
    let mut rng = StdRng::seed_from_u64(3);
    let inst = random_nonmember(1, 2, &mut rng);
    for j in 0..inst.rounds() {
        let mut a3 = onlineq::core::GroverStreamer::with_j_seed(j as u64, 0);
        a3.feed_all(&inst.encode());
        assert!(
            (emitted_detection_probability(&inst, j) - a3.detection_probability()).abs() < 1e-9,
            "j={j}"
        );
    }
}

/// Corollary 3.5: L_DISJ ∈ OQBPL — two-sided error ≤ 1/3 in logarithmic
/// space.
#[test]
fn corollary_3_5_bounded_error() {
    let mut rng = StdRng::seed_from_u64(4);
    let member = random_member(2, &mut rng);
    for _ in 0..15 {
        let v = run_decider(LdisjRecognizer::new(4, &mut rng), &member.encode()).accept;
        assert!(v, "members never misclassified");
    }
    let non = random_nonmember(2, 1, &mut rng);
    // Exact per-copy accept probability ≥ 1/4 ⇒ 4 copies err ≤ (3/4)^4.
    let p_single = exact_complement_accept_probability(&non.encode());
    assert!(p_single >= 0.25 - 1e-9);
    let err_bound = (1.0 - p_single).powi(4);
    assert!(err_bound < 1.0 / 3.0, "amplified error bound {err_bound}");
}

/// Theorem 3.6 machinery: the executable reduction induces one message per
/// segment, and inverting Fact 2.2 under the Ω(2^{2k}) communication
/// requirement forces Ω(2^k) = Ω(n^{1/3}) space.
#[test]
fn theorem_3_6_reduction_and_bound() {
    let mut rng = StdRng::seed_from_u64(5);
    for k in 1..=2u32 {
        let inst = random_member(k, &mut rng);
        let report = simulate_reduction(Prop37Decider::new(&mut rng), &inst);
        assert_eq!(report.num_messages, 3 * (1 << k) - 1);
        assert!(report.verdict);
        // Message sizes track the decider's space (configurations encode in
        // O(space) bits).
        assert!(report.max_message_bits <= 16 * report.decider_space_bits + 256);
    }
    // The recovered lower bound doubles per k (Ω(2^k)) in the asymptotic
    // regime.
    let s12 = theorem_3_6_space_bound(12, 1.0, 64);
    let s13 = theorem_3_6_space_bound(13, 1.0, 64);
    let ratio = s13 as f64 / s12 as f64;
    assert!((1.8..=2.2).contains(&ratio), "ratio {ratio}");
}

/// Proposition 3.7: the Θ(n^{1/3}) classical algorithm is exactly correct.
#[test]
fn proposition_3_7_classical_upper_bound() {
    let mut rng = StdRng::seed_from_u64(6);
    for k in 1..=3u32 {
        // Members, non-members, malformed: all decided like the reference.
        let member = random_member(k, &mut rng);
        let out = run_decider(Prop37Decider::new(&mut rng), &member.encode());
        let (v, space) = (out.accept, out.classical_bits);
        assert!(v);
        assert!(space >= 1 << k);
        assert!(space <= (1 << k) + 60 * k as usize + 60);
        let non = random_nonmember(k, 1, &mut rng);
        let v = run_decider(Prop37Decider::new(&mut rng), &non.encode()).accept;
        assert!(!v);
    }
}

/// The Grover/BBHT analysis behind procedure A3: streamed detection equals
/// the closed form and never dips below 1/4.
#[test]
fn a3_matches_bbht_closed_form_end_to_end() {
    let mut rng = StdRng::seed_from_u64(7);
    for k in 1..=2u32 {
        let m = string_len(k);
        for t in [1usize, m / 4, m / 2] {
            if t == 0 {
                continue;
            }
            let inst = random_nonmember(k, t, &mut rng);
            let streamed = a3_exact_detection_probability(&inst);
            let formula = averaged_success(inst.rounds(), t, m);
            let via_comm = bcw_detection_probability(inst.x(), inst.y());
            assert!((streamed - formula).abs() < 1e-9);
            assert!((streamed - via_comm).abs() < 1e-9);
            assert!(streamed >= 0.25 - 1e-9);
        }
    }
}

/// Everything agrees with the unbounded-space reference decider.
#[test]
fn all_deciders_agree_with_reference() {
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..10 {
        let inst = onlineq::lang::random_pair(2, 0.15, &mut rng);
        let word = inst.encode();
        let reference = is_in_ldisj(&word);
        let prop37 = run_decider(Prop37Decider::new(&mut rng), &word).accept;
        assert_eq!(prop37, reference);
        // Quantum, by majority vote of amplified runs.
        let votes = (0..30)
            .filter(|_| run_decider(LdisjRecognizer::new(6, &mut rng), &word).accept)
            .count();
        assert_eq!(votes > 15, reference);
    }
}
