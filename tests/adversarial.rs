//! Adversarial and robustness integration tests: hostile inputs through
//! the full stack.

use onlineq::core::classical::{Prop37Decider, SketchDecider};
use onlineq::core::recognizer::{ComplementRecognizer, LdisjRecognizer};
use onlineq::core::{ConsistencyChecker, FormatChecker, GroverStreamer};
use onlineq::lang::{is_in_ldisj, parse_shape, random_member, Sym};
use onlineq::machine::{run_decider, StreamingDecider};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Truncating a valid word at EVERY position must never panic any
/// decider, and must always be rejected by the shape check (except the
/// full word).
#[test]
fn truncation_at_every_position() {
    let mut rng = StdRng::seed_from_u64(200);
    let inst = random_member(1, &mut rng);
    let word = inst.encode();
    for cut in 0..word.len() {
        let prefix = &word[..cut];
        let a1 = run_decider(FormatChecker::new(), prefix).accept;
        assert!(!a1, "cut={cut} must fail the shape check");
        assert!(parse_shape(prefix).is_err(), "cut={cut}");
        // Whole stack stays panic-free.
        let _ = run_decider(ComplementRecognizer::new(&mut rng), prefix);
        let _ = run_decider(Prop37Decider::new(&mut rng), prefix);
        let _ = run_decider(SketchDecider::new(4, &mut rng), prefix);
    }
    // The untruncated word parses.
    assert!(parse_shape(&word).is_ok());
}

/// Single-symbol substitutions at every position: deciders never panic;
/// the reference decider and Prop 3.7 agree on every mutant; the quantum
/// recognizer (exactly analyzed) keeps its one-sided guarantee.
#[test]
fn single_symbol_substitutions() {
    let mut rng = StdRng::seed_from_u64(201);
    let inst = random_member(1, &mut rng);
    let word = inst.encode();
    for pos in 0..word.len() {
        for sub in [Sym::Zero, Sym::One, Sym::Hash] {
            if word[pos] == sub {
                continue;
            }
            let mut mutant = word.clone();
            mutant[pos] = sub;
            let reference = is_in_ldisj(&mutant);
            let v = run_decider(Prop37Decider::new(&mut rng), &mutant).accept;
            // Prop37's A2 part is probabilistic: a corrupted-copy mutant is
            // caught with prob ≥ 1 − 2·3/17; accept the rare fooling only
            // in the direction soundness allows (false "member").
            if reference {
                assert!(v, "pos={pos} {sub:?}: member must be accepted");
            }
            let p = onlineq::core::exact_complement_accept_probability(&mutant);
            if reference {
                assert!(p < 1e-12, "pos={pos} {sub:?}: one-sided violation");
            } else {
                assert!(p >= 0.25 - 1e-9, "pos={pos} {sub:?}: p={p}");
            }
        }
    }
}

/// Extremely long garbage streams (no structure at all) are digested in
/// bounded space by all logarithmic-space machines.
#[test]
fn long_garbage_stream_bounded_space() {
    let mut rng = StdRng::seed_from_u64(202);
    let garbage: Vec<Sym> = (0..200_000)
        .map(|_| match rng.gen_range(0..3) {
            0 => Sym::Zero,
            1 => Sym::One,
            _ => Sym::Hash,
        })
        .collect();
    let out1 = run_decider(FormatChecker::new(), &garbage);
    let (v1, s1) = (out1.accept, out1.classical_bits);
    assert!(!v1);
    assert!(s1 < 200, "A1 space {s1}");
    let s2 = run_decider(ConsistencyChecker::new(&mut rng), &garbage).classical_bits;
    assert!(s2 < 400, "A2 space {s2}");
    let s3 = run_decider(GroverStreamer::new(&mut rng), &garbage).classical_bits;
    assert!(s3 < 400, "A3 classical space {s3}");
}

/// A word claiming a huge k (prefix of 30 ones) must be rejected without
/// attempting to allocate a 2^{60}-amplitude register.
#[test]
fn absurd_k_does_not_allocate() {
    let mut word: Vec<Sym> = vec![Sym::One; 30];
    word.push(Sym::Hash);
    word.extend(vec![Sym::Zero; 100]);
    let mut rng = StdRng::seed_from_u64(203);
    let accepted_as_member = run_decider(LdisjRecognizer::new(2, &mut rng), &word).accept;
    assert!(!accepted_as_member, "ill-formed word is not in L_DISJ");
    let a1 = run_decider(FormatChecker::new(), &word).accept;
    assert!(!a1);
}

/// Empty and near-empty inputs.
#[test]
fn degenerate_inputs() {
    let mut rng = StdRng::seed_from_u64(204);
    for word in [
        vec![],
        vec![Sym::Hash],
        vec![Sym::One],
        vec![Sym::One, Sym::Hash],
    ] {
        assert!(!is_in_ldisj(&word));
        let m = run_decider(LdisjRecognizer::new(2, &mut rng), &word).accept;
        assert!(!m, "word {word:?}");
        let c = run_decider(Prop37Decider::new(&mut rng), &word).accept;
        assert!(!c, "word {word:?}");
    }
}

/// Duplicated and repeated whole words (concatenations) are rejected by
/// the shape check (trailing symbols).
#[test]
fn concatenated_words_rejected() {
    let mut rng = StdRng::seed_from_u64(205);
    let inst = random_member(1, &mut rng);
    let mut doubled = inst.encode();
    doubled.extend(inst.encode());
    assert!(!is_in_ldisj(&doubled));
    let a1 = run_decider(FormatChecker::new(), &doubled).accept;
    assert!(!a1);
    let m = run_decider(LdisjRecognizer::new(2, &mut rng), &doubled).accept;
    assert!(!m);
}

/// The quantum machine's decisions are insensitive to *when* coins are
/// drawn: pre-seeded (derandomized) and online-drawn runs agree in
/// distribution. Checked via matching acceptance frequencies on a fixed
/// non-member.
#[test]
fn coin_timing_invariance() {
    let mut rng = StdRng::seed_from_u64(206);
    let inst = onlineq::lang::random_nonmember(2, 2, &mut rng);
    let word = inst.encode();
    let exact = onlineq::core::exact_complement_accept_probability(&word);
    // Derandomized enumeration must average to the same number.
    let p = onlineq::fingerprint::fingerprint_prime(2);
    let rounds = inst.rounds();
    let mut total = 0.0;
    let mut count = 0usize;
    for t in (0..p).step_by(7) {
        for j in 0..rounds {
            let mut rec = ComplementRecognizer::with_seeds(t, j as u64, 0);
            rec.feed_all(&word);
            // P(accept | t, j) = 1 − [a2 passes]·(1 − detection).
            let det = rec.a3_detection_probability();
            let mut a2 = ConsistencyChecker::with_seed(t);
            a2.feed_all(&word);
            let a2_pass = if a2.decide() { 1.0 } else { 0.0 };
            total += 1.0 - a2_pass * (1.0 - det);
            count += 1;
        }
    }
    let subsampled = total / count as f64;
    // Subsampling t every 7 points still approximates the exact value
    // (the fingerprint acceptance is near-constant in t for this word).
    assert!(
        (subsampled - exact).abs() < 0.05,
        "subsampled {subsampled} vs exact {exact}"
    );
}
