//! The session engine's contract (DESIGN.md §7), pinned end to end:
//! suspending a decider at **any** token boundary, serializing the
//! checkpoint to bytes, moving it (between workers, or just through a
//! byte buffer), and resuming yields `RunOutcome`s and `BatchReport`s
//! `==`-identical to the uninterrupted run — on the dense, parallel,
//! sparse and adaptive backends. Unknown checkpoint and snapshot
//! versions are rejected, never half-read. CI runs this suite under
//! `--release`.

use onlineq::core::sweep::{complement_sweep_in, complement_sweep_scheduled_in};
use onlineq::core::{ComplementRecognizer, GroverStreamer, LdisjRecognizer, Prop37Decider};
use onlineq::lang::{random_member, random_nonmember, Sym};
use onlineq::machine::{
    run_decider, BatchRunner, CheckpointError, Checkpointable, Session, SessionCheckpoint,
    SessionSchedule, StreamingDecider, CHECKPOINT_VERSION,
};
use onlineq::quantum::{
    AdaptiveState, ParallelStateVector, QuantumBackend, SparseState, StateVector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `decider` uninterrupted, then replays it with a suspend → wire
/// bytes → resume round trip at every single token position, requiring
/// the identical `RunOutcome` each time.
fn assert_checkpoint_transparent_at_every_position<D>(make: impl Fn() -> D, word: &[Sym])
where
    D: Checkpointable,
{
    let reference = run_decider(make(), word);
    for cut in 0..=word.len() {
        let mut first = Session::new(make());
        first.feed_all(&word[..cut]);
        let wire = first.suspend().into_bytes();
        drop(first); // the original is gone; only the bytes survive
        let cp = SessionCheckpoint::from_bytes(wire).expect("wire bytes round-trip");
        assert_eq!(cp.position(), cut as u64);
        let mut resumed = Session::<D>::resume(&cp).expect("checkpoint resumes");
        resumed.feed_all(&word[cut..]);
        assert_eq!(resumed.finish(), reference, "suspend at position {cut}");
    }
}

/// The tentpole property on the quantum pipeline: the full A1∧A2∧A3
/// recognizer — register snapshot included — survives suspension at
/// every token position of a small instance, on all four backends.
#[test]
fn recognizer_checkpoint_round_trip_at_every_token_position() {
    let mut rng = StdRng::seed_from_u64(0x5E55);
    let word = random_nonmember(1, 2, &mut rng).encode();
    assert_checkpoint_transparent_at_every_position(
        || ComplementRecognizer::<StateVector>::with_seeds_in(3, 1, 7),
        &word,
    );
    assert_checkpoint_transparent_at_every_position(
        || ComplementRecognizer::<ParallelStateVector>::with_seeds_in(3, 1, 7),
        &word,
    );
    assert_checkpoint_transparent_at_every_position(
        || ComplementRecognizer::<SparseState>::with_seeds_in(3, 1, 7),
        &word,
    );
    assert_checkpoint_transparent_at_every_position(
        || ComplementRecognizer::<AdaptiveState>::with_seeds_in(3, 1, 7),
        &word,
    );
}

/// The raw A3 streamer's register state is byte-exact across the seam:
/// detection probability digits agree at every resume point, including a
/// suspension in the middle of the marking round.
#[test]
fn a3_detection_digits_survive_mid_stream_suspension() {
    let mut rng = StdRng::seed_from_u64(0xA3A3);
    let word = random_nonmember(2, 3, &mut rng).encode();
    for backend in 0..2 {
        for cut in (0..=word.len()).step_by(7) {
            let mut reference = GroverStreamer::<StateVector>::with_j_seed_in(2, 0);
            reference.feed_all(&word);
            let p_ref = reference.detection_probability();
            let p_resumed = if backend == 0 {
                let mut s = Session::new(GroverStreamer::<StateVector>::with_j_seed_in(2, 0));
                s.feed_all(&word[..cut]);
                let cp = s.suspend();
                let mut r = Session::<GroverStreamer<StateVector>>::resume(&cp).expect("resumes");
                r.feed_all(&word[cut..]);
                r.decider().detection_probability()
            } else {
                let mut s = Session::new(GroverStreamer::<AdaptiveState>::with_j_seed_in(2, 0));
                s.feed_all(&word[..cut]);
                let cp = s.suspend();
                let mut r = Session::<GroverStreamer<AdaptiveState>>::resume(&cp).expect("resumes");
                r.feed_all(&word[cut..]);
                r.decider().detection_probability()
            };
            assert_eq!(
                p_ref.to_bits(),
                p_resumed.to_bits(),
                "backend {backend} cut {cut}"
            );
        }
    }
}

/// Classical deciders round-trip too: the Proposition 3.7 buffer decider
/// and the amplified recognizer (whose checkpoint carries four register
/// snapshots).
#[test]
fn classical_and_amplified_deciders_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xC1A5);
    let word = random_nonmember(1, 1, &mut rng).encode();
    assert_checkpoint_transparent_at_every_position(
        || {
            let mut rng = StdRng::seed_from_u64(9);
            Prop37Decider::new(&mut rng)
        },
        &word,
    );
    assert_checkpoint_transparent_at_every_position(
        || {
            let mut rng = StdRng::seed_from_u64(11);
            LdisjRecognizer::<SparseState>::new_in(4, &mut rng)
        },
        &word,
    );
}

/// The batch scheduler under the migrating schedule: every instance is
/// suspended, serialized, handed to the next worker and resumed at every
/// segment boundary — and the report equals the uninterrupted one on all
/// four backends, at several worker counts and segment lengths.
#[test]
fn migrating_batch_reports_equal_uninterrupted_reports() {
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let words: Vec<Vec<Sym>> = (0..6)
        .map(|i| {
            if i % 2 == 0 {
                random_member(1, &mut rng).encode()
            } else {
                random_nonmember(1, 1 + i % 3, &mut rng).encode()
            }
        })
        .collect();
    fn check<B: QuantumBackend>(words: &[Vec<Sym>], name: &str) {
        let reference = complement_sweep_in::<B>(words, 0xFEED, &BatchRunner::serial());
        for workers in [1usize, 2, 5] {
            for segment in [1usize, 3, 64, 10_000] {
                let report = complement_sweep_scheduled_in::<B>(
                    words,
                    0xFEED,
                    &BatchRunner::new(workers),
                    SessionSchedule::MigrateEvery(segment),
                );
                assert_eq!(
                    report, reference,
                    "{name}: workers={workers} segment={segment}"
                );
            }
        }
    }
    check::<StateVector>(&words, "dense");
    check::<ParallelStateVector>(&words, "parallel-dense");
    check::<SparseState>(&words, "sparse");
    check::<AdaptiveState>(&words, "adaptive");
}

/// Unknown checkpoint versions are rejected up front (the CI contract:
/// a checkpoint written by a future layout must never be half-read).
#[test]
fn unknown_checkpoint_version_is_rejected() {
    let mut rng = StdRng::seed_from_u64(1);
    let word = random_member(1, &mut rng).encode();
    let mut s = Session::new(ComplementRecognizer::<SparseState>::with_seeds_in(0, 0, 0));
    s.feed_all(&word[..5]);
    let mut bytes = s.suspend().into_bytes();
    bytes[0] = CHECKPOINT_VERSION + 1;
    match SessionCheckpoint::from_bytes(bytes) {
        Err(CheckpointError::UnsupportedVersion(v)) => assert_eq!(v, CHECKPOINT_VERSION + 1),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// A corrupted (truncated) decider payload fails resume loudly instead
/// of rebuilding a half-initialized decider.
#[test]
fn truncated_checkpoint_payload_fails_resume() {
    let mut rng = StdRng::seed_from_u64(2);
    let word = random_member(1, &mut rng).encode();
    let mut s = Session::new(ComplementRecognizer::<StateVector>::with_seeds_in(0, 0, 0));
    s.feed_all(&word[..8]);
    let mut bytes = s.suspend().into_bytes();
    bytes.truncate(bytes.len() - 3);
    let cp = SessionCheckpoint::from_bytes(bytes).expect("header intact");
    assert!(Session::<ComplementRecognizer<StateVector>>::resume(&cp).is_err());
}

/// `run_decider` (the one-shot wrapper) and an explicit session agree —
/// the refactor seam itself.
#[test]
fn run_decider_is_a_session_wrapper() {
    let mut rng = StdRng::seed_from_u64(3);
    let word = random_nonmember(1, 1, &mut rng).encode();
    let via_run = run_decider(
        ComplementRecognizer::<StateVector>::with_seeds_in(1, 2, 3),
        &word,
    );
    let mut session = Session::new(ComplementRecognizer::<StateVector>::with_seeds_in(1, 2, 3));
    session.feed_all(&word);
    assert_eq!(session.position(), word.len() as u64);
    assert_eq!(session.finish(), via_run);
}
