//! The persistent checkpoint store's contract (DESIGN.md §8–§9), pinned
//! end to end:
//!
//! * **Crash recovery** — a sweep killed at *any* token position (every
//!   checkpoint boundary and arbitrary mid-segment points), resumed
//!   from nothing but the store file, produces a `BatchReport`
//!   `==`-identical to the uninterrupted run — on the dense, parallel,
//!   sparse and adaptive backends.
//! * **Outcome records** — finished instances persist their final
//!   `RunOutcome`; a resume *skips* them (zero re-fed tokens, asserted
//!   by per-instance stream metering) instead of replaying from their
//!   last checkpoint.
//! * **Compaction** — `compact` rewrites the log to one record per
//!   instance via an atomic rename; a subsequent strict `open` + resume
//!   is bit-exact, on all four backends.
//! * **Robustness** — truncated files, bit-flipped bytes (anywhere:
//!   header, record headers, checkpoint *and outcome* payloads — raw and
//!   LZ4-compressed, in the current v3 format and the legacy v2 one),
//!   unknown format versions, wrong decider-type tags, overflowed length
//!   fields, trailing garbage and zero-length files all return typed
//!   errors. No input panics, no input over-allocates, corrupted
//!   compressed blocks never decompress to garbage, and `recover` always
//!   salvages the longest valid record prefix — in a *single* forward
//!   pass (`scanned_records` never exceeds the salvage count by more
//!   than the one failed tail attempt).
//! * **O(1) memory** — an instrumented reader drives the streaming
//!   [`RecordScanner`] over a multi-thousand-record log and pins that
//!   peak buffered payload bytes stay bounded by one (decompressed)
//!   payload — far below the file size — and that every byte is read
//!   exactly once.
//!
//! CI runs this suite under `--release`.

use onlineq::core::sweep::{complement_sweep_in, complement_sweep_resumable_in};
use onlineq::lang::{random_member, random_nonmember, Sym};
use onlineq::machine::session::{put_bytes, put_u64, ByteReader, CheckpointError};
use onlineq::machine::{
    peek_header, BatchRunner, CheckpointStore, Checkpointable, RecordScanner, RunOutcome, Session,
    SessionCheckpoint, StoreError, StreamingDecider, COMPRESS_MIN_LEN, STORE_MAGIC, STORE_VERSION,
    STORE_VERSION_V2,
};
use onlineq::quantum::{
    AdaptiveState, ParallelStateVector, QuantumBackend, SparseState, StateVector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// A tiny checkpointable decider for format-level tests (accepts iff it
/// saw more `1`s than `0`s).
#[derive(Clone, Debug, PartialEq, Eq)]
struct TallyDecider {
    ones: u64,
    zeros: u64,
}

impl TallyDecider {
    fn new() -> Self {
        TallyDecider { ones: 0, zeros: 0 }
    }
}

impl StreamingDecider for TallyDecider {
    fn feed(&mut self, sym: Sym) {
        match sym {
            Sym::One => self.ones += 1,
            Sym::Zero => self.zeros += 1,
            Sym::Hash => {}
        }
    }

    fn decide(&mut self) -> bool {
        self.ones > self.zeros
    }

    fn space_bits(&self) -> usize {
        128
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = self.ones.to_le_bytes().to_vec();
        out.extend_from_slice(&self.zeros.to_le_bytes());
        out
    }
}

impl Checkpointable for TallyDecider {
    const TYPE_TAG: &'static str = "TallyDecider";

    fn write_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.ones);
        put_u64(out, self.zeros);
    }

    fn read_state(r: &mut ByteReader) -> Result<Self, CheckpointError> {
        Ok(TallyDecider {
            ones: r.read_u64()?,
            zeros: r.read_u64()?,
        })
    }
}

/// Like [`TallyDecider`] but it also records the full symbol history —
/// its checkpoints grow with the stream and (being a period-3 pattern)
/// compress well, which is exactly what the compressed-payload
/// corruption batteries and the O(1)-memory scan test need.
#[derive(Clone, Debug, PartialEq, Eq)]
struct HistoryTally {
    ones: u64,
    zeros: u64,
    history: Vec<u8>,
}

impl HistoryTally {
    fn new() -> Self {
        HistoryTally {
            ones: 0,
            zeros: 0,
            history: Vec::new(),
        }
    }
}

impl StreamingDecider for HistoryTally {
    fn feed(&mut self, sym: Sym) {
        match sym {
            Sym::One => self.ones += 1,
            Sym::Zero => self.zeros += 1,
            Sym::Hash => {}
        }
        self.history.push(match sym {
            Sym::Zero => 0,
            Sym::One => 1,
            Sym::Hash => 2,
        });
    }

    fn decide(&mut self) -> bool {
        self.ones > self.zeros
    }

    fn space_bits(&self) -> usize {
        128 + 8 * self.history.len()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_state(&mut out);
        out
    }
}

impl Checkpointable for HistoryTally {
    const TYPE_TAG: &'static str = "HistoryTally";

    fn write_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.ones);
        put_u64(out, self.zeros);
        put_bytes(out, &self.history);
    }

    fn read_state(r: &mut ByteReader) -> Result<Self, CheckpointError> {
        Ok(HistoryTally {
            ones: r.read_u64()?,
            zeros: r.read_u64()?,
            history: r.read_prefixed_bytes()?.to_vec(),
        })
    }
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "oqsc-store-recovery-{}-{name}.cps",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(lock_path(&p));
    p
}

fn lock_path(p: &std::path::Path) -> PathBuf {
    let mut os = p.as_os_str().to_os_string();
    os.push(".lock");
    PathBuf::from(os)
}

fn cleanup(p: &PathBuf) {
    let _ = std::fs::remove_file(p);
    let _ = std::fs::remove_file(lock_path(p));
}

fn checkpoint_at(tokens: usize) -> SessionCheckpoint {
    let mut s = Session::new(TallyDecider::new());
    for i in 0..tokens {
        s.feed(if i % 3 == 0 { Sym::One } else { Sym::Zero });
    }
    s.suspend()
}

/// A [`HistoryTally`] checkpoint after `tokens` symbols: `tokens + 30`-ish
/// bytes of period-3 pattern, so anything past ~40 tokens clears
/// [`COMPRESS_MIN_LEN`] and compresses several-fold.
fn history_checkpoint_at(tokens: usize) -> SessionCheckpoint {
    let mut s = Session::new(HistoryTally::new());
    for i in 0..tokens {
        s.feed(if i % 3 == 0 { Sym::One } else { Sym::Zero });
    }
    s.suspend()
}

/// A store with a few records of every kind — checkpoint full + dedupe
/// ref, outcome full + dedupe ref — plus the byte offsets at which each
/// append left the file, i.e. the valid truncation boundaries. The
/// truncation and bit-flip batteries walk every byte of this file, so
/// outcome records face the same hostile inputs checkpoints do.
///
/// The last `(instance, tokens)` spec must repeat an earlier `tokens`
/// under a new instance, so the store always contains a checkpoint *ref*
/// record alongside the full ones.
fn build_store_as(
    name: &str,
    version: u8,
    tag: &str,
    checkpoint: &dyn Fn(usize) -> SessionCheckpoint,
    specs: &[(u64, usize)],
) -> (PathBuf, Vec<u64>) {
    let path = temp_path(name);
    let mut store = CheckpointStore::create_with_version(&path, tag, version).expect("create");
    let mut boundaries = vec![store.len_bytes()];
    for &(instance, tokens) in specs {
        store.append(instance, &checkpoint(tokens)).expect("append");
        boundaries.push(store.len_bytes());
    }
    let done = RunOutcome {
        accept: true,
        classical_bits: 128,
        peak_qubits: 0,
        peak_amplitudes: 0,
    };
    for instance in [0u64, 1] {
        // Instance 0: outcome full record; instance 1: same outcome
        // bytes, so an outcome *ref* record.
        store
            .append_outcome(instance, 8 + instance, &done)
            .expect("outcome");
        boundaries.push(store.len_bytes());
    }
    drop(store);
    (path, boundaries)
}

/// The classic tiny store: v3, raw (sub-threshold) payloads.
fn build_store(name: &str) -> (PathBuf, Vec<u64>) {
    build_store_as(
        name,
        STORE_VERSION,
        TallyDecider::TYPE_TAG,
        &checkpoint_at,
        &[(0, 4), (1, 6), (0, 8), (2, 6)],
    )
}

/// A v3 store whose checkpoint payloads all clear the compression
/// threshold — every full checkpoint record on disk is LZ4-compressed.
fn build_store_compressed(name: &str) -> (PathBuf, Vec<u64>) {
    assert!(history_checkpoint_at(200).as_bytes().len() >= COMPRESS_MIN_LEN);
    build_store_as(
        name,
        STORE_VERSION,
        HistoryTally::TYPE_TAG,
        &history_checkpoint_at,
        &[(0, 200), (1, 300), (0, 400), (2, 300)],
    )
}

/// The same record mix written by the legacy v2 writer (raw 8-byte
/// length prefixes, no compression) — the read-only compatibility path.
fn build_store_v2(name: &str) -> (PathBuf, Vec<u64>) {
    build_store_as(
        name,
        STORE_VERSION_V2,
        HistoryTally::TYPE_TAG,
        &history_checkpoint_at,
        &[(0, 200), (1, 300), (0, 400), (2, 300)],
    )
}

// ---------------------------------------------------------------------
// Crash recovery: kill at every boundary and at arbitrary positions
// ---------------------------------------------------------------------

fn seeded_words(n: usize, seed: u64) -> Vec<Vec<Sym>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                random_member(1, &mut rng).encode()
            } else {
                random_nonmember(1, 1 + i % 3, &mut rng).encode()
            }
        })
        .collect()
}

/// Runs the complement sweep with a token budget of `crash_at`, then —
/// if it crashed — recovers the store file and resumes to completion,
/// requiring the final report to equal the uninterrupted reference.
fn crash_resume_once<B: QuantumBackend>(
    words: &[Vec<Sym>],
    reference: &onlineq::machine::BatchReport,
    every: usize,
    crash_at: u64,
    workers: usize,
    name: &str,
) {
    let path = temp_path(&format!("crash-{name}-{workers}w-{every}e-{crash_at}"));
    let runner = BatchRunner::new(workers);
    let tag = "ComplementRecognizer";
    let mut store = CheckpointStore::create(&path, tag).expect("create");
    let first =
        complement_sweep_resumable_in::<B>(words, 0xFEED, &runner, every, &mut store, crash_at)
            .expect("no store errors");
    match first {
        Some(report) => assert_eq!(&report, reference, "{name}: budget covered the sweep"),
        None => {
            drop(store);
            let (mut store, salvage) = CheckpointStore::recover(&path, tag).expect("recover");
            assert_eq!(salvage.dropped_bytes, 0, "clean kill leaves no torn tail");
            let resumed = complement_sweep_resumable_in::<B>(
                words,
                0xFEED,
                &runner,
                every,
                &mut store,
                u64::MAX,
            )
            .expect("resume")
            .expect("unlimited budget completes");
            assert_eq!(&resumed, reference, "{name}: crash at {crash_at}");
        }
    }
    cleanup(&path);
}

/// The tentpole property: a sweep killed at every checkpoint boundary —
/// and at arbitrary token positions between them — and resumed from the
/// persisted store alone reproduces the uninterrupted `BatchReport`
/// exactly, on all four backends.
#[test]
fn killed_sweeps_resume_identically_on_all_backends() {
    let words = seeded_words(4, 0x5707);
    let total: u64 = words.iter().map(|w| w.len() as u64).sum();
    let every = 5usize;
    fn check<B: QuantumBackend>(words: &[Vec<Sym>], total: u64, every: usize, name: &str) {
        let reference = complement_sweep_in::<B>(words, 0xFEED, &BatchRunner::serial());
        // Every checkpoint boundary (serial: kill points are exact) …
        let mut budgets: Vec<u64> = (0..=total).step_by(every).collect();
        // … and arbitrary mid-segment positions.
        budgets.extend(
            (0..=total)
                .step_by(7)
                .map(|b| b.saturating_add(3).min(total)),
        );
        budgets.push(total);
        for crash_at in budgets {
            crash_resume_once::<B>(words, &reference, every, crash_at, 1, name);
        }
    }
    check::<StateVector>(&words, total, every, "dense");
    check::<ParallelStateVector>(&words, total, every, "parallel-dense");
    check::<SparseState>(&words, total, every, "sparse");
    check::<AdaptiveState>(&words, total, every, "adaptive");
}

/// Multi-worker crashes are racy (the budget pool is shared across
/// worker threads), but resume correctness must hold wherever the crash
/// fell.
#[test]
fn racy_multiworker_crashes_still_resume_identically() {
    let words = seeded_words(6, 0xACE);
    let reference = complement_sweep_in::<StateVector>(&words, 0xFEED, &BatchRunner::serial());
    for crash_at in [1u64, 17, 40, 77, 120] {
        crash_resume_once::<StateVector>(&words, &reference, 4, crash_at, 3, "dense-racy");
    }
}

/// Repeated kills: crash, resume with a budget, crash again, … until
/// done. Progress is monotone and the final report is exact.
#[test]
fn repeated_crashes_make_progress_and_finish() {
    let words = seeded_words(4, 0xBEEF);
    let reference = complement_sweep_in::<SparseState>(&words, 0xFEED, &BatchRunner::serial());
    let path = temp_path("repeated");
    let tag = "ComplementRecognizer";
    let mut store = Some(CheckpointStore::create(&path, tag).expect("create"));
    let mut rounds = 0;
    let report = loop {
        rounds += 1;
        assert!(rounds < 100, "a 25-token budget must finish eventually");
        let mut s = store.take().expect("store");
        match complement_sweep_resumable_in::<SparseState>(
            &words,
            0xFEED,
            &BatchRunner::serial(),
            3,
            &mut s,
            25,
        )
        .expect("no store errors")
        {
            Some(report) => break report,
            None => {
                drop(s);
                let (s, _) = CheckpointStore::recover(&path, tag).expect("recover");
                store = Some(s);
            }
        }
    };
    assert_eq!(report, reference);
    assert!(
        rounds > 1,
        "the budget must actually have crashed the sweep"
    );
    cleanup(&path);
}

// ---------------------------------------------------------------------
// Outcome records: skip-not-replay accounting and compaction identity
// ---------------------------------------------------------------------

/// A symbol stream that meters how many tokens were actually pulled —
/// the accounting instrument for the skip-not-replay contract.
struct MeteredStream<'a> {
    inner: std::vec::IntoIter<Sym>,
    pulled: &'a std::sync::atomic::AtomicU64,
}

impl Iterator for MeteredStream<'_> {
    type Item = Sym;

    fn next(&mut self) -> Option<Sym> {
        let sym = self.inner.next();
        if sym.is_some() {
            self.pulled
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        sym
    }
}

/// The tentpole accounting property: an instance whose outcome is in
/// the store is *skipped* on resume — its task is never built and not
/// one token of its stream is re-derived or re-fed, proven by metering
/// every stream pull.
#[test]
fn finished_instances_are_never_refed_tokens_on_resume() {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    let words = seeded_words(6, 0xFACE);
    let reference = complement_sweep_in::<StateVector>(&words, 0xFEED, &BatchRunner::serial());
    let path = temp_path("accounting");
    let tag = "ComplementRecognizer";
    let pulled: Vec<AtomicU64> = (0..words.len()).map(|_| AtomicU64::new(0)).collect();
    let built = AtomicUsize::new(0);
    let task = |i: usize| {
        built.fetch_add(1, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(onlineq::core::derive_seed(0xFEED, i));
        (
            onlineq::core::ComplementRecognizer::<StateVector>::new_in(&mut rng),
            MeteredStream {
                inner: words[i].clone().into_iter(),
                pulled: &pulled[i],
            },
        )
    };
    // Crash partway: some instances finish, some are left mid-stream.
    let mut store = CheckpointStore::create(&path, tag).expect("create");
    let crashed = BatchRunner::serial()
        .run_resumable_budgeted(words.len(), 4, &mut store, 70, task)
        .expect("no store errors");
    assert_eq!(crashed, None, "budget 70 must crash the ~180-token sweep");
    let finished: Vec<usize> = (0..words.len())
        .filter(|&i| store.is_finished(i as u64))
        .collect();
    assert!(
        !finished.is_empty() && finished.len() < words.len(),
        "the crash must split the fleet: {finished:?}"
    );
    // Resume to completion with fresh meters: finished instances must
    // contribute zero pulls and zero task builds.
    for p in &pulled {
        p.store(0, Ordering::Relaxed);
    }
    built.store(0, Ordering::Relaxed);
    drop(store);
    let (mut store, _) = CheckpointStore::recover(&path, tag).expect("recover");
    let resumed = BatchRunner::serial()
        .run_resumable(words.len(), 4, &mut store, task)
        .expect("resume");
    assert_eq!(resumed, reference);
    for &i in &finished {
        assert_eq!(
            pulled[i].load(Ordering::Relaxed),
            0,
            "instance {i} finished before the crash yet was re-fed"
        );
    }
    assert_eq!(
        built.load(Ordering::Relaxed),
        words.len() - finished.len(),
        "tasks are built only for unfinished instances"
    );
    // A second resume needs nothing at all: every instance is finished,
    // so a zero-token budget still completes and nothing is pulled.
    for p in &pulled {
        p.store(0, Ordering::Relaxed);
    }
    built.store(0, Ordering::Relaxed);
    let replay = BatchRunner::serial()
        .run_resumable_budgeted(words.len(), 4, &mut store, 0, task)
        .expect("no store errors")
        .expect("zero tokens suffice: everything is finished");
    assert_eq!(replay, reference);
    assert_eq!(built.load(Ordering::Relaxed), 0, "no task built at all");
    let total_pulled: u64 = pulled.iter().map(|p| p.load(Ordering::Relaxed)).sum();
    assert_eq!(total_pulled, 0, "zero replayed tokens, fleet-wide");
    cleanup(&path);
}

/// Compaction never changes what a resume computes: crash → recover →
/// `compact` → strict reopen → resume is `==`-identical to the
/// uninterrupted sweep, on all four backends — and the compacted file
/// is smaller than the resume-heavy original.
#[test]
fn resume_after_compaction_is_identical_on_all_backends() {
    fn check<B: QuantumBackend>(name: &str) {
        let words = seeded_words(4, 0xC0DE);
        let reference = complement_sweep_in::<B>(&words, 0xFEED, &BatchRunner::serial());
        let path = temp_path(&format!("compact-{name}"));
        let tag = "ComplementRecognizer";
        let mut store = Some(CheckpointStore::create(&path, tag).expect("create"));
        // Several crash/resume rounds pile up superseded checkpoints.
        let report = loop {
            let mut s = store.take().expect("store");
            match complement_sweep_resumable_in::<B>(
                &words,
                0xFEED,
                &BatchRunner::serial(),
                3,
                &mut s,
                40,
            )
            .expect("no store errors")
            {
                Some(report) => {
                    store = Some(s);
                    break report;
                }
                None => {
                    drop(s);
                    let (mut s, _) = CheckpointStore::recover(&path, tag).expect("recover");
                    // Compact mid-recovery too: resumes must not care.
                    s.compact().expect("compact mid-sweep");
                    store = Some(s);
                }
            }
        };
        assert_eq!(report, reference, "{name}: first completion");
        let mut s = store.take().expect("store");
        let heavy = s.len_bytes();
        let compaction = s.compact().expect("compact completed store");
        assert!(
            compaction.bytes_after < heavy,
            "{name}: {heavy} -> {} bytes",
            compaction.bytes_after
        );
        drop(s);
        // The compacted file strict-opens and resumes bit-exactly.
        let mut s = CheckpointStore::open(&path, tag).expect("strict open after compact");
        assert_eq!(s.finished_instances(), words.len());
        let resumed = complement_sweep_resumable_in::<B>(
            &words,
            0xFEED,
            &BatchRunner::serial(),
            3,
            &mut s,
            0,
        )
        .expect("no store errors")
        .expect("all finished: zero tokens needed");
        assert_eq!(resumed, reference, "{name}: resume after compaction");
        cleanup(&path);
    }
    check::<StateVector>("dense");
    check::<ParallelStateVector>("parallel-dense");
    check::<SparseState>("sparse");
    check::<AdaptiveState>("adaptive");
}

#[test]
fn zero_length_and_foreign_files_are_not_stores() {
    let path = temp_path("zero");
    std::fs::write(&path, b"").expect("write");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::NotAStore)
    ));
    std::fs::write(&path, b"not a store at all").expect("write");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::NotAStore)
    ));
    // Recovery does not reinterpret foreign files either.
    assert!(CheckpointStore::recover_for::<TallyDecider>(&path).is_err());
    cleanup(&path);
}

#[test]
fn unknown_store_and_checkpoint_versions_are_rejected() {
    let (path, _) = build_store("versions");
    let original = std::fs::read(&path).expect("read");
    // Byte 8 is the store format version.
    let mut bumped = original.clone();
    bumped[STORE_MAGIC.len()] = 99;
    std::fs::write(&path, &bumped).expect("write");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::UnsupportedStoreVersion(99))
    ));
    // Byte 9 is the checkpoint encoding version the payloads use.
    let mut bumped = original.clone();
    bumped[STORE_MAGIC.len() + 1] = 77;
    std::fs::write(&path, &bumped).expect("write");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::CheckpointVersionMismatch { found: 77 })
    ));
    cleanup(&path);
}

#[test]
fn workspace_and_decider_tag_mismatches_are_rejected() {
    let (path, _) = build_store("tags");
    assert!(matches!(
        CheckpointStore::open(&path, "SomeOtherDecider"),
        Err(StoreError::DeciderMismatch { .. })
    ));
    // Handcraft a header claiming workspace 9.9.9 (this also pins the
    // header byte layout: magic, store version, checkpoint version,
    // length-prefixed workspace version, length-prefixed tag).
    let mut fake = Vec::new();
    fake.extend_from_slice(&STORE_MAGIC);
    fake.push(onlineq::machine::STORE_VERSION);
    fake.push(onlineq::machine::CHECKPOINT_VERSION);
    fake.push(5);
    fake.extend_from_slice(b"9.9.9");
    fake.push(12);
    fake.extend_from_slice(b"TallyDecider");
    std::fs::write(&path, &fake).expect("write");
    match CheckpointStore::open_for::<TallyDecider>(&path) {
        Err(StoreError::WorkspaceMismatch { found }) => assert_eq!(found, "9.9.9"),
        other => panic!("expected WorkspaceMismatch, got {other:?}"),
    }
    cleanup(&path);
}

/// Walks every truncation point of `path` (raw, compressed or legacy-v2
/// records alike): boundary cuts open as consistent shorter stores,
/// mid-record cuts refuse strictly and salvage the longest valid prefix
/// in one forward pass.
fn truncation_walk(variant: &str, path: &PathBuf, boundaries: &[u64], tag: &str) {
    let full = std::fs::read(path).expect("read");
    let header_len = boundaries[0];
    for cut in 0..full.len() as u64 {
        std::fs::write(path, &full[..cut as usize]).expect("write");
        let strict = CheckpointStore::open(path, tag);
        if cut < header_len {
            assert!(strict.is_err(), "{variant} cut {cut}: inside the header");
            continue;
        }
        if boundaries.contains(&cut) {
            // A record boundary is a consistent (shorter) store.
            let store =
                strict.unwrap_or_else(|e| panic!("{variant} cut {cut}: boundary must open: {e}"));
            let records_before_cut = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(store.records(), records_before_cut, "{variant} cut {cut}");
        } else {
            assert!(
                matches!(
                    strict,
                    Err(StoreError::Truncated { .. })
                        | Err(StoreError::CorruptRecord { .. })
                        | Err(StoreError::CorruptCompressed { .. })
                ),
                "{variant} cut {cut}: {strict:?}"
            );
            drop(strict);
            // Recovery keeps the longest valid prefix and truncates the
            // torn tail; the salvaged store reopens cleanly. The scan is
            // a single forward pass: exactly one attempt (the torn tail)
            // beyond the salvaged records.
            let (store, report) = CheckpointStore::recover(path, tag).expect("recover");
            let salvage_end = *boundaries.iter().rfind(|&&b| b <= cut).expect("header");
            assert_eq!(store.len_bytes(), salvage_end, "{variant} cut {cut}");
            assert_eq!(
                report.dropped_bytes,
                cut - salvage_end,
                "{variant} cut {cut}"
            );
            assert_eq!(
                report.scanned_records,
                report.salvaged_records + 1,
                "{variant} cut {cut}: salvage must be a single pass"
            );
            drop(store);
            CheckpointStore::open(path, tag).expect("clean after recovery");
        }
    }
    cleanup(path);
}

#[test]
fn every_truncation_point_errors_strictly_and_recovers_salvageably() {
    let (path, boundaries) = build_store("truncate");
    truncation_walk("raw", &path, &boundaries, TallyDecider::TYPE_TAG);
    let (path, boundaries) = build_store_compressed("truncate-lz4");
    truncation_walk("compressed", &path, &boundaries, HistoryTally::TYPE_TAG);
    let (path, boundaries) = build_store_v2("truncate-v2");
    truncation_walk("v2", &path, &boundaries, HistoryTally::TYPE_TAG);
}

/// Flips every byte of `path` in turn: strict open always refuses, and
/// recovery salvages exactly the records before the flipped one —
/// corrupted compressed payloads surface as typed errors, never as
/// garbage decompression (the content key is over the *uncompressed*
/// bytes, so a wrong-but-decodable block still fails).
fn bitflip_walk(variant: &str, path: &PathBuf, boundaries: &[u64], tag: &str) {
    let full = std::fs::read(path).expect("read");
    for at in 0..full.len() {
        let mut flipped = full.clone();
        flipped[at] ^= 0xFF;
        std::fs::write(path, &flipped).expect("write");
        // Strict open must refuse — a flipped store header, record
        // header, or payload (content-hash mismatch) is never half-read.
        assert!(
            CheckpointStore::open(path, tag).is_err(),
            "{variant}: flip at byte {at} went unnoticed"
        );
        // Recovery never panics either; flips after the header salvage
        // the records before the flipped one, in a single pass.
        if at as u64 >= boundaries[0] {
            let (_store, report) = CheckpointStore::recover(path, tag).expect("recover");
            let flipped_record_start = *boundaries
                .iter()
                .rfind(|&&b| b <= at as u64)
                .expect("header");
            assert_eq!(
                report.salvaged_records,
                boundaries
                    .iter()
                    .filter(|&&b| b <= flipped_record_start)
                    .count()
                    - 1,
                "{variant}: flip at byte {at}"
            );
            assert_eq!(
                report.scanned_records,
                report.salvaged_records + 1,
                "{variant}: flip at byte {at}: salvage must be a single pass"
            );
        }
    }
    cleanup(path);
}

#[test]
fn every_single_byte_flip_is_detected_without_panicking() {
    let (path, boundaries) = build_store("bitflip");
    bitflip_walk("raw", &path, &boundaries, TallyDecider::TYPE_TAG);
    let (path, boundaries) = build_store_compressed("bitflip-lz4");
    bitflip_walk("compressed", &path, &boundaries, HistoryTally::TYPE_TAG);
    let (path, boundaries) = build_store_v2("bitflip-v2");
    bitflip_walk("v2", &path, &boundaries, HistoryTally::TYPE_TAG);
}

#[test]
fn overflowed_length_fields_neither_panic_nor_allocate() {
    // The first record's v3 full-record metadata sits right after the 41
    // record-header bytes (kind + instance + position + key + check):
    // flags at +41, uncompressed length at +42, stored length at +50.
    let (path, boundaries) = build_store("overflow");
    let pristine = std::fs::read(&path).expect("read");
    let rec = boundaries[0] as usize;
    let verify_unsalvageable = |what: &str| {
        let (store, report) = CheckpointStore::recover_for::<TallyDecider>(&path)
            .unwrap_or_else(|e| panic!("{what}: recover: {e}"));
        assert_eq!(report.salvaged_records, 0, "{what}");
        assert_eq!(report.scanned_records, 1, "{what}: single-pass salvage");
        assert_eq!(store.len_bytes(), boundaries[0], "{what}");
        drop(store);
    };
    // A 16-EiB claimed *stored* length must be rejected by bounds
    // arithmetic against the file length, not by attempting the
    // allocation.
    let mut bytes = pristine.clone();
    bytes[rec + 50..rec + 58].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::Truncated { .. })
    ));
    verify_unsalvageable("stored length");
    // A 16-EiB claimed *uncompressed* length on a record marked
    // compressed must be rejected by the decompressor's expansion bound
    // (a stored block can expand at most ~255x) before any allocation.
    let mut bytes = pristine.clone();
    bytes[rec + 41] = 1; // FLAG_COMPRESSED
    bytes[rec + 42..rec + 50].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::CorruptCompressed { .. })
    ));
    verify_unsalvageable("uncompressed length");
    // On a raw record the uncompressed length must equal the stored
    // length; an inflated value is a corrupt record, not a resize.
    let mut bytes = pristine.clone();
    bytes[rec + 42..rec + 50].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::CorruptRecord { .. })
    ));
    verify_unsalvageable("raw-length mismatch");
    // Undefined flag bits are refused outright.
    let mut bytes = pristine;
    bytes[rec + 41] = 0xFF;
    std::fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::CorruptRecord { .. })
    ));
    verify_unsalvageable("flag bits");
    cleanup(&path);

    // Same hostile uncompressed-length probe against a record that
    // really is compressed: the declared size is a lie the expansion
    // bound catches before the decoder allocates anything.
    let (path, boundaries) = build_store_compressed("overflow-lz4");
    let mut bytes = std::fs::read(&path).expect("read");
    let rec = boundaries[0] as usize;
    assert_eq!(bytes[rec + 41], 1, "first record must be compressed");
    bytes[rec + 42..rec + 50].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        CheckpointStore::open_for::<HistoryTally>(&path),
        Err(StoreError::CorruptCompressed { .. })
    ));
    let (store, report) = CheckpointStore::recover_for::<HistoryTally>(&path).expect("recover");
    assert_eq!(report.salvaged_records, 0);
    assert_eq!(store.len_bytes(), boundaries[0]);
    drop(store);
    cleanup(&path);
}

// ---------------------------------------------------------------------
// Streaming scan: O(1) resident memory, single pass, honest stats
// ---------------------------------------------------------------------

/// A raw reader that counts every byte handed out — the instrument that
/// turns "the scanner streams" from a claim into an assertion.
struct CountingReader<R> {
    inner: R,
    bytes_read: u64,
}

impl<R: std::io::Read> std::io::Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes_read += n as u64;
        Ok(n)
    }
}

/// The tentpole memory property: scanning a multi-thousand-record log
/// keeps peak buffered payload bytes bounded by ONE decompressed payload
/// (the largest record), an order of magnitude below the file size, and
/// reads every record byte exactly once. `open`, `recover` and `compact`
/// all inherit the same bound via `peak_resident_payload_bytes`.
#[test]
fn scanning_thousands_of_records_buffers_only_one_payload() {
    let path = temp_path("streaming-peak");
    let mut store = CheckpointStore::create_for::<HistoryTally>(&path).expect("create");
    // 1200 distinct checkpoints (64..1264 tokens), each re-appended for a
    // second instance so the log is half dedupe refs; then one outsized
    // checkpoint that must dominate the resident-memory high-water mark.
    for i in 0..1200u64 {
        let cp = history_checkpoint_at(64 + i as usize);
        store.append(i, &cp).expect("append");
        store.append(10_000 + i, &cp).expect("ref");
    }
    let big = history_checkpoint_at(8000);
    let big_len = big.as_bytes().len() as u64;
    store.append(77_777, &big).expect("big");
    let expected_records = 2 * 1200 + 1;
    assert_eq!(store.records(), expected_records);
    drop(store);

    let header = peek_header(&path).expect("peek");
    let file_len = std::fs::metadata(&path).expect("meta").len();
    // Drive the scanner over a counting reader: no BufReader, so every
    // byte counted is a byte the scanner explicitly asked for.
    let mut file = std::fs::File::open(&path).expect("open file");
    std::io::Seek::seek(&mut file, std::io::SeekFrom::Start(header.len)).expect("seek");
    let mut counting = CountingReader {
        inner: file,
        bytes_read: 0,
    };
    let mut scanner = RecordScanner::new(&mut counting, file_len, header.version, header.len);
    let mut records = 0usize;
    while scanner.next_record().expect("clean log").is_some() {
        records += 1;
    }
    assert_eq!(records, expected_records);
    assert_eq!(scanner.records_scanned(), expected_records);
    let peak = scanner.peak_resident_bytes();
    drop(scanner);
    // The bound: one stored block plus its decompression — under twice
    // the largest payload — while the file is an order of magnitude
    // bigger. A scanner that buffered the log would blow this instantly.
    assert!(peak >= big_len, "the big payload was resident: {peak}");
    assert!(
        peak < 2 * big_len,
        "peak {peak} exceeds one payload's footprint ({big_len} uncompressed)"
    );
    assert!(
        peak * 8 < file_len,
        "peak {peak} is not O(1) against a {file_len}-byte log"
    );
    // Single pass: every record byte read exactly once, none twice.
    assert_eq!(counting.bytes_read, file_len - header.len);

    // `open` inherits the bound (plus its fixed-size read buffer).
    let mut store = CheckpointStore::open_for::<HistoryTally>(&path).expect("open");
    assert!(store.peak_resident_payload_bytes() < 2 * big_len);
    assert_eq!(store.records(), expected_records);
    let stats = store.stats();
    assert_eq!(stats.records, expected_records);
    assert_eq!(stats.ref_records, 1200);
    assert!(stats.compressed_payloads > 0);
    assert!(stats.uncompressed_payload_bytes > stats.stored_payload_bytes);
    assert!(
        stats.compression_ratio() > 1.5,
        "{}",
        stats.compression_ratio()
    );
    assert!(stats.dedupe_hit_rate() > 0.49 && stats.dedupe_hit_rate() < 0.51);
    // `compact` streams payloads one at a time under the same bound.
    store.compact().expect("compact");
    assert!(store.peak_resident_payload_bytes() < 2 * big_len);
    assert_eq!(store.records(), 2401, "one record per instance");
    drop(store);

    // `recover` over the compacted log: still one pass, still bounded.
    let mut bytes = std::fs::read(&path).expect("read");
    bytes.extend_from_slice(&[0xAB; 13]);
    std::fs::write(&path, &bytes).expect("write");
    let (store, report) = CheckpointStore::recover_for::<HistoryTally>(&path).expect("recover");
    assert_eq!(report.salvaged_records, 2401);
    assert_eq!(report.scanned_records, report.salvaged_records + 1);
    assert!(store.peak_resident_payload_bytes() < 2 * big_len);
    drop(store);
    cleanup(&path);
}

/// Legacy v2 stores open read-only end to end: appends are typed
/// `ReadOnly` errors, and one `compact` upgrades the file in place to a
/// writable, compressed, strictly smaller v3 store with identical data.
#[test]
fn v2_stores_are_read_only_until_compaction_upgrades_them() {
    let (path, _) = build_store_v2("upgrade");
    let v2_bytes = std::fs::metadata(&path).expect("meta").len();
    let mut store = CheckpointStore::open_for::<HistoryTally>(&path).expect("open v2");
    assert_eq!(store.version(), STORE_VERSION_V2);
    assert!(!store.is_writable());
    assert!(matches!(
        store.append(9, &history_checkpoint_at(123)),
        Err(StoreError::ReadOnly { .. })
    ));
    // Instance 2 never finished, so its checkpoint must survive the
    // upgrade bit-exactly (instances 0 and 1 keep only their outcomes).
    let latest = store.latest(2).expect("latest").expect("instance 2");
    assert_eq!(latest.position(), 300);
    let report = store.compact().expect("upgrade");
    assert_eq!(report.before.version, STORE_VERSION_V2);
    assert_eq!(report.after.version, STORE_VERSION);
    assert!(report.after.compressed_payloads > 0);
    assert!(store.is_writable());
    store
        .append(9, &history_checkpoint_at(123))
        .expect("writable now");
    assert_eq!(
        store.latest(2).expect("latest").expect("instance 2"),
        latest,
        "compaction upgrade preserves checkpoint bytes"
    );
    drop(store);
    let v3_bytes = std::fs::metadata(&path).expect("meta").len();
    assert!(
        v3_bytes < v2_bytes,
        "compressed v3 ({v3_bytes}) must undercut v2 ({v2_bytes})"
    );
    let store = CheckpointStore::open_for::<HistoryTally>(&path).expect("reopen");
    assert_eq!(store.version(), STORE_VERSION);
    assert_eq!(store.finished_instances(), 2);
    drop(store);
    cleanup(&path);
}

#[test]
fn trailing_garbage_is_refused_and_recovered_away() {
    let (path, boundaries) = build_store("garbage");
    let mut bytes = std::fs::read(&path).expect("read");
    let valid_len = bytes.len() as u64;
    bytes.extend_from_slice(&[0xAB; 13]);
    std::fs::write(&path, &bytes).expect("write");
    assert!(CheckpointStore::open_for::<TallyDecider>(&path).is_err());
    let (store, report) = CheckpointStore::recover_for::<TallyDecider>(&path).expect("recover");
    assert_eq!(store.len_bytes(), valid_len);
    assert_eq!(report.dropped_bytes, 13);
    assert_eq!(report.salvaged_records, boundaries.len() - 1);
    cleanup(&path);
}

#[test]
fn orphaned_locks_block_until_broken() {
    let (path, _) = build_store("orphan");
    std::fs::write(lock_path(&path), b"9999999").expect("orphan lock");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::Locked { .. })
    ));
    assert!(matches!(
        CheckpointStore::recover_for::<TallyDecider>(&path),
        Err(StoreError::Locked { .. })
    ));
    assert!(CheckpointStore::break_lock(&path).expect("break"));
    CheckpointStore::open_for::<TallyDecider>(&path).expect("opens after break");
    cleanup(&path);
}

#[test]
fn unknown_keys_and_stale_creates_are_errors() {
    let (path, _) = build_store("misc");
    let mut store = CheckpointStore::open_for::<TallyDecider>(&path).expect("open");
    assert!(matches!(store.get(42), Err(StoreError::UnknownKey)));
    drop(store);
    assert!(matches!(
        CheckpointStore::create_for::<TallyDecider>(&path),
        Err(StoreError::AlreadyExists { .. })
    ));
    cleanup(&path);
}

/// A resumable run against a store holding a checkpoint whose position
/// exceeds the re-derived stream (a task-factory / store mismatch)
/// fails loudly instead of misresuming.
#[test]
fn checkpoint_beyond_the_stream_is_a_loud_error() {
    let path = temp_path("beyond");
    let mut store = CheckpointStore::create_for::<TallyDecider>(&path).expect("create");
    store.append(0, &checkpoint_at(50)).expect("append");
    let err = BatchRunner::serial()
        .run_resumable::<TallyDecider, _, _>(1, 4, &mut store, |_| {
            (TallyDecider::new(), std::iter::repeat_n(Sym::One, 10))
        })
        .expect_err("position 50 > 10-token stream");
    assert!(matches!(err, StoreError::Checkpoint(_)), "{err}");
    drop(store);
    cleanup(&path);
}
