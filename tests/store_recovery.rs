//! The persistent checkpoint store's contract (DESIGN.md §8), pinned
//! end to end:
//!
//! * **Crash recovery** — a sweep killed at *any* token position (every
//!   checkpoint boundary and arbitrary mid-segment points), resumed
//!   from nothing but the store file, produces a `BatchReport`
//!   `==`-identical to the uninterrupted run — on the dense, parallel,
//!   sparse and adaptive backends.
//! * **Robustness** — truncated files, bit-flipped bytes (anywhere:
//!   header, record headers, payloads), unknown format versions, wrong
//!   decider-type tags, overflowed length fields, trailing garbage and
//!   zero-length files all return errors. No input panics, no input
//!   over-allocates, and `recover` always salvages the longest valid
//!   record prefix.
//!
//! CI runs this suite under `--release`.

use onlineq::core::sweep::{complement_sweep_in, complement_sweep_resumable_in};
use onlineq::lang::{random_member, random_nonmember, Sym};
use onlineq::machine::session::{put_u64, ByteReader, CheckpointError};
use onlineq::machine::{
    BatchRunner, CheckpointStore, Checkpointable, Session, SessionCheckpoint, StoreError,
    StreamingDecider, STORE_MAGIC,
};
use onlineq::quantum::{
    AdaptiveState, ParallelStateVector, QuantumBackend, SparseState, StateVector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// A tiny checkpointable decider for format-level tests (accepts iff it
/// saw more `1`s than `0`s).
#[derive(Clone, Debug, PartialEq, Eq)]
struct TallyDecider {
    ones: u64,
    zeros: u64,
}

impl TallyDecider {
    fn new() -> Self {
        TallyDecider { ones: 0, zeros: 0 }
    }
}

impl StreamingDecider for TallyDecider {
    fn feed(&mut self, sym: Sym) {
        match sym {
            Sym::One => self.ones += 1,
            Sym::Zero => self.zeros += 1,
            Sym::Hash => {}
        }
    }

    fn decide(&mut self) -> bool {
        self.ones > self.zeros
    }

    fn space_bits(&self) -> usize {
        128
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = self.ones.to_le_bytes().to_vec();
        out.extend_from_slice(&self.zeros.to_le_bytes());
        out
    }
}

impl Checkpointable for TallyDecider {
    const TYPE_TAG: &'static str = "TallyDecider";

    fn write_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.ones);
        put_u64(out, self.zeros);
    }

    fn read_state(r: &mut ByteReader) -> Result<Self, CheckpointError> {
        Ok(TallyDecider {
            ones: r.read_u64()?,
            zeros: r.read_u64()?,
        })
    }
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "oqsc-store-recovery-{}-{name}.cps",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(lock_path(&p));
    p
}

fn lock_path(p: &std::path::Path) -> PathBuf {
    let mut os = p.as_os_str().to_os_string();
    os.push(".lock");
    PathBuf::from(os)
}

fn cleanup(p: &PathBuf) {
    let _ = std::fs::remove_file(p);
    let _ = std::fs::remove_file(lock_path(p));
}

fn checkpoint_at(tokens: usize) -> SessionCheckpoint {
    let mut s = Session::new(TallyDecider::new());
    for i in 0..tokens {
        s.feed(if i % 3 == 0 { Sym::One } else { Sym::Zero });
    }
    s.suspend()
}

/// A store with a few records (including a dedupe ref), plus the byte
/// offsets at which each append left the file — i.e. the valid
/// truncation boundaries.
fn build_store(name: &str) -> (PathBuf, Vec<u64>) {
    let path = temp_path(name);
    let mut store = CheckpointStore::create_for::<TallyDecider>(&path).expect("create");
    let mut boundaries = vec![store.len_bytes()];
    for (instance, tokens) in [(0u64, 4usize), (1, 6), (0, 8), (2, 6)] {
        store
            .append(instance, &checkpoint_at(tokens))
            .expect("append");
        boundaries.push(store.len_bytes());
    }
    // Instance 2 re-persists bytes instance 1 already wrote: a ref record.
    drop(store);
    (path, boundaries)
}

// ---------------------------------------------------------------------
// Crash recovery: kill at every boundary and at arbitrary positions
// ---------------------------------------------------------------------

fn seeded_words(n: usize, seed: u64) -> Vec<Vec<Sym>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                random_member(1, &mut rng).encode()
            } else {
                random_nonmember(1, 1 + i % 3, &mut rng).encode()
            }
        })
        .collect()
}

/// Runs the complement sweep with a token budget of `crash_at`, then —
/// if it crashed — recovers the store file and resumes to completion,
/// requiring the final report to equal the uninterrupted reference.
fn crash_resume_once<B: QuantumBackend>(
    words: &[Vec<Sym>],
    reference: &onlineq::machine::BatchReport,
    every: usize,
    crash_at: u64,
    workers: usize,
    name: &str,
) {
    let path = temp_path(&format!("crash-{name}-{workers}w-{every}e-{crash_at}"));
    let runner = BatchRunner::new(workers);
    let tag = "ComplementRecognizer";
    let mut store = CheckpointStore::create(&path, tag).expect("create");
    let first =
        complement_sweep_resumable_in::<B>(words, 0xFEED, &runner, every, &mut store, crash_at)
            .expect("no store errors");
    match first {
        Some(report) => assert_eq!(&report, reference, "{name}: budget covered the sweep"),
        None => {
            drop(store);
            let (mut store, salvage) = CheckpointStore::recover(&path, tag).expect("recover");
            assert_eq!(salvage.dropped_bytes, 0, "clean kill leaves no torn tail");
            let resumed = complement_sweep_resumable_in::<B>(
                words,
                0xFEED,
                &runner,
                every,
                &mut store,
                u64::MAX,
            )
            .expect("resume")
            .expect("unlimited budget completes");
            assert_eq!(&resumed, reference, "{name}: crash at {crash_at}");
        }
    }
    cleanup(&path);
}

/// The tentpole property: a sweep killed at every checkpoint boundary —
/// and at arbitrary token positions between them — and resumed from the
/// persisted store alone reproduces the uninterrupted `BatchReport`
/// exactly, on all four backends.
#[test]
fn killed_sweeps_resume_identically_on_all_backends() {
    let words = seeded_words(4, 0x5707);
    let total: u64 = words.iter().map(|w| w.len() as u64).sum();
    let every = 5usize;
    fn check<B: QuantumBackend>(words: &[Vec<Sym>], total: u64, every: usize, name: &str) {
        let reference = complement_sweep_in::<B>(words, 0xFEED, &BatchRunner::serial());
        // Every checkpoint boundary (serial: kill points are exact) …
        let mut budgets: Vec<u64> = (0..=total).step_by(every).collect();
        // … and arbitrary mid-segment positions.
        budgets.extend(
            (0..=total)
                .step_by(7)
                .map(|b| b.saturating_add(3).min(total)),
        );
        budgets.push(total);
        for crash_at in budgets {
            crash_resume_once::<B>(words, &reference, every, crash_at, 1, name);
        }
    }
    check::<StateVector>(&words, total, every, "dense");
    check::<ParallelStateVector>(&words, total, every, "parallel-dense");
    check::<SparseState>(&words, total, every, "sparse");
    check::<AdaptiveState>(&words, total, every, "adaptive");
}

/// Multi-worker crashes are racy (the budget pool is shared across
/// worker threads), but resume correctness must hold wherever the crash
/// fell.
#[test]
fn racy_multiworker_crashes_still_resume_identically() {
    let words = seeded_words(6, 0xACE);
    let reference = complement_sweep_in::<StateVector>(&words, 0xFEED, &BatchRunner::serial());
    for crash_at in [1u64, 17, 40, 77, 120] {
        crash_resume_once::<StateVector>(&words, &reference, 4, crash_at, 3, "dense-racy");
    }
}

/// Repeated kills: crash, resume with a budget, crash again, … until
/// done. Progress is monotone and the final report is exact.
#[test]
fn repeated_crashes_make_progress_and_finish() {
    let words = seeded_words(4, 0xBEEF);
    let reference = complement_sweep_in::<SparseState>(&words, 0xFEED, &BatchRunner::serial());
    let path = temp_path("repeated");
    let tag = "ComplementRecognizer";
    let mut store = Some(CheckpointStore::create(&path, tag).expect("create"));
    let mut rounds = 0;
    let report = loop {
        rounds += 1;
        assert!(rounds < 100, "a 25-token budget must finish eventually");
        let mut s = store.take().expect("store");
        match complement_sweep_resumable_in::<SparseState>(
            &words,
            0xFEED,
            &BatchRunner::serial(),
            3,
            &mut s,
            25,
        )
        .expect("no store errors")
        {
            Some(report) => break report,
            None => {
                drop(s);
                let (s, _) = CheckpointStore::recover(&path, tag).expect("recover");
                store = Some(s);
            }
        }
    };
    assert_eq!(report, reference);
    assert!(
        rounds > 1,
        "the budget must actually have crashed the sweep"
    );
    cleanup(&path);
}

// ---------------------------------------------------------------------
// Robustness: truncation, bit flips, versions, tags, overflow
// ---------------------------------------------------------------------

#[test]
fn zero_length_and_foreign_files_are_not_stores() {
    let path = temp_path("zero");
    std::fs::write(&path, b"").expect("write");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::NotAStore)
    ));
    std::fs::write(&path, b"not a store at all").expect("write");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::NotAStore)
    ));
    // Recovery does not reinterpret foreign files either.
    assert!(CheckpointStore::recover_for::<TallyDecider>(&path).is_err());
    cleanup(&path);
}

#[test]
fn unknown_store_and_checkpoint_versions_are_rejected() {
    let (path, _) = build_store("versions");
    let original = std::fs::read(&path).expect("read");
    // Byte 8 is the store format version.
    let mut bumped = original.clone();
    bumped[STORE_MAGIC.len()] = 99;
    std::fs::write(&path, &bumped).expect("write");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::UnsupportedStoreVersion(99))
    ));
    // Byte 9 is the checkpoint encoding version the payloads use.
    let mut bumped = original.clone();
    bumped[STORE_MAGIC.len() + 1] = 77;
    std::fs::write(&path, &bumped).expect("write");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::CheckpointVersionMismatch { found: 77 })
    ));
    cleanup(&path);
}

#[test]
fn workspace_and_decider_tag_mismatches_are_rejected() {
    let (path, _) = build_store("tags");
    assert!(matches!(
        CheckpointStore::open(&path, "SomeOtherDecider"),
        Err(StoreError::DeciderMismatch { .. })
    ));
    // Handcraft a header claiming workspace 9.9.9 (this also pins the
    // header byte layout: magic, store version, checkpoint version,
    // length-prefixed workspace version, length-prefixed tag).
    let mut fake = Vec::new();
    fake.extend_from_slice(&STORE_MAGIC);
    fake.push(onlineq::machine::STORE_VERSION);
    fake.push(onlineq::machine::CHECKPOINT_VERSION);
    fake.push(5);
    fake.extend_from_slice(b"9.9.9");
    fake.push(12);
    fake.extend_from_slice(b"TallyDecider");
    std::fs::write(&path, &fake).expect("write");
    match CheckpointStore::open_for::<TallyDecider>(&path) {
        Err(StoreError::WorkspaceMismatch { found }) => assert_eq!(found, "9.9.9"),
        other => panic!("expected WorkspaceMismatch, got {other:?}"),
    }
    cleanup(&path);
}

#[test]
fn every_truncation_point_errors_strictly_and_recovers_salvageably() {
    let (path, boundaries) = build_store("truncate");
    let full = std::fs::read(&path).expect("read");
    let header_len = boundaries[0];
    for cut in 0..full.len() as u64 {
        std::fs::write(&path, &full[..cut as usize]).expect("write");
        let strict = CheckpointStore::open_for::<TallyDecider>(&path);
        if cut < header_len {
            assert!(strict.is_err(), "cut {cut}: inside the header");
            continue;
        }
        if boundaries.contains(&cut) {
            // A record boundary is a consistent (shorter) store.
            let store = strict.unwrap_or_else(|e| panic!("cut {cut}: boundary must open: {e}"));
            let records_before_cut = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(store.records(), records_before_cut, "cut {cut}");
        } else {
            assert!(matches!(
                strict,
                Err(StoreError::Truncated { .. }) | Err(StoreError::CorruptRecord { .. })
            ));
            drop(strict);
            // Recovery keeps the longest valid prefix and truncates the
            // torn tail; the salvaged store reopens cleanly.
            let (store, report) =
                CheckpointStore::recover_for::<TallyDecider>(&path).expect("recover");
            let salvage_end = *boundaries.iter().rfind(|&&b| b <= cut).expect("header");
            assert_eq!(store.len_bytes(), salvage_end, "cut {cut}");
            assert_eq!(report.dropped_bytes, cut - salvage_end, "cut {cut}");
            drop(store);
            CheckpointStore::open_for::<TallyDecider>(&path).expect("clean after recovery");
        }
    }
    cleanup(&path);
}

#[test]
fn every_single_byte_flip_is_detected_without_panicking() {
    let (path, boundaries) = build_store("bitflip");
    let full = std::fs::read(&path).expect("read");
    for at in 0..full.len() {
        let mut flipped = full.clone();
        flipped[at] ^= 0xFF;
        std::fs::write(&path, &flipped).expect("write");
        // Strict open must refuse — a flipped store header, record
        // header, or payload (content-hash mismatch) is never half-read.
        assert!(
            CheckpointStore::open_for::<TallyDecider>(&path).is_err(),
            "flip at byte {at} went unnoticed"
        );
        // Recovery never panics either; flips after the header salvage
        // the records before the flipped one.
        if at as u64 >= boundaries[0] {
            let (_store, report) =
                CheckpointStore::recover_for::<TallyDecider>(&path).expect("recover");
            let flipped_record_start = *boundaries
                .iter()
                .rfind(|&&b| b <= at as u64)
                .expect("header");
            assert_eq!(
                report.salvaged_records,
                boundaries
                    .iter()
                    .filter(|&&b| b <= flipped_record_start)
                    .count()
                    - 1,
                "flip at byte {at}"
            );
        }
    }
    cleanup(&path);
}

#[test]
fn overflowed_length_fields_neither_panic_nor_allocate() {
    let (path, boundaries) = build_store("overflow");
    let mut bytes = std::fs::read(&path).expect("read");
    // The first record's payload-length field sits 41 bytes past the
    // record start (kind + instance + position + key + header check).
    let len_field = boundaries[0] as usize + 41;
    bytes[len_field..len_field + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).expect("write");
    // A 16-EiB claimed payload must be rejected by bounds arithmetic,
    // not by attempting the allocation.
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::Truncated { .. })
    ));
    let (store, report) = CheckpointStore::recover_for::<TallyDecider>(&path).expect("recover");
    assert_eq!(report.salvaged_records, 0);
    assert_eq!(store.len_bytes(), boundaries[0]);
    cleanup(&path);
}

#[test]
fn trailing_garbage_is_refused_and_recovered_away() {
    let (path, boundaries) = build_store("garbage");
    let mut bytes = std::fs::read(&path).expect("read");
    let valid_len = bytes.len() as u64;
    bytes.extend_from_slice(&[0xAB; 13]);
    std::fs::write(&path, &bytes).expect("write");
    assert!(CheckpointStore::open_for::<TallyDecider>(&path).is_err());
    let (store, report) = CheckpointStore::recover_for::<TallyDecider>(&path).expect("recover");
    assert_eq!(store.len_bytes(), valid_len);
    assert_eq!(report.dropped_bytes, 13);
    assert_eq!(report.salvaged_records, boundaries.len() - 1);
    cleanup(&path);
}

#[test]
fn orphaned_locks_block_until_broken() {
    let (path, _) = build_store("orphan");
    std::fs::write(lock_path(&path), b"9999999").expect("orphan lock");
    assert!(matches!(
        CheckpointStore::open_for::<TallyDecider>(&path),
        Err(StoreError::Locked { .. })
    ));
    assert!(matches!(
        CheckpointStore::recover_for::<TallyDecider>(&path),
        Err(StoreError::Locked { .. })
    ));
    assert!(CheckpointStore::break_lock(&path).expect("break"));
    CheckpointStore::open_for::<TallyDecider>(&path).expect("opens after break");
    cleanup(&path);
}

#[test]
fn unknown_keys_and_stale_creates_are_errors() {
    let (path, _) = build_store("misc");
    let mut store = CheckpointStore::open_for::<TallyDecider>(&path).expect("open");
    assert!(matches!(store.get(42), Err(StoreError::UnknownKey)));
    drop(store);
    assert!(matches!(
        CheckpointStore::create_for::<TallyDecider>(&path),
        Err(StoreError::AlreadyExists { .. })
    ));
    cleanup(&path);
}

/// A resumable run against a store holding a checkpoint whose position
/// exceeds the re-derived stream (a task-factory / store mismatch)
/// fails loudly instead of misresuming.
#[test]
fn checkpoint_beyond_the_stream_is_a_loud_error() {
    let path = temp_path("beyond");
    let mut store = CheckpointStore::create_for::<TallyDecider>(&path).expect("create");
    store.append(0, &checkpoint_at(50)).expect("append");
    let err = BatchRunner::serial()
        .run_resumable::<TallyDecider, _, _>(1, 4, &mut store, |_| {
            (TallyDecider::new(), std::iter::repeat_n(Sym::One, 10))
        })
        .expect_err("position 50 > 10-token stream");
    assert!(matches!(err, StoreError::Checkpoint(_)), "{err}");
    drop(store);
    cleanup(&path);
}
