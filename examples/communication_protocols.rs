//! Communication protocols for DISJ: the BCW quantum protocol vs the
//! classical baselines (experiments E1/E2).
//!
//! ```text
//! cargo run --release --example communication_protocols
//! ```

use onlineq::comm::lower_bound::disj_fn;
use onlineq::comm::{
    bcw_bounded_error, bcw_detection_probability, communication_matrix, disj_fooling_set,
    one_way_deterministic_cost, trivial_disj_protocol, verify_fooling_set, BcwParams,
};
use onlineq::lang::{random_member, random_nonmember, string_len};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1998); // BCW's year

    println!("exact one-way deterministic communication of DISJ_n (row counting):");
    for n in 1..=8usize {
        let m = communication_matrix(n, disj_fn);
        let fooling = disj_fooling_set(n);
        assert!(verify_fooling_set(&fooling, true, disj_fn));
        println!(
            "  n = {n}: one-way cost = {} bits, fooling set size 2^{n} = {}",
            one_way_deterministic_cost(&m),
            fooling.len()
        );
    }

    println!();
    println!("measured protocols on random instances (4-rep bounded-error BCW):");
    println!(
        "{:>3} {:>6} | {:>14} | {:>12} {:>14} | {:>10}",
        "k", "n", "trivial (bits)", "bcw (qubits)", "bcw worst-case", "√n·log n"
    );
    for k in 1..=3u32 {
        let n = string_len(k);
        let member = random_member(k, &mut rng);
        let trivial = trivial_disj_protocol(member.x(), member.y());
        assert!(trivial.output);
        let bcw = bcw_bounded_error(member.x(), member.y(), 4, &mut rng);
        assert!(bcw.output);
        let params = BcwParams::for_n(n);
        println!(
            "{:>3} {:>6} | {:>14} | {:>12} {:>14} | {:>10.0}",
            k,
            n,
            trivial.transcript.total_bits(),
            bcw.transcript.total_qubits(),
            4 * params.worst_case_single_run_qubits(),
            4.0 * params.sqrt_n_log_n(),
        );
    }

    println!();
    println!(
        "asymptotics (analytic worst case, single run): crossover vs the n-bit trivial protocol"
    );
    for log_n in [4u32, 6, 8, 10, 12, 14, 16, 20] {
        let params = BcwParams::for_n(1usize << log_n);
        let worst = params.worst_case_single_run_qubits();
        println!(
            "  n = 2^{log_n:>2}: {:>9} qubits vs {:>9} bits  ({})",
            worst,
            params.n,
            if worst < params.n {
                "quantum wins"
            } else {
                "trivial wins"
            }
        );
    }

    println!();
    println!("one-sided detection probability (≥ 1/4 whenever the sets intersect):");
    for t in [1usize, 4, 16] {
        let inst = random_nonmember(2, t, &mut rng);
        println!(
            "  k = 2, t = {t:>2}: P[detect] = {:.4}",
            bcw_detection_probability(inst.x(), inst.y())
        );
    }
}
