//! Verification drive: the README's sparse-backend sample through the
//! public facade, plus cross-backend agreement and a garbage-input probe.

use onlineq::core::GroverStreamer;
use onlineq::lang::{random_nonmember, token};
use onlineq::machine::StreamingDecider;
use onlineq::quantum::{SparseState, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let inst = random_nonmember(3, 2, &mut rng);
    let word = inst.encode();

    let mut dense = GroverStreamer::<StateVector>::with_j_seed_in(1, 0);
    let mut sparse = GroverStreamer::<SparseState>::with_j_seed_in(1, 0);
    dense.feed_all(&word);
    sparse.feed_all(&word);
    println!("k=3 non-member (t=2), {} symbols", word.len());
    println!(
        "dense  detection p = {:.12}  peak amplitudes = {}",
        dense.detection_probability(),
        dense.peak_amplitudes()
    );
    println!(
        "sparse detection p = {:.12}  peak amplitudes = {}",
        sparse.detection_probability(),
        sparse.peak_amplitudes()
    );
    assert!((dense.detection_probability() - sparse.detection_probability()).abs() < 1e-9);

    // Probe: garbage input through the sparse recognizer must not panic.
    let garbage = token::from_str("##10#1##0111").expect("syms");
    let mut g = GroverStreamer::<SparseState>::with_j_seed_in(0, 0);
    g.feed_all(&garbage);
    println!(
        "garbage word -> decide() = {} (vacuous pass expected)",
        g.decide()
    );
}
