//! Quickstart: recognize membership in `L_DISJ` with the online quantum
//! machine, using exponentially less space than any classical machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use onlineq::core::recognizer::LdisjRecognizer;
use onlineq::core::ComplementRecognizer;
use onlineq::lang::{random_member, random_nonmember};
use onlineq::machine::{run_decider, StreamingDecider};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2006);
    let k = 3u32; // strings of 2^{2k} = 64 bits, inputs of ~1.6k symbols

    // A member: x and y disjoint.
    let member = random_member(k, &mut rng);
    let word = member.encode();
    println!(
        "instance: k = {k}, |x| = |y| = {}, input length = {}",
        member.m(),
        word.len()
    );

    // Corollary 3.5 machine: bounded-error recognizer of L_DISJ.
    let verdict = run_decider(LdisjRecognizer::new(4, &mut rng), &word).accept;
    println!("member instance  -> declared member: {verdict}");

    // A non-member with a single intersecting coordinate (the hard case).
    let non = random_nonmember(k, 1, &mut rng);
    let trials = 50;
    let wrong = (0..trials)
        .filter(|_| run_decider(LdisjRecognizer::new(4, &mut rng), &non.encode()).accept)
        .count();
    println!("non-member (t=1) -> declared member {wrong}/{trials} times (bound: < 1/3)");

    // Space: the whole machine is logarithmic.
    let mut rec = ComplementRecognizer::new(&mut rng);
    rec.feed_all(&word);
    let space = rec.space();
    println!(
        "space: {} classical bits + {} qubits  (input: {} symbols)",
        space.classical_bits,
        space.qubits,
        word.len()
    );
    println!(
        "a classical machine needs Θ(n^(1/3)) ≈ {} bits here (Prop 3.7), and Ω(√m) always (Thm 3.6)",
        2 * (1 << k)
    );
}
