//! The formal Definition 2.3 pipeline, end to end: the classical machine
//! writes an `a#b#c` circuit description over `G = {H, T, CNOT}`, the
//! circuit runs on `|0…0⟩`, and the first qubit is measured.
//!
//! ```text
//! cargo run --release --example definition_2_3_pipeline
//! ```

use onlineq::core::model::run_definition_2_3;
use onlineq::lang::{random_member, random_nonmember};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let k = 1u32;

    println!(
        "Definition 2.3 pipeline at k = {k} (register: 2k+2 data qubits + Toffoli ancillas)\n"
    );

    let non = random_nonmember(k, 1, &mut rng);
    println!(
        "non-member instance (one intersection): x = {:?}",
        bits(non.x())
    );
    println!(
        "                                        y = {:?}",
        bits(non.y())
    );
    for j in 0..non.rounds() {
        let run = run_definition_2_3(&non, j);
        println!(
            "  j = {j}: {:>5} triples ({:>5} after peephole opt), width {}, P[first qubit = 1] = {:.4}",
            run.gate_triples, run.optimized_triples, run.register_width, run.detection_probability
        );
        if j == 0 {
            let tape: String = run.output_tape.chars().take(60).collect();
            println!("         output tape starts: {tape}…");
        }
        assert!(run.within_budget);
    }

    let member = random_member(k, &mut rng);
    let run = run_definition_2_3(&member, member.rounds() - 1);
    println!(
        "\nmember instance: P[first qubit = 1] = {:.6}  (one-sided: exactly 0)",
        run.detection_probability
    );
    println!(
        "\naveraging over j, detection ≥ 1/4 on every non-member — the OQRSPACE condition of the paper."
    );
}

fn bits(b: &[bool]) -> String {
    b.iter().map(|&x| if x { '1' } else { '0' }).collect()
}
