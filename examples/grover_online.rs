//! Grover search with an unknown number of solutions (the engine of
//! procedure A3): analytic curves vs exact simulation (experiment F2).
//!
//! ```text
//! cargo run --release --example grover_online
//! ```

use onlineq::grover::bbht::{bbht_search, random_j_detection_probability};
use onlineq::grover::{averaged_success, optimal_iterations, success_after, GroverSim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(1996); // Grover's year
    let n = 256usize;
    let m = 16usize; // √n rounds, as procedure A3 uses

    println!(
        "single-shot random-j detection over N = {n} items (paper bound: ≥ 1/4 for 0 < t < N)"
    );
    println!(
        "{:>5} {:>12} {:>12} {:>10}",
        "t", "analytic", "simulated", "≥ 1/4?"
    );
    for t in [1usize, 2, 4, 8, 16, 64, 128, 255] {
        let mut marked = vec![false; n];
        let mut placed = 0;
        while placed < t {
            let p = rng.gen_range(0..n);
            if !marked[p] {
                marked[p] = true;
                placed += 1;
            }
        }
        let sim = GroverSim::new(marked);
        let analytic = averaged_success(m, t, n);
        let simulated = random_j_detection_probability(&sim, m);
        println!(
            "{:>5} {:>12.6} {:>12.6} {:>10}",
            t,
            analytic,
            simulated,
            if simulated >= 0.25 { "yes" } else { "NO" }
        );
    }

    println!();
    println!("fixed-iteration sweep for a single marked item (sin²((2j+1)θ)):");
    let mut marked = vec![false; n];
    marked[137] = true;
    let sim = GroverSim::new(marked);
    let j_opt = optimal_iterations(1, n);
    for j in [0usize, 1, 2, 4, 8, j_opt, 2 * j_opt] {
        println!(
            "  j = {:>2}: analytic {:.6}, simulated {:.6}",
            j,
            success_after(j, 1, n),
            sim.success_probability(j)
        );
    }

    println!();
    println!("full BBHT search loop (unknown t), 20 runs on t = 1:");
    let mut total_iters = 0usize;
    for _ in 0..20 {
        let r = bbht_search(&sim, &mut rng);
        assert_eq!(r.found, Some(137));
        total_iters += r.total_iterations;
    }
    println!(
        "  always found item 137; mean oracle iterations {:.1} (O(√N) = {})",
        total_iters as f64 / 20.0,
        (n as f64).sqrt()
    );
}
