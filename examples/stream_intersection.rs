//! The paper's motivating scenario: detecting a common item between two
//! huge repeatedly-broadcast catalogs, with far too little memory to store
//! either.
//!
//! Two data providers alternate broadcasting their (bit-mask encoded)
//! catalogs `x` and `y`; the stream is exactly the `L_DISJ` input shape.
//! A device with `O(log m)` qubits answers "do they share an item?"
//! reliably, while a classical device with the same order of memory is
//! reduced to sampling and misses rare collisions almost always.
//!
//! ```text
//! cargo run --release --example stream_intersection
//! ```

use onlineq::core::classical::SketchDecider;
use onlineq::core::recognizer::LdisjRecognizer;
use onlineq::lang::random_nonmember;
use onlineq::machine::{run_decider, StreamingDecider};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let k = 4u32; // catalogs of m = 256 items
    let t = 1usize; // exactly one item in common — the needle

    println!(
        "two catalogs of {} items, exactly {t} shared item, streamed {}x",
        1 << (2 * k),
        1 << k
    );
    println!();

    let trials = 60;

    // Quantum streaming device (Corollary 3.5, 4-fold amplified).
    let mut q_correct = 0;
    let mut q_space = (0usize, 0usize);
    for _ in 0..trials {
        let inst = random_nonmember(k, t, &mut rng);
        let mut rec = LdisjRecognizer::new(4, &mut rng);
        rec.feed_all(&inst.encode());
        let space = rec.space();
        q_space = (space.classical_bits, space.qubits);
        // decide() == false means "not disjoint" — the needle was found.
        if !rec.decide() {
            q_correct += 1;
        }
    }
    println!(
        "quantum  ({} bits + {} qubits): detected the shared item {q_correct}/{trials} times",
        q_space.0, q_space.1
    );

    // Classical sketch with a comparable space budget.
    for budget in [4usize, 16, 64, 256] {
        let mut c_correct = 0;
        let mut c_space = 0usize;
        for _ in 0..trials {
            let inst = random_nonmember(k, t, &mut rng);
            let mut sketch = SketchDecider::new(budget, &mut rng);
            sketch.feed_all(&inst.encode());
            c_space = sketch.space_bits();
            if !sketch.decide() {
                c_correct += 1;
            }
        }
        println!(
            "classical sketch, {budget:>3} sampled positions ({c_space:>5} bits): detected {c_correct}/{trials}"
        );
    }

    println!();
    println!("only the full-budget sketch (≥ m positions) is reliable — and that is Θ(m) space;");
    println!("Theorem 3.6 shows no classical strategy below Ω(√m) can do better.");

    // Sanity on members: neither device false-alarms.
    let member = onlineq::lang::random_member(k, &mut rng);
    let is_member = run_decider(LdisjRecognizer::new(4, &mut rng), &member.encode()).accept;
    assert!(is_member);
    println!("disjoint catalogs: no false alarm (one-sided guarantee).");
}
