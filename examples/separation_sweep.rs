//! The separation table (experiment F1): measured quantum vs classical
//! space as the instance parameter `k` grows.
//!
//! ```text
//! cargo run --release --example separation_sweep
//! ```

use onlineq::core::separation::separation_table;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    println!("Space needed to recognize L_DISJ online (measured):");
    println!(
        "{:>3} {:>10} {:>12} | {:>9} {:>7} | {:>14} {:>12} | {:>7}",
        "k", "m=2^2k", "n", "q-bits", "qubits", "classical-bits", "lower-bound", "ratio"
    );
    for row in separation_table(1, 8, &mut rng) {
        println!(
            "{:>3} {:>10} {:>12} | {:>9} {:>7} | {:>14} {:>12} | {:>7.2}",
            row.k,
            row.m,
            row.n,
            row.quantum.classical_bits,
            row.quantum.qubits,
            row.classical_upper_bits,
            row.classical_lower_cells,
            row.ratio(),
        );
    }
    println!();
    println!("quantum column grows like log n; classical columns like n^(1/3) = √m.");
    println!(
        "(lower-bound column: tape cells forced by the Theorem 3.6 reduction, c = 1, |Q| = 64)"
    );
}
