//! # onlineq — reproduction of Le Gall, *Exponential Separation of Quantum
//! and Classical Online Space Complexity* (SPAA 2006)
//!
//! This facade crate re-exports the whole workspace. Start at
//! [`core`] for the paper's machines, or run the examples:
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example separation_sweep
//! cargo run --release --example stream_intersection
//! cargo run --release --example grover_online
//! cargo run --release --example communication_protocols
//! ```
//!
//! Crate map (details in `DESIGN.md`):
//!
//! | module | contents |
//! |---|---|
//! | [`quantum`] | state-vector simulator, gates, circuits, `a#b#c` format |
//! | [`machine`] | online probabilistic Turing machines, space metering |
//! | [`fingerprint`] | streaming polynomial fingerprints mod `p` |
//! | [`lang`] | the language `L_DISJ`, generators, reference decider |
//! | [`grover`] | Grover/BBHT closed forms and exact simulation |
//! | [`comm`] | communication protocols (BCW), lower bounds, the Thm 3.6 reduction |
//! | [`core`] | procedures A1/A2/A3, recognizers, classical baselines |
//! | [`serve`] | session multiplexing engine: sharded hot-LRU + checkpoint hydration, Unix-socket protocol |

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use oqsc_comm as comm;
pub use oqsc_core as core;
pub use oqsc_fingerprint as fingerprint;
pub use oqsc_grover as grover;
pub use oqsc_lang as lang;
pub use oqsc_machine as machine;
pub use oqsc_quantum as quantum;
pub use oqsc_serve as serve;
