//! The formal machine model of Definition 2.3, end to end.
//!
//! Definition 2.3 requires, for an input `w` and space bound `s(|w|)`:
//!
//! 1. the classical OPTM halts within `2^{s(|w|)}` steps using `s(|w|)`
//!    space;
//! 2. its output tape holds `a1#b1#c1#…#ar#br#cr` with
//!    `a_i, b_i ∈ {0,…,s−1}`, `c_i ∈ {0,1,2}`;
//! 3. measuring the **first qubit** of
//!    `G_cr^{[ar,br]} … G_c1^{[a1,b1]} |0^s⟩` yields the acceptance
//!    statistics (≥ 1/4 on members of the language for `OQRSPACE`, 0 on
//!    non-members).
//!
//! [`run_definition_2_3`] executes this pipeline literally for the A3
//! compiler of [`crate::emit`]: produce the output-tape *string*, parse
//! it back with the validating parser, check the format conditions, run
//! the parsed circuit on `|0…0⟩`, and measure qubit 0. The streaming
//! recognizer in [`crate::recognizer`] is the practical equivalent; the
//! tests prove both produce identical statistics.

use crate::emit::{a3_strict_circuit, EmittedLayout};
use oqsc_lang::LdisjInstance;
use oqsc_quantum::{optimize_strict, StrictCircuit};

/// A fully validated Definition 2.3 execution.
#[derive(Clone, Debug)]
pub struct Definition23Run {
    /// The paper-format output tape contents.
    pub output_tape: String,
    /// The register width `s` used by the circuit.
    pub register_width: usize,
    /// Number of `a#b#c` triples written.
    pub gate_triples: usize,
    /// Triples after peephole optimization (`oqsc-quantum::optimize`).
    pub optimized_triples: usize,
    /// Whether the triple count respects the `2^{c·s}` budget with
    /// `c = 4` (the definition allows `2^{s(|w|)}` steps where `s(|w|)`
    /// carries the asymptotic constant; see the module docs of
    /// [`crate::emit`]).
    pub within_budget: bool,
    /// Exact probability that measuring the first qubit yields 1.
    pub detection_probability: f64,
}

/// Runs the Definition 2.3 pipeline for instance `inst` with pinned
/// iteration count `j`: emit → serialize → parse → validate → execute →
/// measure.
///
/// # Panics
/// If the emitted tape fails its own validating parser (that would be an
/// implementation bug, and the tests rely on it panicking loudly).
pub fn run_definition_2_3(inst: &LdisjInstance, j: usize) -> Definition23Run {
    let circuit = a3_strict_circuit(inst, j);
    let width = circuit.num_qubits();

    // Condition 2: the output tape round-trips through the format parser.
    let output_tape = circuit.serialize();
    let parsed = StrictCircuit::parse(&output_tape, width)
        .expect("emitted tape must satisfy the Definition 2.3 format");
    assert_eq!(parsed, circuit, "serialization must be lossless");

    // Condition 1 (budget): triples ≤ 2^{4s}.
    let within_budget = (circuit.len() as u128) < (1u128 << (4 * width as u128).min(127));

    // Conditions 3/4: execute on |0^s⟩ and read the first qubit.
    let state = parsed.run_from_zero();
    let detection_probability = state.prob_one(EmittedLayout::L);

    let (optimized, stats) = optimize_strict(&circuit);
    debug_assert!(optimized.len() <= circuit.len());

    Definition23Run {
        output_tape,
        register_width: width,
        gate_triples: circuit.len(),
        optimized_triples: stats.after,
        within_budget,
        detection_probability,
    }
}

/// Verdict of checking the `OQRSPACE` acceptance conditions on a sample
/// of instances (Definition 2.3, conditions 3 and 4, for the language
/// `L̄_DISJ` restricted to well-formed consistent words — the regime in
/// which A3's statistics are the whole story).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OqrValidation {
    /// Max detection probability observed on members (must be 0).
    pub worst_member_detection: f64,
    /// Min detection probability observed on non-members, averaged over
    /// `j` (must be ≥ 1/4).
    pub worst_nonmember_detection: f64,
}

impl OqrValidation {
    /// True when both Definition 2.3 conditions hold.
    pub fn holds(&self) -> bool {
        self.worst_member_detection < 1e-12 && self.worst_nonmember_detection >= 0.25 - 1e-9
    }
}

/// Checks conditions 3/4 of Definition 2.3 over explicit instances,
/// averaging the emitted-circuit statistics over all `j`.
pub fn validate_oqr_conditions(
    members: &[LdisjInstance],
    nonmembers: &[LdisjInstance],
) -> OqrValidation {
    let avg_detection = |inst: &LdisjInstance| -> f64 {
        (0..inst.rounds())
            .map(|j| run_definition_2_3(inst, j).detection_probability)
            .sum::<f64>()
            / inst.rounds() as f64
    };
    let worst_member_detection = members.iter().map(avg_detection).fold(0.0f64, f64::max);
    let worst_nonmember_detection = nonmembers
        .iter()
        .map(avg_detection)
        .fold(f64::INFINITY, f64::min);
    OqrValidation {
        worst_member_detection,
        worst_nonmember_detection,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a3::a3_exact_detection_probability;
    use oqsc_lang::{random_member, random_nonmember};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pipeline_round_trips_and_stays_in_budget() {
        let mut rng = StdRng::seed_from_u64(150);
        let inst = random_nonmember(1, 1, &mut rng);
        let run = run_definition_2_3(&inst, 1);
        assert_eq!(run.register_width, 5); // 2k+2 data + 1 ancilla at k=1
        assert!(run.gate_triples > 0);
        assert!(run.within_budget);
        assert!(!run.output_tape.is_empty());
        assert!(run.output_tape.split('#').count().is_multiple_of(3));
    }

    #[test]
    fn pipeline_statistics_match_streamer() {
        let mut rng = StdRng::seed_from_u64(151);
        let inst = random_nonmember(1, 2, &mut rng);
        let avg = (0..inst.rounds())
            .map(|j| run_definition_2_3(&inst, j).detection_probability)
            .sum::<f64>()
            / inst.rounds() as f64;
        let streamed = a3_exact_detection_probability(&inst);
        assert!((avg - streamed).abs() < 1e-9, "{avg} vs {streamed}");
    }

    #[test]
    fn optimizer_shrinks_the_emitted_tape() {
        let mut rng = StdRng::seed_from_u64(152);
        let inst = random_nonmember(1, 3, &mut rng);
        let run = run_definition_2_3(&inst, 1);
        assert!(
            run.optimized_triples < run.gate_triples,
            "mechanical lowering should leave recoverable redundancy: {} vs {}",
            run.optimized_triples,
            run.gate_triples
        );
    }

    #[test]
    fn oqr_conditions_hold_on_samples() {
        let mut rng = StdRng::seed_from_u64(153);
        let members: Vec<_> = (0..3).map(|_| random_member(1, &mut rng)).collect();
        let nonmembers: Vec<_> = (1..=4).map(|t| random_nonmember(1, t, &mut rng)).collect();
        let v = validate_oqr_conditions(&members, &nonmembers);
        assert!(v.holds(), "{v:?}");
        assert!(v.worst_member_detection < 1e-12);
    }
}
