//! Procedure A1: the deterministic online format check (condition (i)).
//!
//! A1 verifies, in `O(k)` space, that the input has the shape
//! `1^k # (b^{2^{2k}} #)^{3·2^k}` — i.e. a `1^k#` prefix followed by
//! exactly `3·2^k` bit-blocks of length exactly `2^{2k}`, each terminated
//! by `#`, with nothing after the last one. It keeps three counters
//! (ones seen, position inside the current block, blocks completed), all
//! logarithmic in the input length.

use oqsc_lang::Sym;
use oqsc_machine::session::{put_u32, put_u8, put_usize};
use oqsc_machine::{
    bits_for_counter, ByteReader, CheckpointError, Checkpointable, SpaceMeter, StreamingDecider,
};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Reading the `1^k` prefix.
    Prefix,
    /// Inside block `blocks_done`, `block_pos` bits in.
    Block,
    /// All blocks consumed; any further symbol is an error.
    Done,
    /// Unrecoverable shape violation.
    Failed,
}

/// Streaming implementation of procedure A1.
#[derive(Clone, Debug)]
pub struct FormatChecker {
    phase: Phase,
    k: u32,
    m: usize,
    total_blocks: usize,
    block_pos: usize,
    blocks_done: usize,
    meter: SpaceMeter,
}

impl FormatChecker {
    /// A fresh checker (the parameter `k` is read off the stream itself).
    pub fn new() -> Self {
        FormatChecker {
            phase: Phase::Prefix,
            k: 0,
            m: 0,
            total_blocks: 0,
            block_pos: 0,
            blocks_done: 0,
            meter: SpaceMeter::new(),
        }
    }

    /// The prefix parameter, available once the first `#` has been read
    /// (0 before that).
    pub fn k(&self) -> u32 {
        self.k
    }

    /// True once the stream has irrecoverably failed the shape check
    /// (lets a combined recognizer shortcut).
    pub fn failed(&self) -> bool {
        self.phase == Phase::Failed
    }

    fn remeter(&mut self) {
        // The live state: the three counters plus the constant-size phase
        // tag. `k` and `m` are derived from the ones-counter; we charge the
        // counters at their current magnitudes, as a real work tape would.
        let bits = bits_for_counter(self.k as usize)
            + bits_for_counter(self.m.max(self.block_pos))
            + bits_for_counter(self.total_blocks.max(self.blocks_done))
            + 2;
        self.meter.record(bits);
    }
}

impl Default for FormatChecker {
    fn default() -> Self {
        FormatChecker::new()
    }
}

impl StreamingDecider for FormatChecker {
    fn feed(&mut self, sym: Sym) {
        match self.phase {
            Phase::Failed => {}
            Phase::Prefix => match sym {
                Sym::One => {
                    if self.k >= 24 {
                        // A prefix this long means m = 2^{2k} overflows any
                        // realistic input; the word cannot be well formed.
                        self.phase = Phase::Failed;
                    } else {
                        self.k += 1;
                    }
                }
                Sym::Hash => {
                    if self.k == 0 {
                        self.phase = Phase::Failed;
                    } else {
                        self.m = 1usize << (2 * self.k);
                        self.total_blocks = 3 * (1usize << self.k);
                        self.phase = Phase::Block;
                    }
                }
                Sym::Zero => self.phase = Phase::Failed,
            },
            Phase::Block => match sym {
                Sym::Zero | Sym::One => {
                    self.block_pos += 1;
                    if self.block_pos > self.m {
                        self.phase = Phase::Failed;
                    }
                }
                Sym::Hash => {
                    if self.block_pos != self.m {
                        self.phase = Phase::Failed;
                    } else {
                        self.block_pos = 0;
                        self.blocks_done += 1;
                        if self.blocks_done == self.total_blocks {
                            self.phase = Phase::Done;
                        }
                    }
                }
            },
            Phase::Done => self.phase = Phase::Failed,
        }
        self.remeter();
    }

    fn decide(&mut self) -> bool {
        self.phase == Phase::Done
    }

    fn space_bits(&self) -> usize {
        self.meter.peak_bits()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.push(match self.phase {
            Phase::Prefix => 0,
            Phase::Block => 1,
            Phase::Done => 2,
            Phase::Failed => 3,
        });
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&(self.block_pos as u64).to_le_bytes());
        out.extend_from_slice(&(self.blocks_done as u64).to_le_bytes());
        out
    }
}

impl Checkpointable for FormatChecker {
    const TYPE_TAG: &'static str = "FormatChecker";

    fn write_state(&self, out: &mut Vec<u8>) {
        put_u8(
            out,
            match self.phase {
                Phase::Prefix => 0,
                Phase::Block => 1,
                Phase::Done => 2,
                Phase::Failed => 3,
            },
        );
        put_u32(out, self.k);
        put_usize(out, self.m);
        put_usize(out, self.total_blocks);
        put_usize(out, self.block_pos);
        put_usize(out, self.blocks_done);
        self.meter.write_checkpoint(out);
    }

    fn read_state(r: &mut ByteReader) -> Result<Self, CheckpointError> {
        let phase = match r.read_u8()? {
            0 => Phase::Prefix,
            1 => Phase::Block,
            2 => Phase::Done,
            3 => Phase::Failed,
            v => return Err(CheckpointError::Malformed(format!("bad A1 phase tag {v}"))),
        };
        let k = r.read_u32()?;
        let m = r.read_usize()?;
        let total_blocks = r.read_usize()?;
        let block_pos = r.read_usize()?;
        let blocks_done = r.read_usize()?;
        Ok(FormatChecker {
            phase,
            k,
            m,
            total_blocks,
            block_pos,
            blocks_done,
            meter: SpaceMeter::read_checkpoint(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_lang::gen::{malform, random_member, Malformation};
    use oqsc_lang::token::from_str;
    use oqsc_lang::{encoded_len, parse_shape};
    use oqsc_machine::run_decider;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check(s: &str) -> bool {
        let word = from_str(s).expect("valid symbols");
        run_decider(FormatChecker::new(), &word).accept
    }

    #[test]
    fn accepts_well_formed() {
        assert!(check("1#1010#0101#1010#1010#0101#1010#"));
    }

    #[test]
    fn rejects_shape_violations() {
        assert!(!check(""));
        assert!(!check("#"));
        assert!(!check("0#"));
        assert!(!check("1#"));
        assert!(!check("1#101#0101#1010#1010#0101#1010#")); // short block
        assert!(!check("1#10100#0101#1010#1010#0101#1010#")); // long block
        assert!(!check("1#1010#0101#1010#")); // too few blocks
        assert!(!check("1#1010#0101#1010#1010#0101#1010#1")); // trailing
        assert!(!check("1#1010#0101#1010#1010#0101#1010##")); // trailing #
    }

    #[test]
    fn agrees_with_reference_parser_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(70);
        for k in 1..=3u32 {
            let inst = random_member(k, &mut rng);
            let word = inst.encode();
            assert!(run_decider(FormatChecker::new(), &word).accept);
            assert!(parse_shape(&word).is_ok());
            for kind in [
                Malformation::MissingPrefix,
                Malformation::ShortBlock,
                Malformation::TrailingSymbol,
                Malformation::Truncated,
            ] {
                let bad = malform(&inst, kind, &mut rng);
                let a1 = run_decider(FormatChecker::new(), &bad).accept;
                assert!(!a1, "k={k} {kind:?}");
                assert!(parse_shape(&bad).is_err());
            }
            // Consistency corruptions keep the shape — A1 must still pass.
            for kind in [
                Malformation::ZCopyMismatch,
                Malformation::XDriftAcrossRounds,
                Malformation::YDriftAcrossRounds,
            ] {
                let bad = malform(&inst, kind, &mut rng);
                assert!(
                    run_decider(FormatChecker::new(), &bad).accept,
                    "k={k} {kind:?}"
                );
            }
        }
    }

    #[test]
    fn space_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(71);
        let mut prev_space = 0usize;
        for k in 1..=5u32 {
            let inst = random_member(k, &mut rng);
            let out = run_decider(FormatChecker::new(), &inst.encode());
            let (ok, space) = (out.accept, out.classical_bits);
            assert!(ok);
            let n = encoded_len(k);
            // O(log n): generous constant 10.
            assert!(
                space <= 10 * ((n as f64).log2().ceil() as usize),
                "k={k}: space {space} vs n={n}"
            );
            assert!(space >= prev_space, "space grows with k");
            prev_space = space;
        }
    }

    #[test]
    fn exposes_k_after_prefix() {
        let word = from_str("111#").expect("syms");
        let mut c = FormatChecker::new();
        c.feed_all(&word);
        assert_eq!(c.k(), 3);
        assert!(!c.failed());
    }

    #[test]
    fn snapshot_changes_with_state() {
        let mut a = FormatChecker::new();
        let mut b = FormatChecker::new();
        a.feed(Sym::One);
        assert_ne!(a.snapshot(), b.snapshot());
        b.feed(Sym::One);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn absurd_prefix_fails_fast() {
        let mut c = FormatChecker::new();
        for _ in 0..100 {
            c.feed(Sym::One);
        }
        assert!(c.failed());
    }
}
