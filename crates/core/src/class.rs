//! The paper's complexity classes as checkable membership witnesses.
//!
//! `OBPSPACE(s)`, `OQRSPACE(s)` and `OQBPSPACE(s)` (Definitions 2.1 and
//! 2.3) are ∀-statements over inputs, so they cannot be *proved* by
//! running programs — but a claimed membership can be **witnessed**: a
//! concrete machine, a family of instances, and per-instance checks of
//! the error and space conditions. The separation of the paper is then
//! the conjunction of
//!
//! * a positive witness: `L_DISJ ∈ OQBPL` ([`witness_oqbpl`]), and
//! * a positive classical witness at the matching upper bound:
//!   `L_DISJ ∈ OBPSPACE(O(n^{1/3}))` ([`witness_obpspace_cbrt`]), with
//! * the impossibility below `n^{1/3}` delegated to the Theorem 3.6
//!   reduction (`oqsc-comm`), which is derivational, not sampled.

use crate::classical::Prop37Decider;
use crate::recognizer::{exact_complement_accept_probability, ComplementRecognizer};
use oqsc_lang::{encoded_len, is_in_ldisj, malform, random_member, random_nonmember, Malformation};
use oqsc_machine::{run_decider, StreamingDecider};
use rand::Rng;

/// One per-`k` row of a class-membership witness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WitnessRow {
    /// Language parameter.
    pub k: u32,
    /// Input length.
    pub n: usize,
    /// Classical bits used.
    pub classical_bits: usize,
    /// Qubits used (0 for classical machines).
    pub qubits: usize,
    /// Whether the class's error condition held on every checked input.
    pub error_condition_ok: bool,
}

/// A witness for a class membership claim.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassWitness {
    /// Human-readable class name.
    pub class: &'static str,
    /// Per-`k` measurements.
    pub rows: Vec<WitnessRow>,
}

impl ClassWitness {
    /// All error conditions held.
    pub fn error_conditions_hold(&self) -> bool {
        self.rows.iter().all(|r| r.error_condition_ok)
    }

    /// The least `c` such that `classical_bits + qubits ≤ c · log₂ n` on
    /// every row — finite iff the witness is consistent with logarithmic
    /// space.
    pub fn log_space_constant(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| (r.classical_bits + r.qubits) as f64 / (r.n as f64).log2())
            .fold(0.0, f64::max)
    }

    /// The least `c` such that `classical_bits ≤ c · n^{1/3}` on every
    /// row.
    pub fn cbrt_space_constant(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.classical_bits as f64 / (r.n as f64).powf(1.0 / 3.0))
            .fold(0.0, f64::max)
    }
}

/// Witnesses `L̄_DISJ ∈ OQRL` (Theorem 3.4): exact one-sided error checks
/// for `k ≤ 3`, space measurements throughout.
pub fn witness_oqrl<R: Rng + ?Sized>(k_max: u32, rng: &mut R) -> ClassWitness {
    let rows = (1..=k_max)
        .map(|k| {
            let member = random_member(k, rng);
            let error_condition_ok = if k <= 3 {
                // Exact: members rejected with probability 1; a sampled
                // non-member and a corrupted word accepted w.p. ≥ 1/4.
                let non = random_nonmember(k, 1, rng);
                let bad = malform(&member, Malformation::ZCopyMismatch, rng);
                exact_complement_accept_probability(&member.encode()) < 1e-12
                    && exact_complement_accept_probability(&non.encode()) >= 0.25 - 1e-9
                    && exact_complement_accept_probability(&bad) >= 0.25 - 1e-9
            } else {
                // Beyond exact range: sampled one-sidedness on the member.
                let mut rec = ComplementRecognizer::new(rng);
                rec.feed_all(&member.encode());
                !rec.decide()
            };
            let mut rec = ComplementRecognizer::new(rng);
            rec.feed_all(&member.encode());
            let space = rec.space();
            WitnessRow {
                k,
                n: encoded_len(k),
                classical_bits: space.classical_bits,
                qubits: space.qubits,
                error_condition_ok,
            }
        })
        .collect();
    ClassWitness {
        class: "OQRL (one-sided, logarithmic classical+quantum space)",
        rows,
    }
}

/// Witnesses `L_DISJ ∈ OQBPL` (Corollary 3.5) by checking the amplified
/// per-copy bound `(1 − p₁)⁴ ≤ 1/3` exactly for `k ≤ 3` and metering
/// `reps = 4` copies.
pub fn witness_oqbpl<R: Rng + ?Sized>(k_max: u32, rng: &mut R) -> ClassWitness {
    let rows = (1..=k_max.min(3))
        .map(|k| {
            let member = random_member(k, rng);
            let non = random_nonmember(k, 1, rng);
            let p1 = exact_complement_accept_probability(&non.encode());
            let member_ok = exact_complement_accept_probability(&member.encode()) < 1e-12;
            let amplified_err = (1.0 - p1).powi(4);
            let mut rec = crate::recognizer::LdisjRecognizer::new(4, rng);
            rec.feed_all(&member.encode());
            let space = rec.space();
            WitnessRow {
                k,
                n: encoded_len(k),
                classical_bits: space.classical_bits,
                qubits: space.qubits,
                error_condition_ok: member_ok && amplified_err <= 1.0 / 3.0,
            }
        })
        .collect();
    ClassWitness {
        class: "OQBPL (two-sided error ≤ 1/3, logarithmic space)",
        rows,
    }
}

/// Witnesses `L_DISJ ∈ OBPSPACE(O(n^{1/3}))` (Proposition 3.7):
/// correctness against the reference decider, `Θ(n^{1/3})` space.
pub fn witness_obpspace_cbrt<R: Rng + ?Sized>(k_max: u32, rng: &mut R) -> ClassWitness {
    let rows = (1..=k_max)
        .map(|k| {
            let member = random_member(k, rng);
            let non = random_nonmember(k, 1, rng);
            let out = run_decider(Prop37Decider::new(rng), &member.encode());
            let (vm, space) = (out.accept, out.classical_bits);
            let vn = run_decider(Prop37Decider::new(rng), &non.encode()).accept;
            let error_condition_ok = vm == is_in_ldisj(&member.encode()) && !vn;
            WitnessRow {
                k,
                n: encoded_len(k),
                classical_bits: space,
                qubits: 0,
                error_condition_ok,
            }
        })
        .collect();
    ClassWitness {
        class: "OBPSPACE(O(n^(1/3))) (classical, Proposition 3.7)",
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oqrl_witness_holds_with_log_constant() {
        let mut rng = StdRng::seed_from_u64(170);
        let w = witness_oqrl(5, &mut rng);
        assert!(w.error_conditions_hold());
        // Total space ≤ c·log n with a stable c.
        let c = w.log_space_constant();
        assert!(c < 12.0, "log-space constant {c}");
        assert_eq!(w.rows.len(), 5);
    }

    #[test]
    fn oqbpl_witness_holds() {
        let mut rng = StdRng::seed_from_u64(171);
        let w = witness_oqbpl(3, &mut rng);
        assert!(w.error_conditions_hold());
        // 4 copies cost 4× one copy — still logarithmic.
        assert!(w.log_space_constant() < 45.0);
    }

    #[test]
    fn obpspace_witness_holds_with_cbrt_constant() {
        let mut rng = StdRng::seed_from_u64(172);
        let w = witness_obpspace_cbrt(6, &mut rng);
        assert!(w.error_conditions_hold());
        let c = w.cbrt_space_constant();
        assert!(c < 25.0, "cbrt constant {c}");
        // The separation as constants: the classical witness's log-space
        // "constant" drifts upward with k (it is not actually O(log n))
        // while the quantum one stays flat.
        let mut rng2 = StdRng::seed_from_u64(173);
        let w_small = witness_obpspace_cbrt(3, &mut rng2);
        let q_small = witness_oqrl(3, &mut rng2);
        let q = witness_oqrl(6, &mut rng2);
        let classical_drift = w.log_space_constant() / w_small.log_space_constant();
        let quantum_drift = q.log_space_constant() / q_small.log_space_constant();
        assert!(
            classical_drift > quantum_drift + 0.05,
            "classical log-constant must drift faster: {classical_drift} vs {quantum_drift}"
        );
        // While the cbrt constant is stable for the classical machine.
        let cbrt_drift = w.cbrt_space_constant() / w_small.cbrt_space_constant();
        assert!((0.5..=1.5).contains(&cbrt_drift), "cbrt drift {cbrt_drift}");
    }
}
