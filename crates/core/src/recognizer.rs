//! The combined recognizers: Theorem 3.4 and Corollary 3.5.
//!
//! [`ComplementRecognizer`] runs A1, A2 and A3 in parallel over the stream
//! and **accepts** (meaning `w ∈ L̄_DISJ`) iff any of them flags the
//! input: A1 = 0, A2 = 0 or A3 = 0. Guarantees (one-sided, Definition 2.3
//! / OQRSPACE):
//!
//! * `w ∈ L_DISJ` → reject with probability 1 (A1, A2, A3 all pass);
//! * `w ∈ L̄_DISJ` → accept with probability ≥ 1/4 (whichever condition
//!   fails is caught: shape deterministically, consistency with
//!   probability ≥ 1 − 3·2^{-k}, disjointness with probability ≥ 1/4).
//!
//! Note: the paper's prose at this point swaps "accept" and "reject"
//! relative to its own Definition 2.3; see DESIGN.md ("Paper erratum").
//!
//! [`LdisjRecognizer`] amplifies to the two-sided `OQBPL` guarantee of
//! Corollary 3.5: run `r` independent copies and declare `w ∈ L_DISJ` iff
//! *no* copy accepted — error 0 on members, `(3/4)^r` on non-members
//! (`r = 4` already beats 1/3).

use crate::a1::FormatChecker;
use crate::a2::ConsistencyChecker;
use crate::a3::GroverStreamer;
use oqsc_fingerprint::fingerprint_prime;
use oqsc_lang::Sym;
use oqsc_machine::session::put_usize;
use oqsc_machine::{ByteReader, CheckpointError, Checkpointable, StreamingDecider};
use oqsc_quantum::{QuantumBackend, StateVector};
use rand::Rng;

/// Joint classical/quantum space usage (Definition 2.3 allows `s(|w|)` of
/// each).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpaceReport {
    /// Peak classical work space, in bits.
    pub classical_bits: usize,
    /// Quantum register width, in qubits.
    pub qubits: usize,
}

impl SpaceReport {
    /// Total of both resources (for single-axis plots).
    pub fn total(&self) -> usize {
        self.classical_bits + self.qubits
    }
}

/// The one-sided-error online quantum recognizer of `L̄_DISJ`
/// (Theorem 3.4: `L̄_DISJ ∈ OQRL`), generic over the simulation backend.
#[derive(Clone, Debug)]
pub struct ComplementRecognizer<B: QuantumBackend = StateVector> {
    a1: FormatChecker,
    a2: ConsistencyChecker,
    a3: GroverStreamer<B>,
}

impl ComplementRecognizer<StateVector> {
    /// Creates the dense-backend recognizer, drawing A2's evaluation point
    /// and A3's iteration count / measurement randomness from `rng`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ComplementRecognizer::new_in(rng)
    }

    /// Derandomized dense-backend constructor for exact analysis.
    pub fn with_seeds(t_seed: u64, j_seed: u64, measure_seed: u64) -> Self {
        ComplementRecognizer::with_seeds_in(t_seed, j_seed, measure_seed)
    }

    /// Metering-only instance (no amplitude allocation; see
    /// [`GroverStreamer::metering_only`]). Space reports are exact;
    /// verdicts from A3 are vacuous. Used for large-`k` space tables.
    pub fn metering_only() -> Self {
        ComplementRecognizer::metering_only_in()
    }
}

impl<B: QuantumBackend> ComplementRecognizer<B> {
    /// [`ComplementRecognizer::new`] over any backend.
    pub fn new_in<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ComplementRecognizer {
            a1: FormatChecker::new(),
            a2: ConsistencyChecker::new(rng),
            a3: GroverStreamer::new_in(rng),
        }
    }

    /// [`ComplementRecognizer::with_seeds`] over any backend.
    pub fn with_seeds_in(t_seed: u64, j_seed: u64, measure_seed: u64) -> Self {
        ComplementRecognizer {
            a1: FormatChecker::new(),
            a2: ConsistencyChecker::with_seed(t_seed),
            a3: GroverStreamer::with_j_seed_in(j_seed, measure_seed),
        }
    }

    /// [`ComplementRecognizer::metering_only`] over any backend.
    pub fn metering_only_in() -> Self {
        ComplementRecognizer {
            a1: FormatChecker::new(),
            a2: ConsistencyChecker::with_seed(0),
            a3: GroverStreamer::metering_only_in(),
        }
    }

    /// The space used so far, split by resource.
    pub fn space(&self) -> SpaceReport {
        SpaceReport {
            classical_bits: self.a1.space_bits() + self.a2.space_bits() + self.a3.space_bits(),
            qubits: self.a3.qubits(),
        }
    }

    /// Access to A3's exact detection statistic (testing).
    pub fn a3_detection_probability(&self) -> f64 {
        self.a3.detection_probability()
    }
}

impl<B: QuantumBackend> StreamingDecider for ComplementRecognizer<B> {
    fn feed(&mut self, sym: Sym) {
        self.a1.feed(sym);
        self.a2.feed(sym);
        self.a3.feed(sym);
    }

    /// Accept = "the word is in the complement".
    fn decide(&mut self) -> bool {
        let a1 = self.a1.decide();
        let a2 = self.a2.decide();
        let a3 = self.a3.decide();
        !(a1 && a2 && a3)
    }

    fn space_bits(&self) -> usize {
        self.space().classical_bits
    }

    fn peak_qubits(&self) -> usize {
        self.a3.qubits()
    }

    fn peak_amplitudes(&self) -> usize {
        self.a3.peak_amplitudes()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = self.a1.snapshot();
        out.extend(self.a2.snapshot());
        out.extend(self.a3.snapshot());
        out
    }
}

impl<B: QuantumBackend> Checkpointable for ComplementRecognizer<B> {
    const TYPE_TAG: &'static str = "ComplementRecognizer";

    fn write_state(&self, out: &mut Vec<u8>) {
        self.a1.write_state(out);
        self.a2.write_state(out);
        self.a3.write_state(out);
    }

    fn read_state(r: &mut ByteReader) -> Result<Self, CheckpointError> {
        Ok(ComplementRecognizer {
            a1: Checkpointable::read_state(r)?,
            a2: Checkpointable::read_state(r)?,
            a3: Checkpointable::read_state(r)?,
        })
    }
}

/// Exact acceptance probability of [`ComplementRecognizer`] on a word, by
/// exhausting A2's evaluation points and A3's iteration counts (feasible
/// for `k ≤ 3`). Acceptance means "declared in the complement".
pub fn exact_complement_accept_probability(word: &[Sym]) -> f64 {
    // A1 is deterministic.
    let mut a1 = FormatChecker::new();
    a1.feed_all(word);
    if !a1.decide() {
        return 1.0;
    }
    let k = a1.k();
    assert!(k <= 3, "exact analysis exhausts p·2^k branches; need k ≤ 3");
    let p = fingerprint_prime(k);
    // P(A2 passes), averaged over the evaluation point.
    let mut a2_pass = 0.0;
    for t in 0..p {
        let mut a2 = ConsistencyChecker::with_seed(t);
        a2.feed_all(word);
        if a2.decide() {
            a2_pass += 1.0;
        }
    }
    a2_pass /= p as f64;
    // P(A3 passes) = average over j of (1 − detection probability).
    let rounds = 1usize << k;
    let mut a3_pass = 0.0;
    for j in 0..rounds {
        let mut a3 = GroverStreamer::with_j_seed(j as u64, 0);
        a3.feed_all(word);
        a3_pass += 1.0 - a3.detection_probability();
    }
    a3_pass /= rounds as f64;
    // The three procedures use independent randomness.
    1.0 - a2_pass * a3_pass
}

/// The bounded-error recognizer of `L_DISJ` itself (Corollary 3.5:
/// `L_DISJ ∈ OQBPL`): `reps` parallel copies of the complement
/// recognizer; the word is declared a member iff none of them accepts.
/// Generic over the simulation backend.
#[derive(Clone, Debug)]
pub struct LdisjRecognizer<B: QuantumBackend = StateVector> {
    copies: Vec<ComplementRecognizer<B>>,
}

impl LdisjRecognizer<StateVector> {
    /// Creates the dense-backend amplified recognizer with `reps`
    /// independent copies (`reps = 4` gives two-sided error ≤ (3/4)⁴
    /// < 1/3).
    pub fn new<R: Rng + ?Sized>(reps: usize, rng: &mut R) -> Self {
        LdisjRecognizer::new_in(reps, rng)
    }
}

impl<B: QuantumBackend> LdisjRecognizer<B> {
    /// [`LdisjRecognizer::new`] over any backend.
    pub fn new_in<R: Rng + ?Sized>(reps: usize, rng: &mut R) -> Self {
        assert!(reps >= 1);
        LdisjRecognizer {
            copies: (0..reps)
                .map(|_| ComplementRecognizer::new_in(rng))
                .collect(),
        }
    }

    /// Space across all copies (amplification multiplies space by the
    /// constant `reps`, preserving the `O(log n)` bound).
    pub fn space(&self) -> SpaceReport {
        let mut total = SpaceReport::default();
        for c in &self.copies {
            let s = c.space();
            total.classical_bits += s.classical_bits;
            total.qubits += s.qubits;
        }
        total
    }
}

impl<B: QuantumBackend> StreamingDecider for LdisjRecognizer<B> {
    fn feed(&mut self, sym: Sym) {
        for c in &mut self.copies {
            c.feed(sym);
        }
    }

    /// Accept = "the word is in `L_DISJ`".
    fn decide(&mut self) -> bool {
        self.copies.iter_mut().all(|c| !c.decide())
    }

    fn space_bits(&self) -> usize {
        self.space().classical_bits
    }

    fn peak_qubits(&self) -> usize {
        self.copies.iter().map(StreamingDecider::peak_qubits).sum()
    }

    fn peak_amplitudes(&self) -> usize {
        self.copies
            .iter()
            .map(StreamingDecider::peak_amplitudes)
            .sum()
    }

    fn snapshot(&self) -> Vec<u8> {
        self.copies.iter().flat_map(|c| c.snapshot()).collect()
    }
}

impl<B: QuantumBackend> Checkpointable for LdisjRecognizer<B> {
    const TYPE_TAG: &'static str = "LdisjRecognizer";

    fn write_state(&self, out: &mut Vec<u8>) {
        put_usize(out, self.copies.len());
        for c in &self.copies {
            c.write_state(out);
        }
    }

    fn read_state(r: &mut ByteReader) -> Result<Self, CheckpointError> {
        let reps = r.read_usize()?;
        if reps == 0 {
            return Err(CheckpointError::Malformed(
                "amplified recognizer needs ≥ 1 copy".into(),
            ));
        }
        let copies = (0..reps)
            .map(|_| Checkpointable::read_state(r))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LdisjRecognizer { copies })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_lang::gen::{malform, random_member, random_nonmember, ALL_MALFORMATIONS};
    use oqsc_lang::{encoded_len, is_in_ldisj};
    use oqsc_machine::run_decider;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn members_never_accepted_by_complement_recognizer() {
        // The one-sided guarantee, checked exactly: accept probability 0.
        let mut rng = StdRng::seed_from_u64(110);
        for k in 1..=2u32 {
            let inst = random_member(k, &mut rng);
            let p = exact_complement_accept_probability(&inst.encode());
            assert!(p < 1e-12, "k={k}: member accepted w.p. {p}");
        }
    }

    #[test]
    fn malformed_words_accepted_with_probability_one() {
        let mut rng = StdRng::seed_from_u64(111);
        let inst = random_member(1, &mut rng);
        for kind in [
            oqsc_lang::Malformation::MissingPrefix,
            oqsc_lang::Malformation::ShortBlock,
            oqsc_lang::Malformation::TrailingSymbol,
            oqsc_lang::Malformation::Truncated,
        ] {
            let bad = malform(&inst, kind, &mut rng);
            let p = exact_complement_accept_probability(&bad);
            assert!((p - 1.0).abs() < 1e-12, "{kind:?}: p={p}");
        }
    }

    #[test]
    fn every_nonmember_accepted_with_at_least_one_quarter() {
        // The Theorem 3.4 guarantee across all three failure families.
        let mut rng = StdRng::seed_from_u64(112);
        for k in 1..=2u32 {
            // Intersecting but consistent.
            let m = 1usize << (2 * k);
            for t in [1usize, m / 2, m] {
                let inst = random_nonmember(k, t, &mut rng);
                let p = exact_complement_accept_probability(&inst.encode());
                assert!(p >= 0.25 - 1e-9, "k={k} t={t}: p={p}");
            }
            // Structurally corrupted.
            let inst = random_member(k, &mut rng);
            for kind in ALL_MALFORMATIONS {
                let bad = malform(&inst, kind, &mut rng);
                let p = exact_complement_accept_probability(&bad);
                assert!(p >= 0.25 - 1e-9, "k={k} {kind:?}: p={p}");
            }
        }
    }

    #[test]
    fn sampled_recognizer_agrees_with_exact() {
        let mut rng = StdRng::seed_from_u64(113);
        let inst = random_nonmember(2, 2, &mut rng);
        let word = inst.encode();
        let exact = exact_complement_accept_probability(&word);
        let trials = 1200;
        let accepts = (0..trials)
            .filter(|_| run_decider(ComplementRecognizer::new(&mut rng), &word).accept)
            .count();
        let freq = accepts as f64 / trials as f64;
        assert!((freq - exact).abs() < 0.05, "freq {freq} vs exact {exact}");
    }

    #[test]
    fn amplified_recognizer_meets_corollary_3_5() {
        let mut rng = StdRng::seed_from_u64(114);
        // Members: always declared members.
        let member = random_member(2, &mut rng);
        for _ in 0..20 {
            let is_member = run_decider(LdisjRecognizer::new(4, &mut rng), &member.encode()).accept;
            assert!(is_member);
        }
        // Non-members: error rate ≤ (3/4)^4 ≈ 0.316 < 1/3.
        let non = random_nonmember(2, 1, &mut rng);
        let trials = 800;
        let wrong = (0..trials)
            .filter(|_| run_decider(LdisjRecognizer::new(4, &mut rng), &non.encode()).accept)
            .count();
        let err = wrong as f64 / trials as f64;
        assert!(err < 0.38, "amplified error {err}");
        // And amplification helps: r = 12 should be far below r = 1's 3/4.
        let wrong12 = (0..trials)
            .filter(|_| run_decider(LdisjRecognizer::new(12, &mut rng), &non.encode()).accept)
            .count();
        assert!(wrong12 as f64 / trials as f64 <= 0.08);
    }

    #[test]
    fn recognizer_verdicts_match_reference_in_the_limit() {
        // Majority-of-many-runs converges to the reference decider.
        let mut rng = StdRng::seed_from_u64(115);
        for _ in 0..4 {
            let inst = if rng.gen() {
                random_member(1, &mut rng)
            } else {
                random_nonmember(1, 1 + rng.gen_range(0..4usize), &mut rng)
            };
            let word = inst.encode();
            let member_votes = (0..60)
                .filter(|_| run_decider(LdisjRecognizer::new(6, &mut rng), &word).accept)
                .count();
            assert_eq!(member_votes > 30, is_in_ldisj(&word));
        }
    }

    #[test]
    fn space_is_logarithmic_in_input_length() {
        let mut rng = StdRng::seed_from_u64(116);
        for k in 1..=5u32 {
            let inst = random_member(k, &mut rng);
            let mut rec = ComplementRecognizer::new(&mut rng);
            rec.feed_all(&inst.encode());
            let space = rec.space();
            let n = encoded_len(k);
            let log_n = (n as f64).log2().ceil() as usize;
            assert!(
                space.classical_bits <= 30 * log_n,
                "k={k}: classical {} bits vs log n = {log_n}",
                space.classical_bits
            );
            assert_eq!(space.qubits, 2 * k as usize + 2);
            assert!(space.qubits <= 2 * log_n);
        }
    }
}
