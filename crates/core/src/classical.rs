//! Classical online algorithms for `L_DISJ`: the Proposition 3.7 upper
//! bound, the trivial baseline, and the sub-√m sketches used to
//! illustrate the lower bound empirically.

use crate::a1::FormatChecker;
use crate::a2::ConsistencyChecker;
use oqsc_lang::Sym;
use oqsc_machine::session::{put_bool, put_u32, put_u64, put_u8, put_usize};
use oqsc_machine::{
    bits_for_counter, ByteReader, CheckpointError, Checkpointable, SpaceMeter, StreamingDecider,
};
use rand::Rng;

fn put_slot(out: &mut Vec<u8>, slot: Slot) {
    put_u8(
        out,
        match slot {
            Slot::X => 0,
            Slot::Y => 1,
            Slot::Z => 2,
        },
    );
}

fn read_slot(r: &mut ByteReader) -> Result<Slot, CheckpointError> {
    match r.read_u8()? {
        0 => Ok(Slot::X),
        1 => Ok(Slot::Y),
        2 => Ok(Slot::Z),
        v => Err(CheckpointError::Malformed(format!("bad slot tag {v}"))),
    }
}

fn put_bools(out: &mut Vec<u8>, bits: &[bool]) {
    put_usize(out, bits.len());
    for &b in bits {
        put_bool(out, b);
    }
}

fn read_bools(r: &mut ByteReader) -> Result<Vec<bool>, CheckpointError> {
    let len = r.read_usize()?;
    (0..len).map(|_| r.read_bool()).collect()
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    X,
    Y,
    Z,
}

/// The Proposition 3.7 decider: decompose `x` into `2^k` chunks of `2^k`
/// bits; in round `r`, buffer chunk `r` of `x` and compare it against
/// chunk `r` of `y` — an exact decision in `Θ(2^k) = Θ(n^{1/3})` space.
/// Format and copy-consistency are checked with the same classical
/// procedures as Theorem 3.4 (A1 and A2), as the proposition prescribes.
#[derive(Clone, Debug)]
pub struct Prop37Decider {
    format: FormatChecker,
    consistency: ConsistencyChecker,
    k: u32,
    chunk: usize,
    /// Buffered chunk of `x` for the current round (up to `2^k` bits).
    buffer: Vec<bool>,
    round: usize,
    slot: Slot,
    bit_idx: usize,
    in_prefix: bool,
    intersection: bool,
    meter: SpaceMeter,
}

impl Prop37Decider {
    /// Creates the decider (randomness feeds A2's fingerprint point).
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Prop37Decider {
            format: FormatChecker::new(),
            consistency: ConsistencyChecker::new(rng),
            k: 0,
            chunk: 0,
            buffer: Vec::new(),
            round: 0,
            slot: Slot::X,
            bit_idx: 0,
            in_prefix: true,
            intersection: false,
            meter: SpaceMeter::new(),
        }
    }

    fn remeter(&mut self) {
        let bits = self.buffer.capacity().max(self.buffer.len())
            + 2 * bits_for_counter(self.chunk.max(1))
            + bits_for_counter(self.bit_idx.max(1))
            + 3;
        self.meter.record(bits);
    }

    /// Own work space plus the two sub-procedures'.
    fn total_space(&self) -> usize {
        self.meter.peak_bits() + self.format.space_bits() + self.consistency.space_bits()
    }
}

impl StreamingDecider for Prop37Decider {
    fn feed(&mut self, sym: Sym) {
        self.format.feed(sym);
        self.consistency.feed(sym);
        if self.in_prefix {
            match sym {
                Sym::One => {
                    if self.k < 20 {
                        self.k += 1;
                    }
                }
                Sym::Hash | Sym::Zero => {
                    self.in_prefix = false;
                    self.chunk = 1usize << self.k;
                    self.buffer.reserve_exact(self.chunk);
                    self.round = 1;
                }
            }
        } else {
            match sym {
                Sym::Zero | Sym::One => {
                    let bit = sym == Sym::One;
                    let lo = (self.round - 1) * self.chunk;
                    let hi = self.round * self.chunk;
                    match self.slot {
                        Slot::X => {
                            if (lo..hi).contains(&self.bit_idx) {
                                self.buffer.push(bit);
                            }
                        }
                        Slot::Y => {
                            if (lo..hi).contains(&self.bit_idx) {
                                if let Some(&xb) = self.buffer.get(self.bit_idx - lo) {
                                    if xb && bit {
                                        self.intersection = true;
                                    }
                                }
                            }
                        }
                        Slot::Z => {}
                    }
                    self.bit_idx += 1;
                }
                Sym::Hash => {
                    match self.slot {
                        Slot::X => self.slot = Slot::Y,
                        Slot::Y => self.slot = Slot::Z,
                        Slot::Z => {
                            self.slot = Slot::X;
                            self.round += 1;
                            self.buffer.clear();
                        }
                    }
                    self.bit_idx = 0;
                }
            }
        }
        self.remeter();
    }

    fn decide(&mut self) -> bool {
        self.format.decide() && self.consistency.decide() && !self.intersection
    }

    fn space_bits(&self) -> usize {
        self.total_space()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = self.format.snapshot();
        out.extend(self.consistency.snapshot());
        out.extend_from_slice(&(self.round as u32).to_le_bytes());
        out.extend_from_slice(&(self.bit_idx as u32).to_le_bytes());
        out.push(match self.slot {
            Slot::X => 0,
            Slot::Y => 1,
            Slot::Z => 2,
        });
        out.push(u8::from(self.intersection));
        let mut packed = 0u8;
        let mut count = 0;
        for &b in &self.buffer {
            packed = (packed << 1) | u8::from(b);
            count += 1;
            if count == 8 {
                out.push(packed);
                packed = 0;
                count = 0;
            }
        }
        if count > 0 {
            out.push(packed);
        }
        out
    }
}

impl Checkpointable for Prop37Decider {
    const TYPE_TAG: &'static str = "Prop37Decider";

    fn write_state(&self, out: &mut Vec<u8>) {
        self.format.write_state(out);
        self.consistency.write_state(out);
        put_u32(out, self.k);
        put_usize(out, self.chunk);
        put_bools(out, &self.buffer);
        put_usize(out, self.round);
        put_slot(out, self.slot);
        put_usize(out, self.bit_idx);
        put_bool(out, self.in_prefix);
        put_bool(out, self.intersection);
        self.meter.write_checkpoint(out);
    }

    fn read_state(r: &mut ByteReader) -> Result<Self, CheckpointError> {
        let format = Checkpointable::read_state(r)?;
        let consistency = Checkpointable::read_state(r)?;
        let k = r.read_u32()?;
        let chunk = r.read_usize()?;
        let bits = read_bools(r)?;
        // Rebuild the round buffer at its reserved capacity: the space
        // meter charges the committed buffer (capacity), so the restored
        // decider must hold the same allocation the live one did.
        let mut buffer = Vec::with_capacity(chunk.max(bits.len()));
        buffer.extend_from_slice(&bits);
        let round = r.read_usize()?;
        let slot = read_slot(r)?;
        let bit_idx = r.read_usize()?;
        let in_prefix = r.read_bool()?;
        let intersection = r.read_bool()?;
        Ok(Prop37Decider {
            format,
            consistency,
            k,
            chunk,
            buffer,
            round,
            slot,
            bit_idx,
            in_prefix,
            intersection,
            meter: SpaceMeter::read_checkpoint(r)?,
        })
    }
}

/// A bounded-budget sampling sketch: stores `x` on a random set of
/// `budget` coordinates (chosen once `m` is known) and declares an
/// intersection only if it sees one on a sampled coordinate. With
/// `budget ≪ √m` it misses planted intersections with probability
/// `≈ (1 − t/m)^{budget}` — the empirical face of the Theorem 3.6 lower
/// bound (experiment F4).
#[derive(Clone, Debug)]
pub struct SketchDecider {
    format: FormatChecker,
    consistency: ConsistencyChecker,
    budget: usize,
    k: u32,
    in_prefix: bool,
    /// Sorted sampled coordinates and the buffered `x` bits at them.
    positions: Vec<u32>,
    x_bits: Vec<bool>,
    round: usize,
    slot: Slot,
    bit_idx: usize,
    intersection: bool,
    seed: u64,
    meter: SpaceMeter,
}

impl SketchDecider {
    /// Creates a sketch that may store at most `budget` coordinates of
    /// `x`.
    pub fn new<R: Rng + ?Sized>(budget: usize, rng: &mut R) -> Self {
        SketchDecider {
            format: FormatChecker::new(),
            consistency: ConsistencyChecker::new(rng),
            budget,
            k: 0,
            in_prefix: true,
            positions: Vec::new(),
            x_bits: Vec::new(),
            round: 0,
            slot: Slot::X,
            bit_idx: 0,
            intersection: false,
            seed: rng.gen(),
            meter: SpaceMeter::new(),
        }
    }

    fn sample_positions(&mut self) {
        let m = 1usize << (2 * self.k);
        let budget = self.budget.min(m);
        // Deterministic position sample from the seed (Floyd-ish via a
        // simple LCG walk + dedup).
        let mut chosen: Vec<u32> = Vec::with_capacity(budget);
        let mut state = self.seed | 1;
        while chosen.len() < budget {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pos = (state >> 16) as usize % m;
            if !chosen.contains(&(pos as u32)) {
                chosen.push(pos as u32);
            }
        }
        chosen.sort_unstable();
        self.positions = chosen;
        self.x_bits = vec![false; self.positions.len()];
    }

    fn remeter(&mut self) {
        // Positions cost ⌈log m⌉ = 2k bits each; x bits one bit each.
        let bits = self.positions.len() * (2 * self.k as usize)
            + self.x_bits.len()
            + 2 * bits_for_counter(self.bit_idx.max(1))
            + 3;
        self.meter.record(bits);
    }
}

impl StreamingDecider for SketchDecider {
    fn feed(&mut self, sym: Sym) {
        self.format.feed(sym);
        self.consistency.feed(sym);
        if self.in_prefix {
            match sym {
                Sym::One => {
                    if self.k < 15 {
                        self.k += 1;
                    }
                }
                Sym::Hash | Sym::Zero => {
                    self.in_prefix = false;
                    self.round = 1;
                    if self.k >= 1 {
                        self.sample_positions();
                    }
                }
            }
        } else {
            match sym {
                Sym::Zero | Sym::One => {
                    let bit = sym == Sym::One;
                    // Only the first round is inspected (the copies are
                    // identical when A2 passes).
                    if self.round == 1 {
                        if let Ok(slot_idx) = self.positions.binary_search(&(self.bit_idx as u32)) {
                            match self.slot {
                                Slot::X => self.x_bits[slot_idx] = bit,
                                Slot::Y => {
                                    if self.x_bits[slot_idx] && bit {
                                        self.intersection = true;
                                    }
                                }
                                Slot::Z => {}
                            }
                        }
                    }
                    self.bit_idx += 1;
                }
                Sym::Hash => {
                    match self.slot {
                        Slot::X => self.slot = Slot::Y,
                        Slot::Y => self.slot = Slot::Z,
                        Slot::Z => {
                            self.slot = Slot::X;
                            self.round += 1;
                        }
                    }
                    self.bit_idx = 0;
                }
            }
        }
        self.remeter();
    }

    fn decide(&mut self) -> bool {
        self.format.decide() && self.consistency.decide() && !self.intersection
    }

    fn space_bits(&self) -> usize {
        self.meter.peak_bits() + self.format.space_bits() + self.consistency.space_bits()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = self.format.snapshot();
        out.extend(self.consistency.snapshot());
        out.push(u8::from(self.intersection));
        for (&p, &b) in self.positions.iter().zip(&self.x_bits) {
            out.extend_from_slice(&p.to_le_bytes());
            out.push(u8::from(b));
        }
        out
    }
}

impl Checkpointable for SketchDecider {
    const TYPE_TAG: &'static str = "SketchDecider";

    fn write_state(&self, out: &mut Vec<u8>) {
        self.format.write_state(out);
        self.consistency.write_state(out);
        put_usize(out, self.budget);
        put_u32(out, self.k);
        put_bool(out, self.in_prefix);
        put_usize(out, self.positions.len());
        for &p in &self.positions {
            put_u32(out, p);
        }
        put_bools(out, &self.x_bits);
        put_usize(out, self.round);
        put_slot(out, self.slot);
        put_usize(out, self.bit_idx);
        put_bool(out, self.intersection);
        put_u64(out, self.seed);
        self.meter.write_checkpoint(out);
    }

    fn read_state(r: &mut ByteReader) -> Result<Self, CheckpointError> {
        let format = Checkpointable::read_state(r)?;
        let consistency = Checkpointable::read_state(r)?;
        let budget = r.read_usize()?;
        let k = r.read_u32()?;
        let in_prefix = r.read_bool()?;
        let n_pos = r.read_usize()?;
        let positions = (0..n_pos)
            .map(|_| r.read_u32())
            .collect::<Result<Vec<_>, _>>()?;
        let x_bits = read_bools(r)?;
        if x_bits.len() != positions.len() {
            return Err(CheckpointError::Malformed(
                "sketch bit/position length mismatch".into(),
            ));
        }
        let round = r.read_usize()?;
        let slot = read_slot(r)?;
        let bit_idx = r.read_usize()?;
        let intersection = r.read_bool()?;
        let seed = r.read_u64()?;
        Ok(SketchDecider {
            format,
            consistency,
            budget,
            k,
            in_prefix,
            positions,
            x_bits,
            round,
            slot,
            bit_idx,
            intersection,
            seed,
            meter: SpaceMeter::read_checkpoint(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_lang::gen::{malform, random_member, random_nonmember, ALL_MALFORMATIONS};
    use oqsc_lang::{encoded_len, is_in_ldisj, string_len};
    use oqsc_machine::run_decider;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prop37_matches_reference_on_members_and_nonmembers() {
        let mut rng = StdRng::seed_from_u64(120);
        for k in 1..=3u32 {
            let m = string_len(k);
            let member = random_member(k, &mut rng);
            let v = run_decider(Prop37Decider::new(&mut rng), &member.encode()).accept;
            assert!(v, "k={k} member");
            for t in [1usize, m / 2, m] {
                let non = random_nonmember(k, t, &mut rng);
                let v = run_decider(Prop37Decider::new(&mut rng), &non.encode()).accept;
                assert!(!v, "k={k} t={t} non-member");
            }
        }
    }

    #[test]
    fn prop37_rejects_malformed_inputs() {
        let mut rng = StdRng::seed_from_u64(121);
        let inst = random_member(2, &mut rng);
        for kind in ALL_MALFORMATIONS {
            let bad = malform(&inst, kind, &mut rng);
            let v = run_decider(Prop37Decider::new(&mut rng), &bad).accept;
            // A2 is probabilistic but the corruption-catch probability at
            // k=2 is ≥ 15/16 per test; a single failure here would be rare.
            // To keep this test deterministic we only require: shape
            // corruptions are always rejected; consistency ones usually.
            if matches!(
                kind,
                oqsc_lang::Malformation::MissingPrefix
                    | oqsc_lang::Malformation::ShortBlock
                    | oqsc_lang::Malformation::TrailingSymbol
                    | oqsc_lang::Malformation::Truncated
            ) {
                assert!(!v, "{kind:?}");
            }
        }
    }

    #[test]
    fn prop37_space_is_n_to_one_third() {
        // Space decomposes as (2^k buffer) + Θ(k) counters/fingerprints:
        // pin both terms, which pins Θ(n^{1/3}) overall.
        let mut rng = StdRng::seed_from_u64(122);
        for k in 1..=6u32 {
            let inst = random_member(k, &mut rng);
            let out = run_decider(Prop37Decider::new(&mut rng), &inst.encode());
            let (v, space) = (out.accept, out.classical_bits);
            assert!(v);
            let buffer = 1usize << k;
            assert!(space >= buffer, "k={k}: buffer must be charged");
            assert!(
                space <= buffer + 60 * k as usize + 60,
                "k={k}: {space} bits exceeds 2^k + O(k)"
            );
            let n = encoded_len(k) as f64;
            assert!(
                (space as f64) < 40.0 * n.powf(1.0 / 3.0) + 200.0,
                "k={k}: {space} bits vs n^(1/3) = {}",
                n.powf(1.0 / 3.0)
            );
        }
    }

    #[test]
    fn prop37_agrees_with_reference_on_random_words() {
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..20 {
            let inst = oqsc_lang::random_pair(2, 0.12, &mut rng);
            let word = inst.encode();
            let v = run_decider(Prop37Decider::new(&mut rng), &word).accept;
            assert_eq!(v, is_in_ldisj(&word));
        }
    }

    #[test]
    fn sketch_with_full_budget_is_exact() {
        let mut rng = StdRng::seed_from_u64(124);
        let k = 2u32;
        let m = string_len(k);
        for _ in 0..10 {
            let inst = oqsc_lang::random_pair(k, 0.2, &mut rng);
            let word = inst.encode();
            let v = run_decider(SketchDecider::new(m, &mut rng), &word).accept;
            assert_eq!(v, is_in_ldisj(&word));
        }
    }

    #[test]
    fn sketch_under_budget_misses_sparse_intersections() {
        let mut rng = StdRng::seed_from_u64(125);
        let k = 3u32;
        let budget = 4usize; // ≪ √m = 8 (m = string_len(3) = 64)
        let trials = 300;
        let mut misses = 0usize;
        for _ in 0..trials {
            let non = random_nonmember(k, 1, &mut rng);
            let v = run_decider(SketchDecider::new(budget, &mut rng), &non.encode()).accept;
            if v {
                misses += 1;
            }
        }
        let miss_rate = misses as f64 / trials as f64;
        // Expected ≈ (1 − 1/64)^4 ≈ 0.94 — a failing algorithm.
        assert!(miss_rate > 0.7, "miss rate {miss_rate}");
    }

    #[test]
    fn sketch_never_false_alarms_on_members() {
        let mut rng = StdRng::seed_from_u64(126);
        let inst = random_member(2, &mut rng);
        for budget in [1usize, 4, 16] {
            let v = run_decider(SketchDecider::new(budget, &mut rng), &inst.encode()).accept;
            assert!(v, "budget {budget}");
        }
    }

    #[test]
    fn sketch_space_tracks_budget() {
        let mut rng = StdRng::seed_from_u64(127);
        let inst = random_member(3, &mut rng);
        let s_small = run_decider(SketchDecider::new(2, &mut rng), &inst.encode()).classical_bits;
        let s_big = run_decider(SketchDecider::new(32, &mut rng), &inst.encode()).classical_bits;
        assert!(s_big > s_small + 100, "space {s_small} -> {s_big}");
    }
}
