//! The separation itself, as a measurable object (experiment F1).
//!
//! For each `k`, measure: the quantum recognizer's space (classical bits
//! plus qubits, both `Θ(k) = Θ(log m)`), the Proposition 3.7 classical
//! decider's space (`Θ(2^k) = Θ(√m)`), and the Theorem 3.6 lower bound
//! recovered from the communication argument. The quantum/classical ratio
//! grows without bound — exponentially in the *space* axis as a function
//! of `log m` — which is the paper's headline claim.

use crate::classical::Prop37Decider;
use crate::recognizer::{ComplementRecognizer, SpaceReport};
use crate::sweep::derive_seed;
use oqsc_comm::theorem_3_6_space_bound;
use oqsc_lang::{encoded_len, random_member, string_len, LdisjInstance};
use oqsc_machine::{BatchRunner, SessionSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One row of the separation table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeparationRow {
    /// Language parameter.
    pub k: u32,
    /// String length `m = 2^{2k}`.
    pub m: usize,
    /// Input length `n = Θ(2^{3k})`.
    pub n: usize,
    /// Quantum recognizer space (measured).
    pub quantum: SpaceReport,
    /// Proposition 3.7 classical space in bits (measured).
    pub classical_upper_bits: usize,
    /// Theorem 3.6 lower bound in tape cells (derived, with `c = 1`,
    /// `|Q| = 64`).
    pub classical_lower_cells: usize,
}

impl SeparationRow {
    /// The measured classical-over-quantum space ratio.
    pub fn ratio(&self) -> f64 {
        self.classical_upper_bits as f64 / self.quantum.total() as f64
    }
}

/// The row's member instance, derived deterministically from its seed.
fn row_instance(k: u32, seed: u64) -> LdisjInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    random_member(k, &mut rng)
}

/// Measures one row of the separation table at parameter `k` (feeds one
/// random member instance through both machines).
///
/// The quantum column is metered with a dense simulation for
/// `k ≤ 5` and in metering-only mode above (identical space accounting,
/// no amplitude allocation — see
/// [`crate::a3::GroverStreamer::metering_only`]).
pub fn measure_separation_row<R: Rng + ?Sized>(k: u32, rng: &mut R) -> SeparationRow {
    measure_separation_row_seeded(k, rng.gen())
}

/// [`measure_separation_row`] as a pure function of its seed (the form
/// the batch scheduler requires: a row's machines and instance depend on
/// `(k, seed)` alone, never on sweep order).
pub fn measure_separation_row_seeded(k: u32, seed: u64) -> SeparationRow {
    let rows = separation_rows_batched(k, &[seed], &BatchRunner::serial());
    rows.into_iter().next().expect("one row")
}

/// Measures the whole table for `k ∈ [k_min, k_max]`, fanning the rows
/// out over the batch scheduler (one shard per worker; the table is a
/// pure function of the caller's `rng`, whatever the worker count).
pub fn separation_table<R: Rng + ?Sized>(
    k_min: u32,
    k_max: u32,
    rng: &mut R,
) -> Vec<SeparationRow> {
    let seeds: Vec<u64> = (k_min..=k_max).map(|_| rng.gen()).collect();
    separation_rows_batched(k_min, &seeds, &BatchRunner::available())
}

/// The batched core of the separation experiment: row `i` measures
/// `k = k_min + i` with entropy `seeds[i]`. Both machine fleets — the
/// quantum recognizers and the Proposition 3.7 classical deciders — run
/// through [`BatchRunner`], streaming each instance without
/// materializing it (5·10⁷ symbols at `k = 8`).
pub fn separation_rows_batched(
    k_min: u32,
    seeds: &[u64],
    runner: &BatchRunner,
) -> Vec<SeparationRow> {
    separation_rows_scheduled(k_min, seeds, runner, SessionSchedule::Uninterrupted)
}

/// [`separation_rows_batched`] under an explicit [`SessionSchedule`]:
/// with [`SessionSchedule::MigrateEvery`], both fleets — quantum
/// recognizers (register snapshots included) and classical deciders —
/// are suspended at every segment boundary, serialized, migrated to the
/// next worker, and resumed, and the table is `==`-identical to the
/// uninterrupted one.
pub fn separation_rows_scheduled(
    k_min: u32,
    seeds: &[u64],
    runner: &BatchRunner,
    schedule: SessionSchedule,
) -> Vec<SeparationRow> {
    let quantum = runner.run(seeds.len(), schedule, |i| {
        separation_quantum_task(k_min, seeds, i)
    });
    let classical = runner.run(seeds.len(), schedule, |i| {
        separation_classical_task(k_min, seeds, i)
    });
    separation_rows_from_reports(k_min, &quantum, &classical)
}

/// Builds the **quantum fleet's** instance `i` — the Theorem 3.4
/// recognizer (metering-only above `k = 5`) plus its streamed member
/// word. A pure function of `(k_min, seeds, i)`, which is exactly what
/// lets a cross-process scheduler re-derive any instance inside a worker
/// process instead of shipping deciders or words between processes.
pub fn separation_quantum_task(
    k_min: u32,
    seeds: &[u64],
    i: usize,
) -> (
    ComplementRecognizer<oqsc_quantum::StateVector>,
    impl Iterator<Item = oqsc_lang::Sym>,
) {
    let k = k_min + i as u32;
    let mut rng = StdRng::seed_from_u64(derive_seed(seeds[i], 0));
    let decider = if k <= 5 {
        ComplementRecognizer::new(&mut rng)
    } else {
        ComplementRecognizer::metering_only()
    };
    (decider, row_instance(k, seeds[i]).into_stream())
}

/// Builds the **classical fleet's** instance `i` — the Proposition 3.7
/// decider plus the same streamed word (independent entropy stream).
/// See [`separation_quantum_task`] for why this is a standalone pure
/// function.
pub fn separation_classical_task(
    k_min: u32,
    seeds: &[u64],
    i: usize,
) -> (Prop37Decider, impl Iterator<Item = oqsc_lang::Sym>) {
    let k = k_min + i as u32;
    let mut rng = StdRng::seed_from_u64(derive_seed(seeds[i], 1));
    (
        Prop37Decider::new(&mut rng),
        row_instance(k, seeds[i]).into_stream(),
    )
}

/// Folds the two fleets' [`oqsc_machine::BatchReport`]s (index `i` =
/// parameter `k_min + i` in both) into the separation table. The
/// cross-process scheduler merges per-shard outcomes into the same
/// reports and calls this, so its tables are identical to the
/// in-process ones by construction.
pub fn separation_rows_from_reports(
    k_min: u32,
    quantum: &oqsc_machine::BatchReport,
    classical: &oqsc_machine::BatchReport,
) -> Vec<SeparationRow> {
    quantum
        .outcomes
        .iter()
        .zip(&classical.outcomes)
        .enumerate()
        .map(|(i, (q, c))| {
            let k = k_min + i as u32;
            SeparationRow {
                k,
                m: string_len(k),
                n: encoded_len(k),
                quantum: SpaceReport {
                    classical_bits: q.classical_bits,
                    qubits: q.peak_qubits,
                },
                classical_upper_bits: c.classical_bits,
                classical_lower_cells: theorem_3_6_space_bound(k, 1.0, 64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_machine::StreamingDecider;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantum_space_grows_linearly_in_k_classical_exponentially() {
        let mut rng = StdRng::seed_from_u64(130);
        let table = separation_table(1, 6, &mut rng);
        assert_eq!(table.len(), 6);
        for w in table.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            // Quantum: additive growth (Θ(k)); allow a generous additive cap.
            assert!(
                b.quantum.total() <= a.quantum.total() + 64,
                "quantum space jumped: {} -> {}",
                a.quantum.total(),
                b.quantum.total()
            );
            assert_eq!(b.quantum.qubits, a.quantum.qubits + 2);
        }
        // Classical: the Θ(2^k) buffer term. Subtracting the shared Θ(k)
        // overhead (A1 + A2 run inside both machines) exposes the doubling.
        for w in table[2..].windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let a_buf = a.classical_upper_bits as f64 - a.quantum.classical_bits as f64;
            let b_buf = b.classical_upper_bits as f64 - b.quantum.classical_bits as f64;
            assert!(
                b_buf > 1.4 * a_buf,
                "classical-minus-shared should ~double: k={} {a_buf} -> {b_buf}",
                a.k
            );
        }
        // By k = 6 the exponential term wins outright.
        let last = &table[5];
        assert!(
            last.classical_upper_bits > last.quantum.total(),
            "k=6: classical {} must exceed quantum {}",
            last.classical_upper_bits,
            last.quantum.total()
        );
    }

    #[test]
    fn batched_rows_are_worker_count_independent() {
        let seeds = [11u64, 22, 33, 44];
        let reference = separation_rows_batched(1, &seeds, &BatchRunner::serial());
        assert_eq!(reference.len(), 4);
        for workers in [2usize, 8] {
            let rows = separation_rows_batched(1, &seeds, &BatchRunner::new(workers));
            assert_eq!(rows, reference, "workers={workers}");
        }
        // And the seeded single-row API agrees with the batch.
        for (i, row) in reference.iter().enumerate() {
            assert_eq!(measure_separation_row_seeded(1 + i as u32, seeds[i]), *row);
        }
    }

    #[test]
    fn row_fields_consistent() {
        let mut rng = StdRng::seed_from_u64(131);
        let row = measure_separation_row(3, &mut rng);
        assert_eq!(row.k, 3);
        assert_eq!(row.m, 64);
        assert_eq!(row.n, encoded_len(3));
        assert_eq!(row.quantum.qubits, 8);
        assert!(row.classical_upper_bits >= 64, "buffer must be charged");
        assert!(row.ratio() > 0.0);
    }

    #[test]
    fn metering_only_matches_simulated_space() {
        // The metering-only quantum column must agree exactly with the
        // dense simulation's accounting.
        let mut rng = StdRng::seed_from_u64(132);
        for k in 1..=3u32 {
            let inst = random_member(k, &mut rng);
            let word = inst.encode();
            let mut simulated = ComplementRecognizer::with_seeds(0, 0, 0);
            simulated.feed_all(&word);
            let mut metered = ComplementRecognizer::metering_only();
            metered.feed_all(&word);
            assert_eq!(simulated.space(), metered.space(), "k={k}");
        }
    }
}
