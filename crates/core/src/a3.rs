//! Procedure A3: the online quantum Grover procedure.
//!
//! Assuming conditions (i)–(iii) hold, the input carries `2^k` identical
//! rounds `x#y#x#`, and A3 decides `DISJ_{2^{2k}}(x, y)` by running
//! Grover's algorithm *against the stream*: each round supplies exactly
//! the data needed for one Grover iteration
//! (`V_x`, `W_y`, `V_z`, then the diffusion `U_k S_k U_k`), and the
//! randomly chosen round `j+1` is used for the final marking
//! (`R_y V_x`) after which the `l` qubit is measured.
//!
//! The register is `|i⟩|h⟩|l⟩`: `2k + 2` qubits, plus `O(k)` classical
//! bits of counters — the paper's logarithmic space bound. Each streamed
//! bit triggers an `O(1)` structured update
//! ([`oqsc_quantum::structured`]'s bit-mode operators), so the whole
//! simulation is linear in the input length.
//!
//! Output convention (paper): measure `b` from the last qubit and output
//! `1 − b`; so `true` (= 1) means "no intersection witnessed".

use oqsc_lang::Sym;
use oqsc_machine::session::{put_bool, put_u32, put_u64, put_u8, put_usize};
use oqsc_machine::{
    bits_for_counter, ByteReader, CheckpointError, Checkpointable, MeteredRegister, SpaceMeter,
    StreamingDecider,
};
use oqsc_quantum::{GroverLayout, QuantumBackend, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest `k` for which the streamer allocates a dense register
/// (`2k + 2 ≤ 16` qubits, ≤ 1 MiB of amplitudes). For larger `k` —
/// including adversarial words whose `1^k` prefix merely *claims* a huge
/// `k` — the streamer degrades to metering-only: space accounting stays
/// exact, the A3 verdict becomes a vacuous pass (the exact-probability
/// experiments all run at `k ≤ 5`).
pub const MAX_SIMULABLE_K: u32 = 7;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    X,
    Y,
    Z,
}

/// Streaming implementation of procedure A3, generic over the simulation
/// backend (dense [`StateVector`] by default; `SparseState` runs the same
/// procedure in support-proportional memory).
#[derive(Clone, Debug)]
pub struct GroverStreamer<B: QuantumBackend = StateVector> {
    /// Seed for the final measurement (an OPTM flips coins online; we
    /// pre-commit the entropy for reproducibility — and, since the coin
    /// is only consumed at [`StreamingDecider::decide`], storing the seed
    /// rather than a live generator makes the whole mid-stream
    /// configuration serializable for session checkpoints).
    measure_seed: u64,
    j_seed: u64,
    in_prefix: bool,
    k: u32,
    layout: Option<GroverLayout>,
    reg: MeteredRegister<B>,
    /// Round counter, 1-based once blocks start.
    round: usize,
    /// The drawn iteration count `j ∈ {0, …, 2^k − 1}`.
    j: usize,
    slot: Slot,
    bit_idx: usize,
    /// Set once the marking round finished; later input is skimmed.
    marking_done: bool,
    /// When false, the state vector is never allocated: the procedure only
    /// meters its space (used for large-`k` space tables where a dense
    /// simulation would not fit; the space accounting is identical).
    simulate: bool,
    meter: SpaceMeter,
}

impl GroverStreamer<StateVector> {
    /// Creates the procedure on the dense default backend, drawing its
    /// coins from `rng`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        GroverStreamer::new_in(rng)
    }

    /// Derandomized dense-backend constructor: forces the iteration count
    /// to `j_seed mod 2^k` and seeds the measurement RNG (for exact
    /// analysis and exhaustive tests).
    pub fn with_j_seed(j_seed: u64, measure_seed: u64) -> Self {
        GroverStreamer::with_j_seed_in(j_seed, measure_seed)
    }

    /// A metering-only instance: counters and the register-width report
    /// behave exactly as in a real run, but no amplitudes are allocated.
    /// Use for space tables at `k` beyond the dense-simulation range; its
    /// [`StreamingDecider::decide`] vacuously passes.
    pub fn metering_only() -> Self {
        GroverStreamer::metering_only_in()
    }
}

impl<B: QuantumBackend> GroverStreamer<B> {
    /// [`GroverStreamer::new`] over any backend.
    pub fn new_in<R: Rng + ?Sized>(rng: &mut R) -> Self {
        GroverStreamer {
            measure_seed: rng.gen(),
            j_seed: rng.gen(),
            in_prefix: true,
            k: 0,
            layout: None,
            reg: MeteredRegister::unallocated(),
            round: 1,
            j: 0,
            slot: Slot::X,
            bit_idx: 0,
            marking_done: false,
            simulate: true,
            meter: SpaceMeter::new(),
        }
    }

    /// [`GroverStreamer::with_j_seed`] over any backend.
    pub fn with_j_seed_in(j_seed: u64, measure_seed: u64) -> Self {
        GroverStreamer {
            measure_seed,
            j_seed,
            in_prefix: true,
            k: 0,
            layout: None,
            reg: MeteredRegister::unallocated(),
            round: 1,
            j: 0,
            slot: Slot::X,
            bit_idx: 0,
            marking_done: false,
            simulate: true,
            meter: SpaceMeter::new(),
        }
    }

    /// [`GroverStreamer::metering_only`] over any backend.
    pub fn metering_only_in() -> Self {
        let mut s = GroverStreamer::with_j_seed_in(0, 0);
        s.simulate = false;
        s
    }

    /// The drawn `j` (meaningful once the prefix has been read).
    pub fn j(&self) -> usize {
        self.j
    }

    /// Quantum register width `2k + 2` (0 before the prefix is read).
    pub fn qubits(&self) -> usize {
        if self.in_prefix || self.k == 0 {
            0
        } else {
            2 * self.k as usize + 2
        }
    }

    /// Exact probability that the final measurement returns `b = 1`
    /// (intersection witnessed), conditioned on the drawn `j` — available
    /// without consuming the measurement.
    pub fn detection_probability(&self) -> f64 {
        match (self.reg.state(), &self.layout) {
            (Some(s), Some(l)) => s.prob_one(l.l_qubit()),
            _ => 0.0,
        }
    }

    /// Peak number of stored amplitudes over the run (`2^{2k+2}` dense,
    /// support high-water sparse).
    pub fn peak_amplitudes(&self) -> usize {
        self.reg.peak_support()
    }

    fn remeter(&mut self) {
        let bits = bits_for_counter(self.k as usize)
            + bits_for_counter(1usize << self.k) // round counter and j
            + bits_for_counter(1usize << self.k)
            + bits_for_counter(self.bit_idx.max(1))
            + 3;
        self.meter.record(bits);
    }

    fn feed_block_bit(&mut self, bit: bool) {
        if self.k == 0 {
            return;
        }
        let i = self.bit_idx;
        self.bit_idx += 1;
        if let (Some(layout), Some(state)) = (self.layout, self.reg.state_mut()) {
            if i >= layout.domain() {
                // Malformed over-long block: A1 rejects the word; stay safe.
                return;
            }
            if self.round <= self.j {
                // A full Grover iteration round.
                match self.slot {
                    Slot::X => layout.apply_vx_bit(state, i, bit),
                    Slot::Y => layout.apply_wx_bit(state, i, bit),
                    Slot::Z => layout.apply_vx_bit(state, i, bit),
                }
            } else if self.round == self.j + 1 && !self.marking_done {
                // The marking round: R_{y^{(j+1)}} V_{x^{(j+1)}}.
                match self.slot {
                    Slot::X => layout.apply_vx_bit(state, i, bit),
                    Slot::Y => layout.apply_rx_bit(state, i, bit),
                    Slot::Z => {}
                }
            }
            self.reg.record();
        }
    }

    fn close_block(&mut self) {
        if self.k == 0 {
            return;
        }
        match self.slot {
            Slot::X => self.slot = Slot::Y,
            Slot::Y => {
                if self.round == self.j + 1 {
                    // Marking complete; the rest of the input is skimmed.
                    self.marking_done = true;
                }
                self.slot = Slot::Z;
            }
            Slot::Z => {
                if self.round <= self.j {
                    // End of a full iteration round: diffusion U_k S_k U_k.
                    if let (Some(layout), Some(state)) = (self.layout, self.reg.state_mut()) {
                        layout.apply_uk(state);
                        layout.apply_sk(state);
                        layout.apply_uk(state);
                    }
                    self.reg.record();
                }
                self.slot = Slot::X;
                self.round += 1;
            }
        }
        self.bit_idx = 0;
    }
}

impl<B: QuantumBackend> StreamingDecider for GroverStreamer<B> {
    fn feed(&mut self, sym: Sym) {
        if self.in_prefix {
            match sym {
                Sym::One => {
                    // Count k up to the largest value any genuine input
                    // could have (beyond 24 the word length 2^{3k} is
                    // unphysical and A1 rejects); never allocate for a
                    // merely *claimed* huge k.
                    if self.k < 24 {
                        self.k += 1;
                    }
                }
                Sym::Hash | Sym::Zero => {
                    self.in_prefix = false;
                    if sym == Sym::Hash && self.k >= 1 {
                        if self.simulate && self.k <= MAX_SIMULABLE_K {
                            let layout = GroverLayout::for_k(self.k);
                            self.reg.allocate_with(|| layout.phi_in());
                            self.layout = Some(layout);
                        }
                        self.j = (self.j_seed % (1u64 << self.k)) as usize;
                    }
                }
            }
        } else {
            match sym {
                Sym::Zero => self.feed_block_bit(false),
                Sym::One => self.feed_block_bit(true),
                Sym::Hash => self.close_block(),
            }
        }
        self.remeter();
    }

    fn decide(&mut self) -> bool {
        // Measure the last qubit; output 1 − b. The measurement generator
        // is built from the pre-committed seed here, at the single point
        // it is consumed — identical draw to keeping it live, and the
        // reason a suspended streamer needs only the seed in its
        // checkpoint.
        match (self.layout, self.reg.state_mut()) {
            (Some(layout), Some(state)) => {
                let mut rng = StdRng::seed_from_u64(self.measure_seed);
                let b = state.measure_qubit(layout.l_qubit(), &mut rng);
                b == 0
            }
            // No quantum register was ever allocated (garbage prefix):
            // pass; A1 rejects the word.
            _ => true,
        }
    }

    fn space_bits(&self) -> usize {
        self.meter.peak_bits()
    }

    fn peak_qubits(&self) -> usize {
        // The analytic register width (2k + 2): identical in simulated and
        // metering-only runs, which is what keeps the large-k space tables
        // comparable to the simulated ones.
        self.qubits()
    }

    fn peak_amplitudes(&self) -> usize {
        self.reg.peak_support()
    }

    fn snapshot(&self) -> Vec<u8> {
        // A3's configuration is *quantum*: it cannot be serialized into a
        // classical message. This is precisely why Theorem 3.6's reduction
        // does not apply to the quantum machine (the separation's
        // mechanism). We return the classical counters only; the
        // communication reduction must not be used on quantum deciders.
        let mut out = Vec::with_capacity(16);
        out.push(u8::from(self.in_prefix) | (u8::from(self.marking_done) << 1));
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&(self.round as u32).to_le_bytes());
        out.extend_from_slice(&(self.j as u32).to_le_bytes());
        out.extend_from_slice(&(self.bit_idx as u32).to_le_bytes());
        out
    }
}

impl<B: QuantumBackend> Checkpointable for GroverStreamer<B> {
    const TYPE_TAG: &'static str = "GroverStreamer";

    fn write_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.measure_seed);
        put_u64(out, self.j_seed);
        put_bool(out, self.in_prefix);
        put_u32(out, self.k);
        match &self.layout {
            Some(l) => {
                put_bool(out, true);
                put_usize(out, l.idx_width);
            }
            None => put_bool(out, false),
        }
        self.reg.write_checkpoint(out);
        put_usize(out, self.round);
        put_usize(out, self.j);
        put_u8(
            out,
            match self.slot {
                Slot::X => 0,
                Slot::Y => 1,
                Slot::Z => 2,
            },
        );
        put_usize(out, self.bit_idx);
        put_bool(out, self.marking_done);
        put_bool(out, self.simulate);
        self.meter.write_checkpoint(out);
    }

    fn read_state(r: &mut ByteReader) -> Result<Self, CheckpointError> {
        let measure_seed = r.read_u64()?;
        let j_seed = r.read_u64()?;
        let in_prefix = r.read_bool()?;
        let k = r.read_u32()?;
        let layout = if r.read_bool()? {
            Some(GroverLayout {
                idx_width: r.read_usize()?,
            })
        } else {
            None
        };
        let reg = MeteredRegister::read_checkpoint(r)?;
        // A layout is only ever recorded alongside the register it was
        // allocated for; a width mismatch (or a layout without a
        // register) is a corrupted checkpoint, and must fail resume here
        // rather than panic on the first out-of-range gate later.
        if let Some(l) = &layout {
            let width_matches = reg
                .state()
                .is_some_and(|s| QuantumBackend::num_qubits(s) == l.num_qubits());
            if !width_matches {
                return Err(CheckpointError::Malformed(format!(
                    "A3 layout ({} qubits) does not match the restored register",
                    l.num_qubits()
                )));
            }
        }
        let round = r.read_usize()?;
        let j = r.read_usize()?;
        let slot = match r.read_u8()? {
            0 => Slot::X,
            1 => Slot::Y,
            2 => Slot::Z,
            v => return Err(CheckpointError::Malformed(format!("bad A3 slot tag {v}"))),
        };
        let bit_idx = r.read_usize()?;
        let marking_done = r.read_bool()?;
        let simulate = r.read_bool()?;
        Ok(GroverStreamer {
            measure_seed,
            j_seed,
            in_prefix,
            k,
            layout,
            reg,
            round,
            j,
            slot,
            bit_idx,
            marking_done,
            simulate,
            meter: SpaceMeter::read_checkpoint(r)?,
        })
    }
}

/// Exact probability that A3 outputs `0` (detects an intersection) on a
/// well-formed instance: the average over `j ∈ {0,…,2^k−1}` of the exact
/// measurement statistics. Equals `averaged_success(2^k, t, 2^{2k})`.
pub fn a3_exact_detection_probability(inst: &oqsc_lang::LdisjInstance) -> f64 {
    a3_exact_detection_probability_in::<StateVector>(inst)
}

/// [`a3_exact_detection_probability`] over any backend (the cross-backend
/// equivalence suite runs it sparse and dense and compares digits).
pub fn a3_exact_detection_probability_in<B: QuantumBackend>(
    inst: &oqsc_lang::LdisjInstance,
) -> f64 {
    let word = inst.encode();
    let rounds = inst.rounds();
    let mut total = 0.0;
    for j in 0..rounds {
        let mut a3 = GroverStreamer::<B>::with_j_seed_in(j as u64, 0);
        a3.feed_all(&word);
        total += a3.detection_probability();
    }
    total / rounds as f64
}

/// Ablation: detection probability when the number of intersections `t`
/// is *known in advance*, so A3 can pin `j` to the optimal iteration
/// count instead of drawing it uniformly. The paper randomizes `j`
/// precisely because `t` is unknown; this quantifies what that costs
/// (near-certain detection vs the ≥ 1/4 average). If the optimal `j`
/// exceeds the available `2^k − 1` rounds (impossible here since
/// `j_opt ≤ π/4·√m < 2^k`), the last round is used.
pub fn a3_known_t_detection_probability(inst: &oqsc_lang::LdisjInstance) -> f64 {
    let t = inst.intersections();
    if t == 0 {
        return 0.0;
    }
    let j = oqsc_grover::optimal_iterations(t, inst.m()).min(inst.rounds() - 1);
    let mut a3 = GroverStreamer::with_j_seed(j as u64, 0);
    a3.feed_all(&inst.encode());
    a3.detection_probability()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_grover::averaged_success;
    use oqsc_lang::{encoded_len, random_member, random_nonmember, string_len};
    use oqsc_machine::run_decider;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn members_always_pass() {
        // One-sided: on a disjoint instance, EVERY j and every measurement
        // outcome yields output 1.
        let mut rng = StdRng::seed_from_u64(90);
        for k in 1..=2u32 {
            let inst = random_member(k, &mut rng);
            let word = inst.encode();
            for j in 0..inst.rounds() as u64 {
                let mut a3 = GroverStreamer::with_j_seed(j, 12345);
                a3.feed_all(&word);
                assert!(
                    a3.detection_probability() < 1e-12,
                    "k={k} j={j}: member must never be detected"
                );
                assert!(a3.decide());
            }
        }
    }

    #[test]
    fn detection_matches_bbht_closed_form() {
        let mut rng = StdRng::seed_from_u64(91);
        for k in 1..=2u32 {
            let m = string_len(k);
            for t in [1usize, 2, m / 2, m] {
                let inst = random_nonmember(k, t, &mut rng);
                let exact = a3_exact_detection_probability(&inst);
                let formula = averaged_success(inst.rounds(), t, m);
                assert!(
                    (exact - formula).abs() < 1e-9,
                    "k={k} t={t}: {exact} vs {formula}"
                );
                assert!(exact >= 0.25 - 1e-9, "paper bound at k={k} t={t}");
            }
        }
    }

    #[test]
    fn sampled_runs_track_exact_probability() {
        let mut rng = StdRng::seed_from_u64(92);
        let inst = random_nonmember(2, 3, &mut rng);
        let p_detect = a3_exact_detection_probability(&inst);
        let trials = 1500;
        let detections = (0..trials)
            .filter(|_| {
                let passed = run_decider(GroverStreamer::new(&mut rng), &inst.encode()).accept;
                !passed
            })
            .count();
        let freq = detections as f64 / trials as f64;
        assert!((freq - p_detect).abs() < 0.04, "freq {freq} vs {p_detect}");
    }

    #[test]
    fn quantum_register_is_2k_plus_2() {
        let mut rng = StdRng::seed_from_u64(93);
        for k in 1..=4u32 {
            let inst = random_member(k, &mut rng);
            let mut a3 = GroverStreamer::new(&mut rng);
            a3.feed_all(&inst.encode());
            assert_eq!(a3.qubits(), 2 * k as usize + 2);
        }
    }

    #[test]
    fn classical_space_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(94);
        for k in 1..=4u32 {
            let inst = random_member(k, &mut rng);
            let out = run_decider(GroverStreamer::new(&mut rng), &inst.encode());
            let (passed, space) = (out.accept, out.classical_bits);
            assert!(passed);
            let n = encoded_len(k);
            assert!(
                space <= 8 * ((n as f64).log2().ceil() as usize),
                "k={k}: {space} bits"
            );
        }
    }

    #[test]
    fn j_draw_is_uniform_over_rounds() {
        let mut rng = StdRng::seed_from_u64(95);
        let inst = random_member(2, &mut rng); // 4 rounds
        let mut counts = [0usize; 4];
        for _ in 0..2000 {
            let mut a3 = GroverStreamer::new(&mut rng);
            a3.feed_all(&inst.encode());
            counts[a3.j()] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 2000.0;
            assert!((f - 0.25).abs() < 0.05, "j distribution skewed: {counts:?}");
        }
    }

    #[test]
    fn garbage_prefix_is_inert() {
        let word = oqsc_lang::token::from_str("0#101#").expect("syms");
        let out = run_decider(GroverStreamer::with_j_seed(0, 0), &word);
        let (passed, space) = (out.accept, out.classical_bits);
        assert!(passed, "no register allocated → vacuous pass");
        assert!(space < 64);
    }

    #[test]
    fn overlong_block_does_not_panic() {
        // m = 4 for k=1 but we send 10 bits in a block.
        let word = oqsc_lang::token::from_str("1#1111111111#0000#1111#").expect("syms");
        let mut a3 = GroverStreamer::with_j_seed(0, 0);
        a3.feed_all(&word);
        let _ = a3.decide();
    }

    #[test]
    fn known_t_detection_dominates_random_j() {
        // Knowing t turns the ≥ 1/4 average into near-certainty at small
        // t/m, and never does worse than the average (for the t values
        // where Grover has room to rotate).
        let mut rng = StdRng::seed_from_u64(97);
        for k in 2..=2u32 {
            for t in [1usize, 2] {
                let inst = random_nonmember(k, t, &mut rng);
                let known = super::a3_known_t_detection_probability(&inst);
                let random = a3_exact_detection_probability(&inst);
                assert!(
                    known >= random - 1e-9,
                    "t={t}: known {known} vs random {random}"
                );
                assert!(known > 0.6, "t={t}: known-t should be strong, got {known}");
            }
        }
        // t = 0 (member): never detects.
        let member = oqsc_lang::random_member(2, &mut rng);
        assert_eq!(super::a3_known_t_detection_probability(&member), 0.0);
    }

    #[test]
    fn with_j_seed_pins_j() {
        let inst_word = {
            let mut rng = StdRng::seed_from_u64(96);
            random_member(3, &mut rng).encode()
        };
        for j in [0u64, 3, 7] {
            let mut a3 = GroverStreamer::with_j_seed(j, 0);
            a3.feed_all(&inst_word);
            assert_eq!(a3.j() as u64, j);
        }
    }
}
