//! Definition 2.3 compliance: emitting A3 as a strict `{H, T, CNOT}`
//! circuit in the paper's output-tape format.
//!
//! The paper's machine does not *apply* gates — it **writes a circuit
//! description** `a1#b1#c1#…` over `G = {H, T, CNOT}` on its output tape;
//! the circuit is then run on `|0…0⟩` and the **first qubit** measured.
//! This module performs that compilation for procedure A3: every
//! structured operator (`V_x`, `W_y`, `R_y`, `U_k`, `S_k`) is lowered
//! exactly (multi-controlled gates via Toffoli chains with clean
//! ancillas, Toffolis via the 15-gate Clifford+T network, `X = H T⁴ H`,
//! `T† = T⁷`).
//!
//! Qubit layout of the emitted circuit (so the measured qubit is the
//! first, per the definition):
//!
//! ```text
//! 0      = l   (the output qubit)
//! 1      = h
//! 2…2k+1 = index register (bit j of i at qubit 2+j)
//! 2k+2…  = clean ancillas for the Toffoli chains
//! ```
//!
//! Gate counts grow linearly in the Hamming weights of `x` and `y` times
//! the multi-controlled-gate cost — exponential in `k`, as permitted by
//! the `2^{s(n)}`-step budget of Definition 2.3 — so verification tests
//! run at `k ≤ 2`.

use oqsc_lang::LdisjInstance;
use oqsc_quantum::decompose::{expand_to_strict, mcx_on_value, mcz, phase_flip_on_value};
use oqsc_quantum::{Gate, StrictCircuit};

/// Qubit map of the emitted circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmittedLayout {
    /// The paper's `k`.
    pub k: u32,
}

impl EmittedLayout {
    /// The output qubit `l` (measured; the "first qubit" of Definition
    /// 2.3).
    pub const L: usize = 0;
    /// The helper qubit `h`.
    pub const H: usize = 1;

    /// Index-register qubits.
    pub fn index_qubits(&self) -> Vec<usize> {
        (0..2 * self.k as usize).map(|j| 2 + j).collect()
    }

    /// Ancilla qubits: enough for the largest Toffoli chain, which is the
    /// `R_y` control on `index + h` (`2k + 1` controls → `2k − 1`
    /// ancillas).
    pub fn ancilla_qubits(&self) -> Vec<usize> {
        let data = 2 * self.k as usize + 2;
        let needed = (2 * self.k as usize + 1).saturating_sub(2);
        (0..needed).map(|j| data + j).collect()
    }

    /// Total register width `s`.
    pub fn width(&self) -> usize {
        2 * self.k as usize + 2 + self.ancilla_qubits().len()
    }
}

/// Compiles procedure A3 with pinned iteration count `j` into the strict
/// gate set, returning the paper-format circuit.
///
/// # Panics
/// If `j ≥ 2^k` or `k > 3` (the emitted circuit would be astronomically
/// large — the streaming simulator in [`crate::a3`] covers larger `k`).
pub fn a3_strict_circuit(inst: &LdisjInstance, j: usize) -> StrictCircuit {
    assert!(j < inst.rounds(), "j out of range");
    assert!(inst.k() <= 3, "emission is for small k; use the streamer");
    let layout = EmittedLayout { k: inst.k() };
    let idx = layout.index_qubits();
    let anc = layout.ancilla_qubits();
    let mut gates: Vec<Gate> = Vec::new();

    // |φ_k⟩: Hadamards on the index register.
    for &q in &idx {
        gates.push(Gate::H(q));
    }

    let vx = |gates: &mut Vec<Gate>, x: &[bool]| {
        for (i, &bit) in x.iter().enumerate() {
            if bit {
                gates.extend(
                    mcx_on_value(&idx, i, EmittedLayout::H, &anc).expect("enough ancillas"),
                );
            }
        }
    };
    let wy = |gates: &mut Vec<Gate>, y: &[bool]| {
        // Phase −1 on (index = i) ∧ (h = 1) for every y_i = 1.
        let mut ctrls = idx.clone();
        ctrls.push(EmittedLayout::H);
        for (i, &bit) in y.iter().enumerate() {
            if bit {
                let value = i | (1usize << idx.len());
                // X-conjugate zero bits of `value`, then MCZ over all ctrls.
                let flips: Vec<Gate> = ctrls
                    .iter()
                    .enumerate()
                    .filter(|(b, _)| (value >> b) & 1 == 0)
                    .map(|(_, &q)| Gate::X(q))
                    .collect();
                gates.extend(flips.iter().copied());
                gates.extend(mcz(&ctrls, &anc).expect("enough ancillas"));
                gates.extend(flips);
            }
        }
    };
    let ry = |gates: &mut Vec<Gate>, y: &[bool]| {
        let mut ctrls = idx.clone();
        ctrls.push(EmittedLayout::H);
        for (i, &bit) in y.iter().enumerate() {
            if bit {
                let value = i | (1usize << idx.len());
                gates.extend(
                    mcx_on_value(&ctrls, value, EmittedLayout::L, &anc).expect("enough ancillas"),
                );
            }
        }
    };

    // j full Grover iterations: U_k S_k U_k V_z W_y V_x (right to left).
    for _ in 0..j {
        vx(&mut gates, inst.x());
        wy(&mut gates, inst.y());
        vx(&mut gates, inst.x()); // z = x on well-formed instances
        for &q in &idx {
            gates.push(Gate::H(q));
        }
        // S_k = −(phase flip on index = 0); global phase dropped.
        gates.extend(phase_flip_on_value(&idx, 0, &anc).expect("enough ancillas"));
        for &q in &idx {
            gates.push(Gate::H(q));
        }
    }
    // Marking: R_y V_x.
    vx(&mut gates, inst.x());
    ry(&mut gates, inst.y());

    let strict = expand_to_strict(&gates).expect("A3 uses only exact gates");
    let mut circuit = StrictCircuit::new(layout.width());
    for g in strict {
        circuit.push_gate(g);
    }
    circuit
}

/// Runs the emitted circuit on `|0…0⟩` and returns the exact probability
/// that the measured first qubit is 1 (the Definition 2.3 acceptance
/// statistic).
pub fn emitted_detection_probability(inst: &LdisjInstance, j: usize) -> f64 {
    let circuit = a3_strict_circuit(inst, j);
    let state = circuit.run_from_zero();
    state.prob_one(EmittedLayout::L)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a3::GroverStreamer;
    use oqsc_lang::{random_member, random_nonmember};
    use oqsc_machine::StreamingDecider;
    use oqsc_quantum::StrictCircuit;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn streamer_detection(inst: &LdisjInstance, j: usize) -> f64 {
        let mut a3 = GroverStreamer::with_j_seed(j as u64, 0);
        a3.feed_all(&inst.encode());
        a3.detection_probability()
    }

    #[test]
    fn emitted_circuit_is_strict_and_parses() {
        let mut rng = StdRng::seed_from_u64(100);
        let inst = random_nonmember(1, 1, &mut rng);
        let circuit = a3_strict_circuit(&inst, 1);
        assert!(circuit.to_circuit().is_strict());
        // Round-trips through the paper's output-tape format.
        let text = circuit.serialize();
        let parsed = StrictCircuit::parse(&text, circuit.num_qubits()).expect("parse");
        assert_eq!(parsed, circuit);
    }

    #[test]
    fn emitted_matches_streamer_k1_all_j() {
        let mut rng = StdRng::seed_from_u64(101);
        for _ in 0..3 {
            let inst = random_nonmember(1, rng.gen_range(1..=4), &mut rng);
            for j in 0..inst.rounds() {
                let emitted = emitted_detection_probability(&inst, j);
                let streamed = streamer_detection(&inst, j);
                assert!(
                    (emitted - streamed).abs() < 1e-9,
                    "j={j}: emitted {emitted} vs streamed {streamed}"
                );
            }
        }
    }

    #[test]
    fn emitted_members_never_detect() {
        let mut rng = StdRng::seed_from_u64(102);
        let inst = random_member(1, &mut rng);
        for j in 0..inst.rounds() {
            assert!(emitted_detection_probability(&inst, j) < 1e-9, "j={j}");
        }
    }

    #[test]
    fn emitted_matches_streamer_k2_spot() {
        let mut rng = StdRng::seed_from_u64(103);
        let inst = random_nonmember(2, 2, &mut rng);
        for j in [0usize, 1, 3] {
            let emitted = emitted_detection_probability(&inst, j);
            let streamed = streamer_detection(&inst, j);
            assert!(
                (emitted - streamed).abs() < 1e-9,
                "j={j}: {emitted} vs {streamed}"
            );
        }
    }

    #[test]
    fn layout_geometry() {
        let l = EmittedLayout { k: 2 };
        assert_eq!(l.index_qubits(), vec![2, 3, 4, 5]);
        assert_eq!(l.ancilla_qubits(), vec![6, 7, 8]);
        assert_eq!(l.width(), 9);
        assert_eq!(EmittedLayout::L, 0);
        assert_eq!(EmittedLayout::H, 1);
    }

    #[test]
    fn gate_budget_within_definition_2_3() {
        // Definition 2.3 allows at most 2^{s} gates with s = width; check
        // the emitted triple count respects it for k = 1.
        let mut rng = StdRng::seed_from_u64(104);
        let inst = random_nonmember(1, 2, &mut rng);
        let circuit = a3_strict_circuit(&inst, 1);
        // width = 5 → budget 2^5 = 32 is too tight for the triple count;
        // the paper's budget is 2^{s(|w|)} with s(|w|) = Θ(log |w|) free to
        // carry the constant. Sanity: the circuit is finite and far below
        // 2^{c·s} for c = 4.
        assert!(circuit.len() < 1usize << (4 * circuit.num_qubits()));
    }

    #[test]
    #[should_panic(expected = "j out of range")]
    fn bad_j_panics() {
        let mut rng = StdRng::seed_from_u64(105);
        let inst = random_member(1, &mut rng);
        a3_strict_circuit(&inst, 99);
    }
}
