//! Batched recognizer sweeps: the Definition 2.3 end-to-end runs, fleet
//! style.
//!
//! Every experiment that feeds many words through
//! [`ComplementRecognizer`] / [`LdisjRecognizer`] instances goes through
//! [`BatchRunner`] here: one fresh recognizer per word, per-index seeds
//! derived from one base seed (SplitMix64), shards executed concurrently,
//! results aggregated into a worker-count-independent
//! [`BatchReport`]. Generic over the simulation backend, so the same
//! sweep runs dense ([`StateVector`]), parallel-dense
//! (`ParallelStateVector`) or sparse (`SparseState`) — and the
//! cross-backend suites compare the reports.

use crate::classical::SketchDecider;
use crate::recognizer::{ComplementRecognizer, LdisjRecognizer};
use oqsc_lang::{malform, random_member, random_nonmember, Malformation, Sym};
use oqsc_machine::{BatchReport, BatchRunner, CheckpointStore, SessionSchedule, StoreError};
use oqsc_quantum::{QuantumBackend, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64: one cheap, well-mixed seed per instance index. Every
/// batch task derives its entropy from `(base, index)` alone, which is
/// what makes a sweep's [`BatchReport`] independent of worker count and
/// shard order (the DESIGN.md §6 determinism contract).
pub fn derive_seed(base: u64, index: usize) -> u64 {
    let mut z = base ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sweeps the Theorem 3.4 complement recognizer over `words` on the
/// dense default backend.
pub fn complement_sweep(words: &[Vec<Sym>], base_seed: u64, runner: &BatchRunner) -> BatchReport {
    complement_sweep_in::<StateVector>(words, base_seed, runner)
}

/// [`complement_sweep`] over any backend.
pub fn complement_sweep_in<B: QuantumBackend>(
    words: &[Vec<Sym>],
    base_seed: u64,
    runner: &BatchRunner,
) -> BatchReport {
    complement_sweep_scheduled_in::<B>(words, base_seed, runner, SessionSchedule::Uninterrupted)
}

/// [`complement_sweep_in`] under an explicit [`SessionSchedule`]: with
/// [`SessionSchedule::MigrateEvery`], every recognizer is repeatedly
/// suspended, serialized (decider configuration + register snapshot +
/// metering), migrated to the next worker, and resumed — producing the
/// identical report, by the checkpoint round-trip contract.
pub fn complement_sweep_scheduled_in<B: QuantumBackend>(
    words: &[Vec<Sym>],
    base_seed: u64,
    runner: &BatchRunner,
    schedule: SessionSchedule,
) -> BatchReport {
    runner.run_words(words, schedule, |i| {
        let mut rng = StdRng::seed_from_u64(derive_seed(base_seed, i));
        ComplementRecognizer::<B>::new_in(&mut rng)
    })
}

/// Sweeps the Corollary 3.5 amplified recognizer (`reps` parallel
/// copies) over `words` on the dense default backend.
pub fn ldisj_sweep(
    words: &[Vec<Sym>],
    reps: usize,
    base_seed: u64,
    runner: &BatchRunner,
) -> BatchReport {
    ldisj_sweep_in::<StateVector>(words, reps, base_seed, runner)
}

/// [`ldisj_sweep`] over any backend.
pub fn ldisj_sweep_in<B: QuantumBackend>(
    words: &[Vec<Sym>],
    reps: usize,
    base_seed: u64,
    runner: &BatchRunner,
) -> BatchReport {
    ldisj_sweep_scheduled_in::<B>(
        words,
        reps,
        base_seed,
        runner,
        SessionSchedule::Uninterrupted,
    )
}

/// [`ldisj_sweep_in`] under an explicit [`SessionSchedule`] (see
/// [`complement_sweep_scheduled_in`]).
pub fn ldisj_sweep_scheduled_in<B: QuantumBackend>(
    words: &[Vec<Sym>],
    reps: usize,
    base_seed: u64,
    runner: &BatchRunner,
    schedule: SessionSchedule,
) -> BatchReport {
    runner.run_words(words, schedule, |i| {
        let mut rng = StdRng::seed_from_u64(derive_seed(base_seed, i));
        LdisjRecognizer::<B>::new_in(reps, &mut rng)
    })
}

/// [`complement_sweep_in`] with **persistence**: every recognizer's
/// checkpoint is appended to `store` after each segment of
/// `persist_every` tokens, and any instance the store already holds
/// progress for resumes from its last persisted boundary (see
/// [`BatchRunner::run_resumable_budgeted`]). `token_budget` caps how
/// many symbols this call may feed before it stops dead and returns
/// `Ok(None)` — the crash/preemption model the recovery suite drives;
/// pass `u64::MAX` to run to completion. Complete runs are
/// `==`-identical to [`complement_sweep_in`], wherever previous runs
/// crashed.
pub fn complement_sweep_resumable_in<B: QuantumBackend>(
    words: &[Vec<Sym>],
    base_seed: u64,
    runner: &BatchRunner,
    persist_every: usize,
    store: &mut CheckpointStore,
    token_budget: u64,
) -> Result<Option<BatchReport>, StoreError> {
    runner.run_resumable_budgeted(words.len(), persist_every, store, token_budget, |i| {
        let mut rng = StdRng::seed_from_u64(derive_seed(base_seed, i));
        (
            ComplementRecognizer::<B>::new_in(&mut rng),
            words[i].iter().copied(),
        )
    })
}

// ---------------------------------------------------------------------
// Pure per-fleet task functions
// ---------------------------------------------------------------------
//
// Every sweep below is expressed as `task(i) → (decider, stream)`, the
// form the batch, resumable, and cross-process schedulers all consume:
// instance `i` is a pure function of the fleet parameters and `i` alone,
// so any scheduler — in-process, killed-and-resumed, or a worker process
// holding nothing but indices — re-derives identical instances.

/// Builds trial `i` of the **recognizer frequency fleet**: one freshly
/// seeded Theorem 3.4 recognizer fed `word` (the Monte-Carlo acceptance
/// estimate's unit of work). Mirrors
/// [`separation_quantum_task`](crate::separation::separation_quantum_task).
pub fn complement_frequency_task<'w, B: QuantumBackend>(
    word: &'w [Sym],
    base_seed: u64,
    i: usize,
) -> (ComplementRecognizer<B>, impl Iterator<Item = Sym> + 'w) {
    let mut rng = StdRng::seed_from_u64(derive_seed(base_seed, i));
    (
        ComplementRecognizer::<B>::new_in(&mut rng),
        word.iter().copied(),
    )
}

/// Builds trial `i` of **experiment F3's fleet at `k`**: a freshly
/// seeded A2 consistency checker fed a corrupted (x-drifting) member
/// word, both derived from `(k, i)` alone. One fleet per `k`; the
/// fleet's accept rate is the empirical false-accept rate.
pub fn f3_fingerprint_task(
    k: u32,
    i: usize,
) -> (crate::ConsistencyChecker, std::vec::IntoIter<Sym>) {
    let mut rng = StdRng::seed_from_u64(derive_seed(7000 + u64::from(k), i));
    let inst = random_member(k, &mut rng);
    let bad = malform(&inst, Malformation::XDriftAcrossRounds, &mut rng);
    let a2 = crate::ConsistencyChecker::new(&mut rng);
    (a2, bad.into_iter())
}

/// Builds trial `i` of **experiment F4's fleet at `(k, budget)`**: a
/// sketch decider with `budget` stored positions fed a planted `t = 1`
/// non-member, both derived from `(budget, i)` alone. One fleet per
/// budget; the fleet's accept rate is the miss rate.
pub fn f4_sketch_task(k: u32, budget: usize, i: usize) -> (SketchDecider, std::vec::IntoIter<Sym>) {
    let mut rng = StdRng::seed_from_u64(derive_seed(8000 + budget as u64, i));
    let non = random_nonmember(k, 1, &mut rng);
    let sketch = SketchDecider::new(budget, &mut rng);
    (sketch, non.encode().into_iter())
}

/// Monte-Carlo acceptance estimate of the complement recognizer on one
/// word: `trials` independent seeded recognizers through the batch path,
/// returning the acceptance frequency. Deterministic in `(base_seed,
/// trials)` whatever the worker count.
pub fn complement_accept_frequency_in<B: QuantumBackend>(
    word: &[Sym],
    trials: usize,
    base_seed: u64,
    runner: &BatchRunner,
) -> f64 {
    let report = runner.run(trials, SessionSchedule::Uninterrupted, |i| {
        complement_frequency_task::<B>(word, base_seed, i)
    });
    report.accept_rate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognizer::exact_complement_accept_probability;
    use oqsc_lang::{random_member, random_nonmember};
    use oqsc_quantum::{ParallelStateVector, SparseState};
    use rand::Rng;

    fn seeded_words(n: usize, seed: u64) -> Vec<Vec<Sym>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    random_member(1, &mut rng).encode()
                } else {
                    random_nonmember(1, 1 + rng.gen_range(0..3usize), &mut rng).encode()
                }
            })
            .collect()
    }

    #[test]
    fn sweep_report_is_worker_count_independent() {
        let words = seeded_words(10, 42);
        let reference = complement_sweep(&words, 7, &BatchRunner::serial());
        for workers in [2usize, 5, 8] {
            let report = complement_sweep(&words, 7, &BatchRunner::new(workers));
            assert_eq!(report, reference, "workers={workers}");
        }
    }

    #[test]
    fn sweep_reports_agree_across_backends() {
        // Same seeds, three backends: identical verdict sets and space
        // accounting except for the stored-amplitude observable, where
        // parallel-dense ≡ dense and sparse is bounded by dense.
        let words = seeded_words(8, 99);
        let runner = BatchRunner::new(4);
        let dense = complement_sweep_in::<StateVector>(&words, 3, &runner);
        let par = complement_sweep_in::<ParallelStateVector>(&words, 3, &runner);
        let sparse = complement_sweep_in::<SparseState>(&words, 3, &runner);
        assert_eq!(dense, par, "parallel-dense must match dense exactly");
        assert_eq!(sparse.accepted, dense.accepted);
        assert_eq!(sparse.peak_qubits, dense.peak_qubits);
        assert_eq!(sparse.peak_classical_bits, dense.peak_classical_bits);
        assert!(sparse.peak_amplitudes <= dense.peak_amplitudes);
        for (s, d) in sparse.outcomes.iter().zip(&dense.outcomes) {
            assert_eq!(s.accept, d.accept);
            assert!(s.peak_amplitudes <= d.peak_amplitudes);
        }
    }

    #[test]
    fn members_never_flagged_by_the_batched_sweep() {
        let mut rng = StdRng::seed_from_u64(1);
        let words: Vec<Vec<Sym>> = (0..6)
            .map(|_| random_member(1, &mut rng).encode())
            .collect();
        let report = complement_sweep(&words, 11, &BatchRunner::new(3));
        assert_eq!(report.accepted, 0, "one-sided error must hold fleet-wide");
        // And the amplified recognizer declares them all members.
        let amplified = ldisj_sweep(&words, 4, 13, &BatchRunner::new(3));
        assert_eq!(amplified.accepted, words.len());
        assert!(amplified.peak_qubits >= 4 * 4, "4 copies × (2k+2) qubits");
    }

    #[test]
    fn batched_frequency_tracks_exact_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let word = random_nonmember(1, 1, &mut rng).encode();
        let exact = exact_complement_accept_probability(&word);
        let freq =
            complement_accept_frequency_in::<StateVector>(&word, 600, 123, &BatchRunner::new(4));
        assert!((freq - exact).abs() < 0.07, "freq {freq} vs exact {exact}");
    }

    #[test]
    fn derive_seed_spreads_indices() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable across calls (pure function).
        assert_eq!(derive_seed(1, 0), a);
    }
}
