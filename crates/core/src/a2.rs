//! Procedure A2: the one-sided-error online consistency check
//! (conditions (ii) and (iii)).
//!
//! A2 verifies with fingerprints that, assuming the shape is right,
//! `x⁽¹⁾ = z⁽¹⁾ = x⁽²⁾ = … = x⁽²ᵏ⁾ = z⁽²ᵏ⁾` and
//! `y⁽¹⁾ = … = y⁽²ᵏ⁾`. It draws one random point `t ∈ Z_p` with
//! `2^{4k} < p < 2^{4k+1}` and keeps only: the running fingerprint of the
//! current block, the fingerprint of the previous round's `x`, and of the
//! previous round's `y` — `O(k)` bits total.
//!
//! One-sided: on consistent inputs every test passes with certainty; on an
//! inconsistent input some test fails except with probability
//! `< 2^{-2k}` per test (union bound over `< 3·2^k` tests keeps the total
//! failure probability `≤ 3·2^{-k}`, far below the 3/4 the theorem needs).

use oqsc_fingerprint::{ceil_log2, fingerprint_prime, StreamingFingerprint};
use oqsc_lang::Sym;
use oqsc_machine::session::{put_bool, put_u32, put_u64, put_u8, put_usize};
use oqsc_machine::{
    bits_for_counter, ByteReader, CheckpointError, Checkpointable, SpaceMeter, StreamingDecider,
};
use rand::Rng;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    X,
    Y,
    Z,
}

/// Streaming implementation of procedure A2.
#[derive(Clone, Debug)]
pub struct ConsistencyChecker {
    /// Entropy for the evaluation point, fixed at construction (an OPTM
    /// flips its coins online; one draw of `⌈log p⌉` bits suffices).
    seed_t: u64,
    in_prefix: bool,
    k: u32,
    fp: Option<StreamingFingerprint>,
    slot: Slot,
    prev_x: Option<u64>,
    prev_y: Option<u64>,
    ok: bool,
    meter: SpaceMeter,
}

impl ConsistencyChecker {
    /// Creates the checker, drawing its random evaluation point from
    /// `rng`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ConsistencyChecker {
            seed_t: rng.gen(),
            in_prefix: true,
            k: 0,
            fp: None,
            slot: Slot::X,
            prev_x: None,
            prev_y: None,
            ok: true,
            meter: SpaceMeter::new(),
        }
    }

    /// Derandomized constructor used by exhaustive tests: the evaluation
    /// point will be `seed_t mod p`.
    pub fn with_seed(seed_t: u64) -> Self {
        ConsistencyChecker {
            seed_t,
            in_prefix: true,
            k: 0,
            fp: None,
            slot: Slot::X,
            prev_x: None,
            prev_y: None,
            ok: true,
            meter: SpaceMeter::new(),
        }
    }

    fn remeter(&mut self) {
        // Live state: three fingerprint residues + t + the block counters
        // inside StreamingFingerprint, all ⌈log p⌉ = 4k+1 bits, plus the
        // slot tag.
        let residue = self
            .fp
            .as_ref()
            .map(|f| ceil_log2(f.modulus()) as usize)
            .unwrap_or(0);
        let bits = 4 * residue + bits_for_counter(self.k as usize) + 2;
        self.meter.record(bits);
    }

    fn close_block(&mut self) {
        let Some(fp) = self.fp.as_mut() else {
            return;
        };
        let value = fp.value();
        match self.slot {
            Slot::X => {
                // Condition (ii) across rounds: x⁽ⁱ⁾ = x⁽ⁱ⁻¹⁾.
                if let Some(prev) = self.prev_x {
                    if prev != value {
                        self.ok = false;
                    }
                }
                self.prev_x = Some(value);
                self.slot = Slot::Y;
            }
            Slot::Y => {
                // Condition (iii): y⁽ⁱ⁾ = y⁽ⁱ⁻¹⁾.
                if let Some(prev) = self.prev_y {
                    if prev != value {
                        self.ok = false;
                    }
                }
                self.prev_y = Some(value);
                self.slot = Slot::Z;
            }
            Slot::Z => {
                // Condition (ii) within the round: z⁽ⁱ⁾ = x⁽ⁱ⁾.
                if self.prev_x != Some(value) {
                    self.ok = false;
                }
                self.slot = Slot::X;
            }
        }
        fp.reset();
    }
}

impl StreamingDecider for ConsistencyChecker {
    fn feed(&mut self, sym: Sym) {
        if self.in_prefix {
            match sym {
                Sym::One => {
                    if self.k < 15 {
                        self.k += 1;
                    } else {
                        // Prefix too long for u64 fingerprint arithmetic;
                        // A1 rejects such inputs anyway. Stay inert.
                        self.ok = false;
                    }
                }
                Sym::Hash => {
                    self.in_prefix = false;
                    if self.k >= 1 && self.k <= 15 {
                        let p = fingerprint_prime(self.k);
                        let t = self.seed_t % p;
                        self.fp = Some(StreamingFingerprint::new(p, t));
                    }
                }
                Sym::Zero => {
                    // Not a well-formed prefix; A2's verdict is irrelevant
                    // (A1 rejects). Keep scanning inertly.
                    self.in_prefix = false;
                }
            }
        } else {
            match sym {
                Sym::Zero | Sym::One => {
                    if let Some(fp) = self.fp.as_mut() {
                        fp.feed(sym == Sym::One);
                    }
                }
                Sym::Hash => self.close_block(),
            }
        }
        self.remeter();
    }

    fn decide(&mut self) -> bool {
        self.ok
    }

    fn space_bits(&self) -> usize {
        self.meter.peak_bits()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        out.push(u8::from(self.in_prefix) | (u8::from(self.ok) << 1));
        out.push(match self.slot {
            Slot::X => 0,
            Slot::Y => 1,
            Slot::Z => 2,
        });
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.prev_x.unwrap_or(u64::MAX).to_le_bytes());
        out.extend_from_slice(&self.prev_y.unwrap_or(u64::MAX).to_le_bytes());
        if let Some(fp) = &self.fp {
            out.extend_from_slice(&fp.value().to_le_bytes());
            out.extend_from_slice(&(fp.len() as u64).to_le_bytes());
        }
        out
    }
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            put_bool(out, true);
            put_u64(out, x);
        }
        None => put_bool(out, false),
    }
}

fn read_opt_u64(r: &mut ByteReader) -> Result<Option<u64>, CheckpointError> {
    Ok(if r.read_bool()? {
        Some(r.read_u64()?)
    } else {
        None
    })
}

impl Checkpointable for ConsistencyChecker {
    const TYPE_TAG: &'static str = "ConsistencyChecker";

    fn write_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.seed_t);
        put_bool(out, self.in_prefix);
        put_u32(out, self.k);
        match &self.fp {
            Some(fp) => {
                put_bool(out, true);
                put_u64(out, fp.modulus());
                put_u64(out, fp.point());
                put_u64(out, fp.value());
                put_u64(out, fp.power());
                put_usize(out, fp.len());
            }
            None => put_bool(out, false),
        }
        put_u8(
            out,
            match self.slot {
                Slot::X => 0,
                Slot::Y => 1,
                Slot::Z => 2,
            },
        );
        put_opt_u64(out, self.prev_x);
        put_opt_u64(out, self.prev_y);
        put_bool(out, self.ok);
        self.meter.write_checkpoint(out);
    }

    fn read_state(r: &mut ByteReader) -> Result<Self, CheckpointError> {
        let seed_t = r.read_u64()?;
        let in_prefix = r.read_bool()?;
        let k = r.read_u32()?;
        let fp = if r.read_bool()? {
            let p = r.read_u64()?;
            let t = r.read_u64()?;
            let acc = r.read_u64()?;
            let t_pow = r.read_u64()?;
            let len = r.read_usize()?;
            if p < 2 || t >= p || acc >= p || t_pow >= p {
                return Err(CheckpointError::Malformed(
                    "A2 fingerprint residues not reduced".into(),
                ));
            }
            Some(StreamingFingerprint::from_parts(p, t, acc, t_pow, len))
        } else {
            None
        };
        let slot = match r.read_u8()? {
            0 => Slot::X,
            1 => Slot::Y,
            2 => Slot::Z,
            v => return Err(CheckpointError::Malformed(format!("bad A2 slot tag {v}"))),
        };
        let prev_x = read_opt_u64(r)?;
        let prev_y = read_opt_u64(r)?;
        let ok = r.read_bool()?;
        Ok(ConsistencyChecker {
            seed_t,
            in_prefix,
            k,
            fp,
            slot,
            prev_x,
            prev_y,
            ok,
            meter: SpaceMeter::read_checkpoint(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_fingerprint::paper_error_bound;
    use oqsc_lang::encoded_len;
    use oqsc_lang::gen::{malform, random_member, random_nonmember, Malformation};
    use oqsc_machine::run_decider;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn consistent_inputs_always_pass() {
        // One-sided completeness: for EVERY evaluation point, not just a
        // random one.
        let mut rng = StdRng::seed_from_u64(80);
        let inst = random_member(1, &mut rng);
        let word = inst.encode();
        for t in 0..64u64 {
            let ok = run_decider(ConsistencyChecker::with_seed(t), &word).accept;
            assert!(ok, "seed {t}");
        }
        // Non-members that are still consistent copies also pass A2.
        let non = random_nonmember(1, 2, &mut rng);
        let ok = run_decider(ConsistencyChecker::new(&mut rng), &non.encode()).accept;
        assert!(ok);
    }

    #[test]
    fn inconsistent_inputs_fail_with_high_probability() {
        let mut rng = StdRng::seed_from_u64(81);
        for kind in [
            Malformation::ZCopyMismatch,
            Malformation::XDriftAcrossRounds,
            Malformation::YDriftAcrossRounds,
        ] {
            let mut false_accepts = 0usize;
            let trials = 300usize;
            for _ in 0..trials {
                let inst = random_member(2, &mut rng);
                let bad = malform(&inst, kind, &mut rng);
                let ok = run_decider(ConsistencyChecker::new(&mut rng), &bad).accept;
                if ok {
                    false_accepts += 1;
                }
            }
            // Paper bound: union over < 3·2^k tests of 2^{-2k} each;
            // for k=2 that is 12/16, but the realized rate is ≤ m/p ≈ 1/16
            // per corrupted test. Allow a loose 10%.
            assert!(
                false_accepts <= trials / 10,
                "{kind:?}: {false_accepts}/{trials} false accepts"
            );
        }
    }

    #[test]
    fn exact_failure_rate_below_paper_bound() {
        // Exhaust all evaluation points for one corrupted k=1 instance:
        // the fraction of t values that fool A2 must be < (m−1)/p < 2^{-2k}
        // per failed test; with one corrupted block, ≤ 2·(m−1)/p overall
        // (the corruption participates in two comparisons).
        let mut rng = StdRng::seed_from_u64(82);
        let inst = random_member(1, &mut rng);
        let bad = malform(&inst, Malformation::XDriftAcrossRounds, &mut rng);
        let p = fingerprint_prime(1); // 17
        let fooled = (0..p)
            .filter(|&t| run_decider(ConsistencyChecker::with_seed(t), &bad).accept)
            .count();
        let rate = fooled as f64 / p as f64;
        assert!(
            rate <= 2.0 * paper_error_bound(1) + 1e-9,
            "fooling rate {rate}"
        );
    }

    #[test]
    fn space_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(83);
        for k in 1..=5u32 {
            let inst = random_member(k, &mut rng);
            let out = run_decider(ConsistencyChecker::new(&mut rng), &inst.encode());
            let (ok, space) = (out.accept, out.classical_bits);
            assert!(ok);
            let n = encoded_len(k);
            assert!(
                space <= 12 * ((n as f64).log2().ceil() as usize),
                "k={k}: space {space}"
            );
            // And the dominant term is the 4 residues of 4k+1 bits.
            assert!(space >= 4 * (4 * k as usize + 1));
        }
    }

    #[test]
    fn snapshot_reflects_fingerprint_state() {
        let mut rng = StdRng::seed_from_u64(84);
        let inst = random_member(1, &mut rng);
        let word = inst.encode();
        let mut a = ConsistencyChecker::with_seed(5);
        let mut b = ConsistencyChecker::with_seed(5);
        a.feed_all(&word[..10]);
        b.feed_all(&word[..11]);
        assert_ne!(a.snapshot(), b.snapshot());
        b = ConsistencyChecker::with_seed(5);
        b.feed_all(&word[..10]);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn inert_on_garbage_prefix() {
        // A 0-led word: A2 must not panic and simply keeps a verdict;
        // its output is only consulted when A1 passed.
        let word = oqsc_lang::token::from_str("01#11#").expect("syms");
        let space = run_decider(ConsistencyChecker::with_seed(1), &word).classical_bits;
        assert!(space < 100);
    }
}
