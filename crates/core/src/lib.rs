//! # oqsc-core — the paper's contribution
//!
//! The online quantum machine of Le Gall's *Exponential Separation of
//! Quantum and Classical Online Space Complexity* (SPAA 2006), assembled
//! from the substrate crates:
//!
//! * [`a1`] — procedure A1, the deterministic `O(log n)`-space format
//!   check (condition (i));
//! * [`a2`] — procedure A2, the one-sided fingerprint consistency check
//!   (conditions (ii)/(iii));
//! * [`a3`] — procedure A3, online Grover against the stream with `O(1)`
//!   work per symbol on a `2k + 2`-qubit register;
//! * [`emit`] — Definition 2.3 compliance: A3 compiled to the strict
//!   `{H, T, CNOT}` set in the paper's `a#b#c` output format;
//! * [`model`] — the Definition 2.3 pipeline run literally (emit →
//!   serialize → parse → validate → execute → measure first qubit);
//! * [`recognizer`] — Theorem 3.4's one-sided recognizer of `L̄_DISJ`
//!   and Corollary 3.5's amplified bounded-error recognizer of `L_DISJ`;
//! * [`classical`] — Proposition 3.7's `Θ(n^{1/3})` classical decider and
//!   the sub-√m sketches that demonstrably fail;
//! * [`separation`] — the measured separation table (experiment F1),
//!   fanned out over the batch scheduler;
//! * [`sweep`] — batched recognizer sweeps: fleets of seeded recognizer
//!   instances driven through [`oqsc_machine::BatchRunner`], generic over
//!   the simulation backend.
//!
//! ## Quickstart
//!
//! ```
//! use oqsc_core::recognizer::LdisjRecognizer;
//! use oqsc_lang::random_member;
//! use oqsc_machine::{run_decider, StreamingDecider};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let instance = random_member(2, &mut rng);           // k=2: strings of 16 bits
//! let word = instance.encode();                        // 1^2#(x#y#x#)^4
//! let outcome = run_decider(LdisjRecognizer::new(4, &mut rng), &word);
//! assert!(outcome.accept);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod a1;
pub mod a2;
pub mod a3;
pub mod class;
pub mod classical;
pub mod emit;
pub mod model;
pub mod recognizer;
pub mod separation;
pub mod sweep;

pub use a1::FormatChecker;
pub use a2::ConsistencyChecker;
pub use a3::{
    a3_exact_detection_probability, a3_exact_detection_probability_in, GroverStreamer,
    MAX_SIMULABLE_K,
};
pub use class::{witness_obpspace_cbrt, witness_oqbpl, witness_oqrl, ClassWitness, WitnessRow};
pub use classical::{Prop37Decider, SketchDecider};
pub use emit::{a3_strict_circuit, emitted_detection_probability, EmittedLayout};
pub use model::{run_definition_2_3, validate_oqr_conditions, Definition23Run, OqrValidation};
pub use recognizer::{
    exact_complement_accept_probability, ComplementRecognizer, LdisjRecognizer, SpaceReport,
};
pub use separation::{
    measure_separation_row, measure_separation_row_seeded, separation_classical_task,
    separation_quantum_task, separation_rows_batched, separation_rows_from_reports,
    separation_rows_scheduled, separation_table, SeparationRow,
};
pub use sweep::{
    complement_accept_frequency_in, complement_frequency_task, complement_sweep,
    complement_sweep_in, complement_sweep_resumable_in, complement_sweep_scheduled_in, derive_seed,
    f3_fingerprint_task, f4_sketch_task, ldisj_sweep, ldisj_sweep_in, ldisj_sweep_scheduled_in,
};
