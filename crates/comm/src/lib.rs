//! # oqsc-comm — communication complexity substrate (Sections 3.1 & 3.3)
//!
//! The separation in the paper travels through communication complexity in
//! both directions: the *upper* bound simulates the Buhrman–Cleve–Wigderson
//! quantum protocol for `DISJ_n` online, and the *lower* bound converts any
//! small-space online machine into a cheap one-way protocol, contradicting
//! `R(DISJ) = Ω(n)`. This crate holds both bridges:
//!
//! * [`protocol`] — parties, transcripts, bit/qubit accounting;
//! * [`classical`] — the trivial linear protocol, a blocked variant, and
//!   the `O(log n)` fingerprint equality protocol;
//! * [`bcw`] — the BCW quantum protocol (Theorem 3.1) with exact
//!   detection probabilities and measured qubit counts;
//! * [`lower_bound`] — exact one-way deterministic costs and fooling sets
//!   on enumerable instance sizes (the combinatorial substrate of
//!   Theorem 3.2);
//! * [`reduction`] — the executable Theorem 3.6 reduction plus the
//!   Fact 2.2 inversion recovering the `Ω(n^{1/3})` space bound;
//! * [`bridge`] — the §1 forward direction: streaming one-way protocols
//!   adapted into online deciders with metered space;
//! * [`nondet`] — nondeterministic cover complexity (§1 context).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bcw;
pub mod bridge;
pub mod classical;
pub mod lower_bound;
pub mod nondet;
pub mod protocol;
pub mod reduction;

pub use bcw::{bcw_bounded_error, bcw_detection_probability, bcw_single_run, BcwParams, BcwRun};
pub use bridge::{FingerprintEqProtocol, OneWayDecider, StreamingOneWayProtocol};
pub use classical::{blocked_disj_protocol, fingerprint_equality_protocol, trivial_disj_protocol};
pub use lower_bound::{
    binary_entropy, communication_matrix, disj_fooling_set, fooling_set_bound,
    one_way_deterministic_cost, one_way_randomized_lower_bound, verify_fooling_set,
};
pub use nondet::{
    exact_min_one_cover, greedy_one_cover, ne_guess_protocol_bits, nondet_cost_from_cover,
    Rectangle,
};
pub use protocol::{MessageRecord, Party, ProtocolRun, Transcript};
pub use reduction::{
    message_boundaries, optm_reduction, simulate_reduction, space_lower_bound_bits,
    theorem_3_6_space_bound, OptmReductionReport, ReductionReport,
};
