//! Exact communication lower bounds on small instances.
//!
//! The classical side of the separation rests on `R(DISJ_n) = Ω(n)`
//! (Theorem 3.2, Kalyanasundaram–Schnitger / Razborov). The full
//! randomized bound is a deep theorem we take as given; what *can* be
//! verified mechanically, and is all that Theorem 3.6's counting argument
//! consumes, is the combinatorial substrate:
//!
//! * the **exact** one-way deterministic complexity, computable for small
//!   `n` as `⌈log₂(#distinct rows of the communication matrix)⌉`;
//! * **fooling sets**: `DISJ_n` has the fooling set
//!   `{(S, S̄)}_{S ⊆ [n]}` of size `2^n`, forcing `n` bits
//!   deterministically (and `Ω(n)` even two-way);
//! * exhaustive verification of both on every `n` small enough to
//!   enumerate.

/// The communication matrix of a Boolean function on `n`-bit inputs:
/// `M[x][y] = f(x, y)`. Exponential in `n`; keep `n ≤ 12`.
pub fn communication_matrix(n: usize, f: impl Fn(usize, usize) -> bool) -> Vec<Vec<bool>> {
    assert!(n <= 12, "matrix would be too large");
    let size = 1usize << n;
    (0..size)
        .map(|x| (0..size).map(|y| f(x, y)).collect())
        .collect()
}

/// Exact one-way deterministic communication complexity:
/// `⌈log₂ (#distinct rows)⌉`. (Alice must identify her row's equivalence
/// class; distinct rows need distinct messages, and sending the class
/// index suffices.)
pub fn one_way_deterministic_cost(matrix: &[Vec<bool>]) -> usize {
    let mut rows: Vec<&Vec<bool>> = matrix.iter().collect();
    rows.sort();
    rows.dedup();
    let distinct = rows.len();
    usize::BITS as usize - (distinct.max(1) - 1).leading_zeros() as usize
}

/// `DISJ_n` as a function on bit-mask encodings: disjoint iff `x & y = 0`.
pub fn disj_fn(x: usize, y: usize) -> bool {
    x & y == 0
}

/// Checks that `pairs` is a fooling set for `f` with value `v`:
/// `f(x_i, y_i) = v` for all `i`, and for every `i ≠ j`,
/// `f(x_i, y_j) ≠ v` or `f(x_j, y_i) ≠ v`.
pub fn verify_fooling_set(
    pairs: &[(usize, usize)],
    v: bool,
    f: impl Fn(usize, usize) -> bool,
) -> bool {
    if pairs.iter().any(|&(x, y)| f(x, y) != v) {
        return false;
    }
    for i in 0..pairs.len() {
        for j in 0..pairs.len() {
            if i != j {
                let (xi, _) = pairs[i];
                let (_, yj) = pairs[j];
                let (xj, _) = pairs[j];
                let (_, yi) = pairs[i];
                if f(xi, yj) == v && f(xj, yi) == v {
                    return false;
                }
            }
        }
    }
    true
}

/// The canonical `DISJ_n` fooling set `{(S, S̄) : S ⊆ [n]}` of size `2^n`
/// (each set paired with its complement is disjoint; mixing two different
/// pairs always creates an intersection on one side).
pub fn disj_fooling_set(n: usize) -> Vec<(usize, usize)> {
    assert!(n <= 20);
    let full = (1usize << n) - 1;
    (0..=full).map(|s| (s, full ^ s)).collect()
}

/// Fooling-set lower bound on *deterministic two-way* communication:
/// `⌈log₂ |fooling set|⌉`.
pub fn fooling_set_bound(set_size: usize) -> usize {
    usize::BITS as usize - (set_size.max(1) - 1).leading_zeros() as usize
}

/// Binary entropy `H(ε)`.
pub fn binary_entropy(eps: f64) -> f64 {
    if eps <= 0.0 || eps >= 1.0 {
        return 0.0;
    }
    -eps * eps.log2() - (1.0 - eps) * (1.0 - eps).log2()
}

/// Nayak-style lower bound on *bounded-error one-way* communication: a
/// protocol for `f` with error `ε` must send at least
/// `(1 − H(ε)) · log₂(#distinct rows)` bits (the message must let Bob
/// recover Alice's row class up to error `ε`, so it carries that much
/// information). For `DISJ_n` the row count is `2^n`, giving the
/// `Ω(n)` *one-way randomized* bound that Theorem 3.6 needs in its
/// weakest usable form (the paper imports the stronger two-way
/// Kalyanasundaram–Schnitger bound).
pub fn one_way_randomized_lower_bound(matrix: &[Vec<bool>], eps: f64) -> f64 {
    let mut rows: Vec<&Vec<bool>> = matrix.iter().collect();
    rows.sort();
    rows.dedup();
    (1.0 - binary_entropy(eps)) * (rows.len().max(1) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disj_one_way_cost_is_exactly_n() {
        for n in 1..=8usize {
            let m = communication_matrix(n, disj_fn);
            // All 2^n rows of DISJ are distinct (row x determines {y : x∩y=∅},
            // which determines x), so the cost is exactly n.
            assert_eq!(one_way_deterministic_cost(&m), n, "n={n}");
        }
    }

    #[test]
    fn equality_one_way_cost_is_also_n() {
        // EQ has 2^n distinct rows too (each row is an indicator).
        for n in 1..=6usize {
            let m = communication_matrix(n, |x, y| x == y);
            assert_eq!(one_way_deterministic_cost(&m), n);
        }
    }

    #[test]
    fn constant_function_is_free() {
        let m = communication_matrix(4, |_, _| true);
        assert_eq!(one_way_deterministic_cost(&m), 0);
    }

    #[test]
    fn single_bit_function() {
        // f(x,y) = lsb(x): two distinct rows → 1 bit.
        let m = communication_matrix(4, |x, _| x & 1 == 1);
        assert_eq!(one_way_deterministic_cost(&m), 1);
    }

    #[test]
    fn disj_fooling_set_verifies() {
        for n in 1..=8usize {
            let set = disj_fooling_set(n);
            assert_eq!(set.len(), 1usize << n);
            assert!(verify_fooling_set(&set, true, disj_fn), "n={n}");
            assert_eq!(fooling_set_bound(set.len()), n);
        }
    }

    #[test]
    fn broken_fooling_set_rejected() {
        // {(01,01)} has f = false ≠ v=true.
        assert!(!verify_fooling_set(&[(1, 1)], true, disj_fn));
        // Two pairs that don't fool each other: (00, 00) and (00, 11) —
        // cross pairs still disjoint.
        assert!(!verify_fooling_set(&[(0, 0), (0, 3)], true, disj_fn));
    }

    #[test]
    fn fooling_bound_edges() {
        assert_eq!(fooling_set_bound(1), 0);
        assert_eq!(fooling_set_bound(2), 1);
        assert_eq!(fooling_set_bound(3), 2);
        assert_eq!(fooling_set_bound(256), 8);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_matrix_panics() {
        communication_matrix(13, disj_fn);
    }

    #[test]
    fn binary_entropy_shape() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!((binary_entropy(1.0 / 3.0) - binary_entropy(2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn randomized_one_way_bound_is_linear_for_disj() {
        for n in 2..=8usize {
            let m = communication_matrix(n, disj_fn);
            let lb = one_way_randomized_lower_bound(&m, 1.0 / 3.0);
            // (1 − H(1/3))·n ≈ 0.082·n, and exactly linear in n.
            let coeff = 1.0 - binary_entropy(1.0 / 3.0);
            assert!((lb - coeff * n as f64).abs() < 1e-9, "n={n}");
        }
        // Error 0 recovers the deterministic n-bit bound.
        let m = communication_matrix(6, disj_fn);
        assert!((one_way_randomized_lower_bound(&m, 0.0) - 6.0).abs() < 1e-9);
        // Error 1/2 makes the bound vacuous.
        assert!(one_way_randomized_lower_bound(&m, 0.5).abs() < 1e-9);
    }
}
