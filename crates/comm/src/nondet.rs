//! Nondeterministic communication complexity (the paper's Section 1
//! context).
//!
//! The introduction situates the main result against *nondeterministic*
//! separations: de Wolf's exponential gap for nondeterministic one-way
//! complexity transfers to online space "immediately", but
//! "nondeterminism is an unrealistic model". This module supplies the
//! machinery behind those remarks so the comparison is executable:
//!
//! * nondeterministic communication cost = `⌈log₂` (minimum number of
//!   monochromatic 1-rectangles covering the 1s of the matrix)`⌉`;
//!   computed here by exact branch-and-bound on tiny matrices and by a
//!   greedy cover everywhere (an upper bound on the optimum);
//! * the canonical witness protocols: `NE` (non-equality) has an
//!   `O(log n)` nondeterministic protocol — guess a differing index —
//!   while `EQ`'s 1s admit no large rectangles (every 1-rectangle is a
//!   single diagonal cell), forcing cost `n`. The asymmetry `NE ≪ EQ`
//!   is the nondeterministic shadow of the paper's bounded-error
//!   asymmetry `DISJ ≫ equality-testing`.

/// A combinatorial rectangle `R = A × B`, rows × columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rectangle {
    /// Row set (Alice inputs).
    pub rows: Vec<usize>,
    /// Column set (Bob inputs).
    pub cols: Vec<usize>,
}

impl Rectangle {
    /// True when the rectangle is monochromatically 1 in `matrix`.
    pub fn is_one_monochromatic(&self, matrix: &[Vec<bool>]) -> bool {
        self.rows
            .iter()
            .all(|&r| self.cols.iter().all(|&c| matrix[r][c]))
    }

    /// Number of cells covered.
    pub fn size(&self) -> usize {
        self.rows.len() * self.cols.len()
    }
}

/// Greedy 1-cover: repeatedly grow a maximal 1-rectangle from the first
/// uncovered 1. Returns the rectangles; `⌈log₂ count⌉` upper-bounds the
/// nondeterministic cost.
pub fn greedy_one_cover(matrix: &[Vec<bool>]) -> Vec<Rectangle> {
    let rows = matrix.len();
    let cols = if rows == 0 { 0 } else { matrix[0].len() };
    let mut covered = vec![vec![false; cols]; rows];
    let mut cover = Vec::new();
    loop {
        // First uncovered 1.
        let mut seed = None;
        'scan: for r in 0..rows {
            for c in 0..cols {
                if matrix[r][c] && !covered[r][c] {
                    seed = Some((r, c));
                    break 'scan;
                }
            }
        }
        let Some((r0, c0)) = seed else { break };
        // Grow columns first: all c with matrix[r0][c] = 1.
        let rect_cols: Vec<usize> = (0..cols).filter(|&c| matrix[r0][c]).collect();
        // Then all rows that are 1 on every chosen column.
        let rect_rows: Vec<usize> = (0..rows)
            .filter(|&r| rect_cols.iter().all(|&c| matrix[r][c]))
            .collect();
        debug_assert!(rect_rows.contains(&r0) && rect_cols.contains(&c0));
        for &r in &rect_rows {
            for &c in &rect_cols {
                covered[r][c] = true;
            }
        }
        cover.push(Rectangle {
            rows: rect_rows,
            cols: rect_cols,
        });
    }
    cover
}

/// Verifies that `cover` is a legal 1-cover of `matrix`: every rectangle
/// monochromatic-1, every 1 covered.
pub fn verify_one_cover(matrix: &[Vec<bool>], cover: &[Rectangle]) -> bool {
    if !cover.iter().all(|r| r.is_one_monochromatic(matrix)) {
        return false;
    }
    for (r, row) in matrix.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            if v && !cover
                .iter()
                .any(|rect| rect.rows.contains(&r) && rect.cols.contains(&c))
            {
                return false;
            }
        }
    }
    true
}

/// Nondeterministic communication cost from a cover size:
/// `⌈log₂ count⌉` bits (the prover names the rectangle).
pub fn nondet_cost_from_cover(count: usize) -> usize {
    usize::BITS as usize - (count.max(1) - 1).leading_zeros() as usize
}

/// Exact minimum 1-cover size by branch-and-bound over maximal
/// rectangles. Exponential; keep matrices at `≤ 16 × 16`.
pub fn exact_min_one_cover(matrix: &[Vec<bool>]) -> usize {
    let rows = matrix.len();
    let cols = if rows == 0 { 0 } else { matrix[0].len() };
    assert!(rows <= 16 && cols <= 16, "matrix too large for exact cover");
    // Candidate rectangles: for every row subset is too much; instead use
    // column-set-driven maximal rectangles: for each row r, its 1-columns
    // C_r; candidate col-sets are intersections of row col-sets, found by
    // closing over single rows (sufficient for covers by maximal rects).
    let row_cols: Vec<u32> = matrix
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .fold(0u32, |m, (c, &v)| if v { m | (1 << c) } else { m })
        })
        .collect();
    // Every maximal 1-rectangle A × B has B = ∩_{r∈A} C_r, so the
    // candidate column sets are the closure of {C_r} under intersection
    // (computed to a fixpoint, capped: beyond the cap we fall back to the
    // greedy upper bound, which the assert below documents).
    let mut col_sets: Vec<u32> = Vec::new();
    for &a in &row_cols {
        if a != 0 && !col_sets.contains(&a) {
            col_sets.push(a);
        }
    }
    loop {
        let before = col_sets.len();
        let snapshot = col_sets.clone();
        'outer: for &a in &snapshot {
            for &b in &snapshot {
                let inter = a & b;
                if inter != 0 && !col_sets.contains(&inter) {
                    col_sets.push(inter);
                    if col_sets.len() > 4096 {
                        break 'outer;
                    }
                }
            }
        }
        if col_sets.len() == before || col_sets.len() > 4096 {
            break;
        }
    }
    // Each col-set induces the maximal rectangle (rows ⊇ colset, colset).
    let mut rect_cells: Vec<Vec<(usize, usize)>> = Vec::new();
    for &cs in &col_sets {
        let rect_rows: Vec<usize> = (0..rows).filter(|&r| row_cols[r] & cs == cs).collect();
        let mut cells = Vec::new();
        for &r in &rect_rows {
            for c in 0..cols {
                if cs & (1 << c) != 0 {
                    cells.push((r, c));
                }
            }
        }
        rect_cells.push(cells);
    }
    let ones: Vec<(usize, usize)> = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| (r, c)))
        .filter(|&(r, c)| matrix[r][c])
        .collect();
    if ones.is_empty() {
        return 0;
    }
    // Branch and bound: cover `ones` with fewest rect_cells sets. The
    // node budget keeps the worst case bounded; when it is exhausted the
    // greedy value (an upper bound on the optimum) is returned, which the
    // callers' assertions treat as such.
    let greedy = greedy_one_cover(matrix).len();
    let mut best = greedy;
    let mut covered: Vec<Vec<bool>> = vec![vec![false; cols]; rows];
    let mut budget: u64 = 2_000_000;
    fn bnb(
        ones: &[(usize, usize)],
        rects: &[Vec<(usize, usize)>],
        covered: &mut Vec<Vec<bool>>,
        used: usize,
        best: &mut usize,
        budget: &mut u64,
    ) {
        if *budget == 0 || used >= *best {
            return;
        }
        *budget -= 1;
        let Some(&(r0, c0)) = ones.iter().find(|&&(r, c)| !covered[r][c]) else {
            *best = used;
            return;
        };
        // Try every rectangle containing the first uncovered cell, largest
        // first (better pruning).
        let mut candidates: Vec<&Vec<(usize, usize)>> = rects
            .iter()
            .filter(|cells| cells.contains(&(r0, c0)))
            .collect();
        candidates.sort_by_key(|cells| std::cmp::Reverse(cells.len()));
        for cells in candidates {
            let newly: Vec<(usize, usize)> = cells
                .iter()
                .copied()
                .filter(|&(r, c)| !covered[r][c])
                .collect();
            for &(r, c) in &newly {
                covered[r][c] = true;
            }
            bnb(ones, rects, covered, used + 1, best, budget);
            for &(r, c) in &newly {
                covered[r][c] = false;
            }
        }
    }
    bnb(&ones, &rect_cells, &mut covered, 0, &mut best, &mut budget);
    best
}

/// The explicit 2n-rectangle cover of `NE_n`: for each index `i` and bit
/// `b`, the rectangle `{x : x_i = b} × {y : y_i = ¬b}`. Verified legal by
/// [`verify_one_cover`]; it certifies nondeterministic cost
/// `≤ ⌈log₂ 2n⌉`, matching the guess protocol.
pub fn ne_explicit_cover(n: usize) -> Vec<Rectangle> {
    assert!((1..=12).contains(&n));
    let size = 1usize << n;
    let mut cover = Vec::with_capacity(2 * n);
    for i in 0..n {
        for b in [0usize, 1] {
            cover.push(Rectangle {
                rows: (0..size).filter(|x| (x >> i) & 1 == b).collect(),
                cols: (0..size).filter(|y| (y >> i) & 1 != b).collect(),
            });
        }
    }
    cover
}

/// The `NE_n` (non-equality) matrix.
pub fn ne_matrix(n: usize) -> Vec<Vec<bool>> {
    crate::lower_bound::communication_matrix(n, |x, y| x != y)
}

/// The `EQ_n` matrix.
pub fn eq_matrix(n: usize) -> Vec<Vec<bool>> {
    crate::lower_bound::communication_matrix(n, |x, y| x == y)
}

/// The canonical `NE` nondeterministic protocol cost: guess an index and
/// a bit (`⌈log₂ n⌉ + 1` bits) — exponentially below `EQ`'s `n`.
pub fn ne_guess_protocol_bits(n: usize) -> usize {
    (usize::BITS as usize - (n.max(1) - 1).leading_zeros() as usize) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_cover_is_legal() {
        for n in 1..=4usize {
            for m in [ne_matrix(n), eq_matrix(n)] {
                let cover = greedy_one_cover(&m);
                assert!(verify_one_cover(&m, &cover), "n={n}");
            }
        }
    }

    #[test]
    fn exact_cover_on_small_matrices() {
        // EQ at n ≤ 2: each 1 needs its own rectangle.
        for n in 1..=2usize {
            let m = eq_matrix(n);
            let exact = exact_min_one_cover(&m);
            assert_eq!(exact, 1 << n, "n={n}");
            assert_eq!(nondet_cost_from_cover(exact), n);
        }
        // NE at n = 2: the explicit 4-rectangle cover is optimal up to
        // the exact search's verdict (which may also find 4 or fewer).
        let exact = exact_min_one_cover(&ne_matrix(2));
        assert!(exact <= 4, "exact NE_2 cover {exact}");
        // All-ones matrix: one rectangle.
        let ones = vec![vec![true; 4]; 4];
        assert_eq!(exact_min_one_cover(&ones), 1);
    }

    #[test]
    fn ne_explicit_cover_is_legal_and_logarithmic() {
        // NE is covered by 2n explicit rectangles: {x_i = b} × {y_i = ¬b}.
        for n in 1..=6usize {
            let m = ne_matrix(n);
            let cover = ne_explicit_cover(n);
            assert_eq!(cover.len(), 2 * n);
            assert!(verify_one_cover(&m, &cover), "n={n}");
            assert!(nondet_cost_from_cover(cover.len()) <= ne_guess_protocol_bits(n));
        }
    }

    #[test]
    fn eq_min_cover_is_exponential() {
        // Every 1-rectangle of EQ is a single diagonal cell (any rectangle
        // with two rows/columns contains an off-diagonal 0), so the min
        // cover is exactly 2^n: certified via the greedy cover (all
        // singletons) plus the structural check.
        for n in 1..=4usize {
            let m = eq_matrix(n);
            let greedy = greedy_one_cover(&m);
            assert_eq!(greedy.len(), 1 << n, "n={n}");
            assert!(greedy.iter().all(|r| r.size() == 1));
            assert_eq!(nondet_cost_from_cover(greedy.len()), n);
        }
    }

    #[test]
    fn nondet_asymmetry_ne_vs_eq() {
        // The Section-1 asymmetry, quantified: NE costs ⌈log 2n⌉
        // nondeterministically, EQ costs n — exponentially apart.
        // ⌈log₂ 2n⌉ < n from n = 5 on (at n ≤ 4 the small constants tie).
        for n in [5usize, 6, 8, 12] {
            let ne = nondet_cost_from_cover(ne_explicit_cover(n).len());
            let eq = n; // from eq_min_cover_is_exponential
            assert!(ne < eq, "n={n}: NE {ne} must beat EQ {eq}");
        }
    }

    #[test]
    fn empty_matrix_needs_no_cover() {
        let m = vec![vec![false; 4]; 4];
        assert_eq!(greedy_one_cover(&m).len(), 0);
        assert_eq!(exact_min_one_cover(&m), 0);
        assert_eq!(nondet_cost_from_cover(0), 0);
    }

    #[test]
    fn rectangle_checks() {
        let m = eq_matrix(2);
        let good = Rectangle {
            rows: vec![1],
            cols: vec![1],
        };
        assert!(good.is_one_monochromatic(&m));
        assert_eq!(good.size(), 1);
        let bad = Rectangle {
            rows: vec![0, 1],
            cols: vec![0, 1],
        };
        assert!(!bad.is_one_monochromatic(&m));
    }
}
