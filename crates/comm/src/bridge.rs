//! The forward bridge: one-way protocols → online algorithms.
//!
//! Section 1 of the paper observes that "any separation of quantum and
//! classical one-way two-party communication complexity for a total
//! function gives immediately, *under the assumption that the
//! computational part of the communication protocol can be done
//! space-efficiently*, a separation of quantum and classical online space
//! complexity". This module implements that observation as a generic
//! adapter: a [`StreamingOneWayProtocol`] is a one-way protocol whose
//! Alice side is computed by a streaming sketch of her input; the adapter
//! [`OneWayDecider`] turns it into an online decider for the split
//! language `{ x#y : f(x, y) = 1 }`, whose space is exactly the message
//! length plus the sketch state — making the paper's "immediately"
//! executable and meterable.
//!
//! The fingerprint equality protocol instantiates it: `EQ`'s `O(log m)`
//! one-way protocol becomes an `O(log m)` streaming recognizer of
//! `{ x#x }`, while the Nerode floor (`oqsc-machine::nerode`) shows
//! *exact* deciders for the same language need `m` bits — randomness is
//! doing real work, and the same mechanism with quantum messages is
//! Theorem 3.4.

use crate::protocol::{Party, Transcript};
use oqsc_lang::Sym;
use oqsc_machine::streaming::StreamingDecider;

/// A one-way protocol whose message is produced by streaming over
/// Alice's input and whose verdict is produced by streaming Bob's input
/// against the received message.
pub trait StreamingOneWayProtocol {
    /// Alice's streaming state (the sketch of `x` so far).
    type AliceState;
    /// Bob's streaming state (message + running comparison).
    type BobState;

    /// Fresh Alice state.
    fn alice_init(&self) -> Self::AliceState;
    /// Alice consumes one bit of `x`.
    fn alice_feed(&self, state: &mut Self::AliceState, bit: bool);
    /// Alice's message, and its length in bits (what the one-way
    /// protocol charges).
    fn message(&self, state: &Self::AliceState) -> (Vec<u8>, usize);
    /// Bob receives the message.
    fn bob_init(&self, message: &[u8]) -> Self::BobState;
    /// Bob consumes one bit of `y`.
    fn bob_feed(&self, state: &mut Self::BobState, bit: bool);
    /// Bob's verdict.
    fn bob_decide(&self, state: &Self::BobState) -> bool;
    /// Space of the streaming states, in bits (for the online machine's
    /// meter).
    fn state_bits(&self) -> usize;
}

/// The online decider for `{ x#y : protocol accepts (x, y) }` induced by
/// a streaming one-way protocol — the paper's §1 observation as a type.
pub struct OneWayDecider<P: StreamingOneWayProtocol> {
    protocol: P,
    alice: Option<P::AliceState>,
    bob: Option<P::BobState>,
    transcript: Transcript,
    malformed: bool,
}

impl<P: StreamingOneWayProtocol> OneWayDecider<P> {
    /// Wraps a protocol.
    pub fn new(protocol: P) -> Self {
        let alice = protocol.alice_init();
        OneWayDecider {
            protocol,
            alice: Some(alice),
            bob: None,
            transcript: Transcript::new(),
            malformed: false,
        }
    }

    /// The communication transcript of the induced protocol run (one
    /// message; its size is the online machine's extra space).
    pub fn transcript(&self) -> &Transcript {
        &self.transcript
    }
}

impl<P: StreamingOneWayProtocol> StreamingDecider for OneWayDecider<P> {
    fn feed(&mut self, sym: Sym) {
        if self.malformed {
            return;
        }
        match (sym, self.bob.is_some()) {
            (Sym::Hash, false) => {
                // The split: Alice sends; Bob takes over.
                let alice = self.alice.take().expect("alice active");
                let (message, bits) = self.protocol.message(&alice);
                self.transcript.send_classical(Party::Alice, bits);
                self.bob = Some(self.protocol.bob_init(&message));
            }
            (Sym::Hash, true) => self.malformed = true, // second '#'
            (bit_sym, false) => {
                let bit = bit_sym == Sym::One;
                self.protocol
                    .alice_feed(self.alice.as_mut().expect("alice active"), bit);
            }
            (bit_sym, true) => {
                let bit = bit_sym == Sym::One;
                self.protocol
                    .bob_feed(self.bob.as_mut().expect("bob active"), bit);
            }
        }
    }

    fn decide(&mut self) -> bool {
        if self.malformed {
            return false;
        }
        match &self.bob {
            Some(bob) => self.protocol.bob_decide(bob),
            None => false, // no '#' ever arrived
        }
    }

    fn space_bits(&self) -> usize {
        self.protocol.state_bits()
    }

    fn snapshot(&self) -> Vec<u8> {
        // The configuration at any time is the streaming state; for the
        // reduction accounting the message length is the honest size.
        match &self.alice {
            Some(a) => self.protocol.message(a).0,
            None => vec![1],
        }
    }
}

/// The fingerprint equality protocol as a [`StreamingOneWayProtocol`]:
/// Alice streams `F_x(t)`, sends `(value, length)`; Bob streams `F_y(t)`
/// and compares. `O(log p)` bits end to end.
pub struct FingerprintEqProtocol {
    /// The prime modulus.
    pub p: u64,
    /// The shared evaluation point (public coin).
    pub t: u64,
}

/// Bob's state for [`FingerprintEqProtocol`].
pub struct FpBobState {
    expect_value: u64,
    expect_len: u64,
    fp: oqsc_fingerprint::StreamingFingerprint,
}

impl StreamingOneWayProtocol for FingerprintEqProtocol {
    type AliceState = oqsc_fingerprint::StreamingFingerprint;
    type BobState = FpBobState;

    fn alice_init(&self) -> Self::AliceState {
        oqsc_fingerprint::StreamingFingerprint::new(self.p, self.t)
    }

    fn alice_feed(&self, state: &mut Self::AliceState, bit: bool) {
        state.feed(bit);
    }

    fn message(&self, state: &Self::AliceState) -> (Vec<u8>, usize) {
        let mut out = state.value().to_le_bytes().to_vec();
        out.extend_from_slice(&(state.len() as u64).to_le_bytes());
        // Charged bits: fingerprint (⌈log p⌉) + length (⌈log len⌉).
        let bits = oqsc_fingerprint::ceil_log2(self.p) as usize
            + oqsc_fingerprint::ceil_log2(state.len().max(1) as u64 + 1) as usize;
        (out, bits)
    }

    fn bob_init(&self, message: &[u8]) -> Self::BobState {
        let expect_value = u64::from_le_bytes(message[0..8].try_into().expect("8 bytes"));
        let expect_len = u64::from_le_bytes(message[8..16].try_into().expect("8 bytes"));
        FpBobState {
            expect_value,
            expect_len,
            fp: oqsc_fingerprint::StreamingFingerprint::new(self.p, self.t),
        }
    }

    fn bob_feed(&self, state: &mut Self::BobState, bit: bool) {
        state.fp.feed(bit);
    }

    fn bob_decide(&self, state: &Self::BobState) -> bool {
        state.fp.len() as u64 == state.expect_len && state.fp.value() == state.expect_value
    }

    fn state_bits(&self) -> usize {
        4 * oqsc_fingerprint::ceil_log2(self.p) as usize + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_lang::token::from_str;
    use oqsc_machine::nerode::{nerode_classes_at, streaming_space_floor_bits};
    use oqsc_machine::run_decider;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn eq_decider(t: u64) -> OneWayDecider<FingerprintEqProtocol> {
        OneWayDecider::new(FingerprintEqProtocol { p: 257, t })
    }

    fn syms(s: &str) -> Vec<Sym> {
        from_str(s).expect("valid")
    }

    #[test]
    fn equality_words_accepted_for_every_point() {
        for t in 0..257u64 {
            let v = run_decider(eq_decider(t), &syms("10110#10110")).accept;
            assert!(v, "t={t}");
        }
    }

    #[test]
    fn unequal_words_rejected_whp() {
        let mut rng = StdRng::seed_from_u64(210);
        let mut false_accepts = 0;
        for _ in 0..300 {
            let t = rng.gen_range(0..257);
            let v = run_decider(eq_decider(t), &syms("10110#10111")).accept;
            if v {
                false_accepts += 1;
            }
        }
        // ≤ (m−1)/p ≈ 1.6% expected.
        assert!(false_accepts <= 15, "false accepts {false_accepts}");
    }

    #[test]
    fn length_mismatch_rejected_always() {
        for t in 0..50u64 {
            let v = run_decider(eq_decider(t), &syms("1011#10110")).accept;
            assert!(!v);
        }
    }

    #[test]
    fn malformed_split_rejected() {
        let v = run_decider(eq_decider(3), &syms("10#1#0")).accept;
        assert!(!v);
        let v = run_decider(eq_decider(3), &syms("10110")).accept;
        assert!(!v, "no separator");
    }

    #[test]
    fn induced_machine_is_logarithmic_but_exact_deciders_are_not() {
        // The paper's §1 bridge, quantified end to end: the induced online
        // machine uses O(log) bits while the Nerode floor for EXACT
        // deciders of { x#x : |x| = n } is n bits.
        let mut d = eq_decider(42);
        d.feed_all(&syms("101101#101101"));
        let space = d.space_bits();
        assert!(space < 64, "induced machine space {space}");
        assert_eq!(d.transcript().num_messages(), 1);
        assert!(d.transcript().is_one_way());

        let n = 4usize;
        let classes = nerode_classes_at(2 * n + 1, n + 1, |w| {
            w.len() == 2 * n + 1
                && w[n] == Sym::Hash
                && w[..n].iter().all(|s| s.bit().is_some())
                && w[..n] == w[n + 1..]
        });
        let exact_floor = streaming_space_floor_bits(classes);
        assert!(exact_floor >= n, "exact equality needs ≥ n bits");
    }

    #[test]
    fn message_is_logarithmic_in_input() {
        let mut d = eq_decider(1);
        let long: String = "10".repeat(60) + "#" + &"10".repeat(60);
        d.feed_all(&syms(&long));
        assert!(d.decide());
        // Message: ⌈log 257⌉ + ⌈log 121⌉ = 9 + 7 bits.
        assert_eq!(d.transcript().total_bits(), 16);
    }
}
