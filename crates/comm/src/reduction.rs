//! The Theorem 3.6 reduction: online machines → one-way protocols.
//!
//! The paper converts any OPTM `M` recognizing `L_DISJ` into a
//! communication protocol for `DISJ_{2^{2k}}`: the input
//! `1^k#(x#y#x#)^{2^k}` alternates segments known to Alice (`1^k#x#`,
//! `x#`) and to Bob (`y#`), so the owner of each segment simulates `M`
//! across it and sends the reached *configuration* to the other party —
//! `3·2^k − 1` messages in total. Since `R(DISJ_{2^{2k}}) = Ω(2^{2k})`
//! (Theorem 3.2) some message must carry `Ω(2^{2k}/(3·2^k − 1)) = Ω(2^k)`
//! bits, and by Fact 2.2 a configuration of an `s`-space machine encodes
//! in `O(s + log n)` bits, forcing `s = Ω(2^k) = Ω(n^{1/3})`.
//!
//! This module makes each arrow executable:
//!
//! * [`simulate_reduction`] runs any [`StreamingDecider`] over an encoded
//!   instance, snapshotting at the paper's segment boundaries — the
//!   snapshot sizes *are* the induced message sizes;
//! * [`optm_reduction`] does the same exactly on a transition-table
//!   [`Optm`], enumerating the reachable boundary configurations
//!   (`C^{(i)}` in the proof) and their exact probabilities;
//! * [`space_lower_bound_bits`] inverts Fact 2.2 to recover the space
//!   bound implied by a communication requirement.

use oqsc_lang::{encoded_len, LdisjInstance};
use oqsc_machine::optm::{Configuration, Optm};
use oqsc_machine::streaming::StreamingDecider;
use std::collections::HashSet;

/// Where the paper's messages happen: the boundary after the prefix-plus-
/// first-block segment and after every later block.
///
/// Returns the positions (symbol counts) at which a snapshot is taken; the
/// final position (end of input) is *not* a message — the last owner
/// outputs instead. Length: `3·2^k − 1`.
pub fn message_boundaries(k: u32) -> Vec<usize> {
    let m = oqsc_lang::string_len(k);
    let prefix = k as usize + 1;
    let blocks = 3 * (1usize << k);
    // Boundary after block j (1-based) is prefix + j·(m+1).
    (1..blocks).map(|j| prefix + j * (m + 1)).collect()
}

/// Which party owns the segment *ending* at boundary `i` (0-based):
/// segments run `x, y, x | x, y, x | …`, with Alice owning the `x`
/// segments and Bob the `y` segments. The first segment (`1^k#x#`) is
/// Alice's.
pub fn segment_owner(i: usize) -> crate::protocol::Party {
    if i % 3 == 1 {
        crate::protocol::Party::Bob
    } else {
        crate::protocol::Party::Alice
    }
}

/// Report of the induced one-way-per-segment protocol for a concrete
/// streaming decider.
#[derive(Clone, Debug, PartialEq)]
pub struct ReductionReport {
    /// Language parameter.
    pub k: u32,
    /// Messages sent (`3·2^k − 1`).
    pub num_messages: usize,
    /// Largest message (bits).
    pub max_message_bits: usize,
    /// Total communication (bits).
    pub total_bits: usize,
    /// Peak work space of the decider (bits), for the space↔communication
    /// comparison.
    pub decider_space_bits: usize,
    /// The decider's verdict on this instance.
    pub verdict: bool,
}

/// Runs `decider` over the encoded instance, snapshotting at each of the
/// paper's message boundaries.
pub fn simulate_reduction<D: StreamingDecider>(
    mut decider: D,
    inst: &LdisjInstance,
) -> ReductionReport {
    let word = inst.encode();
    debug_assert_eq!(word.len(), encoded_len(inst.k()));
    let boundaries = message_boundaries(inst.k());
    let mut next_boundary = 0usize;
    let mut max_message_bits = 0usize;
    let mut total_bits = 0usize;
    for (pos, &sym) in word.iter().enumerate() {
        decider.feed(sym);
        if next_boundary < boundaries.len() && pos + 1 == boundaries[next_boundary] {
            let bits = decider.snapshot().len() * 8;
            max_message_bits = max_message_bits.max(bits);
            total_bits += bits;
            next_boundary += 1;
        }
    }
    assert_eq!(next_boundary, boundaries.len(), "missed a boundary");
    let verdict = decider.decide();
    ReductionReport {
        k: inst.k(),
        num_messages: boundaries.len(),
        max_message_bits,
        total_bits,
        decider_space_bits: decider.space_bits(),
        verdict,
    }
}

/// Exact per-boundary reachable-configuration counts for a transition-table
/// machine: the proof's `|C^{(i)}|`, over the given instances (the paper
/// takes all inputs of the form (2); we take the union over a sample).
#[derive(Clone, Debug, PartialEq)]
pub struct OptmReductionReport {
    /// Language parameter.
    pub k: u32,
    /// Distinct reachable configurations at each boundary, unioned over
    /// the instances.
    pub distinct_per_boundary: Vec<usize>,
    /// Induced communication: `Σ_i ⌈log₂ |C⁽ⁱ⁾|⌉` bits.
    pub total_bits: usize,
    /// Probability mass lost to non-halting/diverging branches (the
    /// protocol's "output 0" escape hatch), maximized over instances.
    pub max_lost_mass: f64,
}

/// Enumerates boundary configurations of `machine` on each instance and
/// unions them per boundary.
pub fn optm_reduction(
    machine: &Optm,
    instances: &[LdisjInstance],
    max_steps_per_segment: usize,
) -> OptmReductionReport {
    assert!(!instances.is_empty());
    let k = instances[0].k();
    assert!(instances.iter().all(|i| i.k() == k), "mixed k");
    let boundaries = message_boundaries(k);
    let mut sets: Vec<HashSet<Configuration>> = vec![HashSet::new(); boundaries.len()];
    let mut max_lost = 0.0f64;
    for inst in instances {
        let word = inst.encode();
        // Current configuration support (probabilities are tracked only to
        // find positive-probability configurations).
        let mut support: Vec<Configuration> = vec![Configuration::initial(0)];
        let mut start = 0usize;
        let mut lost_total = 0.0;
        for (b_idx, &boundary) in boundaries.iter().enumerate() {
            let segment = &word[start..boundary];
            let mut next: HashSet<Configuration> = HashSet::new();
            for cfg in &support {
                let (crossed, lost) =
                    machine.boundary_configurations(cfg, segment, max_steps_per_segment);
                lost_total += lost;
                for c in crossed.keys() {
                    next.insert(c.clone());
                }
            }
            sets[b_idx].extend(next.iter().cloned());
            support = next.into_iter().collect();
            start = boundary;
        }
        max_lost = max_lost.max(lost_total);
    }
    let distinct: Vec<usize> = sets.iter().map(HashSet::len).collect();
    let total_bits = distinct
        .iter()
        .map(|&d| (usize::BITS - (d.max(1) - 1).leading_zeros()) as usize)
        .sum();
    OptmReductionReport {
        k,
        distinct_per_boundary: distinct,
        total_bits,
        max_lost_mass: max_lost,
    }
}

/// Inverts Fact 2.2: the least space `s` such that an `s`-space machine on
/// length-`n` inputs with `q` control states can even *have*
/// `2^{required_bits}` distinct configurations, i.e. the least `s` with
/// `log₂(n · s · 3^s · q) ≥ required_bits`.
pub fn space_lower_bound_bits(required_bits: f64, n: usize, q: usize) -> usize {
    let mut s = 1usize;
    while oqsc_machine::fact_2_2_log2_configs(n, s, 3, q) < required_bits {
        s += 1;
        if s > 1 << 30 {
            break;
        }
    }
    s
}

/// The end-to-end Theorem 3.6 bound: with `R(DISJ_{2^{2k}}) ≥ c · 2^{2k}`
/// bits (Theorem 3.2), a `q`-state machine recognizing `L_DISJ` on inputs
/// of length `n(k)` needs at least this much work space (in tape cells).
pub fn theorem_3_6_space_bound(k: u32, c: f64, q: usize) -> usize {
    let required_total = c * (1u64 << (2 * k)) as f64;
    let messages = (3 * (1usize << k) - 1) as f64;
    let per_message = required_total / messages;
    space_lower_bound_bits(per_message, encoded_len(k), q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Party;
    use oqsc_lang::Sym;
    use oqsc_lang::{random_member, random_nonmember};
    use oqsc_machine::machine_even_ones;
    use oqsc_machine::streaming::{StoreEverything, StorePredicate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn boundary_positions_k1() {
        // k=1: prefix 2, m=4, blocks of 5: boundaries at 7,12,17,22,27.
        assert_eq!(message_boundaries(1), vec![7, 12, 17, 22, 27]);
        assert_eq!(message_boundaries(1).len(), 3 * 2 - 1);
        assert_eq!(message_boundaries(2).len(), 3 * 4 - 1);
    }

    #[test]
    fn boundaries_inside_word() {
        for k in 1..=4u32 {
            let n = encoded_len(k);
            let bs = message_boundaries(k);
            assert!(bs.iter().all(|&b| b < n));
            assert!(bs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn owners_alternate_in_triples() {
        // Segments: (1^k#x#), y#, x# | x#, y#, x# … owner pattern A,B,A,A,B,A…
        let owners: Vec<Party> = (0..6).map(segment_owner).collect();
        assert_eq!(
            owners,
            vec![
                Party::Alice,
                Party::Bob,
                Party::Alice,
                Party::Alice,
                Party::Bob,
                Party::Alice,
            ]
        );
    }

    #[test]
    fn store_everything_reduction_is_linear_communication() {
        let mut rng = StdRng::seed_from_u64(60);
        let inst = random_member(1, &mut rng);
        let report = simulate_reduction(StoreEverything::new(StorePredicate::InLdisj), &inst);
        assert_eq!(report.num_messages, 5);
        assert!(report.verdict, "member accepted");
        // Snapshots of a store-everything decider grow with the prefix, so
        // the total blows up — the reduction faithfully exposes the cost.
        assert!(report.max_message_bits >= encoded_len(1) * 2 - 16);
        assert!(report.total_bits > report.max_message_bits);
    }

    #[test]
    fn reduction_verdict_matches_reference() {
        let mut rng = StdRng::seed_from_u64(61);
        for k in 1..=2u32 {
            let member = random_member(k, &mut rng);
            let non = random_nonmember(k, 1, &mut rng);
            for inst in [member, non] {
                let report =
                    simulate_reduction(StoreEverything::new(StorePredicate::InLdisj), &inst);
                assert_eq!(report.verdict, inst.is_member());
            }
        }
    }

    #[test]
    fn optm_reduction_counts_configurations() {
        // even-ones is not an L_DISJ recognizer, but the reduction machinery
        // is generic: it must report tiny configuration sets (2 states, no
        // work tape) and zero lost mass.
        let mut rng = StdRng::seed_from_u64(62);
        let machine = machine_even_ones();
        let instances: Vec<_> = (0..4).map(|_| random_member(1, &mut rng)).collect();
        let report = optm_reduction(&machine, &instances, 10_000);
        assert_eq!(report.k, 1);
        assert_eq!(report.distinct_per_boundary.len(), 5);
        assert!(report
            .distinct_per_boundary
            .iter()
            .all(|&d| (1..=2).contains(&d)));
        assert!(report.max_lost_mass < 1e-12);
        // ≤ 1 bit per boundary.
        assert!(report.total_bits <= 5);
    }

    #[test]
    fn optm_reduction_matches_direct_acceptance() {
        // Chaining boundary configs across all 3·2^k segments and then
        // finishing must reproduce the machine's verdict; spot-check via
        // exact acceptance on the whole word for a deterministic machine.
        let machine = machine_even_ones();
        let mut rng = StdRng::seed_from_u64(63);
        let inst = random_member(1, &mut rng);
        let word = inst.encode();
        let ones = word.iter().filter(|&&s| s == Sym::One).count();
        let (pa, _, _) = machine.exact_acceptance(&word, 10_000);
        assert_eq!(pa > 0.5, ones % 2 == 0);
    }

    #[test]
    fn optm_reduction_on_explicit_a1_machine() {
        // The explicit transition-table A1 (zero work cells, counters in
        // control states) run through the reduction: exactly one reachable
        // configuration per boundary per instance, so the induced
        // communication is log(#states)-sized per message — the Fact 2.2
        // picture in miniature.
        let mut rng = StdRng::seed_from_u64(64);
        let machine = oqsc_machine::a1_shape_machine(1);
        let instances: Vec<_> = (0..3).map(|_| random_member(1, &mut rng)).collect();
        let report = optm_reduction(&machine, &instances, 50_000);
        assert_eq!(report.distinct_per_boundary.len(), 5);
        // The machine is deterministic and the instances share shape, so
        // every boundary has exactly ONE reachable configuration.
        assert!(report.distinct_per_boundary.iter().all(|&d| d == 1));
        assert!(report.max_lost_mass < 1e-12);
        assert_eq!(report.total_bits, 0, "single configs need zero bits");
    }

    #[test]
    fn fact_2_2_inversion_monotone() {
        let s1 = space_lower_bound_bits(100.0, 1 << 10, 8);
        let s2 = space_lower_bound_bits(200.0, 1 << 10, 8);
        assert!(s2 > s1);
        // Roughly required/log2(3) for large requirements.
        let s3 = space_lower_bound_bits(1000.0, 1 << 10, 8);
        let approx = 1000.0 / 3f64.log2();
        assert!((s3 as f64 - approx).abs() < 30.0, "s3={s3} approx={approx}");
    }

    #[test]
    fn theorem_3_6_bound_grows_like_2_to_k() {
        // With c = 1 the bound scales by ~2 per k increment once the
        // per-message requirement dominates the log n slack in Fact 2.2
        // (Ω(2^k) = Ω(√m) = Ω(n^{1/3})). The bound is vacuous (s = 1) for
        // tiny k, exactly as the asymptotic statement permits.
        assert_eq!(theorem_3_6_space_bound(2, 1.0, 64), 1);
        let bounds: Vec<usize> = (10..15u32)
            .map(|k| theorem_3_6_space_bound(k, 1.0, 64))
            .collect();
        for w in bounds.windows(2) {
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(
                (1.8..=2.2).contains(&ratio),
                "ratio {ratio} outside ~2: {bounds:?}"
            );
        }
    }

    #[test]
    fn theorem_3_6_bound_is_n_to_one_third_shaped() {
        // The per-message requirement is ≈ 2^k/3 bits, so the recovered
        // space is ≈ 2^k/(3·log₂3) ≈ 0.21·2^k = Θ(n^{1/3}) cells; check the
        // normalized constant stabilizes.
        for k in 10..15u32 {
            let s = theorem_3_6_space_bound(k, 1.0, 64) as f64;
            let ratio = s / (1u64 << k) as f64;
            assert!(
                (0.15..=0.25).contains(&ratio),
                "k={k}: s={s}, s/2^k = {ratio}"
            );
        }
    }
}
