//! The Buhrman–Cleve–Wigderson quantum protocol for `DISJ_n`
//! (Theorem 3.1: `O(√n log n)` qubits, bounded error).
//!
//! Alice holds `x`, Bob holds `y`. The parties pass a
//! `(log₂ n + 2)`-qubit register back and forth, together implementing
//! Grover search for an intersecting coordinate: Alice applies her phase
//! data (`V_x`, and the diffusion `U S U`), Bob applies his (`W_y`, and
//! the final `R_y` marking). Because the number of intersections is
//! unknown, the iteration count `j` is drawn uniformly from
//! `{0, …, ⌈√n⌉−1}` (the BBHT analysis; detection probability ≥ 1/4 for
//! every non-disjoint pair, certainty for disjoint pairs).
//!
//! The crucial structural property the paper leans on (Section 3.2): each
//! party only ever needs **the last message received** to compute the next
//! one — no history. That is what lets an online machine replay the
//! protocol against a stream.

use crate::protocol::{Party, ProtocolRun, Transcript};
use oqsc_lang::disj;
use oqsc_quantum::GroverLayout;
use rand::Rng;

/// One execution of the single-shot protocol.
#[derive(Clone, Debug, PartialEq)]
pub struct BcwRun {
    /// The drawn Grover iteration count.
    pub j: usize,
    /// Whether the final measurement of `l` returned 1 (intersection
    /// witnessed).
    pub detected: bool,
    /// Claimed value of `DISJ(x, y)` (= `!detected`).
    pub output: bool,
    /// Message log.
    pub transcript: Transcript,
}

/// Geometry of the protocol for input length `n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BcwParams {
    /// Input length `n` (power of two).
    pub n: usize,
    /// Register width `log₂ n + 2` qubits per message.
    pub qubits_per_message: usize,
    /// Iteration-count range `M = ⌈√n⌉`.
    pub m_rounds: usize,
}

impl BcwParams {
    /// Parameters for length-`n` inputs.
    ///
    /// # Panics
    /// If `n` is not a power of two ≥ 2.
    pub fn for_n(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "n must be a power of two ≥ 2"
        );
        let width = n.trailing_zeros() as usize;
        BcwParams {
            n,
            qubits_per_message: width + 2,
            m_rounds: (n as f64).sqrt().ceil() as usize,
        }
    }

    /// Worst-case qubits of one single-shot run (the draw `j = M−1`):
    /// `(2(M−1) + 1) · (log n + 2)` qubits plus 1 classical output bit.
    pub fn worst_case_single_run_qubits(&self) -> usize {
        (2 * (self.m_rounds - 1) + 1) * self.qubits_per_message
    }

    /// The paper's asymptotic budget `√n · log n` (for shape comparison).
    pub fn sqrt_n_log_n(&self) -> f64 {
        (self.n as f64).sqrt() * (self.n as f64).log2()
    }
}

/// Runs the single-shot (one-sided-error) protocol on `(x, y)`.
pub fn bcw_single_run<R: Rng + ?Sized>(x: &[bool], y: &[bool], rng: &mut R) -> BcwRun {
    assert_eq!(x.len(), y.len());
    let params = BcwParams::for_n(x.len());
    let layout = GroverLayout {
        idx_width: x.len().trailing_zeros() as usize,
    };
    let mut transcript = Transcript::new();
    let mut state = layout.phi();
    let j = rng.gen_range(0..params.m_rounds);

    for _ in 0..j {
        // Alice: V_x, then ship the register to Bob.
        layout.apply_vx(&mut state, x);
        transcript.send_quantum(Party::Alice, params.qubits_per_message);
        // Bob: W_y, ship back.
        layout.apply_wx(&mut state, y);
        transcript.send_quantum(Party::Bob, params.qubits_per_message);
        // Alice: V_x and the diffusion U_k S_k U_k.
        layout.apply_vx(&mut state, x);
        layout.apply_uk(&mut state);
        layout.apply_sk(&mut state);
        layout.apply_uk(&mut state);
    }
    // Final marking round: Alice V_x, send; Bob R_y and measure `l`.
    layout.apply_vx(&mut state, x);
    transcript.send_quantum(Party::Alice, params.qubits_per_message);
    layout.apply_rx(&mut state, y);
    let outcome = state.measure_qubit(layout.l_qubit(), rng);
    // Bob announces the verdict.
    transcript.send_classical(Party::Bob, 1);

    let detected = outcome == 1;
    BcwRun {
        j,
        detected,
        output: !detected,
        transcript,
    }
}

/// Exact detection probability of the single-shot protocol on `(x, y)`
/// (averaging the exact simulation over all `j`): 0 for disjoint pairs,
/// ≥ 1/4 otherwise.
pub fn bcw_detection_probability(x: &[bool], y: &[bool]) -> f64 {
    let params = BcwParams::for_n(x.len());
    let layout = GroverLayout {
        idx_width: x.len().trailing_zeros() as usize,
    };
    let mut total = 0.0;
    for j in 0..params.m_rounds {
        let mut state = layout.phi();
        for _ in 0..j {
            layout.apply_grover_iteration(&mut state, x, y, x);
        }
        layout.apply_vx(&mut state, x);
        layout.apply_rx(&mut state, y);
        total += state.prob_one(layout.l_qubit());
    }
    total / params.m_rounds as f64
}

/// The bounded-error protocol of Theorem 3.1: `reps` independent
/// single-shot runs, outputting `DISJ = 0` iff any run detects. With
/// `reps = 4` the error is at most `(3/4)⁴ < 1/3` on intersecting inputs
/// and 0 on disjoint inputs.
pub fn bcw_bounded_error<R: Rng + ?Sized>(
    x: &[bool],
    y: &[bool],
    reps: usize,
    rng: &mut R,
) -> ProtocolRun<bool> {
    assert!(reps >= 1);
    let mut transcript = Transcript::new();
    let mut any_detected = false;
    for _ in 0..reps {
        let run = bcw_single_run(x, y, rng);
        for m in run.transcript.messages() {
            transcript.push_record(*m);
        }
        any_detected |= run.detected;
    }
    ProtocolRun {
        output: !any_detected,
        transcript,
    }
}

/// Reference: `DISJ(x, y)` computed directly.
pub fn disj_reference(x: &[bool], y: &[bool]) -> bool {
    disj(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_grover::averaged_success;
    use oqsc_lang::{random_member, random_nonmember, string_len};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_shapes() {
        let p = BcwParams::for_n(64);
        assert_eq!(p.qubits_per_message, 8);
        assert_eq!(p.m_rounds, 8);
        assert_eq!(p.worst_case_single_run_qubits(), 15 * 8);
        assert!(p.worst_case_single_run_qubits() as f64 <= 3.0 * p.sqrt_n_log_n());
    }

    #[test]
    fn disjoint_pairs_never_detected() {
        let mut rng = StdRng::seed_from_u64(50);
        for k in 1..=2u32 {
            let inst = random_member(k, &mut rng);
            assert_eq!(bcw_detection_probability(inst.x(), inst.y()), 0.0);
            for _ in 0..10 {
                let run = bcw_single_run(inst.x(), inst.y(), &mut rng);
                assert!(!run.detected, "one-sided error violated");
                assert!(run.output);
            }
        }
    }

    #[test]
    fn intersecting_pairs_detected_at_least_quarter() {
        let mut rng = StdRng::seed_from_u64(51);
        for k in 1..=2u32 {
            let m = string_len(k);
            for t in [1usize, 2, m / 2, m] {
                let inst = random_nonmember(k, t, &mut rng);
                let p = bcw_detection_probability(inst.x(), inst.y());
                assert!(p >= 0.25 - 1e-9, "k={k} t={t}: detection prob {p}");
            }
        }
    }

    #[test]
    fn detection_probability_matches_bbht_formula() {
        // For x = z the protocol is exactly the averaged Grover analysis.
        let mut rng = StdRng::seed_from_u64(52);
        let k = 2u32;
        let m = string_len(k);
        for t in [1usize, 3, 7] {
            let inst = random_nonmember(k, t, &mut rng);
            let p = bcw_detection_probability(inst.x(), inst.y());
            let formula = averaged_success((m as f64).sqrt().ceil() as usize, t, m);
            assert!((p - formula).abs() < 1e-9, "t={t}: {p} vs {formula}");
        }
    }

    #[test]
    fn empirical_detection_tracks_exact() {
        let mut rng = StdRng::seed_from_u64(53);
        let inst = random_nonmember(2, 2, &mut rng);
        let p = bcw_detection_probability(inst.x(), inst.y());
        let trials = 2000;
        let hits = (0..trials)
            .filter(|_| bcw_single_run(inst.x(), inst.y(), &mut rng).detected)
            .count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - p).abs() < 0.04, "freq {freq} vs exact {p}");
    }

    #[test]
    fn bounded_error_protocol_meets_two_thirds() {
        let mut rng = StdRng::seed_from_u64(54);
        // Disjoint: always correct.
        let member = random_member(2, &mut rng);
        for _ in 0..10 {
            assert!(bcw_bounded_error(member.x(), member.y(), 4, &mut rng).output);
        }
        // Intersecting: error (3/4)^4 ≈ 0.316 < 1/3; empirically ≲ 0.36.
        let non = random_nonmember(2, 1, &mut rng);
        let trials = 600;
        let wrong = (0..trials)
            .filter(|_| bcw_bounded_error(non.x(), non.y(), 4, &mut rng).output)
            .count();
        let err = wrong as f64 / trials as f64;
        assert!(err < 0.40, "bounded error too high: {err}");
    }

    #[test]
    fn communication_is_sqrt_n_log_n_shaped() {
        // Simulated runs respect the analytic worst case.
        let mut rng = StdRng::seed_from_u64(55);
        for k in 1..=3u32 {
            let n = string_len(k);
            let inst = random_nonmember(k, 1, &mut rng);
            let run = bcw_single_run(inst.x(), inst.y(), &mut rng);
            let params = BcwParams::for_n(n);
            assert!(run.transcript.total_qubits() <= params.worst_case_single_run_qubits());
        }
        // The worst case tracks √n·log n (bounded multiple) and therefore
        // drops below the trivial n-bit protocol once n ≥ 1024, widening
        // forever after — the Theorem 3.1 separation shape.
        let mut prev_ratio = f64::INFINITY;
        for log_n in [6u32, 8, 10, 12, 14, 16, 18, 20] {
            let params = BcwParams::for_n(1usize << log_n);
            let worst = params.worst_case_single_run_qubits() as f64;
            assert!(worst <= 3.0 * params.sqrt_n_log_n());
            let ratio = worst / params.n as f64;
            assert!(ratio < prev_ratio, "ratio must shrink with n");
            prev_ratio = ratio;
            if log_n >= 10 {
                assert!(
                    (params.worst_case_single_run_qubits()) < params.n,
                    "n=2^{log_n}: quantum must beat trivial"
                );
            }
        }
    }

    #[test]
    fn transcript_message_pattern() {
        let mut rng = StdRng::seed_from_u64(56);
        let inst = random_member(1, &mut rng);
        let run = bcw_single_run(inst.x(), inst.y(), &mut rng);
        // 2j+1 quantum messages + 1 classical verdict bit.
        assert_eq!(run.transcript.num_messages(), 2 * run.j + 2);
        assert_eq!(run.transcript.total_bits(), 1);
        assert_eq!(
            run.transcript.total_qubits(),
            (2 * run.j + 1) * BcwParams::for_n(4).qubits_per_message
        );
    }
}
