//! Classical protocols: the trivial `DISJ` protocol and the fingerprint
//! equality protocol.
//!
//! `DISJ_n` needs `Ω(n)` classical communication even with shared
//! randomness and bounded error (Kalyanasundaram–Schnitger / Razborov,
//! the paper's Theorem 3.2), so the trivial send-everything protocol is
//! essentially optimal. String *equality*, by contrast, has an `O(log n)`
//! one-way protocol — the same fingerprints procedure A2 streams — and
//! that asymmetry is exactly what the language `L_DISJ` exploits.

use crate::protocol::{Party, ProtocolRun, Transcript};
use oqsc_fingerprint::{ceil_log2, EqualityTester};
use oqsc_lang::disj;
use rand::Rng;

/// The trivial one-way protocol for `DISJ_n`: Alice sends all of `x`
/// (`n` bits); Bob computes the answer. Matches the `n`-bit lower bound
/// for one-way deterministic protocols up to the constant 1.
pub fn trivial_disj_protocol(x: &[bool], y: &[bool]) -> ProtocolRun<bool> {
    assert_eq!(x.len(), y.len());
    let mut transcript = Transcript::new();
    transcript.send_classical(Party::Alice, x.len());
    ProtocolRun {
        output: disj(x, y),
        transcript,
    }
}

/// A block-partitioned two-way `DISJ` protocol with tunable message size:
/// Alice sends her blocks one at a time and Bob interleaves 1-bit
/// "intersection seen so far" replies. Total communication is still
/// `n + Θ(n/block)` bits — illustrating that chunking does **not** beat
/// the linear lower bound — but the per-message size is what a
/// space-limited streaming simulation can afford (Theorem 3.6's bridge).
pub fn blocked_disj_protocol(x: &[bool], y: &[bool], block: usize) -> ProtocolRun<bool> {
    assert_eq!(x.len(), y.len());
    assert!(block >= 1);
    let mut transcript = Transcript::new();
    let mut intersect = false;
    for (i, chunk) in x.chunks(block).enumerate() {
        transcript.send_classical(Party::Alice, chunk.len());
        let start = i * block;
        if chunk
            .iter()
            .zip(&y[start..start + chunk.len()])
            .any(|(&a, &b)| a && b)
        {
            intersect = true;
        }
        transcript.send_classical(Party::Bob, 1);
    }
    ProtocolRun {
        output: !intersect,
        transcript,
    }
}

/// The `O(log n)` one-sided-error equality protocol: Alice sends the
/// random point `t` and her fingerprint `F_u(t)` (`2⌈log₂ p⌉` bits); Bob
/// compares with `F_v(t)`. Output `true` = "maybe equal"; `false`
/// certifies inequality.
pub fn fingerprint_equality_protocol<R: Rng + ?Sized>(
    u: &[bool],
    v: &[bool],
    k: u32,
    rng: &mut R,
) -> ProtocolRun<bool> {
    let tester = EqualityTester::for_k(k, rng);
    let mut transcript = Transcript::new();
    let message_bits = 2 * ceil_log2(tester.modulus()) as usize;
    transcript.send_classical(Party::Alice, message_bits);
    ProtocolRun {
        output: u.len() == v.len() && tester.fingerprint(u) == tester.fingerprint(v),
        transcript,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trivial_protocol_is_correct_and_linear() {
        let x = vec![true, false, true, false];
        let y = vec![false, true, false, true];
        let run = trivial_disj_protocol(&x, &y);
        assert!(run.output);
        assert_eq!(run.transcript.total_bits(), 4);
        assert!(run.transcript.is_one_way());

        let y2 = vec![true, false, false, false];
        assert!(!trivial_disj_protocol(&x, &y2).output);
    }

    #[test]
    fn blocked_protocol_correct_but_still_linear() {
        let n = 64usize;
        let x: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let y: Vec<bool> = (0..n).map(|i| i % 3 == 1).collect();
        for block in [1usize, 4, 16, 64] {
            let run = blocked_disj_protocol(&x, &y, block);
            assert!(run.output, "disjoint pair, block {block}");
            assert!(run.transcript.total_bits() >= n);
            assert!(run.transcript.alternates());
        }
        let mut y_hit = y.clone();
        y_hit[0] = true; // x[0] = true too
        assert!(!blocked_disj_protocol(&x, &y_hit, 8).output);
    }

    #[test]
    fn equality_protocol_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(7);
        let k = 3u32;
        let len = 1usize << (2 * k); // 64 bits
        let u: Vec<bool> = (0..len).map(|i| i % 5 == 0).collect();
        let run = fingerprint_equality_protocol(&u, &u, k, &mut rng);
        assert!(run.output, "equal strings always accepted");
        // 2·⌈log p⌉ ≤ 2·(4k+1) bits — exponentially below the string length.
        assert!(run.transcript.total_bits() <= 2 * (4 * k as usize + 1));
        assert!(run.transcript.is_one_way());
    }

    #[test]
    fn equality_protocol_catches_differences_whp() {
        let mut rng = StdRng::seed_from_u64(8);
        let k = 3u32;
        let len = 1usize << (2 * k);
        let u: Vec<bool> = (0..len).map(|i| i % 2 == 0).collect();
        let mut v = u.clone();
        v[13] = !v[13];
        let false_accepts = (0..400)
            .filter(|_| fingerprint_equality_protocol(&u, &v, k, &mut rng).output)
            .count();
        assert!(false_accepts <= 20, "false accepts: {false_accepts}");
    }
}
