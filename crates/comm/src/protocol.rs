//! Two-party protocol framework with communication accounting.
//!
//! Communication complexity (Section 3.1 of the paper, following
//! Kushilevitz–Nisan) charges the number of bits (or qubits) exchanged
//! between Alice and Bob, maximized over inputs and coin flips. The
//! [`Transcript`] records every message so the experiment tables report
//! *measured* communication, and the worst case is obtained by maximizing
//! over runs.

/// The two parties.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Party {
    /// Holds `x`.
    Alice,
    /// Holds `y`.
    Bob,
}

impl Party {
    /// The other party.
    pub fn other(self) -> Party {
        match self {
            Party::Alice => Party::Bob,
            Party::Bob => Party::Alice,
        }
    }
}

/// One logged message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageRecord {
    /// Sender.
    pub from: Party,
    /// Classical bits in the message.
    pub bits: usize,
    /// Qubits in the message.
    pub qubits: usize,
}

/// An append-only log of the messages exchanged in one protocol run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Transcript {
    messages: Vec<MessageRecord>,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Self {
        Transcript::default()
    }

    /// Logs a classical message of `bits` bits.
    pub fn send_classical(&mut self, from: Party, bits: usize) {
        self.messages.push(MessageRecord {
            from,
            bits,
            qubits: 0,
        });
    }

    /// Logs a quantum message of `qubits` qubits.
    pub fn send_quantum(&mut self, from: Party, qubits: usize) {
        self.messages.push(MessageRecord {
            from,
            bits: 0,
            qubits,
        });
    }

    /// Appends a pre-built record (merging sub-protocol transcripts).
    pub fn push_record(&mut self, m: MessageRecord) {
        self.messages.push(m);
    }

    /// All logged messages in order.
    pub fn messages(&self) -> &[MessageRecord] {
        &self.messages
    }

    /// Number of messages (protocol rounds, counting each direction).
    pub fn num_messages(&self) -> usize {
        self.messages.len()
    }

    /// Total classical bits.
    pub fn total_bits(&self) -> usize {
        self.messages.iter().map(|m| m.bits).sum()
    }

    /// Total qubits.
    pub fn total_qubits(&self) -> usize {
        self.messages.iter().map(|m| m.qubits).sum()
    }

    /// Total communication (bits + qubits — the unit used when comparing
    /// classical and quantum protocols).
    pub fn total_communication(&self) -> usize {
        self.total_bits() + self.total_qubits()
    }

    /// True when messages strictly alternate senders (a "round" structure).
    pub fn alternates(&self) -> bool {
        self.messages.windows(2).all(|w| w[0].from != w[1].from)
    }

    /// True when only one message is ever sent and it goes Alice → Bob
    /// (the paper's one-way model).
    pub fn is_one_way(&self) -> bool {
        self.messages.len() <= 1 && self.messages.first().is_none_or(|m| m.from == Party::Alice)
    }
}

/// Outcome of a protocol run: the computed value plus the transcript.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolRun<T> {
    /// The protocol's output.
    pub output: T,
    /// The logged communication.
    pub transcript: Transcript,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut t = Transcript::new();
        t.send_classical(Party::Alice, 10);
        t.send_quantum(Party::Bob, 4);
        t.send_classical(Party::Alice, 6);
        assert_eq!(t.num_messages(), 3);
        assert_eq!(t.total_bits(), 16);
        assert_eq!(t.total_qubits(), 4);
        assert_eq!(t.total_communication(), 20);
        assert!(t.alternates());
        assert!(!t.is_one_way());
    }

    #[test]
    fn one_way_detection() {
        let mut t = Transcript::new();
        assert!(t.is_one_way());
        t.send_classical(Party::Alice, 5);
        assert!(t.is_one_way());
        t.send_classical(Party::Bob, 5);
        assert!(!t.is_one_way());
        let mut bob_first = Transcript::new();
        bob_first.send_classical(Party::Bob, 1);
        assert!(!bob_first.is_one_way());
    }

    #[test]
    fn alternation_detection() {
        let mut t = Transcript::new();
        t.send_quantum(Party::Alice, 1);
        t.send_quantum(Party::Alice, 1);
        assert!(!t.alternates());
    }

    #[test]
    fn party_other() {
        assert_eq!(Party::Alice.other(), Party::Bob);
        assert_eq!(Party::Bob.other(), Party::Alice);
    }
}
