//! Streaming polynomial fingerprints.
//!
//! For a bit string `w = w_0 … w_{m−1}`, procedure A2 evaluates
//! `F_w(t) = Σ_i w_i t^i mod p` at a random point `t`. The evaluation must
//! be *online*: bits arrive one at a time and only `O(log p)` bits of state
//! may be kept. [`StreamingFingerprint`] maintains exactly the accumulator
//! and the running power of `t` — two residues — matching the `O(k)` space
//! bound claimed for A2.

use crate::modarith::{add_mod, mul_mod};

/// Online evaluator of `F_w(t) = Σ w_i t^i mod p`, fed one bit at a time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamingFingerprint {
    p: u64,
    t: u64,
    acc: u64,
    t_pow: u64,
    len: usize,
}

impl StreamingFingerprint {
    /// Starts a fingerprint at evaluation point `t` modulo `p`.
    ///
    /// # Panics
    /// If `p < 2` or `t ≥ p`.
    pub fn new(p: u64, t: u64) -> Self {
        assert!(p >= 2, "modulus must be ≥ 2");
        assert!(t < p, "evaluation point must be reduced mod p");
        StreamingFingerprint {
            p,
            t,
            acc: 0,
            t_pow: 1 % p,
            len: 0,
        }
    }

    /// Feeds the next bit `w_i` (bits arrive in increasing index order).
    #[inline]
    pub fn feed(&mut self, bit: bool) {
        if bit {
            self.acc = add_mod(self.acc, self.t_pow, self.p);
        }
        self.t_pow = mul_mod(self.t_pow, self.t, self.p);
        self.len += 1;
    }

    /// Feeds a slice of bits.
    pub fn feed_all(&mut self, bits: &[bool]) {
        for &b in bits {
            self.feed(b);
        }
    }

    /// The current value `F_{w_0…w_{len−1}}(t)`.
    #[inline]
    pub fn value(&self) -> u64 {
        self.acc
    }

    /// Number of bits consumed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bits have been fed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// The evaluation point `t`.
    #[inline]
    pub fn point(&self) -> u64 {
        self.t
    }

    /// The running power `t^len mod p` (serialization observable).
    #[inline]
    pub fn power(&self) -> u64 {
        self.t_pow
    }

    /// Rebuilds a mid-stream fingerprint from its serialized parts (the
    /// session-checkpoint restore path): the inverse of reading
    /// [`modulus`](Self::modulus), [`point`](Self::point),
    /// [`value`](Self::value), [`power`](Self::power) and
    /// [`len`](Self::len).
    ///
    /// # Panics
    /// If the parts are not reduced residues of a valid stream
    /// (`p < 2`, `t ≥ p`, `acc ≥ p`, or `t_pow ≥ p`).
    pub fn from_parts(p: u64, t: u64, acc: u64, t_pow: u64, len: usize) -> Self {
        assert!(p >= 2, "modulus must be ≥ 2");
        assert!(t < p && acc < p && t_pow < p, "residues must be reduced");
        StreamingFingerprint {
            p,
            t,
            acc,
            t_pow,
            len,
        }
    }

    /// Resets to an empty fingerprint at the same `(p, t)`, reusing the
    /// allocation-free state (A2 restarts one fingerprint per block).
    pub fn reset(&mut self) {
        self.acc = 0;
        self.t_pow = 1 % self.p;
        self.len = 0;
    }

    /// Work-space footprint in bits: the two residues (`acc`, `t_pow`)
    /// a streaming implementation must retain, each `⌈log₂ p⌉` bits.
    /// (`t` itself and `p` are also `O(log p)`; include them for the
    /// honest total the OPTM would store.)
    pub fn space_bits(&self) -> u32 {
        4 * ceil_log2(self.p)
    }
}

/// One-shot evaluation of `F_w(t) mod p`.
pub fn fingerprint(bits: &[bool], p: u64, t: u64) -> u64 {
    let mut f = StreamingFingerprint::new(p, t);
    f.feed_all(bits);
    f.value()
}

/// `⌈log₂ n⌉` for `n ≥ 1`.
pub fn ceil_log2(n: u64) -> u32 {
    assert!(n >= 1);
    64 - (n - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modarith::pow_mod;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive_eval(bits: &[bool], p: u64, t: u64) -> u64 {
        let mut acc = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                acc = add_mod(acc, pow_mod(t, i as u64, p), p);
            }
        }
        acc
    }

    #[test]
    fn empty_fingerprint_is_zero() {
        let f = StreamingFingerprint::new(17, 5);
        assert_eq!(f.value(), 0);
        assert!(f.is_empty());
    }

    #[test]
    fn single_bits() {
        // w = 1: F = t^0 = 1.
        assert_eq!(fingerprint(&[true], 17, 5), 1);
        // w = 01: F = t.
        assert_eq!(fingerprint(&[false, true], 17, 5), 5);
        // w = 11: F = 1 + t.
        assert_eq!(fingerprint(&[true, true], 17, 5), 6);
    }

    #[test]
    fn streaming_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let len = rng.gen_range(0..200);
            let bits: Vec<bool> = (0..len).map(|_| rng.gen()).collect();
            let p = 257u64;
            let t = rng.gen_range(0..p);
            assert_eq!(fingerprint(&bits, p, t), naive_eval(&bits, p, t));
        }
    }

    #[test]
    fn equal_strings_equal_fingerprints_always() {
        let bits = vec![true, false, true, true, false, false, true];
        for t in 0..17u64 {
            assert_eq!(fingerprint(&bits, 17, t), fingerprint(&bits, 17, t));
        }
    }

    #[test]
    fn distinct_strings_collide_rarely() {
        // The difference polynomial has degree < m, so at most m−1 of the p
        // points collide. Count collisions exhaustively for a small case.
        let a = vec![true, false, true, false, true, false, true, false];
        let b = vec![true, true, false, false, true, false, true, false];
        let p = 257u64;
        let collisions = (0..p)
            .filter(|&t| fingerprint(&a, p, t) == fingerprint(&b, p, t))
            .count() as u64;
        assert!(collisions < a.len() as u64, "collisions = {collisions}");
    }

    #[test]
    fn reset_reuses_state() {
        let mut f = StreamingFingerprint::new(257, 10);
        f.feed_all(&[true, true, false, true]);
        let v1 = f.value();
        f.reset();
        assert_eq!(f.value(), 0);
        assert_eq!(f.len(), 0);
        f.feed_all(&[true, true, false, true]);
        assert_eq!(f.value(), v1);
    }

    #[test]
    fn space_bits_is_logarithmic() {
        let f = StreamingFingerprint::new((1 << 20) + 7, 3);
        assert_eq!(f.space_bits(), 4 * 21);
        let g = StreamingFingerprint::new(17, 3);
        assert_eq!(g.space_bits(), 4 * 5);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 40), 40);
    }

    proptest! {
        #[test]
        fn prop_streaming_equals_naive(bits in proptest::collection::vec(any::<bool>(), 0..300),
                                       t in 0u64..65537) {
            let p = 65537u64;
            prop_assert_eq!(fingerprint(&bits, p, t), naive_eval(&bits, p, t));
        }

        #[test]
        fn prop_completeness(bits in proptest::collection::vec(any::<bool>(), 0..100),
                             t in 0u64..257) {
            // Identical strings always agree — the one-sided-error direction.
            let p = 257u64;
            let f1 = fingerprint(&bits, p, t);
            let f2 = fingerprint(&bits, p, t);
            prop_assert_eq!(f1, f2);
        }

        #[test]
        fn prop_appending_zero_bits_changes_nothing(
            bits in proptest::collection::vec(any::<bool>(), 0..100),
            zeros in 0usize..20,
            t in 0u64..257,
        ) {
            let p = 257u64;
            let mut padded = bits.clone();
            padded.extend(std::iter::repeat_n(false, zeros));
            prop_assert_eq!(fingerprint(&bits, p, t), fingerprint(&padded, p, t));
        }
    }
}
