//! # oqsc-fingerprint — polynomial fingerprinting substrate
//!
//! Implements the string-equality machinery of procedure A2 in the paper's
//! Theorem 3.4: streaming evaluation of `F_w(X) = Σ w_i X^i mod p` at a
//! random point, with the prime `p` drawn from `(2^{4k}, 2^{4k+1})` exactly
//! as the paper prescribes. The test is one-sided (equal strings always
//! pass) with per-test error below `2^{-2k}`.
//!
//! * [`modarith`] — `u64` modular arithmetic with `u128` intermediates;
//! * [`prime`] — deterministic Miller–Rabin (exact on `u64`) and the
//!   paper's naive prime-range scan;
//! * [`poly`] — the `O(log p)`-state streaming fingerprint;
//! * [`equality`] — the one-sided equality tester plus exact and paper
//!   error bounds;
//! * [`multipoint`] — `r`-point fingerprints with `((m−1)/p)^r` error
//!   (the space-vs-error ablation of experiment F3).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod equality;
pub mod modarith;
pub mod multipoint;
pub mod poly;
pub mod prime;

pub use equality::{exact_collision_probability, paper_error_bound, EqualityTester};
pub use multipoint::{multipoint_probably_equal, MultiPointFingerprint};
pub use poly::{ceil_log2, fingerprint, StreamingFingerprint};
pub use prime::{fingerprint_prime, is_prime};
