//! Modular arithmetic over word-sized moduli.
//!
//! Procedure A2 of the paper evaluates polynomials `F_w(X) = Σ w_i X^i`
//! modulo a prime `p` with `2^{4k} < p < 2^{4k+1}`. All arithmetic fits in
//! `u64` residues with `u128` intermediates, so no big-integer machinery is
//! needed for every `k` the dense quantum simulator can reach (and far
//! beyond: `k ≤ 15`).

/// `(a + b) mod m`, correct for any `a, b < m < 2^64`.
#[inline]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    let (s, overflow) = a.overflowing_add(b);
    if overflow || s >= m {
        s.wrapping_sub(m)
    } else {
        s
    }
}

/// `(a - b) mod m`.
#[inline]
pub fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    if a >= b {
        a - b
    } else {
        a.wrapping_sub(b).wrapping_add(m)
    }
}

/// `(a · b) mod m` via a 128-bit intermediate.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `a^e mod m` by square-and-multiply.
pub fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut result = 1u64;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            result = mul_mod(result, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    result
}

/// Modular inverse of `a` mod prime `p` by Fermat's little theorem.
///
/// # Panics
/// If `a ≡ 0 (mod p)`.
pub fn inv_mod_prime(a: u64, p: u64) -> u64 {
    assert!(!a.is_multiple_of(p), "zero has no inverse");
    pow_mod(a, p - 2, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_mod_wraps() {
        assert_eq!(add_mod(3, 4, 5), 2);
        assert_eq!(add_mod(0, 0, 7), 0);
        assert_eq!(add_mod(6, 6, 7), 5);
        // Near u64::MAX.
        let m = u64::MAX - 58; // arbitrary large modulus
        assert_eq!(add_mod(m - 1, m - 1, m), m - 2);
    }

    #[test]
    fn sub_mod_wraps() {
        assert_eq!(sub_mod(3, 4, 5), 4);
        assert_eq!(sub_mod(4, 3, 5), 1);
        assert_eq!(sub_mod(0, 1, 7), 6);
    }

    #[test]
    fn mul_mod_large_operands() {
        let m = (1u64 << 61) - 1;
        let a = m - 1;
        // (m−1)² = m² − 2m + 1 ≡ 1 (mod m)
        assert_eq!(mul_mod(a, a, m), 1);
        assert_eq!(mul_mod(0, a, m), 0);
    }

    #[test]
    fn pow_mod_matches_naive() {
        for &m in &[2u64, 3, 17, 1_000_003] {
            for a in 0..8u64 {
                let mut naive = 1u64 % m;
                for e in 0..12u64 {
                    assert_eq!(pow_mod(a, e, m), naive, "a={a} e={e} m={m}");
                    naive = mul_mod(naive, a % m, m);
                }
            }
        }
        assert_eq!(pow_mod(5, 100, 1), 0);
    }

    #[test]
    fn fermat_inverse() {
        let p = 1_000_000_007u64;
        for a in [1u64, 2, 999, p - 1] {
            let inv = inv_mod_prime(a, p);
            assert_eq!(mul_mod(a, inv, p), 1);
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn inverse_of_zero_panics() {
        inv_mod_prime(0, 7);
    }
}
