//! Multi-point fingerprints: error amplification for procedure A2.
//!
//! The paper amplifies by running whole machines in parallel; an
//! alternative local to A2 is to evaluate each block polynomial at `r`
//! independent random points. Equal strings still always agree; unequal
//! strings collide only if *every* point is a root of the difference
//! polynomial, i.e. with probability at most `((m−1)/p)^r` — the
//! exponent costs only a factor `r` in space (`4r·⌈log p⌉` bits instead
//! of `4·⌈log p⌉`). This module is the ablation subject of experiment
//! F3's "points" axis.

use crate::poly::StreamingFingerprint;
use crate::prime::fingerprint_prime;
use rand::Rng;

/// A streaming fingerprint evaluated at `r` points simultaneously.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiPointFingerprint {
    lanes: Vec<StreamingFingerprint>,
}

impl MultiPointFingerprint {
    /// Creates an `r`-point fingerprint with independent uniform points
    /// modulo the paper's prime for parameter `k`.
    ///
    /// # Panics
    /// If `r = 0`.
    pub fn for_k<R: Rng + ?Sized>(k: u32, r: usize, rng: &mut R) -> Self {
        assert!(r >= 1, "need at least one point");
        let p = fingerprint_prime(k);
        MultiPointFingerprint {
            lanes: (0..r)
                .map(|_| StreamingFingerprint::new(p, rng.gen_range(0..p)))
                .collect(),
        }
    }

    /// Explicit construction (testing).
    pub fn with_points(p: u64, points: &[u64]) -> Self {
        assert!(!points.is_empty());
        MultiPointFingerprint {
            lanes: points
                .iter()
                .map(|&t| StreamingFingerprint::new(p, t))
                .collect(),
        }
    }

    /// Number of evaluation points `r`.
    pub fn num_points(&self) -> usize {
        self.lanes.len()
    }

    /// Feeds one bit into every lane.
    #[inline]
    pub fn feed(&mut self, bit: bool) {
        for lane in &mut self.lanes {
            lane.feed(bit);
        }
    }

    /// Feeds a whole slice.
    pub fn feed_all(&mut self, bits: &[bool]) {
        for &b in bits {
            self.feed(b);
        }
    }

    /// The `r` current values.
    pub fn values(&self) -> Vec<u64> {
        self.lanes.iter().map(StreamingFingerprint::value).collect()
    }

    /// Resets every lane (same points).
    pub fn reset(&mut self) {
        for lane in &mut self.lanes {
            lane.reset();
        }
    }

    /// Work-space footprint: `r` lanes of residues.
    pub fn space_bits(&self) -> u32 {
        self.lanes
            .iter()
            .map(StreamingFingerprint::space_bits)
            .sum()
    }

    /// Upper bound on the false-accept probability for length-`m`
    /// strings: `((m−1)/p)^r`.
    pub fn error_bound(&self, m: usize) -> f64 {
        if m <= 1 {
            return 0.0;
        }
        let single = (m as f64 - 1.0) / self.lanes[0].modulus() as f64;
        single.powi(self.lanes.len() as i32)
    }
}

/// One-shot comparison of two strings under shared points.
pub fn multipoint_probably_equal(fp: &MultiPointFingerprint, a: &[bool], b: &[bool]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut fa = fp.clone();
    fa.reset();
    fa.feed_all(a);
    let mut fb = fp.clone();
    fb.reset();
    fb.feed_all(b);
    fa.values() == fb.values()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn completeness_holds_for_every_point_set() {
        let bits = vec![true, false, true, true, false];
        for pts in [vec![0u64], vec![3, 5], vec![1, 2, 3, 4]] {
            let fp = MultiPointFingerprint::with_points(17, &pts);
            assert!(multipoint_probably_equal(&fp, &bits, &bits));
        }
    }

    #[test]
    fn error_bound_shrinks_geometrically_in_r() {
        let mut rng = StdRng::seed_from_u64(160);
        let m = 1usize << 2;
        let single = MultiPointFingerprint::for_k(1, 1, &mut rng).error_bound(m);
        let double = MultiPointFingerprint::for_k(1, 2, &mut rng).error_bound(m);
        let triple = MultiPointFingerprint::for_k(1, 3, &mut rng).error_bound(m);
        assert!((double - single * single).abs() < 1e-12);
        assert!((triple - single * single * single).abs() < 1e-12);
    }

    #[test]
    fn exhaustive_collision_rate_improves_with_points() {
        // For one fixed unequal pair, count colliding point-pairs
        // exhaustively at r = 1 and r = 2 over p = 17.
        let p = 17u64;
        let a = vec![true, false, false, true];
        let mut b = a.clone();
        b[2] = true;
        let collisions_r1 = (0..p)
            .filter(|&t| {
                let fp = MultiPointFingerprint::with_points(p, &[t]);
                multipoint_probably_equal(&fp, &a, &b)
            })
            .count();
        let mut collisions_r2 = 0usize;
        for t1 in 0..p {
            for t2 in 0..p {
                let fp = MultiPointFingerprint::with_points(p, &[t1, t2]);
                if multipoint_probably_equal(&fp, &a, &b) {
                    collisions_r2 += 1;
                }
            }
        }
        // Exactly the square structure: collisions_r2 = collisions_r1².
        assert_eq!(collisions_r2, collisions_r1 * collisions_r1);
        assert!(collisions_r1 as u64 <= 3, "degree-3 difference polynomial");
    }

    #[test]
    fn space_scales_linearly_in_points() {
        let mut rng = StdRng::seed_from_u64(161);
        let one = MultiPointFingerprint::for_k(2, 1, &mut rng).space_bits();
        let four = MultiPointFingerprint::for_k(2, 4, &mut rng).space_bits();
        assert_eq!(four, 4 * one);
    }

    #[test]
    fn length_mismatch_rejected() {
        let fp = MultiPointFingerprint::with_points(17, &[2]);
        assert!(!multipoint_probably_equal(&fp, &[true], &[true, false]));
    }

    #[test]
    fn reset_and_reuse() {
        let mut fp = MultiPointFingerprint::with_points(257, &[10, 20]);
        fp.feed_all(&[true, true, false]);
        let v = fp.values();
        fp.reset();
        assert_eq!(fp.values(), vec![0, 0]);
        fp.feed_all(&[true, true, false]);
        assert_eq!(fp.values(), v);
        assert_eq!(fp.num_points(), 2);
    }
}
