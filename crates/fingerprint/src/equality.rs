//! One-sided-error string equality testing.
//!
//! The classical communication-complexity folklore protocol the paper cites
//! (Kushilevitz & Nisan): to check `u = v` with `O(log m)` bits, pick a
//! random `t ∈ Z_p` and compare `F_u(t)` with `F_v(t)`. If `u = v` the test
//! *always* passes; if `u ≠ v` it passes with probability at most
//! `(m−1)/p` (the difference polynomial has degree `< m`). With the paper's
//! prime range `p > 2^{4k}` and `m = 2^{2k}`, the failure probability is
//! below `2^{-2k}`.

use crate::poly::{fingerprint, StreamingFingerprint};
use crate::prime::fingerprint_prime;
use rand::Rng;

/// A reusable equality tester: a fixed `(p, t)` pair under which any number
/// of strings can be fingerprinted and compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EqualityTester {
    p: u64,
    t: u64,
}

impl EqualityTester {
    /// Samples a random evaluation point for the paper's prime at
    /// parameter `k` (`2^{4k} < p < 2^{4k+1}`).
    pub fn for_k<R: Rng + ?Sized>(k: u32, rng: &mut R) -> Self {
        let p = fingerprint_prime(k);
        EqualityTester {
            p,
            t: rng.gen_range(0..p),
        }
    }

    /// Constructs a tester with explicit parameters (testing/derandomized
    /// analysis).
    ///
    /// # Panics
    /// If `t ≥ p`.
    pub fn with_point(p: u64, t: u64) -> Self {
        assert!(t < p, "point must be reduced");
        EqualityTester { p, t }
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// The evaluation point.
    #[inline]
    pub fn point(&self) -> u64 {
        self.t
    }

    /// Fingerprints a whole string.
    pub fn fingerprint(&self, bits: &[bool]) -> u64 {
        fingerprint(bits, self.p, self.t)
    }

    /// Starts a streaming fingerprint under this tester's point.
    pub fn streaming(&self) -> StreamingFingerprint {
        StreamingFingerprint::new(self.p, self.t)
    }

    /// One-sided equality verdict: `true` means "maybe equal" (always true
    /// for equal strings); `false` certifies the strings differ.
    pub fn probably_equal(&self, a: &[bool], b: &[bool]) -> bool {
        a.len() == b.len() && self.fingerprint(a) == self.fingerprint(b)
    }

    /// Upper bound on the false-accept probability for length-`m` strings:
    /// `(m−1)/p`, from the degree of the difference polynomial.
    pub fn error_bound(&self, m: usize) -> f64 {
        if m <= 1 {
            0.0
        } else {
            (m as f64 - 1.0) / self.p as f64
        }
    }
}

/// The paper's per-test error bound at parameter `k`: strings of length
/// `2^{2k}` under a prime `p > 2^{4k}` collide with probability
/// `< 2^{2k}/2^{4k} = 2^{-2k}`.
pub fn paper_error_bound(k: u32) -> f64 {
    let m = (1u64 << (2 * k)) as f64;
    let p_min = (1u64 << (4 * k)) as f64;
    (m - 1.0) / p_min
}

/// Exact false-accept probability of the tester on a *specific* unequal
/// pair: the fraction of points `t ∈ Z_p` where the fingerprints agree.
/// Exhaustive over `t`; use only for small `p` (verification).
pub fn exact_collision_probability(a: &[bool], b: &[bool], p: u64) -> f64 {
    assert_eq!(a.len(), b.len());
    let collisions = (0..p)
        .filter(|&t| fingerprint(a, p, t) == fingerprint(b, p, t))
        .count();
    collisions as f64 / p as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn equal_strings_always_accepted() {
        let mut rng = StdRng::seed_from_u64(2);
        for k in 1..=4u32 {
            let tester = EqualityTester::for_k(k, &mut rng);
            let len = 1usize << (2 * k);
            let s: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            assert!(tester.probably_equal(&s, &s));
        }
    }

    #[test]
    fn length_mismatch_rejected() {
        let tester = EqualityTester::with_point(17, 3);
        assert!(!tester.probably_equal(&[true], &[true, false]));
    }

    #[test]
    fn unequal_strings_rejected_with_high_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let k = 3u32;
        let len = 1usize << (2 * k);
        let a: Vec<bool> = (0..len).map(|i| i % 2 == 0).collect();
        let mut b = a.clone();
        b[17] = !b[17];
        let mut false_accepts = 0;
        let trials = 500;
        for _ in 0..trials {
            let tester = EqualityTester::for_k(k, &mut rng);
            if tester.probably_equal(&a, &b) {
                false_accepts += 1;
            }
        }
        // Bound is 2^{-2k} = 1/64 per trial; 500 trials should see ≲ 8+slack.
        assert!(
            false_accepts <= 25,
            "too many false accepts: {false_accepts}"
        );
    }

    #[test]
    fn exact_collision_probability_below_bound() {
        // All pairs of 6-bit strings under p = 67 > 2^6.
        let p = 67u64;
        for a_val in 0..64u32 {
            for b_val in (a_val + 1)..64 {
                let a: Vec<bool> = (0..6).map(|i| (a_val >> i) & 1 == 1).collect();
                let b: Vec<bool> = (0..6).map(|i| (b_val >> i) & 1 == 1).collect();
                let prob = exact_collision_probability(&a, &b, p);
                assert!(
                    prob <= 5.0 / p as f64,
                    "pair ({a_val},{b_val}): prob {prob} exceeds (m−1)/p"
                );
            }
        }
    }

    #[test]
    fn paper_bound_decreases_geometrically() {
        assert!(paper_error_bound(1) < 0.2);
        for k in 1..10u32 {
            assert!(paper_error_bound(k + 1) < paper_error_bound(k) / 2.0);
        }
        // The paper's statement: below 1/2^{2k}.
        for k in 1..=10u32 {
            assert!(paper_error_bound(k) < 1.0 / (1u64 << (2 * k)) as f64 + 1e-12);
        }
    }

    #[test]
    fn error_bound_edges() {
        let tester = EqualityTester::with_point(17, 0);
        assert_eq!(tester.error_bound(0), 0.0);
        assert_eq!(tester.error_bound(1), 0.0);
        assert!((tester.error_bound(18) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let tester = EqualityTester::with_point(257, 42);
        let bits = vec![true, false, false, true, true];
        let mut s = tester.streaming();
        s.feed_all(&bits);
        assert_eq!(s.value(), tester.fingerprint(&bits));
    }

    proptest! {
        #[test]
        fn prop_one_sided_completeness(
            bits in proptest::collection::vec(any::<bool>(), 1..200),
            seed in any::<u64>(),
        ) {
            // Whatever the random point, equal strings are NEVER rejected.
            let mut rng = StdRng::seed_from_u64(seed);
            let tester = EqualityTester::for_k(3, &mut rng);
            prop_assert!(tester.probably_equal(&bits, &bits));
        }

        #[test]
        fn prop_soundness_average(
            a in proptest::collection::vec(any::<bool>(), 16),
            flip in 0usize..16,
        ) {
            // For any single-bit flip, the exact collision fraction over all
            // t is at most (m−1)/p.
            let mut b = a.clone();
            b[flip] = !b[flip];
            let p = 257u64;
            let prob = exact_collision_probability(&a, &b, p);
            prop_assert!(prob <= 15.0 / 257.0 + 1e-12);
        }
    }
}
