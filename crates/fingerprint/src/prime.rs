//! Primality testing and the paper's prime-in-a-range search.
//!
//! Procedure A2 needs "an arbitrary prime such that `2^{4k} < p < 2^{4k+1}`",
//! which Bertrand's postulate guarantees to exist. The paper remarks that
//! "the naive strategy consisting in trying all the numbers between `2^{4k}`
//! and `2^{4k+1}` is sufficient"; we implement both that naive scan and a
//! deterministic Miller–Rabin test (exact for all `u64`), and benchmark
//! the two as one of the DESIGN.md ablations.

use crate::modarith::{mul_mod, pow_mod};

/// Deterministic Miller–Rabin for `u64`.
///
/// Uses the sprp base set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`,
/// proven sufficient for all `n < 3.3 × 10^24` — in particular exact for
/// every `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n − 1 = d · 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Trial-division primality (the "naive" building block the paper alludes
/// to). Exact but `O(√n)`; retained for the ablation benchmark and as a
/// cross-check oracle in tests.
pub fn is_prime_trial_division(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The smallest prime `p` with `2^{4k} < p < 2^{4k+1}` (the paper's naive
/// scan, accelerated with Miller–Rabin per candidate).
///
/// # Panics
/// If `4k + 1 > 63` (the modulus would overflow `u64`); the paper's
/// construction then needs wide arithmetic, far beyond simulable sizes.
pub fn fingerprint_prime(k: u32) -> u64 {
    assert!(k >= 1, "the language requires k ≥ 1");
    assert!(4 * k < 63, "4k+1-bit prime exceeds u64 (k = {k})");
    let lo = 1u64 << (4 * k);
    let hi = 1u64 << (4 * k + 1);
    scan_prime(lo + 1, hi).expect("Bertrand's postulate guarantees a prime in (2^4k, 2^{4k+1})")
}

/// First prime in `[lo, hi)`, or `None`.
pub fn scan_prime(lo: u64, hi: u64) -> Option<u64> {
    (lo..hi).find(|&n| is_prime(n))
}

/// First prime in `[lo, hi)` using trial division only (ablation baseline).
pub fn scan_prime_trial_division(lo: u64, hi: u64) -> Option<u64> {
    (lo..hi).find(|&n| is_prime_trial_division(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 97, 7919];
        for &p in &primes {
            assert!(is_prime(p), "{p} is prime");
            assert!(is_prime_trial_division(p));
        }
        let composites = [0u64, 1, 4, 6, 9, 15, 21, 25, 49, 91, 561, 6601, 8911];
        for &c in &composites {
            assert!(!is_prime(c), "{c} is composite");
            assert!(!is_prime_trial_division(c));
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        // Carmichael numbers and known base-2 strong pseudoprimes.
        for &n in &[2047u64, 3277, 4033, 1373653, 25326001, 3215031751] {
            assert!(!is_prime(n), "{n} is a pseudoprime, not a prime");
        }
    }

    #[test]
    fn large_known_primes() {
        assert!(is_prime((1u64 << 61) - 1)); // Mersenne prime M61
        assert!(is_prime(4611686018427387847)); // prime near 2^62
        assert!(!is_prime((1u64 << 61) - 2));
    }

    #[test]
    fn methods_agree_on_a_range() {
        for n in 0..2000u64 {
            assert_eq!(is_prime(n), is_prime_trial_division(n), "n={n}");
        }
    }

    #[test]
    fn fingerprint_prime_in_paper_range() {
        for k in 1..=15u32 {
            let p = fingerprint_prime(k);
            assert!(p > 1u64 << (4 * k), "k={k}: p={p} too small");
            assert!(p < 1u64 << (4 * k + 1), "k={k}: p={p} too large");
            assert!(is_prime(p));
        }
    }

    #[test]
    fn fingerprint_prime_k1_is_17() {
        // 2^4 = 16 < p < 32; smallest prime is 17.
        assert_eq!(fingerprint_prime(1), 17);
        // 2^8 = 256 < p < 512; smallest prime is 257.
        assert_eq!(fingerprint_prime(2), 257);
    }

    #[test]
    #[should_panic(expected = "exceeds u64")]
    fn oversized_k_panics() {
        fingerprint_prime(16);
    }

    #[test]
    fn scan_variants_agree() {
        assert_eq!(scan_prime(90, 120), Some(97));
        assert_eq!(scan_prime_trial_division(90, 120), Some(97));
        assert_eq!(scan_prime(24, 29), None);
        assert_eq!(scan_prime(0, 3), Some(2));
    }
}
