//! Persistent checkpoint store: a content-addressed, append-only log of
//! [`SessionCheckpoint`]s and finished-instance [`RunOutcome`]s.
//!
//! [`SessionCheckpoint`] bytes are portable (DESIGN.md §7) but, until
//! this module, lived only in memory — a crashed or preempted sweep lost
//! everything. A [`CheckpointStore`] is one log file plus an in-memory
//! index:
//!
//! * **Header** — magic, store format version, the
//!   [`CHECKPOINT_VERSION`] the payloads use, the workspace version that
//!   wrote the file, and the decider's
//!   [`Checkpointable::TYPE_TAG`]. A store written by an unknown layout,
//!   a different checkpoint version, a different workspace version, or
//!   for a different decider type is rejected on open — never
//!   half-read, never panicked on.
//! * **Records** — appended, never rewritten. Each record carries its
//!   kind (checkpoint or outcome, full or ref), the owning instance
//!   index, the stream position, a 128-bit FNV/SplitMix content hash of
//!   the payload (the record's *key*), and a header checksum. A payload
//!   is stored once: re-appending bytes the log already holds writes a
//!   small *ref* record pointing at the existing payload (content
//!   addressing). Checkpoint payloads are [`SessionCheckpoint`] bytes;
//!   **outcome** payloads are the fixed-width [`RunOutcome`] encoding a
//!   finished instance leaves behind, so a resumed sweep can *skip* the
//!   instance instead of replaying it from its last checkpoint
//!   (DESIGN.md §9).
//! * **Recovery** — [`CheckpointStore::open`] is strict: a truncated
//!   tail (the signature of a crash mid-append) or a bit-flipped record
//!   is an error. [`CheckpointStore::recover`] salvages instead: it
//!   keeps the longest valid record prefix, truncates the rest, and
//!   reports what was dropped. Resuming a crashed sweep goes through
//!   `recover`; since checkpoints are only appended at segment
//!   boundaries, the salvaged prefix is always a consistent set of
//!   boundary snapshots.
//! * **Compaction** — the log only grows; a resume-heavy store
//!   accumulates superseded checkpoints. [`CheckpointStore::compact`]
//!   rewrites one record per instance — its outcome if it finished, its
//!   latest checkpoint otherwise — to a sibling temp file, atomically
//!   renames it over the log, and re-indexes. Readers never observe a
//!   half-compacted store: a crash before the rename leaves the old log
//!   untouched, a crash after it leaves the new one complete.
//!
//! Concurrent writers are excluded by a `<path>.lock` file. A lock left
//! behind by a killed process (an *orphaned lock*) makes open fail with
//! [`StoreError::Locked`]; [`CheckpointStore::break_lock`] removes it
//! once the operator knows the writer is gone. The per-shard store
//! files used by the cross-process scheduler never share a writer, so
//! orphaned locks only arise from kills — exactly the case `recover` +
//! `break_lock` exist for.
//!
//! Durability scope: records survive process death (the kill-based
//! suites pin this); surviving machine/power failure would additionally
//! need an fsync per append, which the sweep cadence does not pay for.

use crate::session::{CheckpointError, Checkpointable, SessionCheckpoint, CHECKPOINT_VERSION};
use crate::streaming::RunOutcome;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The store's own format version (independent of [`CHECKPOINT_VERSION`],
/// which versions the checkpoint payload bytes). Version 2 added the
/// outcome record kinds and their fixed-width [`RunOutcome`] payload —
/// version-1 logs hold no outcomes, so they are rejected rather than
/// resumed with silent replays.
pub const STORE_VERSION: u8 = 2;

/// The 8-byte magic opening every store file.
pub const STORE_MAGIC: [u8; 8] = *b"OQSC-CPS";

/// The workspace version stamped into store headers (a store written by
/// one build of the workspace is not silently decoded by another).
pub const WORKSPACE_VERSION: &str = env!("CARGO_PKG_VERSION");

const RECORD_FULL: u8 = 1;
const RECORD_REF: u8 = 2;
const RECORD_OUTCOME_FULL: u8 = 3;
const RECORD_OUTCOME_REF: u8 = 4;
/// kind (1) + instance (8) + position (8) + key (16) + header check (8).
const RECORD_HEADER_LEN: u64 = 41;

/// Byte length of an encoded [`RunOutcome`] payload: accept (1) +
/// classical bits (8) + peak qubits (8) + peak amplitudes (8).
const OUTCOME_PAYLOAD_LEN: u64 = 25;

/// Why a store could not be opened, read, or appended to.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not begin with the store magic (wrong file, or a
    /// zero-length / foreign file).
    NotAStore,
    /// The store format version is not one this build understands.
    UnsupportedStoreVersion(u8),
    /// The payloads were written under a different checkpoint encoding
    /// version.
    CheckpointVersionMismatch {
        /// Version recorded in the header.
        found: u8,
    },
    /// The store was written by a different workspace version.
    WorkspaceMismatch {
        /// Version string recorded in the header.
        found: String,
    },
    /// The store was written for a different decider type.
    DeciderMismatch {
        /// [`Checkpointable::TYPE_TAG`] recorded in the header.
        found: String,
        /// The tag the caller expected.
        expected: String,
    },
    /// The file ends mid-header or mid-record (crash mid-append, or an
    /// external truncation).
    Truncated {
        /// Offset of the first incomplete byte range.
        offset: u64,
    },
    /// A record's checksum or content hash does not match its bytes
    /// (bit flip), or a ref record points at a payload the log does not
    /// hold.
    CorruptRecord {
        /// Offset of the corrupt record.
        offset: u64,
    },
    /// [`CheckpointStore::get`] was asked for a key the store does not
    /// hold.
    UnknownKey,
    /// Another writer holds (or a killed writer left) the lock file.
    Locked {
        /// The lock file path.
        lock_path: PathBuf,
    },
    /// [`CheckpointStore::create`] refused to overwrite an existing
    /// file.
    AlreadyExists {
        /// The existing store path.
        path: PathBuf,
    },
    /// A stored payload failed checkpoint-level validation.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "checkpoint store I/O error: {e}"),
            StoreError::NotAStore => write!(f, "not a checkpoint store (missing magic)"),
            StoreError::UnsupportedStoreVersion(v) => {
                write!(f, "unsupported store version {v} (this build reads {STORE_VERSION})")
            }
            StoreError::CheckpointVersionMismatch { found } => write!(
                f,
                "store holds checkpoint-version-{found} payloads (this build reads {CHECKPOINT_VERSION})"
            ),
            StoreError::WorkspaceMismatch { found } => write!(
                f,
                "store written by workspace {found} (this build is {WORKSPACE_VERSION})"
            ),
            StoreError::DeciderMismatch { found, expected } => {
                write!(f, "store written for decider {found:?}, expected {expected:?}")
            }
            StoreError::Truncated { offset } => {
                write!(f, "store truncated at byte {offset}")
            }
            StoreError::CorruptRecord { offset } => {
                write!(f, "corrupt store record at byte {offset}")
            }
            StoreError::UnknownKey => write!(f, "no record with the requested content key"),
            StoreError::Locked { lock_path } => write!(
                f,
                "store is locked by another writer (or an orphaned lock): {}",
                lock_path.display()
            ),
            StoreError::AlreadyExists { path } => write!(
                f,
                "store already exists (open it with --resume / recover instead): {}",
                path.display()
            ),
            StoreError::Checkpoint(e) => write!(f, "stored checkpoint invalid: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CheckpointError> for StoreError {
    fn from(e: CheckpointError) -> Self {
        StoreError::Checkpoint(e)
    }
}

// ---------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer: scrambles FNV's weak low bits.
fn splitmix_fin(mut z: u64) -> u64 {
    z = z.wrapping_add(SPLITMIX_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The 128-bit content key of a checkpoint payload: two independently
/// seeded FNV-1a streams, each passed through a SplitMix64 finalizer.
/// Identical payloads — and only identical payloads, up to a 2⁻¹²⁸
/// collision — share a key, which is what lets the log store each
/// payload once.
pub fn content_key(payload: &[u8]) -> u128 {
    let hi = splitmix_fin(fnv1a64(FNV_OFFSET, payload));
    let lo = splitmix_fin(fnv1a64(FNV_OFFSET ^ SPLITMIX_GAMMA, payload));
    (u128::from(hi) << 64) | u128::from(lo)
}

fn record_header_check(kind: u8, instance: u64, position: u64, key: u128) -> u64 {
    let mut bytes = Vec::with_capacity(33);
    bytes.push(kind);
    bytes.extend_from_slice(&instance.to_le_bytes());
    bytes.extend_from_slice(&position.to_le_bytes());
    bytes.extend_from_slice(&key.to_le_bytes());
    splitmix_fin(fnv1a64(FNV_OFFSET, &bytes))
}

// ---------------------------------------------------------------------
// Outcome payloads
// ---------------------------------------------------------------------

/// Encodes a finished instance's [`RunOutcome`] as the fixed-width
/// outcome payload ([`OUTCOME_PAYLOAD_LEN`] bytes, all integers — the
/// round trip is exact).
fn encode_outcome(o: &RunOutcome) -> Vec<u8> {
    let mut out = Vec::with_capacity(OUTCOME_PAYLOAD_LEN as usize);
    out.push(u8::from(o.accept));
    out.extend_from_slice(&(o.classical_bits as u64).to_le_bytes());
    out.extend_from_slice(&(o.peak_qubits as u64).to_le_bytes());
    out.extend_from_slice(&(o.peak_amplitudes as u64).to_le_bytes());
    out
}

/// Decodes an outcome payload, rejecting wrong lengths and non-boolean
/// accept bytes (a bit-flipped payload already fails the content hash;
/// this guards hand-crafted or cross-version bytes).
fn decode_outcome(bytes: &[u8]) -> Option<RunOutcome> {
    if bytes.len() as u64 != OUTCOME_PAYLOAD_LEN || bytes[0] > 1 {
        return None;
    }
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("sliced"));
    Some(RunOutcome {
        accept: bytes[0] == 1,
        classical_bits: usize::try_from(word(1)).ok()?,
        peak_qubits: usize::try_from(word(9)).ok()?,
        peak_amplitudes: usize::try_from(word(17)).ok()?,
    })
}

// ---------------------------------------------------------------------
// Lock files
// ---------------------------------------------------------------------

/// RAII guard over `<path>.lock`; removes the lock file on drop.
#[derive(Debug)]
struct LockGuard {
    lock_path: PathBuf,
}

impl LockGuard {
    fn acquire(store_path: &Path) -> Result<Self, StoreError> {
        let lock_path = lock_path_for(store_path);
        match OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock_path)
        {
            Ok(mut f) => {
                // Advisory content: which process took the lock.
                let _ = writeln!(f, "{}", std::process::id());
                Ok(LockGuard { lock_path })
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                Err(StoreError::Locked { lock_path })
            }
            Err(e) => Err(e.into()),
        }
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.lock_path);
    }
}

fn lock_path_for(store_path: &Path) -> PathBuf {
    let mut os = store_path.as_os_str().to_os_string();
    os.push(".lock");
    PathBuf::from(os)
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// What [`CheckpointStore::recover`] salvaged from a damaged log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records in the valid prefix that was kept.
    pub salvaged_records: usize,
    /// Bytes of truncated or corrupt tail that were discarded.
    pub dropped_bytes: u64,
}

/// What [`CheckpointStore::compact`] did to the log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records in the log before compaction.
    pub records_before: usize,
    /// Records after (one per instance: outcome or latest checkpoint).
    pub records_after: usize,
    /// Log size in bytes before compaction.
    pub bytes_before: u64,
    /// Log size in bytes after.
    pub bytes_after: u64,
}

#[derive(Clone, Copy, Debug)]
struct PayloadLoc {
    offset: u64,
    len: u64,
}

/// A content-addressed, append-only log of [`SessionCheckpoint`]s and
/// finished-instance [`RunOutcome`]s for one decider type. See the
/// module docs for the format, the recovery protocol, and compaction.
#[derive(Debug)]
pub struct CheckpointStore {
    file: File,
    path: PathBuf,
    /// The validated header bytes (compaction rewrites them verbatim).
    header: Vec<u8>,
    /// Logical end of valid data (everything before it has been
    /// validated or written by this handle).
    end: u64,
    /// Content key → location of the (single) stored payload.
    index: HashMap<u128, PayloadLoc>,
    /// Instance → (highest stream position seen, its content key).
    latest: HashMap<u64, (u64, u128)>,
    /// Instance → (final stream position, outcome payload key), for
    /// instances that ran to completion.
    finished: HashMap<u64, (u64, u128)>,
    records: usize,
    _lock: LockGuard,
}

impl CheckpointStore {
    /// Creates a fresh store at `path` for deciders tagged `tag`.
    /// Refuses to overwrite an existing file
    /// ([`StoreError::AlreadyExists`]) — resuming goes through
    /// [`recover`](Self::recover) instead.
    pub fn create(path: impl AsRef<Path>, tag: &str) -> Result<Self, StoreError> {
        let path = path.as_ref();
        // Lock first: a live writer reports `Locked`, not `AlreadyExists`.
        let lock = LockGuard::acquire(path)?;
        if path.exists() {
            return Err(StoreError::AlreadyExists {
                path: path.to_path_buf(),
            });
        }
        let mut header = Vec::with_capacity(32);
        header.extend_from_slice(&STORE_MAGIC);
        header.push(STORE_VERSION);
        header.push(CHECKPOINT_VERSION);
        push_short_str(&mut header, WORKSPACE_VERSION);
        push_short_str(&mut header, tag);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        file.write_all(&header)?;
        Ok(CheckpointStore {
            file,
            path: path.to_path_buf(),
            end: header.len() as u64,
            header,
            index: HashMap::new(),
            latest: HashMap::new(),
            finished: HashMap::new(),
            records: 0,
            _lock: lock,
        })
    }

    /// Opens an existing store strictly: any header mismatch, truncated
    /// tail, or corrupt record is an error. Use
    /// [`recover`](Self::recover) to salvage a damaged log.
    pub fn open(path: impl AsRef<Path>, tag: &str) -> Result<Self, StoreError> {
        Self::open_inner(path.as_ref(), tag, false).map(|(store, _)| store)
    }

    /// Opens an existing store, keeping the longest valid record prefix
    /// and truncating any damaged tail (the crash-recovery path).
    /// Header-level mismatches are still fatal: recovery never
    /// reinterprets a store written by a different layout, workspace, or
    /// decider type.
    pub fn recover(
        path: impl AsRef<Path>,
        tag: &str,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        Self::open_inner(path.as_ref(), tag, true)
    }

    /// [`create`](Self::create) with the tag taken from the decider type.
    pub fn create_for<D: Checkpointable>(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::create(path, D::TYPE_TAG)
    }

    /// [`open`](Self::open) with the tag taken from the decider type.
    pub fn open_for<D: Checkpointable>(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open(path, D::TYPE_TAG)
    }

    /// [`recover`](Self::recover) with the tag taken from the decider
    /// type.
    pub fn recover_for<D: Checkpointable>(
        path: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        Self::recover(path, D::TYPE_TAG)
    }

    /// Removes an orphaned lock file left behind by a killed writer.
    /// Returns whether a lock existed. Only call this once the previous
    /// writer is known to be dead — breaking a live writer's lock
    /// un-serializes the log.
    pub fn break_lock(path: impl AsRef<Path>) -> Result<bool, StoreError> {
        match std::fs::remove_file(lock_path_for(path.as_ref())) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    fn open_inner(
        path: &Path,
        tag: &str,
        salvage: bool,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let lock = LockGuard::acquire(path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let header_len = validate_header(&bytes, tag)?;
        let mut index = HashMap::new();
        let mut latest: HashMap<u64, (u64, u128)> = HashMap::new();
        let mut finished: HashMap<u64, (u64, u128)> = HashMap::new();
        let mut records = 0usize;
        let mut off = header_len;
        let end = loop {
            if off == bytes.len() as u64 {
                break off;
            }
            match scan_record(&bytes, off, &index) {
                Ok(rec) => {
                    if let Some(loc) = rec.stored {
                        index.insert(rec.key, loc);
                    }
                    if rec.outcome {
                        finished.insert(rec.instance, (rec.position, rec.key));
                    } else {
                        let slot = latest.entry(rec.instance).or_insert((0, rec.key));
                        if rec.position >= slot.0 {
                            *slot = (rec.position, rec.key);
                        }
                    }
                    records += 1;
                    off = rec.next;
                }
                Err(e) if salvage => {
                    debug_assert!(matches!(
                        e,
                        StoreError::Truncated { .. } | StoreError::CorruptRecord { .. }
                    ));
                    break off;
                }
                Err(e) => return Err(e),
            }
        };
        let dropped = bytes.len() as u64 - end;
        if dropped > 0 {
            file.set_len(end)?;
        }
        Ok((
            CheckpointStore {
                file,
                path: path.to_path_buf(),
                header: bytes[..header_len as usize].to_vec(),
                end,
                index,
                latest,
                finished,
                records,
                _lock: lock,
            },
            RecoveryReport {
                salvaged_records: records,
                dropped_bytes: dropped,
            },
        ))
    }

    /// Appends one record (checkpoint or outcome) owned by `instance`,
    /// writing the payload only if the log does not already hold it.
    fn append_record(
        &mut self,
        full_kind: u8,
        ref_kind: u8,
        instance: u64,
        position: u64,
        payload: &[u8],
    ) -> Result<u128, StoreError> {
        let key = content_key(payload);
        let kind = if self.index.contains_key(&key) {
            ref_kind
        } else {
            full_kind
        };
        let mut rec = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len() + 8);
        rec.push(kind);
        rec.extend_from_slice(&instance.to_le_bytes());
        rec.extend_from_slice(&position.to_le_bytes());
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(&record_header_check(kind, instance, position, key).to_le_bytes());
        if kind == full_kind {
            rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            rec.extend_from_slice(payload);
        }
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&rec)?;
        if kind == full_kind {
            self.index.insert(
                key,
                PayloadLoc {
                    offset: self.end + RECORD_HEADER_LEN + 8,
                    len: payload.len() as u64,
                },
            );
        }
        self.end += rec.len() as u64;
        self.records += 1;
        Ok(key)
    }

    /// Appends one checkpoint owned by `instance`. Returns the payload's
    /// content key. A payload the log already holds is not rewritten —
    /// only a small ref record is appended.
    pub fn append(&mut self, instance: u64, cp: &SessionCheckpoint) -> Result<u128, StoreError> {
        let position = cp.position();
        let key = self.append_record(RECORD_FULL, RECORD_REF, instance, position, cp.as_bytes())?;
        let slot = self.latest.entry(instance).or_insert((position, key));
        if position >= slot.0 {
            *slot = (position, key);
        }
        Ok(key)
    }

    /// Appends the final [`RunOutcome`] of `instance`, which consumed
    /// `position` stream tokens. A resumed sweep skips instances with a
    /// persisted outcome instead of replaying them from their last
    /// checkpoint. Returns the outcome payload's content key (identical
    /// outcomes — common in Monte-Carlo fleets — are stored once).
    pub fn append_outcome(
        &mut self,
        instance: u64,
        position: u64,
        outcome: &RunOutcome,
    ) -> Result<u128, StoreError> {
        let key = self.append_record(
            RECORD_OUTCOME_FULL,
            RECORD_OUTCOME_REF,
            instance,
            position,
            &encode_outcome(outcome),
        )?;
        self.finished.insert(instance, (position, key));
        Ok(key)
    }

    /// Reads the raw payload with content key `key`, re-verifying the
    /// hash against the bytes on disk.
    fn get_payload(&mut self, key: u128) -> Result<Vec<u8>, StoreError> {
        let loc = *self.index.get(&key).ok_or(StoreError::UnknownKey)?;
        self.file.seek(SeekFrom::Start(loc.offset))?;
        let mut payload = vec![0u8; loc.len as usize];
        self.file.read_exact(&mut payload)?;
        if content_key(&payload) != key {
            return Err(StoreError::CorruptRecord { offset: loc.offset });
        }
        Ok(payload)
    }

    /// Reads the checkpoint with content key `key`, re-verifying the
    /// hash against the bytes on disk.
    pub fn get(&mut self, key: u128) -> Result<SessionCheckpoint, StoreError> {
        Ok(SessionCheckpoint::from_bytes(self.get_payload(key)?)?)
    }

    /// The newest checkpoint persisted for `instance` (highest stream
    /// position), if any.
    pub fn latest(&mut self, instance: u64) -> Result<Option<SessionCheckpoint>, StoreError> {
        match self.latest.get(&instance) {
            None => Ok(None),
            Some(&(_, key)) => self.get(key).map(Some),
        }
    }

    /// The stream position of the newest checkpoint for `instance`.
    pub fn latest_position(&self, instance: u64) -> Option<u64> {
        self.latest.get(&instance).map(|&(p, _)| p)
    }

    /// The persisted final [`RunOutcome`] of `instance`, if it ran to
    /// completion, re-verified against the bytes on disk.
    pub fn outcome(&mut self, instance: u64) -> Result<Option<RunOutcome>, StoreError> {
        let Some(&(_, key)) = self.finished.get(&instance) else {
            return Ok(None);
        };
        let loc = *self.index.get(&key).ok_or(StoreError::UnknownKey)?;
        let payload = self.get_payload(key)?;
        decode_outcome(&payload)
            .map(Some)
            .ok_or(StoreError::CorruptRecord { offset: loc.offset })
    }

    /// Whether `instance` has a persisted final outcome.
    pub fn is_finished(&self, instance: u64) -> bool {
        self.finished.contains_key(&instance)
    }

    /// Number of instances with a persisted final outcome.
    pub fn finished_instances(&self) -> usize {
        self.finished.len()
    }

    /// Number of records appended (full + ref, checkpoints + outcomes).
    pub fn records(&self) -> usize {
        self.records
    }

    /// Number of distinct payloads stored.
    pub fn payloads(&self) -> usize {
        self.index.len()
    }

    /// Number of instances with at least one checkpoint or outcome.
    pub fn instances(&self) -> usize {
        self.finished.len()
            + self
                .latest
                .keys()
                .filter(|k| !self.finished.contains_key(k))
                .count()
    }

    /// Size of the log file in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.end
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rewrites the log keeping exactly one record per instance — its
    /// outcome if it finished, its latest checkpoint otherwise — into a
    /// sibling temp file, then atomically renames it over the log and
    /// re-indexes. Superseded checkpoints (the bulk of a resume-heavy
    /// store) are dropped; everything a resume reads — latest
    /// checkpoints, outcomes, positions — survives bit-exactly, so a
    /// strict [`open`](Self::open) + resume after compaction behaves
    /// identically. The lock is held throughout; a crash before the
    /// rename leaves the old log untouched.
    pub fn compact(&mut self) -> Result<CompactionReport, StoreError> {
        let before = CompactionReport {
            records_before: self.records,
            records_after: 0,
            bytes_before: self.end,
            bytes_after: 0,
        };
        // One surviving record per instance, in instance order (so the
        // compacted bytes are a pure function of the logical contents).
        let mut survivors: Vec<(u64, u64, u128, bool)> = Vec::new();
        for (&instance, &(position, key)) in &self.finished {
            survivors.push((instance, position, key, true));
        }
        for (&instance, &(position, key)) in &self.latest {
            if !self.finished.contains_key(&instance) {
                survivors.push((instance, position, key, false));
            }
        }
        survivors.sort_unstable_by_key(|&(instance, ..)| instance);
        // Stream the compacted log into a sibling temp file, one record
        // at a time: each surviving payload is read from the old log
        // (hash re-verified by get_payload) and written straight out, so
        // memory stays bounded by the largest single payload — not the
        // surviving set, which on a big fleet is itself huge.
        let tmp_path = {
            let mut os = self.path.as_os_str().to_os_string();
            os.push(".compact");
            PathBuf::from(os)
        };
        let _ = std::fs::remove_file(&tmp_path);
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&tmp_path)?;
        let mut index = HashMap::new();
        let mut latest = HashMap::new();
        let mut finished = HashMap::new();
        tmp.write_all(&self.header)?;
        let mut end = self.header.len() as u64;
        for &(instance, position, key, is_outcome) in &survivors {
            let (full_kind, ref_kind) = if is_outcome {
                (RECORD_OUTCOME_FULL, RECORD_OUTCOME_REF)
            } else {
                (RECORD_FULL, RECORD_REF)
            };
            let kind = if index.contains_key(&key) {
                ref_kind
            } else {
                full_kind
            };
            let mut rec = Vec::with_capacity(RECORD_HEADER_LEN as usize + 8);
            rec.push(kind);
            rec.extend_from_slice(&instance.to_le_bytes());
            rec.extend_from_slice(&position.to_le_bytes());
            rec.extend_from_slice(&key.to_le_bytes());
            rec.extend_from_slice(
                &record_header_check(kind, instance, position, key).to_le_bytes(),
            );
            if kind == full_kind {
                let payload = self.get_payload(key)?;
                rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                tmp.write_all(&rec)?;
                tmp.write_all(&payload)?;
                index.insert(
                    key,
                    PayloadLoc {
                        offset: end + rec.len() as u64,
                        len: payload.len() as u64,
                    },
                );
                end += rec.len() as u64 + payload.len() as u64;
            } else {
                tmp.write_all(&rec)?;
                end += rec.len() as u64;
            }
            if is_outcome {
                finished.insert(instance, (position, key));
            } else {
                latest.insert(instance, (position, key));
            }
        }
        tmp.sync_all()?;
        // Rename the temp log into place — the one atomic step. The
        // `.lock` path is untouched, so this handle keeps its writer
        // exclusion across the swap. The temp file's own handle becomes
        // the store handle: a rename does not invalidate an open
        // descriptor, so there is no post-rename reopen that could fail
        // and leave this handle appending to the unlinked
        // pre-compaction inode.
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = tmp;
        self.end = end;
        self.index = index;
        self.latest = latest;
        self.finished = finished;
        self.records = survivors.len();
        Ok(CompactionReport {
            records_after: self.records,
            bytes_after: self.end,
            ..before
        })
    }

    /// [`compact`](Self::compact) on a store file in one step: reads the
    /// decider tag out of the header (fully validating it first), opens
    /// the store strictly, and compacts. This is what `experiments
    /// --compact` drives — the operator does not need to know which
    /// decider type wrote each shard file.
    pub fn compact_file(path: impl AsRef<Path>) -> Result<CompactionReport, StoreError> {
        let tag = peek_tag(path.as_ref())?;
        Self::open(path, &tag)?.compact()
    }
}

/// Reads the decider [`Checkpointable::TYPE_TAG`] out of a store file's
/// header, validating magic and versions on the way (but, by
/// construction, not the tag itself). Lets tag-agnostic tooling — store
/// compaction, inspection — open a store that describes itself. Only a
/// bounded prefix is read: the header's variable parts carry `u8`
/// length prefixes, so it can never exceed [`MAX_HEADER_LEN`] bytes —
/// peeking a multi-hundred-megabyte resume-heavy log costs one small
/// read, not a full scan.
pub fn peek_tag(path: impl AsRef<Path>) -> Result<String, StoreError> {
    let mut bytes = Vec::with_capacity(MAX_HEADER_LEN);
    File::open(path.as_ref())?
        .take(MAX_HEADER_LEN as u64)
        .read_to_end(&mut bytes)?;
    validate_header_tag(&bytes).map(|(_, tag)| tag)
}

/// Upper bound on the header's byte length: magic + two version bytes +
/// two `u8`-length-prefixed strings of at most 255 bytes each.
const MAX_HEADER_LEN: usize = STORE_MAGIC.len() + 2 + 2 * (1 + u8::MAX as usize);

fn push_short_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u8::MAX as usize);
    out.push(s.len().min(u8::MAX as usize) as u8);
    out.extend_from_slice(&s.as_bytes()[..s.len().min(u8::MAX as usize)]);
}

/// Validates the variable-length header, returning its byte length and
/// the decider tag it records. Every read is bounds-checked against the
/// file, so a truncated or hostile header can never index out of range
/// or over-allocate.
fn validate_header_tag(bytes: &[u8]) -> Result<(u64, String), StoreError> {
    if bytes.len() < STORE_MAGIC.len() || bytes[..STORE_MAGIC.len()] != STORE_MAGIC {
        return Err(StoreError::NotAStore);
    }
    let mut off = STORE_MAGIC.len();
    let take = |off: &mut usize, n: usize| -> Result<&[u8], StoreError> {
        if bytes.len() - *off < n {
            return Err(StoreError::Truncated {
                offset: *off as u64,
            });
        }
        let out = &bytes[*off..*off + n];
        *off += n;
        Ok(out)
    };
    let store_ver = take(&mut off, 1)?[0];
    if store_ver != STORE_VERSION {
        return Err(StoreError::UnsupportedStoreVersion(store_ver));
    }
    let cp_ver = take(&mut off, 1)?[0];
    if cp_ver != CHECKPOINT_VERSION {
        return Err(StoreError::CheckpointVersionMismatch { found: cp_ver });
    }
    let ws_len = take(&mut off, 1)?[0] as usize;
    let ws = String::from_utf8_lossy(take(&mut off, ws_len)?).into_owned();
    if ws != WORKSPACE_VERSION {
        return Err(StoreError::WorkspaceMismatch { found: ws });
    }
    let tag_len = take(&mut off, 1)?[0] as usize;
    let found_tag = String::from_utf8_lossy(take(&mut off, tag_len)?).into_owned();
    Ok((off as u64, found_tag))
}

/// [`validate_header_tag`], additionally requiring the recorded decider
/// tag to equal `tag`.
fn validate_header(bytes: &[u8], tag: &str) -> Result<u64, StoreError> {
    let (len, found_tag) = validate_header_tag(bytes)?;
    if found_tag != tag {
        return Err(StoreError::DeciderMismatch {
            found: found_tag,
            expected: tag.to_string(),
        });
    }
    Ok(len)
}

struct ScannedRecord {
    instance: u64,
    position: u64,
    key: u128,
    /// True for outcome records (full or ref).
    outcome: bool,
    /// Payload location, for full records (refs reuse the index entry).
    stored: Option<PayloadLoc>,
    /// Offset one past the record.
    next: u64,
}

/// Validates the record starting at `off`. Length fields are checked
/// against the real file size *before* any slice or allocation, so a
/// bit-flipped (or hostile) length can neither panic nor over-allocate.
fn scan_record(
    bytes: &[u8],
    off: u64,
    index: &HashMap<u128, PayloadLoc>,
) -> Result<ScannedRecord, StoreError> {
    let remaining = bytes.len() as u64 - off;
    if remaining < RECORD_HEADER_LEN {
        return Err(StoreError::Truncated { offset: off });
    }
    let at = off as usize;
    let kind = bytes[at];
    let instance = u64::from_le_bytes(bytes[at + 1..at + 9].try_into().expect("sliced"));
    let position = u64::from_le_bytes(bytes[at + 9..at + 17].try_into().expect("sliced"));
    let key = u128::from_le_bytes(bytes[at + 17..at + 33].try_into().expect("sliced"));
    let check = u64::from_le_bytes(bytes[at + 33..at + 41].try_into().expect("sliced"));
    if check != record_header_check(kind, instance, position, key) {
        return Err(StoreError::CorruptRecord { offset: off });
    }
    match kind {
        RECORD_REF | RECORD_OUTCOME_REF => {
            let Some(loc) = index.get(&key) else {
                // A ref to a payload the log never stored: dangling.
                return Err(StoreError::CorruptRecord { offset: off });
            };
            if kind == RECORD_OUTCOME_REF {
                // An outcome ref must reference outcome-shaped bytes: a
                // crafted ref at a checkpoint payload would otherwise
                // pass strict open and then poison compaction (which
                // rewrites it as an outcome full record that no longer
                // scans). The loc came from a validated full record, so
                // the slice is in bounds.
                let payload = &bytes[loc.offset as usize..(loc.offset + loc.len) as usize];
                if decode_outcome(payload).is_none() {
                    return Err(StoreError::CorruptRecord { offset: off });
                }
            }
            Ok(ScannedRecord {
                instance,
                position,
                key,
                outcome: kind == RECORD_OUTCOME_REF,
                stored: None,
                next: off + RECORD_HEADER_LEN,
            })
        }
        RECORD_FULL | RECORD_OUTCOME_FULL => {
            if remaining < RECORD_HEADER_LEN + 8 {
                return Err(StoreError::Truncated { offset: off });
            }
            let len = u64::from_le_bytes(bytes[at + 41..at + 49].try_into().expect("sliced"));
            if remaining - RECORD_HEADER_LEN - 8 < len {
                return Err(StoreError::Truncated { offset: off });
            }
            let payload_off = off + RECORD_HEADER_LEN + 8;
            let payload = &bytes[payload_off as usize..(payload_off + len) as usize];
            if content_key(payload) != key {
                return Err(StoreError::CorruptRecord { offset: off });
            }
            if kind == RECORD_OUTCOME_FULL && decode_outcome(payload).is_none() {
                // Right hash, wrong shape: hand-crafted bytes, never a
                // bit flip. Still refused before anything trusts it.
                return Err(StoreError::CorruptRecord { offset: off });
            }
            Ok(ScannedRecord {
                instance,
                position,
                key,
                outcome: kind == RECORD_OUTCOME_FULL,
                stored: Some(PayloadLoc {
                    offset: payload_off,
                    len,
                }),
                next: payload_off + len,
            })
        }
        _ => Err(StoreError::CorruptRecord { offset: off }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::streaming::{StoreEverything, StorePredicate};
    use oqsc_lang::Sym;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oqsc-store-unit-{}-{name}.cps", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(lock_path_for(&p));
        p
    }

    fn checkpoint_at(tokens: usize) -> SessionCheckpoint {
        let mut s = Session::new(StoreEverything::new(StorePredicate::ContainsOne));
        for i in 0..tokens {
            s.feed(if i % 2 == 0 { Sym::One } else { Sym::Zero });
        }
        s.suspend()
    }

    #[test]
    fn append_get_latest_round_trip() {
        let path = temp_path("round-trip");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        let a = checkpoint_at(3);
        let b = checkpoint_at(7);
        let ka = store.append(0, &a).expect("append a");
        let kb = store.append(0, &b).expect("append b");
        assert_ne!(ka, kb);
        assert_eq!(store.get(ka).expect("get a"), a);
        assert_eq!(store.latest(0).expect("latest"), Some(b.clone()));
        assert_eq!(store.latest_position(0), Some(7));
        assert_eq!(store.latest(1).expect("none"), None);
        drop(store);
        // Reopen strictly: everything is still there.
        let mut store = CheckpointStore::open_for::<StoreEverything>(&path).expect("open");
        assert_eq!(store.records(), 2);
        assert_eq!(store.latest(0).expect("latest"), Some(b));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn identical_payloads_are_stored_once() {
        let path = temp_path("dedupe");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        let cp = checkpoint_at(5);
        let k1 = store.append(0, &cp).expect("first");
        let full_size = store.len_bytes();
        let k2 = store.append(9, &cp).expect("second (other instance)");
        assert_eq!(k1, k2, "content-addressed: same bytes, same key");
        assert_eq!(store.payloads(), 1);
        let ref_growth = store.len_bytes() - full_size;
        assert_eq!(
            ref_growth, RECORD_HEADER_LEN,
            "ref records carry no payload"
        );
        // Both instances resolve to the same checkpoint, across a reopen.
        drop(store);
        let mut store = CheckpointStore::open_for::<StoreEverything>(&path).expect("open");
        assert_eq!(store.latest(9).expect("latest"), Some(cp));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_refuses_to_overwrite_and_locks_exclude() {
        let path = temp_path("exclusive");
        let store = CheckpointStore::create(&path, "T").expect("create");
        assert!(matches!(
            CheckpointStore::create(&path, "T"),
            Err(StoreError::Locked { .. })
        ));
        drop(store);
        // Lock released on drop; the file still exists, so create refuses.
        assert!(matches!(
            CheckpointStore::create(&path, "T"),
            Err(StoreError::AlreadyExists { .. })
        ));
        // An orphaned lock (writer killed) blocks open until broken.
        std::fs::write(lock_path_for(&path), b"12345").expect("fake orphan lock");
        assert!(matches!(
            CheckpointStore::open(&path, "T"),
            Err(StoreError::Locked { .. })
        ));
        assert!(CheckpointStore::break_lock(&path).expect("break"));
        assert!(!CheckpointStore::break_lock(&path).expect("idempotent"));
        CheckpointStore::open(&path, "T").expect("opens after break");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_mismatches_are_rejected() {
        let path = temp_path("tag");
        drop(CheckpointStore::create(&path, "TypeA").expect("create"));
        assert!(matches!(
            CheckpointStore::open(&path, "TypeB"),
            Err(StoreError::DeciderMismatch { .. })
        ));
        CheckpointStore::open(&path, "TypeA").expect("right tag opens");
        assert_eq!(peek_tag(&path).expect("self-describing"), "TypeA");
        let _ = std::fs::remove_file(&path);
    }

    fn outcome(accept: bool, bits: usize) -> RunOutcome {
        RunOutcome {
            accept,
            classical_bits: bits,
            peak_qubits: 3,
            peak_amplitudes: 8,
        }
    }

    #[test]
    fn outcome_records_round_trip_and_dedupe() {
        let path = temp_path("outcome");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        store.append(0, &checkpoint_at(3)).expect("checkpoint");
        let o = outcome(true, 40);
        store.append_outcome(0, 7, &o).expect("outcome");
        assert!(store.is_finished(0));
        assert!(!store.is_finished(1));
        assert_eq!(store.outcome(0).expect("read"), Some(o));
        assert_eq!(store.outcome(1).expect("none"), None);
        // The same outcome for another instance is a ref record.
        let full_size = store.len_bytes();
        store.append_outcome(5, 9, &o).expect("dedupe");
        assert_eq!(store.len_bytes() - full_size, RECORD_HEADER_LEN);
        assert_eq!(store.finished_instances(), 2);
        assert_eq!(store.instances(), 2, "0 and 5 (0 counted once)");
        drop(store);
        // Everything survives a strict reopen.
        let mut store = CheckpointStore::open_for::<StoreEverything>(&path).expect("open");
        assert_eq!(store.outcome(0).expect("read"), Some(o));
        assert_eq!(store.outcome(5).expect("read"), Some(o));
        assert_eq!(store.latest_position(0), Some(3), "checkpoint kept too");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_keeps_only_latest_checkpoints_and_outcomes() {
        let path = temp_path("compact");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        // Instance 0: finished (3 superseded checkpoints + outcome).
        // Instance 1: unfinished (2 checkpoints). Instance 2: outcome only.
        for tokens in [2usize, 4, 6] {
            store.append(0, &checkpoint_at(tokens)).expect("append");
        }
        let done = outcome(false, 17);
        store.append_outcome(0, 8, &done).expect("outcome");
        store.append(1, &checkpoint_at(5)).expect("append");
        let latest_cp = checkpoint_at(9);
        store.append(1, &latest_cp).expect("append");
        store.append_outcome(2, 4, &outcome(true, 9)).expect("out");
        let bytes_before = store.len_bytes();
        let report = store.compact().expect("compact");
        assert_eq!(report.bytes_before, bytes_before);
        assert_eq!(report.records_before, 7);
        assert_eq!(report.records_after, 3, "one record per instance");
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(store.len_bytes(), report.bytes_after);
        // The live view is intact through the handle…
        assert_eq!(store.outcome(0).expect("read"), Some(done));
        assert_eq!(store.latest(1).expect("read"), Some(latest_cp.clone()));
        assert_eq!(store.latest_position(0), None, "superseded by the outcome");
        drop(store);
        // …and through a strict reopen of the rewritten file.
        let mut store = CheckpointStore::open_for::<StoreEverything>(&path).expect("open");
        assert_eq!(store.records(), 3);
        assert_eq!(store.outcome(0).expect("read"), Some(done));
        assert_eq!(store.outcome(2).expect("read"), Some(outcome(true, 9)));
        assert_eq!(store.latest(1).expect("read"), Some(latest_cp));
        // Compacting twice is a fixed point (byte-identical log).
        let bytes = std::fs::read(&path).expect("read");
        store.compact().expect("recompact");
        drop(store);
        assert_eq!(std::fs::read(&path).expect("read"), bytes);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crafted_cross_kind_outcome_refs_are_rejected() {
        let path = temp_path("cross-ref");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        let cp = checkpoint_at(4);
        let key = store.append(0, &cp).expect("checkpoint");
        drop(store);
        // Hand-craft an outcome *ref* record whose key points at the
        // checkpoint payload (header checksum computed honestly, so only
        // the cross-kind validation can catch it). Strict open must
        // refuse — otherwise compaction would rewrite the checkpoint
        // bytes as an outcome full record that no longer scans.
        let mut bytes = std::fs::read(&path).expect("read");
        let valid_len = bytes.len() as u64;
        bytes.push(RECORD_OUTCOME_REF);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&record_header_check(RECORD_OUTCOME_REF, 0, 4, key).to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            CheckpointStore::open_for::<StoreEverything>(&path),
            Err(StoreError::CorruptRecord { .. })
        ));
        // Recovery drops the crafted record and keeps the real one.
        let (mut store, report) =
            CheckpointStore::recover_for::<StoreEverything>(&path).expect("recover");
        assert_eq!(store.len_bytes(), valid_len);
        assert!(report.dropped_bytes > 0);
        assert!(!store.is_finished(0));
        assert_eq!(store.latest(0).expect("read"), Some(cp));
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_file_opens_by_header_tag() {
        let path = temp_path("compact-file");
        let mut store = CheckpointStore::create(&path, "SomeTag").expect("create");
        let cp = checkpoint_at(4);
        store.append(0, &cp).expect("a");
        store.append(0, &checkpoint_at(6)).expect("b");
        drop(store);
        let report = CheckpointStore::compact_file(&path).expect("compacts untagged");
        assert_eq!(report.records_before, 2);
        assert_eq!(report.records_after, 1);
        CheckpointStore::open(&path, "SomeTag").expect("still strict-openable");
        let _ = std::fs::remove_file(&path);
    }
}
