//! Persistent checkpoint store: a content-addressed, append-only log of
//! [`SessionCheckpoint`]s and finished-instance [`RunOutcome`]s.
//!
//! [`SessionCheckpoint`] bytes are portable (DESIGN.md §7) but, until
//! this module, lived only in memory — a crashed or preempted sweep lost
//! everything. A [`CheckpointStore`] is one log file plus an in-memory
//! index:
//!
//! * **Header** — magic, store format version, the
//!   [`CHECKPOINT_VERSION`] the payloads use, the workspace version that
//!   wrote the file, and the decider's
//!   [`Checkpointable::TYPE_TAG`]. A store written by an unknown layout,
//!   a different checkpoint version, a different workspace version, or
//!   for a different decider type is rejected on open — never
//!   half-read, never panicked on.
//! * **Records** — appended, never rewritten. Each record carries its
//!   kind (checkpoint or outcome, full or ref), the owning instance
//!   index, the stream position, a 128-bit FNV/SplitMix content hash of
//!   the payload (the record's *key*), and a header checksum. A payload
//!   is stored once: re-appending bytes the log already holds writes a
//!   small *ref* record pointing at the existing payload (content
//!   addressing). Checkpoint payloads are [`SessionCheckpoint`] bytes;
//!   **outcome** payloads are the fixed-width [`RunOutcome`] encoding a
//!   finished instance leaves behind, so a resumed sweep can *skip* the
//!   instance instead of replaying it from its last checkpoint
//!   (DESIGN.md §9).
//! * **Compression (format v3)** — checkpoint and outcome payloads at
//!   least [`COMPRESS_MIN_LEN`] bytes long are LZ4-block-compressed (the
//!   vendored `lz4_flex` shim) when that makes them strictly smaller;
//!   each full record carries a compressed flag plus both the stored and
//!   uncompressed byte lengths. Content keys are always computed over
//!   the *uncompressed* bytes, so dedupe-ref records and compaction's
//!   one-record-per-instance rewrite are untouched by the codec choice.
//!   Version-2 stores (uncompressed layout) still open — read-only —
//!   and are upgraded in place by [`CheckpointStore::compact`].
//! * **Streaming scan** — `open`, `recover`, and `compact` never load
//!   the log into memory: a seek-based [`RecordScanner`] validates one
//!   record at a time, so resident memory is bounded by one payload
//!   (plus its decompressed form) and the fixed-size key index,
//!   regardless of log length.
//! * **Recovery** — [`CheckpointStore::open`] is strict: a truncated
//!   tail (the signature of a crash mid-append) or a bit-flipped record
//!   is an error. [`CheckpointStore::recover`] salvages instead: it
//!   keeps the longest valid record prefix, truncates the rest, and
//!   reports what was dropped. Resuming a crashed sweep goes through
//!   `recover`; since checkpoints are only appended at segment
//!   boundaries, the salvaged prefix is always a consistent set of
//!   boundary snapshots.
//! * **Compaction** — the log only grows; a resume-heavy store
//!   accumulates superseded checkpoints. [`CheckpointStore::compact`]
//!   rewrites one record per instance — its outcome if it finished, its
//!   latest checkpoint otherwise — to a sibling temp file, atomically
//!   renames it over the log, and re-indexes. Readers never observe a
//!   half-compacted store: a crash before the rename leaves the old log
//!   untouched, a crash after it leaves the new one complete.
//!
//! Concurrent writers are excluded by a `<path>.lock` file. A lock left
//! behind by a killed process (an *orphaned lock*) makes open fail with
//! [`StoreError::Locked`]; [`CheckpointStore::break_lock`] removes it
//! once the operator knows the writer is gone. The per-shard store
//! files used by the cross-process scheduler never share a writer, so
//! orphaned locks only arise from kills — exactly the case `recover` +
//! `break_lock` exist for.
//!
//! Durability scope: records survive process death (the kill-based
//! suites pin this); surviving machine/power failure would additionally
//! need an fsync per append, which the sweep cadence does not pay for.

use crate::session::{CheckpointError, Checkpointable, SessionCheckpoint, CHECKPOINT_VERSION};
use crate::streaming::RunOutcome;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The store's own format version (independent of [`CHECKPOINT_VERSION`],
/// which versions the checkpoint payload bytes). Version 2 added the
/// outcome record kinds and their fixed-width [`RunOutcome`] payload —
/// version-1 logs hold no outcomes, so they are rejected rather than
/// resumed with silent replays. Version 3 added per-payload LZ4 block
/// compression (flag + uncompressed length on every full record);
/// version-2 stores open read-only and are upgraded by
/// [`CheckpointStore::compact`].
pub const STORE_VERSION: u8 = 3;

/// The previous store format (uncompressed full records): still readable,
/// opened read-only, upgraded in place by [`CheckpointStore::compact`].
pub const STORE_VERSION_V2: u8 = 2;

/// Payloads shorter than this are stored raw: the LZ4 token overhead and
/// the extra length field cannot pay for themselves on tiny payloads
/// (outcome payloads, at 25 bytes, are always raw).
pub const COMPRESS_MIN_LEN: usize = 64;

/// The 8-byte magic opening every store file.
pub const STORE_MAGIC: [u8; 8] = *b"OQSC-CPS";

/// The workspace version stamped into store headers (a store written by
/// one build of the workspace is not silently decoded by another).
pub const WORKSPACE_VERSION: &str = env!("CARGO_PKG_VERSION");

const RECORD_FULL: u8 = 1;
const RECORD_REF: u8 = 2;
const RECORD_OUTCOME_FULL: u8 = 3;
const RECORD_OUTCOME_REF: u8 = 4;
/// kind (1) + instance (8) + position (8) + key (16) + header check (8).
const RECORD_HEADER_LEN: u64 = 41;
/// v3 full-record metadata: flags (1) + uncompressed len (8) + stored
/// len (8). The flags byte and lengths sit *outside* the header check —
/// corruption there is caught by the bounds checks, the decompressor,
/// and the content hash over the uncompressed bytes.
const FULL_META_LEN_V3: u64 = 17;
/// v2 full-record metadata: payload len (8) only.
const FULL_META_LEN_V2: u64 = 8;
/// Flag bit: the stored bytes are an LZ4 block of the payload.
const FLAG_COMPRESSED: u8 = 1;

/// Byte length of an encoded [`RunOutcome`] payload: accept (1) +
/// classical bits (8) + peak qubits (8) + peak amplitudes (8).
const OUTCOME_PAYLOAD_LEN: u64 = 25;

/// Why a store could not be opened, read, or appended to.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not begin with the store magic (wrong file, or a
    /// zero-length / foreign file).
    NotAStore,
    /// The store format version is not one this build understands.
    UnsupportedStoreVersion(u8),
    /// The payloads were written under a different checkpoint encoding
    /// version.
    CheckpointVersionMismatch {
        /// Version recorded in the header.
        found: u8,
    },
    /// The store was written by a different workspace version.
    WorkspaceMismatch {
        /// Version string recorded in the header.
        found: String,
    },
    /// The store was written for a different decider type.
    DeciderMismatch {
        /// [`Checkpointable::TYPE_TAG`] recorded in the header.
        found: String,
        /// The tag the caller expected.
        expected: String,
    },
    /// The file ends mid-header or mid-record (crash mid-append, or an
    /// external truncation).
    Truncated {
        /// Offset of the first incomplete byte range.
        offset: u64,
    },
    /// A record's checksum or content hash does not match its bytes
    /// (bit flip), or a ref record points at a payload the log does not
    /// hold.
    CorruptRecord {
        /// Offset of the corrupt record.
        offset: u64,
    },
    /// A compressed payload's stored bytes do not decode as a valid LZ4
    /// block of the recorded uncompressed length (bit flip or hostile
    /// frame) — never a panic, never garbage bytes handed to a caller.
    CorruptCompressed {
        /// Offset of the stored (compressed) bytes.
        offset: u64,
    },
    /// The store was opened from an older format version, which is
    /// read-only: appends are refused until a compaction upgrades the
    /// file to the current layout.
    ReadOnly {
        /// The store format version the file was written under.
        version: u8,
    },
    /// [`CheckpointStore::get`] was asked for a key the store does not
    /// hold.
    UnknownKey,
    /// Another writer holds (or a killed writer left) the lock file.
    Locked {
        /// The lock file path.
        lock_path: PathBuf,
    },
    /// [`CheckpointStore::create`] refused to overwrite an existing
    /// file.
    AlreadyExists {
        /// The existing store path.
        path: PathBuf,
    },
    /// A stored payload failed checkpoint-level validation.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "checkpoint store I/O error: {e}"),
            StoreError::NotAStore => write!(f, "not a checkpoint store (missing magic)"),
            StoreError::UnsupportedStoreVersion(v) => {
                write!(
                    f,
                    "unsupported store version {v} (this build reads {STORE_VERSION_V2} \
                     read-only and {STORE_VERSION})"
                )
            }
            StoreError::CheckpointVersionMismatch { found } => write!(
                f,
                "store holds checkpoint-version-{found} payloads (this build reads {CHECKPOINT_VERSION})"
            ),
            StoreError::WorkspaceMismatch { found } => write!(
                f,
                "store written by workspace {found} (this build is {WORKSPACE_VERSION})"
            ),
            StoreError::DeciderMismatch { found, expected } => {
                write!(f, "store written for decider {found:?}, expected {expected:?}")
            }
            StoreError::Truncated { offset } => {
                write!(f, "store truncated at byte {offset}")
            }
            StoreError::CorruptRecord { offset } => {
                write!(f, "corrupt store record at byte {offset}")
            }
            StoreError::CorruptCompressed { offset } => {
                write!(f, "corrupt compressed payload at byte {offset}")
            }
            StoreError::ReadOnly { version } => write!(
                f,
                "store uses the older v{version} format and is read-only; compact it \
                 (experiments --compact) to upgrade to v{STORE_VERSION}"
            ),
            StoreError::UnknownKey => write!(f, "no record with the requested content key"),
            StoreError::Locked { lock_path } => write!(
                f,
                "store is locked by another writer (or an orphaned lock): {}",
                lock_path.display()
            ),
            StoreError::AlreadyExists { path } => write!(
                f,
                "store already exists (open it with --resume / recover instead): {}",
                path.display()
            ),
            StoreError::Checkpoint(e) => write!(f, "stored checkpoint invalid: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl StoreError {
    /// Whether recovery may treat this error as "end of the valid
    /// prefix" (record-level damage) rather than a fatal condition
    /// (I/O failure, header mismatch).
    fn is_salvageable(&self) -> bool {
        matches!(
            self,
            StoreError::Truncated { .. }
                | StoreError::CorruptRecord { .. }
                | StoreError::CorruptCompressed { .. }
        )
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CheckpointError> for StoreError {
    fn from(e: CheckpointError) -> Self {
        StoreError::Checkpoint(e)
    }
}

// ---------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer: scrambles FNV's weak low bits.
fn splitmix_fin(mut z: u64) -> u64 {
    z = z.wrapping_add(SPLITMIX_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The 128-bit content key of a checkpoint payload: two independently
/// seeded FNV-1a streams, each passed through a SplitMix64 finalizer.
/// Identical payloads — and only identical payloads, up to a 2⁻¹²⁸
/// collision — share a key, which is what lets the log store each
/// payload once.
pub fn content_key(payload: &[u8]) -> u128 {
    let hi = splitmix_fin(fnv1a64(FNV_OFFSET, payload));
    let lo = splitmix_fin(fnv1a64(FNV_OFFSET ^ SPLITMIX_GAMMA, payload));
    (u128::from(hi) << 64) | u128::from(lo)
}

fn record_header_check(kind: u8, instance: u64, position: u64, key: u128) -> u64 {
    let mut bytes = Vec::with_capacity(33);
    bytes.push(kind);
    bytes.extend_from_slice(&instance.to_le_bytes());
    bytes.extend_from_slice(&position.to_le_bytes());
    bytes.extend_from_slice(&key.to_le_bytes());
    splitmix_fin(fnv1a64(FNV_OFFSET, &bytes))
}

// ---------------------------------------------------------------------
// Outcome payloads
// ---------------------------------------------------------------------

/// Encodes a finished instance's [`RunOutcome`] as the fixed-width
/// outcome payload ([`OUTCOME_PAYLOAD_LEN`] bytes, all integers — the
/// round trip is exact).
fn encode_outcome(o: &RunOutcome) -> Vec<u8> {
    let mut out = Vec::with_capacity(OUTCOME_PAYLOAD_LEN as usize);
    out.push(u8::from(o.accept));
    out.extend_from_slice(&(o.classical_bits as u64).to_le_bytes());
    out.extend_from_slice(&(o.peak_qubits as u64).to_le_bytes());
    out.extend_from_slice(&(o.peak_amplitudes as u64).to_le_bytes());
    out
}

/// Decodes an outcome payload, rejecting wrong lengths and non-boolean
/// accept bytes (a bit-flipped payload already fails the content hash;
/// this guards hand-crafted or cross-version bytes).
fn decode_outcome(bytes: &[u8]) -> Option<RunOutcome> {
    if bytes.len() as u64 != OUTCOME_PAYLOAD_LEN || bytes[0] > 1 {
        return None;
    }
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("sliced"));
    Some(RunOutcome {
        accept: bytes[0] == 1,
        classical_bits: usize::try_from(word(1)).ok()?,
        peak_qubits: usize::try_from(word(9)).ok()?,
        peak_amplitudes: usize::try_from(word(17)).ok()?,
    })
}

// ---------------------------------------------------------------------
// Lock files
// ---------------------------------------------------------------------

/// RAII guard over `<path>.lock`; removes the lock file on drop.
#[derive(Debug)]
struct LockGuard {
    lock_path: PathBuf,
}

impl LockGuard {
    fn acquire(store_path: &Path) -> Result<Self, StoreError> {
        let lock_path = lock_path_for(store_path);
        match OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock_path)
        {
            Ok(mut f) => {
                // Advisory content: which process took the lock.
                let _ = writeln!(f, "{}", std::process::id());
                Ok(LockGuard { lock_path })
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                Err(StoreError::Locked { lock_path })
            }
            Err(e) => Err(e.into()),
        }
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.lock_path);
    }
}

fn lock_path_for(store_path: &Path) -> PathBuf {
    let mut os = store_path.as_os_str().to_os_string();
    os.push(".lock");
    PathBuf::from(os)
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// What [`CheckpointStore::recover`] salvaged from a damaged log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records in the valid prefix that was kept.
    pub salvaged_records: usize,
    /// Bytes of truncated or corrupt tail that were discarded.
    pub dropped_bytes: u64,
    /// Records the scanner attempted to validate: `salvaged_records`,
    /// plus one if a torn tail record failed. Salvage is a single
    /// forward pass — it never re-validates the prefix after finding
    /// the tear — so this never exceeds `salvaged_records + 1`.
    pub scanned_records: usize,
}

/// Per-file store statistics, as reported by [`CheckpointStore::stats`]
/// (and `experiments --store-stats`). Byte totals cover the distinct
/// stored payloads (what dedupe kept), not the ref records pointing at
/// them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Store format version of the file.
    pub version: u8,
    /// Total records (full + ref, checkpoints + outcomes).
    pub records: usize,
    /// Records that carry a payload.
    pub full_records: usize,
    /// Dedupe ref records (no payload).
    pub ref_records: usize,
    /// Distinct payloads stored (equals `full_records` on honest logs).
    pub payloads: usize,
    /// Stored payloads that are LZ4-compressed.
    pub compressed_payloads: usize,
    /// On-disk bytes of the stored payloads (compressed where flagged).
    pub stored_payload_bytes: u64,
    /// Logical (uncompressed) bytes of the stored payloads.
    pub uncompressed_payload_bytes: u64,
    /// Instances with at least one checkpoint or outcome.
    pub instances: usize,
    /// Instances with a persisted final outcome.
    pub finished_instances: usize,
    /// Size of the log file in bytes.
    pub file_bytes: u64,
}

impl StoreStats {
    /// Fraction of records that were dedupe refs (0.0 when empty).
    pub fn dedupe_hit_rate(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.ref_records as f64 / self.records as f64
        }
    }

    /// Logical bytes per stored byte (1.0 when nothing is stored).
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_payload_bytes == 0 {
            1.0
        } else {
            self.uncompressed_payload_bytes as f64 / self.stored_payload_bytes as f64
        }
    }
}

/// What [`CheckpointStore::compact`] did to the log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records in the log before compaction.
    pub records_before: usize,
    /// Records after (one per instance: outcome or latest checkpoint).
    pub records_after: usize,
    /// Log size in bytes before compaction.
    pub bytes_before: u64,
    /// Log size in bytes after.
    pub bytes_after: u64,
    /// Full statistics before compaction.
    pub before: StoreStats,
    /// Full statistics after (always the current store version: a
    /// version-2 store that was compacted has been upgraded).
    pub after: StoreStats,
}

/// Where (and how) one distinct payload lives in the log.
#[derive(Clone, Copy, Debug)]
struct PayloadLoc {
    /// Offset of the stored bytes (past the record header + metadata).
    offset: u64,
    /// On-disk byte count (the LZ4 block length when `compressed`).
    stored_len: u64,
    /// Length of the payload proper.
    uncompressed_len: u64,
    compressed: bool,
    /// Whether the payload decodes as a [`RunOutcome`] — recorded when
    /// the full record is first scanned, so validating an outcome-ref
    /// record never has to re-read (or re-decompress) the payload.
    outcome_shaped: bool,
}

/// A content-addressed, append-only log of [`SessionCheckpoint`]s and
/// finished-instance [`RunOutcome`]s for one decider type. See the
/// module docs for the format, the recovery protocol, and compaction.
#[derive(Debug)]
pub struct CheckpointStore {
    file: File,
    path: PathBuf,
    /// The decider tag the header records (compaction re-renders a
    /// fresh current-version header from it — the v2 upgrade path).
    tag: String,
    /// Store format version of the file on disk.
    version: u8,
    /// False for stores opened from an older format: reads work,
    /// appends are refused until `compact` upgrades the file.
    writable: bool,
    /// Whether appends compress eligible payloads (default true on v3;
    /// [`Self::set_compression`] is the benchmark/testing toggle).
    compression: bool,
    /// Logical end of valid data (everything before it has been
    /// validated or written by this handle).
    end: u64,
    /// Content key → location of the (single) stored payload.
    index: HashMap<u128, PayloadLoc>,
    /// Instance → (highest stream position seen, its content key).
    latest: HashMap<u64, (u64, u128)>,
    /// Instance → (final stream position, outcome payload key), for
    /// instances that ran to completion.
    finished: HashMap<u64, (u64, u128)>,
    records: usize,
    full_records: usize,
    /// Largest payload footprint (stored + decompressed bytes) this
    /// handle has ever buffered — open scan, reads, and compaction all
    /// feed it, which is what pins the O(1)-memory contract in tests.
    peak_resident: u64,
    _lock: LockGuard,
}

impl CheckpointStore {
    /// Creates a fresh store at `path` for deciders tagged `tag`.
    /// Refuses to overwrite an existing file
    /// ([`StoreError::AlreadyExists`]) — resuming goes through
    /// [`recover`](Self::recover) instead.
    pub fn create(path: impl AsRef<Path>, tag: &str) -> Result<Self, StoreError> {
        Self::create_with_version(path, tag, STORE_VERSION)
    }

    /// [`create`](Self::create) pinned to a specific store format
    /// version — the legacy-writer hook behind `experiments
    /// --store-format 2`, kept so the v2→v3 upgrade path stays testable
    /// end to end. A version-2 store created through this handle is
    /// writable (it writes pure v2-layout records); *re*-opening it
    /// later is read-only like any other v2 file.
    pub fn create_with_version(
        path: impl AsRef<Path>,
        tag: &str,
        version: u8,
    ) -> Result<Self, StoreError> {
        if version != STORE_VERSION && version != STORE_VERSION_V2 {
            return Err(StoreError::UnsupportedStoreVersion(version));
        }
        let path = path.as_ref();
        // Lock first: a live writer reports `Locked`, not `AlreadyExists`.
        let lock = LockGuard::acquire(path)?;
        if path.exists() {
            return Err(StoreError::AlreadyExists {
                path: path.to_path_buf(),
            });
        }
        let header = render_header(tag, version);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        file.write_all(&header)?;
        Ok(CheckpointStore {
            file,
            path: path.to_path_buf(),
            tag: tag.to_string(),
            version,
            writable: true,
            compression: version == STORE_VERSION,
            end: header.len() as u64,
            index: HashMap::new(),
            latest: HashMap::new(),
            finished: HashMap::new(),
            records: 0,
            full_records: 0,
            peak_resident: 0,
            _lock: lock,
        })
    }

    /// Opens an existing store strictly: any header mismatch, truncated
    /// tail, or corrupt record is an error. Use
    /// [`recover`](Self::recover) to salvage a damaged log.
    pub fn open(path: impl AsRef<Path>, tag: &str) -> Result<Self, StoreError> {
        Self::open_inner(path.as_ref(), tag, false).map(|(store, _)| store)
    }

    /// Opens an existing store, keeping the longest valid record prefix
    /// and truncating any damaged tail (the crash-recovery path).
    /// Header-level mismatches are still fatal: recovery never
    /// reinterprets a store written by a different layout, workspace, or
    /// decider type.
    pub fn recover(
        path: impl AsRef<Path>,
        tag: &str,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        Self::open_inner(path.as_ref(), tag, true)
    }

    /// [`create`](Self::create) with the tag taken from the decider type.
    pub fn create_for<D: Checkpointable>(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::create(path, D::TYPE_TAG)
    }

    /// [`open`](Self::open) with the tag taken from the decider type.
    pub fn open_for<D: Checkpointable>(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open(path, D::TYPE_TAG)
    }

    /// [`recover`](Self::recover) with the tag taken from the decider
    /// type.
    pub fn recover_for<D: Checkpointable>(
        path: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        Self::recover(path, D::TYPE_TAG)
    }

    /// Removes an orphaned lock file left behind by a killed writer.
    /// Returns whether a lock existed. Only call this once the previous
    /// writer is known to be dead — breaking a live writer's lock
    /// un-serializes the log.
    pub fn break_lock(path: impl AsRef<Path>) -> Result<bool, StoreError> {
        match std::fs::remove_file(lock_path_for(path.as_ref())) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    fn open_inner(
        path: &Path,
        tag: &str,
        salvage: bool,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let lock = LockGuard::acquire(path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let file_len = file.metadata()?.len();
        // The header is self-limiting (u8 length prefixes), so one
        // bounded read suffices no matter how large the log is.
        let mut head = Vec::with_capacity(MAX_HEADER_LEN);
        (&mut file)
            .take(MAX_HEADER_LEN as u64)
            .read_to_end(&mut head)?;
        let (header_len, version) = validate_header(&head, tag)?;
        let mut latest: HashMap<u64, (u64, u128)> = HashMap::new();
        let mut finished: HashMap<u64, (u64, u128)> = HashMap::new();
        let mut full_records = 0usize;
        // Stream the record section: one record resident at a time. The
        // salvage path is the same single forward pass — on a torn tail
        // it stops at the failed record's start offset, never
        // re-validating the prefix it already accepted.
        file.seek(SeekFrom::Start(header_len))?;
        let mut scanner = RecordScanner::new(
            BufReader::with_capacity(8192, &file),
            file_len,
            version,
            header_len,
        );
        let end = loop {
            match scanner.next_record() {
                Ok(Some(rec)) => {
                    full_records += usize::from(rec.full);
                    if rec.outcome {
                        finished.insert(rec.instance, (rec.position, rec.key));
                    } else {
                        let slot = latest.entry(rec.instance).or_insert((0, rec.key));
                        if rec.position >= slot.0 {
                            *slot = (rec.position, rec.key);
                        }
                    }
                }
                Ok(None) => break scanner.offset(),
                Err(e) if salvage && e.is_salvageable() => break scanner.offset(),
                Err(e) => return Err(e),
            }
        };
        let records = scanner.records_scanned();
        let scanned = scanner.validation_attempts();
        let peak_resident = scanner.peak_resident_bytes();
        let index = scanner.into_index();
        let dropped = file_len - end;
        if dropped > 0 {
            file.set_len(end)?;
        }
        Ok((
            CheckpointStore {
                file,
                path: path.to_path_buf(),
                tag: tag.to_string(),
                version,
                writable: version == STORE_VERSION,
                compression: true,
                end,
                index,
                latest,
                finished,
                records,
                full_records,
                peak_resident,
                _lock: lock,
            },
            RecoveryReport {
                salvaged_records: records,
                dropped_bytes: dropped,
                scanned_records: scanned,
            },
        ))
    }

    /// Appends one record (checkpoint or outcome) owned by `instance`,
    /// writing the payload only if the log does not already hold it.
    fn append_record(
        &mut self,
        full_kind: u8,
        ref_kind: u8,
        instance: u64,
        position: u64,
        payload: &[u8],
    ) -> Result<u128, StoreError> {
        if !self.writable {
            return Err(StoreError::ReadOnly {
                version: self.version,
            });
        }
        let key = content_key(payload);
        let kind = if self.index.contains_key(&key) {
            ref_kind
        } else {
            full_kind
        };
        let mut rec = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len() + 24);
        rec.push(kind);
        rec.extend_from_slice(&instance.to_le_bytes());
        rec.extend_from_slice(&position.to_le_bytes());
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(&record_header_check(kind, instance, position, key).to_le_bytes());
        let loc = if kind == full_kind {
            let (stored_len, compressed, meta_len) =
                encode_full_body(self.version, self.compression, payload, &mut rec);
            Some(PayloadLoc {
                offset: self.end + RECORD_HEADER_LEN + meta_len,
                stored_len,
                uncompressed_len: payload.len() as u64,
                compressed,
                outcome_shaped: decode_outcome(payload).is_some(),
            })
        } else {
            None
        };
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&rec)?;
        if let Some(loc) = loc {
            self.index.insert(key, loc);
            self.full_records += 1;
        }
        self.end += rec.len() as u64;
        self.records += 1;
        Ok(key)
    }

    /// Appends one checkpoint owned by `instance`. Returns the payload's
    /// content key. A payload the log already holds is not rewritten —
    /// only a small ref record is appended.
    pub fn append(&mut self, instance: u64, cp: &SessionCheckpoint) -> Result<u128, StoreError> {
        let position = cp.position();
        let key = self.append_record(RECORD_FULL, RECORD_REF, instance, position, cp.as_bytes())?;
        let slot = self.latest.entry(instance).or_insert((position, key));
        if position >= slot.0 {
            *slot = (position, key);
        }
        Ok(key)
    }

    /// Appends the final [`RunOutcome`] of `instance`, which consumed
    /// `position` stream tokens. A resumed sweep skips instances with a
    /// persisted outcome instead of replaying them from their last
    /// checkpoint. Returns the outcome payload's content key (identical
    /// outcomes — common in Monte-Carlo fleets — are stored once).
    pub fn append_outcome(
        &mut self,
        instance: u64,
        position: u64,
        outcome: &RunOutcome,
    ) -> Result<u128, StoreError> {
        let key = self.append_record(
            RECORD_OUTCOME_FULL,
            RECORD_OUTCOME_REF,
            instance,
            position,
            &encode_outcome(outcome),
        )?;
        self.finished.insert(instance, (position, key));
        Ok(key)
    }

    /// Reads the raw payload with content key `key`, re-verifying the
    /// hash against the bytes on disk.
    fn get_payload(&mut self, key: u128) -> Result<Vec<u8>, StoreError> {
        let loc = *self.index.get(&key).ok_or(StoreError::UnknownKey)?;
        self.file.seek(SeekFrom::Start(loc.offset))?;
        let mut stored = vec![0u8; loc.stored_len as usize];
        self.file.read_exact(&mut stored)?;
        let payload = if loc.compressed {
            let payload = lz4_flex::block::decompress(&stored, loc.uncompressed_len as usize)
                .map_err(|_| StoreError::CorruptCompressed { offset: loc.offset })?;
            self.peak_resident = self
                .peak_resident
                .max(loc.stored_len + loc.uncompressed_len);
            payload
        } else {
            self.peak_resident = self.peak_resident.max(loc.stored_len);
            stored
        };
        if content_key(&payload) != key {
            return Err(StoreError::CorruptRecord { offset: loc.offset });
        }
        Ok(payload)
    }

    /// Reads the checkpoint with content key `key`, re-verifying the
    /// hash against the bytes on disk.
    pub fn get(&mut self, key: u128) -> Result<SessionCheckpoint, StoreError> {
        Ok(SessionCheckpoint::from_bytes(self.get_payload(key)?)?)
    }

    /// The newest checkpoint persisted for `instance` (highest stream
    /// position), if any.
    pub fn latest(&mut self, instance: u64) -> Result<Option<SessionCheckpoint>, StoreError> {
        match self.latest.get(&instance) {
            None => Ok(None),
            Some(&(_, key)) => self.get(key).map(Some),
        }
    }

    /// The stream position of the newest checkpoint for `instance`.
    pub fn latest_position(&self, instance: u64) -> Option<u64> {
        self.latest.get(&instance).map(|&(p, _)| p)
    }

    /// The persisted final [`RunOutcome`] of `instance`, if it ran to
    /// completion, re-verified against the bytes on disk.
    pub fn outcome(&mut self, instance: u64) -> Result<Option<RunOutcome>, StoreError> {
        let Some(&(_, key)) = self.finished.get(&instance) else {
            return Ok(None);
        };
        let loc = *self.index.get(&key).ok_or(StoreError::UnknownKey)?;
        let payload = self.get_payload(key)?;
        decode_outcome(&payload)
            .map(Some)
            .ok_or(StoreError::CorruptRecord { offset: loc.offset })
    }

    /// Every persisted final outcome, as `(instance, position, outcome)`
    /// triples sorted by instance id, each re-verified against the bytes
    /// on disk. This is the recovery path of a scheduler that uses the
    /// store as its durable completion ledger (the distributed sweep
    /// fabric's coordinator): one scan rebuilds the full picture of what
    /// already ran.
    pub fn finished_outcomes(&mut self) -> Result<Vec<(u64, u64, RunOutcome)>, StoreError> {
        let mut instances: Vec<(u64, u64, u128)> = self
            .finished
            .iter()
            .map(|(&instance, &(position, key))| (instance, position, key))
            .collect();
        instances.sort_unstable_by_key(|&(instance, _, _)| instance);
        let mut out = Vec::with_capacity(instances.len());
        for (instance, position, key) in instances {
            let loc = *self.index.get(&key).ok_or(StoreError::UnknownKey)?;
            let payload = self.get_payload(key)?;
            let outcome =
                decode_outcome(&payload).ok_or(StoreError::CorruptRecord { offset: loc.offset })?;
            out.push((instance, position, outcome));
        }
        Ok(out)
    }

    /// Whether `instance` has a persisted final outcome.
    pub fn is_finished(&self, instance: u64) -> bool {
        self.finished.contains_key(&instance)
    }

    /// Number of instances with a persisted final outcome.
    pub fn finished_instances(&self) -> usize {
        self.finished.len()
    }

    /// Number of records appended (full + ref, checkpoints + outcomes).
    pub fn records(&self) -> usize {
        self.records
    }

    /// Number of distinct payloads stored.
    pub fn payloads(&self) -> usize {
        self.index.len()
    }

    /// Number of instances with at least one checkpoint or outcome.
    pub fn instances(&self) -> usize {
        self.finished.len()
            + self
                .latest
                .keys()
                .filter(|k| !self.finished.contains_key(k))
                .count()
    }

    /// Size of the log file in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.end
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Store format version of the file this handle is on.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Whether appends are allowed (false for stores opened from an
    /// older format version — [`compact`](Self::compact) upgrades them).
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// Toggles payload compression for subsequent appends (and for
    /// compaction rewrites). On by default for current-format stores;
    /// the off switch exists for benchmarks and tests that need an
    /// uncompressed baseline. Per-record flags make mixed logs valid.
    pub fn set_compression(&mut self, enabled: bool) {
        self.compression = enabled && self.version == STORE_VERSION;
    }

    /// Largest payload footprint (stored bytes, plus decompressed bytes
    /// where applicable) this handle has ever held in memory at once —
    /// across the open scan, reads, and compaction. The O(1)-memory
    /// tests pin this against the log size.
    pub fn peak_resident_payload_bytes(&self) -> u64 {
        self.peak_resident
    }

    /// Per-file statistics: record mix, dedupe hit rate inputs, and the
    /// compressed/uncompressed payload byte totals.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats {
            version: self.version,
            records: self.records,
            full_records: self.full_records,
            ref_records: self.records - self.full_records,
            payloads: self.index.len(),
            compressed_payloads: 0,
            stored_payload_bytes: 0,
            uncompressed_payload_bytes: 0,
            instances: self.instances(),
            finished_instances: self.finished.len(),
            file_bytes: self.end,
        };
        for loc in self.index.values() {
            stats.stored_payload_bytes += loc.stored_len;
            stats.uncompressed_payload_bytes += loc.uncompressed_len;
            stats.compressed_payloads += usize::from(loc.compressed);
        }
        stats
    }

    /// Rewrites the log keeping exactly one record per instance — its
    /// outcome if it finished, its latest checkpoint otherwise — into a
    /// sibling temp file, then atomically renames it over the log and
    /// re-indexes. Superseded checkpoints (the bulk of a resume-heavy
    /// store) are dropped; everything a resume reads — latest
    /// checkpoints, outcomes, positions — survives bit-exactly, so a
    /// strict [`open`](Self::open) + resume after compaction behaves
    /// identically. The lock is held throughout; a crash before the
    /// rename leaves the old log untouched.
    pub fn compact(&mut self) -> Result<CompactionReport, StoreError> {
        let stats_before = self.stats();
        // One surviving record per instance, in instance order (so the
        // compacted bytes are a pure function of the logical contents).
        let mut survivors: Vec<(u64, u64, u128, bool)> = Vec::new();
        for (&instance, &(position, key)) in &self.finished {
            survivors.push((instance, position, key, true));
        }
        for (&instance, &(position, key)) in &self.latest {
            if !self.finished.contains_key(&instance) {
                survivors.push((instance, position, key, false));
            }
        }
        survivors.sort_unstable_by_key(|&(instance, ..)| instance);
        // Stream the compacted log into a sibling temp file, one record
        // at a time: each surviving payload is read from the old log
        // (hash re-verified by get_payload) and written straight out, so
        // memory stays bounded by the largest single payload — not the
        // surviving set, which on a big fleet is itself huge.
        let tmp_path = {
            let mut os = self.path.as_os_str().to_os_string();
            os.push(".compact");
            PathBuf::from(os)
        };
        let _ = std::fs::remove_file(&tmp_path);
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&tmp_path)?;
        let mut index = HashMap::new();
        let mut latest = HashMap::new();
        let mut finished = HashMap::new();
        let mut full_records = 0usize;
        // Always render a fresh current-version header: compacting a
        // read-only v2 store is exactly how it upgrades to v3 (payloads
        // are recompressed under the current policy on the way).
        let header = render_header(&self.tag, STORE_VERSION);
        tmp.write_all(&header)?;
        let mut end = header.len() as u64;
        for &(instance, position, key, is_outcome) in &survivors {
            let (full_kind, ref_kind) = if is_outcome {
                (RECORD_OUTCOME_FULL, RECORD_OUTCOME_REF)
            } else {
                (RECORD_FULL, RECORD_REF)
            };
            let kind = if index.contains_key(&key) {
                ref_kind
            } else {
                full_kind
            };
            let mut rec = Vec::with_capacity(RECORD_HEADER_LEN as usize + 24);
            rec.push(kind);
            rec.extend_from_slice(&instance.to_le_bytes());
            rec.extend_from_slice(&position.to_le_bytes());
            rec.extend_from_slice(&key.to_le_bytes());
            rec.extend_from_slice(
                &record_header_check(kind, instance, position, key).to_le_bytes(),
            );
            if kind == full_kind {
                let payload = self.get_payload(key)?;
                let (stored_len, compressed, meta_len) =
                    encode_full_body(STORE_VERSION, self.compression, &payload, &mut rec);
                tmp.write_all(&rec)?;
                index.insert(
                    key,
                    PayloadLoc {
                        offset: end + RECORD_HEADER_LEN + meta_len,
                        stored_len,
                        uncompressed_len: payload.len() as u64,
                        compressed,
                        outcome_shaped: decode_outcome(&payload).is_some(),
                    },
                );
                end += rec.len() as u64;
                full_records += 1;
            } else {
                tmp.write_all(&rec)?;
                end += rec.len() as u64;
            }
            if is_outcome {
                finished.insert(instance, (position, key));
            } else {
                latest.insert(instance, (position, key));
            }
        }
        tmp.sync_all()?;
        // Rename the temp log into place — the one atomic step. The
        // `.lock` path is untouched, so this handle keeps its writer
        // exclusion across the swap. The temp file's own handle becomes
        // the store handle: a rename does not invalidate an open
        // descriptor, so there is no post-rename reopen that could fail
        // and leave this handle appending to the unlinked
        // pre-compaction inode.
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = tmp;
        self.end = end;
        self.index = index;
        self.latest = latest;
        self.finished = finished;
        self.records = survivors.len();
        self.full_records = full_records;
        self.version = STORE_VERSION;
        self.writable = true;
        Ok(CompactionReport {
            records_before: stats_before.records,
            records_after: self.records,
            bytes_before: stats_before.file_bytes,
            bytes_after: self.end,
            before: stats_before,
            after: self.stats(),
        })
    }

    /// [`compact`](Self::compact) on a store file in one step: reads the
    /// decider tag out of the header (fully validating it first), opens
    /// the store strictly, and compacts. This is what `experiments
    /// --compact` drives — the operator does not need to know which
    /// decider type wrote each shard file.
    pub fn compact_file(path: impl AsRef<Path>) -> Result<CompactionReport, StoreError> {
        let tag = peek_tag(path.as_ref())?;
        Self::open(path, &tag)?.compact()
    }
}

/// Reads the decider [`Checkpointable::TYPE_TAG`] out of a store file's
/// header, validating magic and versions on the way (but, by
/// construction, not the tag itself). Lets tag-agnostic tooling — store
/// compaction, inspection — open a store that describes itself. Only a
/// bounded prefix is read: the header's variable parts carry `u8`
/// length prefixes, so it can never exceed [`MAX_HEADER_LEN`] bytes —
/// peeking a multi-hundred-megabyte resume-heavy log costs one small
/// read, not a full scan.
pub fn peek_tag(path: impl AsRef<Path>) -> Result<String, StoreError> {
    peek_header(path).map(|h| h.tag)
}

/// Header facts of a store file, as read by [`peek_header`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreHeader {
    /// Byte length of the header (records start here).
    pub len: u64,
    /// Store format version of the file.
    pub version: u8,
    /// Decider [`Checkpointable::TYPE_TAG`] the store was written for.
    pub tag: String,
}

/// Reads and validates a store file's header without scanning any
/// records — the bounded-read entry point tooling (and the
/// [`RecordScanner`] tests) use to find where records start and which
/// format they use.
pub fn peek_header(path: impl AsRef<Path>) -> Result<StoreHeader, StoreError> {
    let mut bytes = Vec::with_capacity(MAX_HEADER_LEN);
    File::open(path.as_ref())?
        .take(MAX_HEADER_LEN as u64)
        .read_to_end(&mut bytes)?;
    validate_header_tag(&bytes).map(|(len, version, tag)| StoreHeader { len, version, tag })
}

/// Renders a store header for `tag` under the given format version.
fn render_header(tag: &str, version: u8) -> Vec<u8> {
    let mut header = Vec::with_capacity(32);
    header.extend_from_slice(&STORE_MAGIC);
    header.push(version);
    header.push(CHECKPOINT_VERSION);
    push_short_str(&mut header, WORKSPACE_VERSION);
    push_short_str(&mut header, tag);
    header
}

/// Encodes the body of a full record (everything after the 41-byte
/// record header) into `rec` under the given format version, applying
/// the compression policy for v3. Returns the stored byte count, the
/// compressed flag, and the metadata length — what the caller needs to
/// build the [`PayloadLoc`].
fn encode_full_body(
    version: u8,
    compression: bool,
    payload: &[u8],
    rec: &mut Vec<u8>,
) -> (u64, bool, u64) {
    if version == STORE_VERSION_V2 {
        rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        rec.extend_from_slice(payload);
        return (payload.len() as u64, false, FULL_META_LEN_V2);
    }
    // Compress only when it is a strict win; per-record flags mean the
    // decision never has to be revisited by readers.
    let block = if compression && payload.len() >= COMPRESS_MIN_LEN {
        Some(lz4_flex::block::compress(payload)).filter(|b| b.len() < payload.len())
    } else {
        None
    };
    let (flags, stored) = match &block {
        Some(block) => (FLAG_COMPRESSED, block.as_slice()),
        None => (0, payload),
    };
    rec.push(flags);
    rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    rec.extend_from_slice(&(stored.len() as u64).to_le_bytes());
    rec.extend_from_slice(stored);
    (
        stored.len() as u64,
        flags == FLAG_COMPRESSED,
        FULL_META_LEN_V3,
    )
}

/// Upper bound on the header's byte length: magic + two version bytes +
/// two `u8`-length-prefixed strings of at most 255 bytes each.
const MAX_HEADER_LEN: usize = STORE_MAGIC.len() + 2 + 2 * (1 + u8::MAX as usize);

fn push_short_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u8::MAX as usize);
    out.push(s.len().min(u8::MAX as usize) as u8);
    out.extend_from_slice(&s.as_bytes()[..s.len().min(u8::MAX as usize)]);
}

/// Validates the variable-length header, returning its byte length, the
/// store format version, and the decider tag it records. Every read is
/// bounds-checked against the file, so a truncated or hostile header
/// can never index out of range or over-allocate.
fn validate_header_tag(bytes: &[u8]) -> Result<(u64, u8, String), StoreError> {
    if bytes.len() < STORE_MAGIC.len() || bytes[..STORE_MAGIC.len()] != STORE_MAGIC {
        return Err(StoreError::NotAStore);
    }
    let mut off = STORE_MAGIC.len();
    let take = |off: &mut usize, n: usize| -> Result<&[u8], StoreError> {
        if bytes.len() - *off < n {
            return Err(StoreError::Truncated {
                offset: *off as u64,
            });
        }
        let out = &bytes[*off..*off + n];
        *off += n;
        Ok(out)
    };
    let store_ver = take(&mut off, 1)?[0];
    if store_ver != STORE_VERSION && store_ver != STORE_VERSION_V2 {
        return Err(StoreError::UnsupportedStoreVersion(store_ver));
    }
    let cp_ver = take(&mut off, 1)?[0];
    if cp_ver != CHECKPOINT_VERSION {
        return Err(StoreError::CheckpointVersionMismatch { found: cp_ver });
    }
    let ws_len = take(&mut off, 1)?[0] as usize;
    let ws = String::from_utf8_lossy(take(&mut off, ws_len)?).into_owned();
    if ws != WORKSPACE_VERSION {
        return Err(StoreError::WorkspaceMismatch { found: ws });
    }
    let tag_len = take(&mut off, 1)?[0] as usize;
    let found_tag = String::from_utf8_lossy(take(&mut off, tag_len)?).into_owned();
    Ok((off as u64, store_ver, found_tag))
}

/// [`validate_header_tag`], additionally requiring the recorded decider
/// tag to equal `tag`. Returns (header length, store format version).
fn validate_header(bytes: &[u8], tag: &str) -> Result<(u64, u8), StoreError> {
    let (len, version, found_tag) = validate_header_tag(bytes)?;
    if found_tag != tag {
        return Err(StoreError::DeciderMismatch {
            found: found_tag,
            expected: tag.to_string(),
        });
    }
    Ok((len, version))
}

/// One validated record, as yielded by [`RecordScanner::next_record`].
#[derive(Clone, Copy, Debug)]
pub struct ScannedRecord {
    /// Instance index that owns the record.
    pub instance: u64,
    /// Stream position the record was taken at.
    pub position: u64,
    /// Content key of the payload (stored or referenced).
    pub key: u128,
    /// True for outcome records (full or ref).
    pub outcome: bool,
    /// True when the record carries a payload (false for dedupe refs).
    pub full: bool,
    /// Offset one past the record.
    pub next: u64,
}

/// Incremental, forward-only validator for a store's record section.
///
/// This is the one scan loop behind `open`, `recover`, `compact`, and
/// the corruption battery: it reads the log through any [`Read`] — no
/// seeking, no whole-file buffer — holding at most one record's stored
/// bytes (plus their decompressed form) at a time, and grows only the
/// fixed-width key index. Every validation the old in-memory scan did
/// is preserved: header checksum, bounds checks on every length field
/// *before* any allocation, content hash over the uncompressed payload,
/// outcome shape checks, and dangling/cross-kind ref detection (ref
/// records are validated against the index without re-reading the
/// payload they point at).
///
/// After an `Err`, [`offset`](Self::offset) still reports the failed
/// record's start — exactly where salvage truncates — and the scanner
/// must not be advanced further.
pub struct RecordScanner<R> {
    reader: R,
    file_len: u64,
    version: u8,
    /// Start of the record the next `next_record` call will validate
    /// (or, after an error, of the record that failed).
    offset: u64,
    records: usize,
    attempts: usize,
    /// Reusable stored-bytes buffer: the "one payload" of the memory
    /// bound.
    buf: Vec<u8>,
    peak_resident: u64,
    index: HashMap<u128, PayloadLoc>,
}

impl<R: Read> RecordScanner<R> {
    /// Starts a scan over `reader`, which must be positioned at
    /// `records_start` (one past the header) of a file `file_len` bytes
    /// long, written under store format `version`.
    pub fn new(reader: R, file_len: u64, version: u8, records_start: u64) -> Self {
        RecordScanner {
            reader,
            file_len,
            version,
            offset: records_start,
            records: 0,
            attempts: 0,
            buf: Vec::new(),
            peak_resident: 0,
            index: HashMap::new(),
        }
    }

    /// Validates and returns the next record, `Ok(None)` at a clean end
    /// of file.
    pub fn next_record(&mut self) -> Result<Option<ScannedRecord>, StoreError> {
        if self.offset >= self.file_len {
            return Ok(None);
        }
        let off = self.offset;
        self.attempts += 1;
        let remaining = self.file_len - off;
        if remaining < RECORD_HEADER_LEN {
            return Err(StoreError::Truncated { offset: off });
        }
        let mut head = [0u8; RECORD_HEADER_LEN as usize];
        self.reader.read_exact(&mut head)?;
        let kind = head[0];
        let instance = u64::from_le_bytes(head[1..9].try_into().expect("sized"));
        let position = u64::from_le_bytes(head[9..17].try_into().expect("sized"));
        let key = u128::from_le_bytes(head[17..33].try_into().expect("sized"));
        let check = u64::from_le_bytes(head[33..41].try_into().expect("sized"));
        if check != record_header_check(kind, instance, position, key) {
            return Err(StoreError::CorruptRecord { offset: off });
        }
        match kind {
            RECORD_REF | RECORD_OUTCOME_REF => {
                let Some(loc) = self.index.get(&key) else {
                    // A ref to a payload the log never stored: dangling.
                    return Err(StoreError::CorruptRecord { offset: off });
                };
                // An outcome ref must reference outcome-shaped bytes: a
                // crafted ref at a checkpoint payload would otherwise
                // pass strict open and then poison compaction (which
                // rewrites it as an outcome full record that no longer
                // scans). The shape was recorded when the full record
                // was scanned, so no payload re-read is needed.
                if kind == RECORD_OUTCOME_REF && !loc.outcome_shaped {
                    return Err(StoreError::CorruptRecord { offset: off });
                }
                let next = off + RECORD_HEADER_LEN;
                self.offset = next;
                self.records += 1;
                Ok(Some(ScannedRecord {
                    instance,
                    position,
                    key,
                    outcome: kind == RECORD_OUTCOME_REF,
                    full: false,
                    next,
                }))
            }
            RECORD_FULL | RECORD_OUTCOME_FULL => {
                let meta_len = if self.version == STORE_VERSION_V2 {
                    FULL_META_LEN_V2
                } else {
                    FULL_META_LEN_V3
                };
                if remaining < RECORD_HEADER_LEN + meta_len {
                    return Err(StoreError::Truncated { offset: off });
                }
                let (compressed, uncompressed_len, stored_len) = if self.version == STORE_VERSION_V2
                {
                    let mut meta = [0u8; FULL_META_LEN_V2 as usize];
                    self.reader.read_exact(&mut meta)?;
                    let len = u64::from_le_bytes(meta);
                    (false, len, len)
                } else {
                    let mut meta = [0u8; FULL_META_LEN_V3 as usize];
                    self.reader.read_exact(&mut meta)?;
                    let flags = meta[0];
                    if flags & !FLAG_COMPRESSED != 0 {
                        return Err(StoreError::CorruptRecord { offset: off });
                    }
                    (
                        flags == FLAG_COMPRESSED,
                        u64::from_le_bytes(meta[1..9].try_into().expect("sized")),
                        u64::from_le_bytes(meta[9..17].try_into().expect("sized")),
                    )
                };
                // Stored length first: checked against the real file
                // size *before* the buffer allocation, so a bit-flipped
                // (or hostile) length can neither panic nor
                // over-allocate.
                if remaining - RECORD_HEADER_LEN - meta_len < stored_len {
                    return Err(StoreError::Truncated { offset: off });
                }
                if !compressed && uncompressed_len != stored_len {
                    // Raw payloads must declare matching lengths.
                    return Err(StoreError::CorruptRecord { offset: off });
                }
                self.buf.clear();
                self.buf.resize(stored_len as usize, 0);
                self.reader.read_exact(&mut self.buf)?;
                let (hash_ok, outcome_shaped, resident) = if compressed {
                    // The decompressor itself bounds the declared length
                    // against LZ4's maximum expansion before allocating.
                    match lz4_flex::block::decompress(&self.buf, uncompressed_len as usize) {
                        Ok(payload) => (
                            content_key(&payload) == key,
                            decode_outcome(&payload).is_some(),
                            stored_len + uncompressed_len,
                        ),
                        Err(_) => return Err(StoreError::CorruptCompressed { offset: off }),
                    }
                } else {
                    (
                        content_key(&self.buf) == key,
                        decode_outcome(&self.buf).is_some(),
                        stored_len,
                    )
                };
                self.peak_resident = self.peak_resident.max(resident);
                if !hash_ok {
                    return Err(StoreError::CorruptRecord { offset: off });
                }
                if kind == RECORD_OUTCOME_FULL && !outcome_shaped {
                    // Right hash, wrong shape: hand-crafted bytes, never
                    // a bit flip. Still refused before anything trusts it.
                    return Err(StoreError::CorruptRecord { offset: off });
                }
                let payload_off = off + RECORD_HEADER_LEN + meta_len;
                self.index.insert(
                    key,
                    PayloadLoc {
                        offset: payload_off,
                        stored_len,
                        uncompressed_len,
                        compressed,
                        outcome_shaped,
                    },
                );
                let next = payload_off + stored_len;
                self.offset = next;
                self.records += 1;
                Ok(Some(ScannedRecord {
                    instance,
                    position,
                    key,
                    outcome: kind == RECORD_OUTCOME_FULL,
                    full: true,
                    next,
                }))
            }
            _ => Err(StoreError::CorruptRecord { offset: off }),
        }
    }

    /// Offset of the next unvalidated byte (after an error: the start
    /// of the record that failed — the salvage truncation point).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Records validated successfully so far.
    pub fn records_scanned(&self) -> usize {
        self.records
    }

    /// Records the scanner *attempted* to validate (successes plus a
    /// final failure, if any) — the single-pass pin for recovery.
    pub fn validation_attempts(&self) -> usize {
        self.attempts
    }

    /// Largest payload footprint held at once: stored bytes, plus the
    /// decompressed bytes for compressed payloads. This is what the
    /// O(1)-memory instrumented-reader test asserts against.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident
    }

    /// Consumes the scanner, yielding the payload index it built.
    fn into_index(self) -> HashMap<u128, PayloadLoc> {
        self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::streaming::{StoreEverything, StorePredicate};
    use oqsc_lang::Sym;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oqsc-store-unit-{}-{name}.cps", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(lock_path_for(&p));
        p
    }

    fn checkpoint_at(tokens: usize) -> SessionCheckpoint {
        let mut s = Session::new(StoreEverything::new(StorePredicate::ContainsOne));
        for i in 0..tokens {
            s.feed(if i % 2 == 0 { Sym::One } else { Sym::Zero });
        }
        s.suspend()
    }

    #[test]
    fn append_get_latest_round_trip() {
        let path = temp_path("round-trip");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        let a = checkpoint_at(3);
        let b = checkpoint_at(7);
        let ka = store.append(0, &a).expect("append a");
        let kb = store.append(0, &b).expect("append b");
        assert_ne!(ka, kb);
        assert_eq!(store.get(ka).expect("get a"), a);
        assert_eq!(store.latest(0).expect("latest"), Some(b.clone()));
        assert_eq!(store.latest_position(0), Some(7));
        assert_eq!(store.latest(1).expect("none"), None);
        drop(store);
        // Reopen strictly: everything is still there.
        let mut store = CheckpointStore::open_for::<StoreEverything>(&path).expect("open");
        assert_eq!(store.records(), 2);
        assert_eq!(store.latest(0).expect("latest"), Some(b));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fresh_store_stats_have_no_division_hazards() {
        // A store with zero records (the `--store-stats` fresh-file case):
        // both ratio accessors must return finite, well-defined values
        // rather than NaN from 0/0.
        let path = temp_path("fresh-stats");
        let store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        let stats = store.stats();
        assert_eq!(stats.records, 0);
        assert_eq!(stats.stored_payload_bytes, 0);
        assert_eq!(stats.dedupe_hit_rate(), 0.0);
        assert_eq!(stats.compression_ratio(), 1.0);
        assert!(stats.dedupe_hit_rate().is_finite());
        assert!(stats.compression_ratio().is_finite());
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_payload_stats_ratios_stay_finite() {
        // Even constructed-by-hand degenerate stats (records but no stored
        // bytes, refs but no fulls) keep both accessors finite.
        let stats = StoreStats {
            records: 3,
            ref_records: 3,
            ..StoreStats::default()
        };
        assert_eq!(stats.dedupe_hit_rate(), 1.0);
        assert_eq!(stats.compression_ratio(), 1.0);
        assert!(stats.dedupe_hit_rate().is_finite());
        assert!(stats.compression_ratio().is_finite());
    }

    #[test]
    fn identical_payloads_are_stored_once() {
        let path = temp_path("dedupe");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        let cp = checkpoint_at(5);
        let k1 = store.append(0, &cp).expect("first");
        let full_size = store.len_bytes();
        let k2 = store.append(9, &cp).expect("second (other instance)");
        assert_eq!(k1, k2, "content-addressed: same bytes, same key");
        assert_eq!(store.payloads(), 1);
        let ref_growth = store.len_bytes() - full_size;
        assert_eq!(
            ref_growth, RECORD_HEADER_LEN,
            "ref records carry no payload"
        );
        // Both instances resolve to the same checkpoint, across a reopen.
        drop(store);
        let mut store = CheckpointStore::open_for::<StoreEverything>(&path).expect("open");
        assert_eq!(store.latest(9).expect("latest"), Some(cp));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_refuses_to_overwrite_and_locks_exclude() {
        let path = temp_path("exclusive");
        let store = CheckpointStore::create(&path, "T").expect("create");
        assert!(matches!(
            CheckpointStore::create(&path, "T"),
            Err(StoreError::Locked { .. })
        ));
        drop(store);
        // Lock released on drop; the file still exists, so create refuses.
        assert!(matches!(
            CheckpointStore::create(&path, "T"),
            Err(StoreError::AlreadyExists { .. })
        ));
        // An orphaned lock (writer killed) blocks open until broken.
        std::fs::write(lock_path_for(&path), b"12345").expect("fake orphan lock");
        assert!(matches!(
            CheckpointStore::open(&path, "T"),
            Err(StoreError::Locked { .. })
        ));
        assert!(CheckpointStore::break_lock(&path).expect("break"));
        assert!(!CheckpointStore::break_lock(&path).expect("idempotent"));
        CheckpointStore::open(&path, "T").expect("opens after break");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_mismatches_are_rejected() {
        let path = temp_path("tag");
        drop(CheckpointStore::create(&path, "TypeA").expect("create"));
        assert!(matches!(
            CheckpointStore::open(&path, "TypeB"),
            Err(StoreError::DeciderMismatch { .. })
        ));
        CheckpointStore::open(&path, "TypeA").expect("right tag opens");
        assert_eq!(peek_tag(&path).expect("self-describing"), "TypeA");
        let _ = std::fs::remove_file(&path);
    }

    fn outcome(accept: bool, bits: usize) -> RunOutcome {
        RunOutcome {
            accept,
            classical_bits: bits,
            peak_qubits: 3,
            peak_amplitudes: 8,
        }
    }

    #[test]
    fn outcome_records_round_trip_and_dedupe() {
        let path = temp_path("outcome");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        store.append(0, &checkpoint_at(3)).expect("checkpoint");
        let o = outcome(true, 40);
        store.append_outcome(0, 7, &o).expect("outcome");
        assert!(store.is_finished(0));
        assert!(!store.is_finished(1));
        assert_eq!(store.outcome(0).expect("read"), Some(o));
        assert_eq!(store.outcome(1).expect("none"), None);
        // The same outcome for another instance is a ref record.
        let full_size = store.len_bytes();
        store.append_outcome(5, 9, &o).expect("dedupe");
        assert_eq!(store.len_bytes() - full_size, RECORD_HEADER_LEN);
        assert_eq!(store.finished_instances(), 2);
        assert_eq!(store.instances(), 2, "0 and 5 (0 counted once)");
        drop(store);
        // Everything survives a strict reopen.
        let mut store = CheckpointStore::open_for::<StoreEverything>(&path).expect("open");
        assert_eq!(store.outcome(0).expect("read"), Some(o));
        assert_eq!(store.outcome(5).expect("read"), Some(o));
        assert_eq!(store.latest_position(0), Some(3), "checkpoint kept too");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn finished_outcomes_scans_the_completion_ledger_in_instance_order() {
        let path = temp_path("finished-scan");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        assert_eq!(store.finished_outcomes().expect("empty"), []);
        // Append out of instance order, with a dedupe and an unfinished
        // instance mixed in; the scan must come back sorted and complete.
        let a = outcome(true, 11);
        let b = outcome(false, 22);
        store.append_outcome(9, 4, &a).expect("outcome");
        store.append(3, &checkpoint_at(2)).expect("checkpoint only");
        store.append_outcome(1, 6, &b).expect("outcome");
        store.append_outcome(4, 5, &a).expect("deduped outcome");
        assert_eq!(
            store.finished_outcomes().expect("scan"),
            [(1, 6, b), (4, 5, a), (9, 4, a)]
        );
        drop(store);
        // The scan works identically on a recovered store.
        let (mut store, _) =
            CheckpointStore::recover_for::<StoreEverything>(&path).expect("recover");
        assert_eq!(
            store.finished_outcomes().expect("scan"),
            [(1, 6, b), (4, 5, a), (9, 4, a)]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_keeps_only_latest_checkpoints_and_outcomes() {
        let path = temp_path("compact");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        // Instance 0: finished (3 superseded checkpoints + outcome).
        // Instance 1: unfinished (2 checkpoints). Instance 2: outcome only.
        for tokens in [2usize, 4, 6] {
            store.append(0, &checkpoint_at(tokens)).expect("append");
        }
        let done = outcome(false, 17);
        store.append_outcome(0, 8, &done).expect("outcome");
        store.append(1, &checkpoint_at(5)).expect("append");
        let latest_cp = checkpoint_at(9);
        store.append(1, &latest_cp).expect("append");
        store.append_outcome(2, 4, &outcome(true, 9)).expect("out");
        let bytes_before = store.len_bytes();
        let report = store.compact().expect("compact");
        assert_eq!(report.bytes_before, bytes_before);
        assert_eq!(report.records_before, 7);
        assert_eq!(report.records_after, 3, "one record per instance");
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(store.len_bytes(), report.bytes_after);
        // The live view is intact through the handle…
        assert_eq!(store.outcome(0).expect("read"), Some(done));
        assert_eq!(store.latest(1).expect("read"), Some(latest_cp.clone()));
        assert_eq!(store.latest_position(0), None, "superseded by the outcome");
        drop(store);
        // …and through a strict reopen of the rewritten file.
        let mut store = CheckpointStore::open_for::<StoreEverything>(&path).expect("open");
        assert_eq!(store.records(), 3);
        assert_eq!(store.outcome(0).expect("read"), Some(done));
        assert_eq!(store.outcome(2).expect("read"), Some(outcome(true, 9)));
        assert_eq!(store.latest(1).expect("read"), Some(latest_cp));
        // Compacting twice is a fixed point (byte-identical log).
        let bytes = std::fs::read(&path).expect("read");
        store.compact().expect("recompact");
        drop(store);
        assert_eq!(std::fs::read(&path).expect("read"), bytes);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crafted_cross_kind_outcome_refs_are_rejected() {
        let path = temp_path("cross-ref");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        let cp = checkpoint_at(4);
        let key = store.append(0, &cp).expect("checkpoint");
        drop(store);
        // Hand-craft an outcome *ref* record whose key points at the
        // checkpoint payload (header checksum computed honestly, so only
        // the cross-kind validation can catch it). Strict open must
        // refuse — otherwise compaction would rewrite the checkpoint
        // bytes as an outcome full record that no longer scans.
        let mut bytes = std::fs::read(&path).expect("read");
        let valid_len = bytes.len() as u64;
        bytes.push(RECORD_OUTCOME_REF);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&record_header_check(RECORD_OUTCOME_REF, 0, 4, key).to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            CheckpointStore::open_for::<StoreEverything>(&path),
            Err(StoreError::CorruptRecord { .. })
        ));
        // Recovery drops the crafted record and keeps the real one.
        let (mut store, report) =
            CheckpointStore::recover_for::<StoreEverything>(&path).expect("recover");
        assert_eq!(store.len_bytes(), valid_len);
        assert!(report.dropped_bytes > 0);
        assert!(!store.is_finished(0));
        assert_eq!(store.latest(0).expect("read"), Some(cp));
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn large_payloads_are_compressed_and_round_trip() {
        let path = temp_path("compress");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        // A long stored-symbols checkpoint: well past COMPRESS_MIN_LEN
        // and highly redundant, so v3 must shrink it on disk.
        let cp = checkpoint_at(600);
        assert!(cp.as_bytes().len() >= COMPRESS_MIN_LEN);
        let key = store.append(0, &cp).expect("append");
        let stats = store.stats();
        assert_eq!(stats.version, STORE_VERSION);
        assert_eq!(stats.compressed_payloads, 1);
        assert!(
            stats.stored_payload_bytes < stats.uncompressed_payload_bytes / 2,
            "stored {} vs logical {}",
            stats.stored_payload_bytes,
            stats.uncompressed_payload_bytes
        );
        assert!(stats.compression_ratio() > 2.0);
        assert_eq!(store.get(key).expect("get"), cp);
        drop(store);
        // The compressed log strict-opens and the payload survives
        // byte-exactly; the scan's resident peak covers block + payload.
        let mut store = CheckpointStore::open_for::<StoreEverything>(&path).expect("open");
        assert_eq!(store.latest(0).expect("latest"), Some(cp.clone()));
        assert!(store.peak_resident_payload_bytes() >= cp.as_bytes().len() as u64);
        assert!(
            store.peak_resident_payload_bytes() < store.len_bytes() + cp.as_bytes().len() as u64
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tiny_and_incompressible_payloads_stay_raw() {
        let path = temp_path("raw");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        // Below the threshold: stored raw even though compression is on.
        let small = checkpoint_at(2);
        assert!(small.as_bytes().len() < COMPRESS_MIN_LEN);
        store.append(0, &small).expect("append");
        // Outcome payloads (25 bytes) are always raw.
        store
            .append_outcome(1, 9, &outcome(true, 3))
            .expect("outcome");
        let stats = store.stats();
        assert_eq!(stats.compressed_payloads, 0);
        assert_eq!(stats.stored_payload_bytes, stats.uncompressed_payload_bytes);
        assert_eq!(stats.compression_ratio(), 1.0);
        drop(store);
        CheckpointStore::open_for::<StoreEverything>(&path).expect("open");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn set_compression_off_gives_an_uncompressed_v3_store() {
        let path = temp_path("nocompress");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        store.set_compression(false);
        let cp = checkpoint_at(600);
        store.append(0, &cp).expect("append");
        let stats = store.stats();
        assert_eq!(stats.compressed_payloads, 0);
        assert_eq!(stats.stored_payload_bytes, stats.uncompressed_payload_bytes);
        drop(store);
        // Mixed logs are fine: reopen (compression back on) and append
        // the compressed sibling of another payload.
        let mut store = CheckpointStore::open_for::<StoreEverything>(&path).expect("open");
        assert_eq!(store.latest(0).expect("latest"), Some(cp));
        store.append(1, &checkpoint_at(601)).expect("append");
        assert_eq!(store.stats().compressed_payloads, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v2_stores_open_read_only_and_compact_upgrades_them() {
        let path = temp_path("v2-upgrade");
        // The legacy writer: a pure v2 file, uncompressed layout.
        let mut store = CheckpointStore::create_with_version(
            &path,
            StoreEverything::TYPE_TAG,
            STORE_VERSION_V2,
        )
        .expect("create v2");
        assert_eq!(store.version(), STORE_VERSION_V2);
        assert!(store.is_writable(), "the legacy writer itself may append");
        let cp_a = checkpoint_at(600);
        let cp_b = checkpoint_at(700);
        store.append(0, &cp_a).expect("append");
        store.append(0, &cp_b).expect("append");
        store.append(1, &cp_a).expect("ref record");
        let done = outcome(true, 11);
        store.append_outcome(2, 5, &done).expect("outcome");
        let v2_bytes = store.len_bytes();
        assert_eq!(store.stats().compressed_payloads, 0, "v2 never compresses");
        drop(store);
        // Reopening is read-only: reads work, appends are refused.
        let mut store = CheckpointStore::open_for::<StoreEverything>(&path).expect("open v2");
        assert_eq!(store.version(), STORE_VERSION_V2);
        assert!(!store.is_writable());
        assert_eq!(store.latest(0).expect("read"), Some(cp_b.clone()));
        assert_eq!(store.outcome(2).expect("read"), Some(done));
        assert!(matches!(
            store.append(3, &cp_a),
            Err(StoreError::ReadOnly {
                version: STORE_VERSION_V2
            })
        ));
        assert!(matches!(
            store.append_outcome(3, 1, &done),
            Err(StoreError::ReadOnly {
                version: STORE_VERSION_V2
            })
        ));
        // Compaction is the upgrade: fresh v3 header, recompressed
        // payloads, writable handle, strictly smaller file.
        let report = store.compact().expect("upgrade");
        assert_eq!(report.before.version, STORE_VERSION_V2);
        assert_eq!(report.after.version, STORE_VERSION);
        assert!(report.after.compressed_payloads > 0);
        assert_eq!(store.version(), STORE_VERSION);
        assert!(store.is_writable());
        assert!(store.len_bytes() < v2_bytes);
        store.append(3, &cp_a).expect("writable after upgrade");
        assert_eq!(store.latest(0).expect("read"), Some(cp_b));
        assert_eq!(store.outcome(2).expect("read"), Some(done));
        drop(store);
        // And the upgraded file is a normal v3 store from here on.
        let store = CheckpointStore::open_for::<StoreEverything>(&path).expect("open v3");
        assert_eq!(store.version(), STORE_VERSION);
        assert!(store.is_writable());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recovery_reports_a_single_validation_pass() {
        let path = temp_path("single-pass");
        let mut store = CheckpointStore::create_for::<StoreEverything>(&path).expect("create");
        for i in 0..5u64 {
            store
                .append(i, &checkpoint_at(600 + i as usize))
                .expect("append");
        }
        drop(store);
        // Clean log: every record validated exactly once.
        let (store, report) =
            CheckpointStore::recover_for::<StoreEverything>(&path).expect("recover");
        assert_eq!(report.salvaged_records, 5);
        assert_eq!(report.scanned_records, 5, "no re-validation on a clean log");
        assert_eq!(report.dropped_bytes, 0);
        drop(store);
        // Torn tail: the failed attempt is counted once, the salvaged
        // prefix exactly once — salvage never rescans what it accepted.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("tear");
        let (_store, report) =
            CheckpointStore::recover_for::<StoreEverything>(&path).expect("recover");
        assert_eq!(report.salvaged_records, 4);
        assert_eq!(
            report.scanned_records,
            report.salvaged_records + 1,
            "single forward pass: salvaged prefix + the one failed tail"
        );
        assert!(report.dropped_bytes > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn peek_header_reports_version_and_records_start() {
        let path = temp_path("peek-header");
        drop(CheckpointStore::create(&path, "PeekMe").expect("create"));
        let head = peek_header(&path).expect("peek");
        assert_eq!(head.version, STORE_VERSION);
        assert_eq!(head.tag, "PeekMe");
        assert_eq!(
            head.len,
            render_header("PeekMe", STORE_VERSION).len() as u64
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_file_opens_by_header_tag() {
        let path = temp_path("compact-file");
        let mut store = CheckpointStore::create(&path, "SomeTag").expect("create");
        let cp = checkpoint_at(4);
        store.append(0, &cp).expect("a");
        store.append(0, &checkpoint_at(6)).expect("b");
        drop(store);
        let report = CheckpointStore::compact_file(&path).expect("compacts untagged");
        assert_eq!(report.records_before, 2);
        assert_eq!(report.records_after, 1);
        CheckpointStore::open(&path, "SomeTag").expect("still strict-openable");
        let _ = std::fs::remove_file(&path);
    }
}
