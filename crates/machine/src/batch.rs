//! Batched streaming: many decider instances, one scheduler.
//!
//! Every experiment that sweeps `L_DISJ` instances (the Definition 2.3
//! end-to-end runs, the separation tables, the Monte-Carlo error-rate
//! estimates) used to drive one [`StreamingDecider`] at a time, leaving
//! all but one core idle. [`BatchRunner`] drives a whole fleet: the
//! instance index space is cut into one index-strided **shard per
//! worker** (worker `w` owns indices `w, w+W, w+2W, …`, so sweeps whose
//! per-task cost grows with the index stay balanced), each worker runs
//! its shard serially on a scoped thread, and the per-instance
//! [`RunOutcome`]s land in index-order slots, from which the fleet-wide
//! aggregates are folded serially.
//!
//! **Determinism contract** (DESIGN.md §6): a [`BatchReport`] depends
//! only on the task factory, never on the worker count or shard
//! boundaries. Two ingredients make this hold:
//!
//! 1. the factory builds instance `i`'s decider *and* its entropy from
//!    `i` alone (callers derive per-index seeds; the factory is `Sync`
//!    and must not share mutable state across calls);
//! 2. results are written into slot `i` and aggregated by increasing
//!    index, so shard order cannot leak into the report.
//!
//! The integration suite pins this: 1, 2 and 8 workers over the same
//! seeded instance set produce `==`-identical reports.

use crate::streaming::{run_decider_stream, RunOutcome, StreamingDecider};
use oqsc_lang::Sym;

/// A shard-per-worker scheduler driving many [`StreamingDecider`]
/// instances concurrently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchRunner {
    workers: usize,
}

impl BatchRunner {
    /// A runner with `workers` concurrent workers (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        BatchRunner {
            workers: workers.max(1),
        }
    }

    /// The single-threaded runner (the reference the determinism contract
    /// compares everything else against).
    pub fn serial() -> Self {
        BatchRunner::new(1)
    }

    /// A runner sized to the machine's available parallelism.
    pub fn available() -> Self {
        BatchRunner::new(oqsc_quantum::par::available_threads())
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Drives `count` decider instances. `task(i)` builds instance `i`:
    /// a fresh decider plus the symbol stream to feed it (materialized
    /// word or lazy generator — anything `IntoIterator<Item = Sym>`).
    ///
    /// The factory must be deterministic per index (derive any randomness
    /// from `i`); see the module docs for the determinism contract.
    pub fn run<D, W, F>(&self, count: usize, task: F) -> BatchReport
    where
        D: StreamingDecider,
        W: IntoIterator<Item = Sym>,
        F: Fn(usize) -> (D, W) + Sync,
    {
        let workers = self.workers.min(count.max(1));
        let run_one = |idx: usize| {
            let (decider, word) = task(idx);
            run_decider_stream(decider, word)
        };
        if workers <= 1 {
            return BatchReport::from_outcomes((0..count).map(run_one).collect());
        }
        // Index-strided shards: worker `w` owns indices w, w+W, w+2W, …
        // Sweeps whose per-task cost grows with the index (the separation
        // table's roughly doubles per k) stay balanced, unlike contiguous
        // shards where the last worker would own the expensive tail. The
        // assignment is still a pure function of (index, worker count),
        // and results are re-scattered into index-order slots, so the
        // report never sees the schedule.
        let mut slots: Vec<Option<RunOutcome>> = vec![None; count];
        let sharded: Vec<Vec<(usize, RunOutcome)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let run_one = &run_one;
                    scope.spawn(move || {
                        (w..count)
                            .step_by(workers)
                            .map(|idx| (idx, run_one(idx)))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker panicked"))
                .collect()
        });
        for (idx, outcome) in sharded.into_iter().flatten() {
            slots[idx] = Some(outcome);
        }
        BatchReport::from_outcomes(
            slots
                .into_iter()
                .map(|s| s.expect("every shard slot filled"))
                .collect(),
        )
    }

    /// Convenience: drives one decider per materialized word.
    pub fn run_words<D, F>(&self, words: &[Vec<Sym>], make: F) -> BatchReport
    where
        D: StreamingDecider,
        F: Fn(usize) -> D + Sync,
    {
        self.run(words.len(), |i| (make(i), words[i].iter().copied()))
    }
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::available()
    }
}

/// Aggregated result of a batched sweep: the per-instance outcomes in
/// index order plus the fleet-wide statistics the space experiments
/// record. Worker-count independent by construction (see module docs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Per-instance outcomes, indexed exactly like the submitted tasks.
    pub outcomes: Vec<RunOutcome>,
    /// How many instances accepted.
    pub accepted: usize,
    /// Fleet-wide peak classical work space, in bits.
    pub peak_classical_bits: usize,
    /// Fleet-wide peak quantum register width, in qubits.
    pub peak_qubits: usize,
    /// Fleet-wide peak stored amplitudes (the `MeteredRegister` memory
    /// observable).
    pub peak_amplitudes: usize,
}

impl BatchReport {
    /// Folds per-instance outcomes (in index order) into the fleet view.
    pub fn from_outcomes(outcomes: Vec<RunOutcome>) -> Self {
        let mut report = BatchReport {
            outcomes,
            ..BatchReport::default()
        };
        for o in &report.outcomes {
            report.accepted += usize::from(o.accept);
            report.peak_classical_bits = report.peak_classical_bits.max(o.classical_bits);
            report.peak_qubits = report.peak_qubits.max(o.peak_qubits);
            report.peak_amplitudes = report.peak_amplitudes.max(o.peak_amplitudes);
        }
        report
    }

    /// Number of instances in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True when the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Fraction of instances that accepted (0 on an empty batch).
    pub fn accept_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.accepted as f64 / self.outcomes.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::{run_decider, StoreEverything};
    use oqsc_lang::token::from_str;

    fn words() -> Vec<Vec<Sym>> {
        ["1#01#", "0#0#", "111#", "0000#", "1#1#1#", "01#10#"]
            .iter()
            .map(|s| from_str(s).expect("ok"))
            .collect()
    }

    #[test]
    fn batch_matches_serial_run_decider() {
        let words = words();
        let report = BatchRunner::new(3).run_words(&words, |_| {
            StoreEverything::new(|w: &[Sym]| w.contains(&Sym::One))
        });
        assert_eq!(report.len(), words.len());
        for (i, word) in words.iter().enumerate() {
            let single = run_decider(
                StoreEverything::new(|w: &[Sym]| w.contains(&Sym::One)),
                word,
            );
            assert_eq!(report.outcomes[i], single, "instance {i}");
        }
        assert_eq!(report.accepted, 4);
        assert!((report.accept_rate() - 4.0 / 6.0).abs() < 1e-12);
        // Fleet peak = the longest word's linear space.
        let longest = words.iter().map(Vec::len).max().expect("nonempty");
        assert_eq!(report.peak_classical_bits, 2 * longest);
        assert_eq!(report.peak_qubits, 0);
    }

    #[test]
    fn report_is_worker_count_independent() {
        let words = words();
        let reference = BatchRunner::serial().run_words(&words, |_| {
            StoreEverything::new(|w: &[Sym]| w.contains(&Sym::One))
        });
        for workers in [2usize, 3, 8, 64] {
            let report = BatchRunner::new(workers).run_words(&words, |_| {
                StoreEverything::new(|w: &[Sym]| w.contains(&Sym::One))
            });
            assert_eq!(report, reference, "workers={workers}");
        }
    }

    #[test]
    fn lazy_streams_feed_without_materializing() {
        // Generate each word on the fly from the index.
        let report = BatchRunner::new(2).run(5, |i| {
            (
                StoreEverything::new(move |w: &[Sym]| w.len() == i),
                (0..i).map(|_| Sym::Zero),
            )
        });
        assert_eq!(report.len(), 5);
        assert_eq!(report.accepted, 5, "every generated stream has length i");
    }

    #[test]
    fn empty_batch_is_well_formed() {
        let report = BatchRunner::new(4).run_words(&[], |_| StoreEverything::new(|_: &[Sym]| true));
        assert!(report.is_empty());
        assert_eq!(report.accept_rate(), 0.0);
        assert_eq!(report.peak_classical_bits, 0);
    }

    #[test]
    fn worker_count_clamps_to_one() {
        assert_eq!(BatchRunner::new(0).workers(), 1);
        assert!(BatchRunner::available().workers() >= 1);
        assert_eq!(
            BatchRunner::default().workers(),
            BatchRunner::available().workers()
        );
    }
}
