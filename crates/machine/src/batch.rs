//! Batched streaming: many decider instances, one scheduler.
//!
//! Every experiment that sweeps `L_DISJ` instances (the Definition 2.3
//! end-to-end runs, the separation tables, the Monte-Carlo error-rate
//! estimates) used to drive one [`StreamingDecider`] at a time, leaving
//! all but one core idle. [`BatchRunner`] drives a whole fleet: the
//! instance index space is cut into one index-strided **shard per
//! worker** (worker `w` owns indices `w, w+W, w+2W, …`, so sweeps whose
//! per-task cost grows with the index stay balanced), each worker runs
//! its shard serially on a scoped thread, and the per-instance
//! [`RunOutcome`]s land in index-order slots, from which the fleet-wide
//! aggregates are folded serially.
//!
//! **Determinism contract** (DESIGN.md §6): a [`BatchReport`] depends
//! only on the task factory, never on the worker count or shard
//! boundaries. Two ingredients make this hold:
//!
//! 1. the factory builds instance `i`'s decider *and* its entropy from
//!    `i` alone (callers derive per-index seeds; the factory is `Sync`
//!    and must not share mutable state across calls);
//! 2. results are written into slot `i` and aggregated by increasing
//!    index, so shard order cannot leak into the report.
//!
//! The integration suite pins this: 1, 2 and 8 workers over the same
//! seeded instance set produce `==`-identical reports.

use crate::session::{CheckpointError, Checkpointable, Session, SessionCheckpoint};
use crate::store::{CheckpointStore, StoreError};
use crate::streaming::{run_decider_stream, RunOutcome, StreamingDecider};
use oqsc_lang::Sym;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// How a batched fleet drives its sessions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SessionSchedule {
    /// Each instance runs start to finish on one worker (the classic
    /// shard-per-worker path).
    #[default]
    Uninterrupted,
    /// Every instance is suspended after each segment of this many
    /// tokens, its checkpoint handed to the **next** worker, and resumed
    /// there — continuous migration, exercising the full
    /// suspend/serialize/resume seam. The report is identical to
    /// [`SessionSchedule::Uninterrupted`] by the checkpoint round-trip
    /// contract (DESIGN.md §7).
    MigrateEvery(usize),
}

/// A shard-per-worker scheduler driving many [`StreamingDecider`]
/// instances concurrently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchRunner {
    workers: usize,
}

impl BatchRunner {
    /// A runner with `workers` concurrent workers (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        BatchRunner {
            workers: workers.max(1),
        }
    }

    /// The single-threaded runner (the reference the determinism contract
    /// compares everything else against).
    pub fn serial() -> Self {
        BatchRunner::new(1)
    }

    /// A runner sized to the machine's available parallelism.
    pub fn available() -> Self {
        BatchRunner::new(oqsc_quantum::par::available_threads())
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Drives `count` decider instances under a [`SessionSchedule`].
    /// `task(i)` builds instance `i`: a fresh decider plus the symbol
    /// stream to feed it (materialized word or lazy generator — anything
    /// `IntoIterator<Item = Sym>`).
    ///
    /// Every decider in the tree is [`Checkpointable`], so the classic
    /// uninterrupted path and the migrating path are one entry point:
    /// [`SessionSchedule::Uninterrupted`] runs each instance start to
    /// finish on one worker; [`SessionSchedule::MigrateEvery`] routes
    /// every instance through [`run_migrating`](Self::run_migrating).
    /// For *persistent* schedules — checkpoints written to disk so a
    /// killed sweep can resume — see
    /// [`run_resumable`](Self::run_resumable).
    ///
    /// The factory must be deterministic per index (derive any randomness
    /// from `i`); see the module docs for the determinism contract.
    pub fn run<D, W, F>(&self, count: usize, schedule: SessionSchedule, task: F) -> BatchReport
    where
        D: Checkpointable,
        W: IntoIterator<Item = Sym>,
        W::IntoIter: Send,
        F: Fn(usize) -> (D, W) + Sync,
    {
        match schedule {
            SessionSchedule::Uninterrupted => self.run_uninterrupted(count, task),
            SessionSchedule::MigrateEvery(n) => self.run_migrating(count, n, task),
        }
    }

    /// The classic shard-per-worker path (no suspension): each instance
    /// runs start to finish on the worker that owns its index.
    fn run_uninterrupted<D, W, F>(&self, count: usize, task: F) -> BatchReport
    where
        D: StreamingDecider,
        W: IntoIterator<Item = Sym>,
        F: Fn(usize) -> (D, W) + Sync,
    {
        let workers = self.workers.min(count.max(1));
        let run_one = |idx: usize| {
            let (decider, word) = task(idx);
            run_decider_stream(decider, word)
        };
        if workers <= 1 {
            return BatchReport::from_outcomes((0..count).map(run_one).collect());
        }
        // Index-strided shards: worker `w` owns indices w, w+W, w+2W, …
        // Sweeps whose per-task cost grows with the index (the separation
        // table's roughly doubles per k) stay balanced, unlike contiguous
        // shards where the last worker would own the expensive tail. The
        // assignment is still a pure function of (index, worker count),
        // and results are re-scattered into index-order slots, so the
        // report never sees the schedule.
        let mut slots: Vec<Option<RunOutcome>> = vec![None; count];
        let sharded: Vec<Vec<(usize, RunOutcome)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let run_one = &run_one;
                    scope.spawn(move || {
                        (w..count)
                            .step_by(workers)
                            .map(|idx| (idx, run_one(idx)))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker panicked"))
                .collect()
        });
        for (idx, outcome) in sharded.into_iter().flatten() {
            slots[idx] = Some(outcome);
        }
        BatchReport::from_outcomes(
            slots
                .into_iter()
                .map(|s| s.expect("every shard slot filled"))
                .collect(),
        )
    }

    /// Convenience: drives one decider per materialized word under a
    /// [`SessionSchedule`].
    pub fn run_words<D, F>(
        &self,
        words: &[Vec<Sym>],
        schedule: SessionSchedule,
        make: F,
    ) -> BatchReport
    where
        D: Checkpointable,
        F: Fn(usize) -> D + Sync,
    {
        self.run(words.len(), schedule, |i| {
            (make(i), words[i].iter().copied())
        })
    }

    /// [`run`](Self::run) with **persistence**: every instance's session
    /// is suspended after each segment of `persist_every` tokens
    /// (clamped to ≥ 1) and the checkpoint appended to `store`, and when
    /// an instance finishes its final [`RunOutcome`] is persisted as an
    /// outcome record. On entry, any instance with a persisted outcome
    /// is **skipped** — its task is never built and no token is ever
    /// re-fed — while any instance with only a checkpoint resumes from
    /// it, the stream re-derived from `task(i)` and skipped to
    /// [`SessionCheckpoint::position`]; nothing but the store file has
    /// to survive a crash. The report is `==`-identical to
    /// [`run`](Self::run) whatever was (or was not) in the store, by the
    /// checkpoint round-trip contract and the exactness of the outcome
    /// encoding.
    ///
    /// The store must have been created (or recovered) for this decider
    /// type — open it with
    /// [`CheckpointStore::create_for`]/[`CheckpointStore::recover_for`]
    /// so the header tag matches `D`.
    pub fn run_resumable<D, W, F>(
        &self,
        count: usize,
        persist_every: usize,
        store: &mut CheckpointStore,
        task: F,
    ) -> Result<BatchReport, StoreError>
    where
        D: Checkpointable,
        W: IntoIterator<Item = Sym>,
        W::IntoIter: Send,
        F: Fn(usize) -> (D, W) + Sync,
    {
        self.run_resumable_budgeted(count, persist_every, store, u64::MAX, task)
            .map(|report| report.expect("a u64::MAX token budget cannot be exhausted"))
    }

    /// [`run_resumable`](Self::run_resumable) under a **token budget**:
    /// the sweep may feed at most `token_budget` symbols (fleet-wide,
    /// across all workers) before it stops dead — mid-segment, without
    /// persisting the partial segment — and returns `Ok(None)`. This is
    /// a faithful crash/preemption model: whatever was not yet appended
    /// to the store is lost, and a later call (on a freshly
    /// [`recover`](CheckpointStore::recover)ed store) resumes from the
    /// last persisted boundaries and produces the identical report. The
    /// crash/corruption suite drives this at every checkpoint boundary
    /// and at arbitrary token positions.
    ///
    /// With more than one worker the exact crash position is racy (the
    /// budget pool is shared), but resume correctness never depends on
    /// where the crash fell.
    pub fn run_resumable_budgeted<D, W, F>(
        &self,
        count: usize,
        persist_every: usize,
        store: &mut CheckpointStore,
        token_budget: u64,
        task: F,
    ) -> Result<Option<BatchReport>, StoreError>
    where
        D: Checkpointable,
        W: IntoIterator<Item = Sym>,
        W::IntoIter: Send,
        F: Fn(usize) -> (D, W) + Sync,
    {
        let workers = self.workers.min(count.max(1));
        let segment = persist_every.max(1);
        let store = Mutex::new(store);
        let budget = AtomicU64::new(token_budget);
        let crashed = AtomicBool::new(false);
        // One token from the shared pool, or false when the budget is dry.
        let take_token = || {
            budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .is_ok()
        };
        // Runs worker `w`'s strided shard; returns its finished outcomes.
        let run_shard = |w: usize| -> Result<Vec<(usize, RunOutcome)>, StoreError> {
            let mut out = Vec::new();
            'instances: for idx in (w..count).step_by(workers) {
                if crashed.load(Ordering::Relaxed) {
                    break;
                }
                // An instance with a persisted outcome is *skipped*, not
                // replayed: its task is never built, its stream never
                // re-derived, zero tokens fed (the accounting suite pins
                // this with a zero-token resume budget).
                let finished = store
                    .lock()
                    .expect("store mutex poisoned")
                    .outcome(idx as u64)?;
                if let Some(outcome) = finished {
                    out.push((idx, outcome));
                    continue;
                }
                let (fresh, word) = task(idx);
                let mut stream = word.into_iter();
                let persisted = store
                    .lock()
                    .expect("store mutex poisoned")
                    .latest(idx as u64)?;
                let mut session = match persisted {
                    Some(cp) => {
                        let session = Session::<D>::resume(&cp)?;
                        // Re-derive the stream and skip what was already fed.
                        for consumed in 0..cp.position() {
                            if stream.next().is_none() {
                                return Err(StoreError::Checkpoint(CheckpointError::Malformed(
                                    format!(
                                        "instance {idx}: checkpoint position {} beyond its \
                                         {consumed}-token stream",
                                        cp.position()
                                    ),
                                )));
                            }
                        }
                        session
                    }
                    None => Session::new(fresh),
                };
                loop {
                    for _ in 0..segment {
                        match stream.next() {
                            Some(sym) => {
                                if !take_token() {
                                    // Crash: the partial segment is lost.
                                    crashed.store(true, Ordering::Relaxed);
                                    continue 'instances;
                                }
                                session.feed(sym);
                            }
                            None => {
                                let position = session.position();
                                let outcome = session.finish();
                                store
                                    .lock()
                                    .expect("store mutex poisoned")
                                    .append_outcome(idx as u64, position, &outcome)?;
                                out.push((idx, outcome));
                                continue 'instances;
                            }
                        }
                    }
                    store
                        .lock()
                        .expect("store mutex poisoned")
                        .append(idx as u64, &session.suspend())?;
                }
            }
            Ok(out)
        };
        let sharded: Vec<Result<Vec<(usize, RunOutcome)>, StoreError>> = if workers <= 1 {
            vec![run_shard(0)]
        } else {
            std::thread::scope(|scope| {
                let run_shard = &run_shard;
                let handles: Vec<_> = (0..workers)
                    .map(|w| scope.spawn(move || run_shard(w)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("resumable batch worker panicked"))
                    .collect()
            })
        };
        let mut slots: Vec<Option<RunOutcome>> = vec![None; count];
        for shard in sharded {
            for (idx, outcome) in shard? {
                slots[idx] = Some(outcome);
            }
        }
        if crashed.load(Ordering::Relaxed) {
            return Ok(None);
        }
        Ok(Some(BatchReport::from_outcomes(
            slots
                .into_iter()
                .map(|s| s.expect("uncrashed sweeps fill every slot"))
                .collect(),
        )))
    }

    /// Drives `count` checkpointable sessions with **continuous worker
    /// migration**: execution proceeds in rounds of `checkpoint_every`
    /// tokens (clamped to ≥ 1); after each round every live session is
    /// suspended into its serialized [`SessionCheckpoint`] and the bytes
    /// are handed to a different worker for the next round (instance `i`
    /// runs round `r` on worker `(i + r) mod W`). The decider crosses
    /// rounds **only as bytes** — every segment boundary resumes it from
    /// its checkpoint, so the full suspend/serialize/resume seam is
    /// exercised at every boundary. (The input iterator itself travels
    /// alongside the bytes: in-process migration need not replay a
    /// 50-million-symbol stream, and a cross-process scheduler would
    /// re-derive it from `task(i)` and skip to
    /// [`SessionCheckpoint::position`].)
    ///
    /// Because a checkpoint round-trip is an identity on decider state,
    /// the report is `==`-identical to [`run`] — whatever the worker
    /// count and wherever the segment boundaries fall. The integration
    /// suite pins this.
    ///
    /// [`run`]: Self::run
    pub fn run_migrating<D, W, F>(
        &self,
        count: usize,
        checkpoint_every: usize,
        task: F,
    ) -> BatchReport
    where
        D: Checkpointable,
        W: IntoIterator<Item = Sym>,
        W::IntoIter: Send,
        F: Fn(usize) -> (D, W) + Sync,
    {
        enum Cell<I> {
            Unstarted,
            Suspended(SessionCheckpoint, I),
            Done(RunOutcome),
        }
        let workers = self.workers.min(count.max(1));
        let segment = checkpoint_every.max(1);
        let mut cells: Vec<Cell<W::IntoIter>> = (0..count).map(|_| Cell::Unstarted).collect();
        // Advance one live instance by one segment: resume the decider
        // from its checkpoint bytes, feed, and suspend it back to bytes.
        let advance = |idx: usize, cell: Cell<W::IntoIter>| -> Cell<W::IntoIter> {
            let (mut session, mut stream) = match cell {
                Cell::Unstarted => {
                    let (decider, word) = task(idx);
                    (Session::new(decider), word.into_iter())
                }
                Cell::Suspended(cp, stream) => (
                    Session::resume(&cp).expect("in-process checkpoint must resume"),
                    stream,
                ),
                Cell::Done(_) => unreachable!("finished instances are not rescheduled"),
            };
            for _ in 0..segment {
                match stream.next() {
                    Some(sym) => session.feed(sym),
                    None => return Cell::Done(session.finish()),
                }
            }
            Cell::Suspended(session.suspend(), stream)
        };
        for round in 0.. {
            if cells.iter().all(|c| matches!(c, Cell::Done(_))) {
                break;
            }
            if workers <= 1 {
                // Single worker: same suspend/resume cadence, no spawn.
                for (idx, cell) in cells.iter_mut().enumerate() {
                    if !matches!(cell, Cell::Done(_)) {
                        let taken = std::mem::replace(cell, Cell::Unstarted);
                        *cell = advance(idx, taken);
                    }
                }
                continue;
            }
            // Migration: instance i's round-r segment runs on worker
            // (i + r) mod W — every surviving session changes worker
            // every round. Results are scattered back by index, so the
            // schedule never leaks into the report.
            let mut assigned: Vec<Vec<(usize, Cell<W::IntoIter>)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (idx, cell) in cells.iter_mut().enumerate() {
                if !matches!(cell, Cell::Done(_)) {
                    let taken = std::mem::replace(cell, Cell::Unstarted);
                    assigned[(idx + round) % workers].push((idx, taken));
                }
            }
            let updates: Vec<Vec<(usize, Cell<W::IntoIter>)>> = std::thread::scope(|scope| {
                let advance = &advance;
                let handles: Vec<_> = assigned
                    .into_iter()
                    .map(|batch| {
                        scope.spawn(move || {
                            batch
                                .into_iter()
                                .map(|(idx, cell)| (idx, advance(idx, cell)))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("migrating batch worker panicked"))
                    .collect()
            });
            for (idx, cell) in updates.into_iter().flatten() {
                cells[idx] = cell;
            }
        }
        BatchReport::from_outcomes(
            cells
                .into_iter()
                .map(|c| match c {
                    Cell::Done(o) => o,
                    _ => unreachable!("loop exits only when every cell is done"),
                })
                .collect(),
        )
    }
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::available()
    }
}

/// Aggregated result of a batched sweep: the per-instance outcomes in
/// index order plus the fleet-wide statistics the space experiments
/// record. Worker-count independent by construction (see module docs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Per-instance outcomes, indexed exactly like the submitted tasks.
    pub outcomes: Vec<RunOutcome>,
    /// How many instances accepted.
    pub accepted: usize,
    /// Fleet-wide peak classical work space, in bits.
    pub peak_classical_bits: usize,
    /// Fleet-wide peak quantum register width, in qubits.
    pub peak_qubits: usize,
    /// Fleet-wide peak stored amplitudes (the `MeteredRegister` memory
    /// observable).
    pub peak_amplitudes: usize,
}

impl BatchReport {
    /// Folds per-instance outcomes (in index order) into the fleet view.
    pub fn from_outcomes(outcomes: Vec<RunOutcome>) -> Self {
        let mut report = BatchReport {
            outcomes,
            ..BatchReport::default()
        };
        for o in &report.outcomes {
            report.accepted += usize::from(o.accept);
            report.peak_classical_bits = report.peak_classical_bits.max(o.classical_bits);
            report.peak_qubits = report.peak_qubits.max(o.peak_qubits);
            report.peak_amplitudes = report.peak_amplitudes.max(o.peak_amplitudes);
        }
        report
    }

    /// Number of instances in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True when the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Fraction of instances that accepted (0 on an empty batch).
    pub fn accept_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.accepted as f64 / self.outcomes.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CheckpointStore;
    use crate::streaming::{run_decider, StoreEverything, StorePredicate};
    use oqsc_lang::token::from_str;

    fn words() -> Vec<Vec<Sym>> {
        ["1#01#", "0#0#", "111#", "0000#", "1#1#1#", "01#10#"]
            .iter()
            .map(|s| from_str(s).expect("ok"))
            .collect()
    }

    #[test]
    fn batch_matches_serial_run_decider() {
        let words = words();
        let report = BatchRunner::new(3).run_words(&words, SessionSchedule::Uninterrupted, |_| {
            StoreEverything::new(StorePredicate::ContainsOne)
        });
        assert_eq!(report.len(), words.len());
        for (i, word) in words.iter().enumerate() {
            let single = run_decider(StoreEverything::new(StorePredicate::ContainsOne), word);
            assert_eq!(report.outcomes[i], single, "instance {i}");
        }
        assert_eq!(report.accepted, 4);
        assert!((report.accept_rate() - 4.0 / 6.0).abs() < 1e-12);
        // Fleet peak = the longest word's linear space.
        let longest = words.iter().map(Vec::len).max().expect("nonempty");
        assert_eq!(report.peak_classical_bits, 2 * longest);
        assert_eq!(report.peak_qubits, 0);
    }

    #[test]
    fn report_is_worker_count_independent() {
        let words = words();
        let reference =
            BatchRunner::serial().run_words(&words, SessionSchedule::Uninterrupted, |_| {
                StoreEverything::new(StorePredicate::ContainsOne)
            });
        for workers in [2usize, 3, 8, 64] {
            let report =
                BatchRunner::new(workers).run_words(&words, SessionSchedule::Uninterrupted, |_| {
                    StoreEverything::new(StorePredicate::ContainsOne)
                });
            assert_eq!(report, reference, "workers={workers}");
        }
    }

    #[test]
    fn lazy_streams_feed_without_materializing() {
        // Generate each word on the fly from the index.
        let report = BatchRunner::new(2).run(5, SessionSchedule::Uninterrupted, |i| {
            (
                StoreEverything::new(StorePredicate::LengthEquals(i as u64)),
                (0..i).map(|_| Sym::Zero),
            )
        });
        assert_eq!(report.len(), 5);
        assert_eq!(report.accepted, 5, "every generated stream has length i");
    }

    #[test]
    fn empty_batch_is_well_formed() {
        let report = BatchRunner::new(4).run_words(&[], SessionSchedule::Uninterrupted, |_| {
            StoreEverything::new(StorePredicate::AcceptAll)
        });
        assert!(report.is_empty());
        assert_eq!(report.accept_rate(), 0.0);
        assert_eq!(report.peak_classical_bits, 0);
    }

    /// A checkpointable counting decider for exercising the migrating
    /// scheduler: accepts iff the number of `1`s equals `target`.
    #[derive(Clone, Debug)]
    struct CountOnes {
        target: u64,
        seen: u64,
        peak: usize,
    }

    impl StreamingDecider for CountOnes {
        fn feed(&mut self, sym: Sym) {
            if sym == Sym::One {
                self.seen += 1;
            }
            self.peak = self.peak.max(64 - self.seen.leading_zeros() as usize);
        }

        fn decide(&mut self) -> bool {
            self.seen == self.target
        }

        fn space_bits(&self) -> usize {
            self.peak
        }

        fn snapshot(&self) -> Vec<u8> {
            self.seen.to_le_bytes().to_vec()
        }
    }

    impl crate::session::Checkpointable for CountOnes {
        const TYPE_TAG: &'static str = "CountOnes";

        fn write_state(&self, out: &mut Vec<u8>) {
            crate::session::put_u64(out, self.target);
            crate::session::put_u64(out, self.seen);
            crate::session::put_usize(out, self.peak);
        }

        fn read_state(
            r: &mut crate::session::ByteReader,
        ) -> Result<Self, crate::session::CheckpointError> {
            Ok(CountOnes {
                target: r.read_u64()?,
                seen: r.read_u64()?,
                peak: r.read_usize()?,
            })
        }
    }

    #[test]
    fn migrating_schedule_reproduces_the_uninterrupted_report() {
        // Streams of different lengths (so instances finish in different
        // rounds), segments that do and do not divide the lengths, and
        // several worker counts: every combination must equal the plain
        // run exactly.
        let task = |i: usize| {
            (
                CountOnes {
                    target: (3 * i % 5) as u64,
                    seen: 0,
                    peak: 0,
                },
                (0..2 + 5 * i).map(move |j| {
                    if j % (i + 2) == 0 {
                        Sym::One
                    } else {
                        Sym::Zero
                    }
                }),
            )
        };
        let reference = BatchRunner::serial().run(7, SessionSchedule::Uninterrupted, task);
        assert!(
            reference.accepted > 0 && reference.accepted < 7,
            "mixed verdicts"
        );
        for workers in [1usize, 2, 3, 8] {
            let runner = BatchRunner::new(workers);
            for segment in [1usize, 2, 7, 100] {
                let migrated = runner.run_migrating(7, segment, task);
                assert_eq!(migrated, reference, "workers={workers} segment={segment}");
                let scheduled = runner.run(7, SessionSchedule::MigrateEvery(segment), task);
                assert_eq!(scheduled, reference, "scheduled workers={workers}");
            }
            // The uninterrupted schedule is the classic path.
            assert_eq!(
                runner.run(7, SessionSchedule::Uninterrupted, task),
                reference
            );
        }
    }

    #[test]
    fn migrating_schedule_handles_empty_batches_and_zero_segments() {
        let empty = BatchRunner::new(4).run_migrating(0, 3, |_| {
            (
                CountOnes {
                    target: 0,
                    seen: 0,
                    peak: 0,
                },
                std::iter::empty(),
            )
        });
        assert!(empty.is_empty());
        // Segment 0 clamps to 1 instead of looping forever.
        let one = BatchRunner::new(2).run_migrating(3, 0, |i| {
            (
                CountOnes {
                    target: 0,
                    seen: 0,
                    peak: 0,
                },
                (0..i).map(|_| Sym::Zero),
            )
        });
        assert_eq!(one.accepted, 3);
    }

    fn count_ones_task(i: usize) -> (CountOnes, impl Iterator<Item = Sym>) {
        (
            CountOnes {
                target: (3 * i % 5) as u64,
                seen: 0,
                peak: 0,
            },
            (0..2 + 5 * i).map(move |j| {
                if j % (i + 2) == 0 {
                    Sym::One
                } else {
                    Sym::Zero
                }
            }),
        )
    }

    fn temp_store(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oqsc-batch-unit-{}-{name}.cps", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn resumable_sweep_without_prior_state_matches_plain_run() {
        let reference =
            BatchRunner::serial().run(7, SessionSchedule::Uninterrupted, count_ones_task);
        let path = temp_store("fresh");
        let mut store = CheckpointStore::create_for::<CountOnes>(&path).expect("create");
        let report = BatchRunner::new(3)
            .run_resumable(7, 4, &mut store, count_ones_task)
            .expect("no store errors");
        assert_eq!(report, reference);
        assert!(store.records() > 0, "segments were persisted");
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crashed_then_resumed_sweep_reproduces_the_uninterrupted_report() {
        let reference =
            BatchRunner::serial().run(7, SessionSchedule::Uninterrupted, count_ones_task);
        let total_tokens: u64 = (0..7).map(|i| 2 + 5 * i as u64).sum();
        // Crash at every possible token position (serial runner: the
        // crash point is exact), then resume to completion.
        for crash_at in 0..=total_tokens {
            let path = temp_store(&format!("crash-{crash_at}"));
            let mut store = CheckpointStore::create_for::<CountOnes>(&path).expect("create");
            let first = BatchRunner::serial()
                .run_resumable_budgeted(7, 3, &mut store, crash_at, count_ones_task)
                .expect("no store errors");
            if crash_at >= total_tokens {
                assert_eq!(first, Some(reference.clone()), "budget covers the sweep");
                drop(store);
            } else {
                assert_eq!(first, None, "budget {crash_at} must crash");
                drop(store);
                let (mut store, _) =
                    CheckpointStore::recover_for::<CountOnes>(&path).expect("recover");
                let resumed = BatchRunner::serial()
                    .run_resumable(7, 3, &mut store, count_ones_task)
                    .expect("resume");
                assert_eq!(resumed, reference, "crash at token {crash_at}");
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn resumable_sweep_is_worker_count_independent() {
        let reference =
            BatchRunner::serial().run(7, SessionSchedule::Uninterrupted, count_ones_task);
        for workers in [2usize, 5] {
            let path = temp_store(&format!("workers-{workers}"));
            let mut store = CheckpointStore::create_for::<CountOnes>(&path).expect("create");
            let report = BatchRunner::new(workers)
                .run_resumable(7, 2, &mut store, count_ones_task)
                .expect("runs");
            assert_eq!(report, reference, "workers={workers}");
            drop(store);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn finished_instances_are_skipped_not_replayed_on_resume() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let reference =
            BatchRunner::serial().run(7, SessionSchedule::Uninterrupted, count_ones_task);
        let path = temp_store("skip");
        let mut store = CheckpointStore::create_for::<CountOnes>(&path).expect("create");
        let first = BatchRunner::serial()
            .run_resumable(7, 3, &mut store, count_ones_task)
            .expect("first run");
        assert_eq!(first, reference);
        assert_eq!(store.finished_instances(), 7, "every outcome persisted");
        // Resume over the complete store: the task factory must never be
        // invoked, and a zero-token budget must still complete (nothing
        // is re-fed).
        let factory_calls = AtomicUsize::new(0);
        let resumed = BatchRunner::serial()
            .run_resumable_budgeted(7, 3, &mut store, 0, |i| {
                factory_calls.fetch_add(1, Ordering::Relaxed);
                count_ones_task(i)
            })
            .expect("no store errors")
            .expect("zero tokens suffice when everything is finished");
        assert_eq!(resumed, reference);
        assert_eq!(factory_calls.load(Ordering::Relaxed), 0);
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compacted_store_resumes_identically() {
        let reference =
            BatchRunner::serial().run(7, SessionSchedule::Uninterrupted, count_ones_task);
        let path = temp_store("compact-resume");
        let mut store = CheckpointStore::create_for::<CountOnes>(&path).expect("create");
        // Crash partway: some instances finished, some mid-checkpoint.
        let crashed = BatchRunner::serial()
            .run_resumable_budgeted(7, 3, &mut store, 60, count_ones_task)
            .expect("no store errors");
        assert_eq!(crashed, None, "budget 60 < 119 total tokens");
        let before = store.len_bytes();
        let report = store.compact().expect("compact");
        assert!(report.bytes_after <= before);
        let resumed = BatchRunner::serial()
            .run_resumable(7, 3, &mut store, count_ones_task)
            .expect("resume after compact");
        assert_eq!(resumed, reference);
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resumable_sweep_handles_empty_batches() {
        let path = temp_store("empty");
        let mut store = CheckpointStore::create_for::<CountOnes>(&path).expect("create");
        let report = BatchRunner::new(4)
            .run_resumable(0, 1, &mut store, count_ones_task)
            .expect("runs");
        assert!(report.is_empty());
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn worker_count_clamps_to_one() {
        assert_eq!(BatchRunner::new(0).workers(), 1);
        assert!(BatchRunner::available().workers() >= 1);
        assert_eq!(
            BatchRunner::default().workers(),
            BatchRunner::available().workers()
        );
    }
}
