//! The session engine: suspendable, serializable, migratable decider
//! runs.
//!
//! A [`Session`] wraps a [`StreamingDecider`] mid-stream and is the one
//! place "feed, decide, meter" happens —
//! [`run_decider_stream`](crate::streaming::run_decider_stream) and the
//! batch scheduler are thin wrappers over it. For deciders that implement
//! [`Checkpointable`], a session can be **suspended** into a
//! [`SessionCheckpoint`] — a versioned byte string carrying the decider's
//! complete configuration (classical counters, fingerprint residues, the
//! quantum register as a [`oqsc_quantum::StateSnapshot`], and all space
//! metering) plus the stream position — shipped to another worker,
//! thread, or process, and **resumed** there. The contract (DESIGN.md
//! §7):
//!
//! > suspending at any token boundary, moving the checkpoint anywhere,
//! > and resuming yields a [`RunOutcome`] `==`-identical to the
//! > uninterrupted run.
//!
//! Checkpoints open with a version byte; decoders reject tags they do
//! not understand ([`CheckpointError::UnsupportedVersion`]) instead of
//! misreading a future layout.

use crate::streaming::{RunOutcome, StreamingDecider};
use oqsc_lang::Sym;

/// The current checkpoint encoding version.
pub const CHECKPOINT_VERSION: u8 = 1;

/// Why a checkpoint could not be decoded or resumed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The version tag is not one this build understands.
    UnsupportedVersion(u8),
    /// The byte stream ended before the decoder was done.
    Truncated,
    /// The bytes are structurally invalid for the target decider.
    Malformed(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::UnsupportedVersion(v) => write!(
                f,
                "unsupported session-checkpoint version {v} (this build reads {CHECKPOINT_VERSION})"
            ),
            CheckpointError::Truncated => write!(f, "truncated session checkpoint"),
            CheckpointError::Malformed(what) => write!(f, "malformed session checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<oqsc_quantum::SnapshotError> for CheckpointError {
    fn from(e: oqsc_quantum::SnapshotError) -> Self {
        match e {
            oqsc_quantum::SnapshotError::UnsupportedVersion(v) => {
                CheckpointError::Malformed(format!("embedded state snapshot has version {v}"))
            }
            oqsc_quantum::SnapshotError::Malformed(what) => {
                CheckpointError::Malformed(format!("embedded state snapshot: {what}"))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Byte-level encoding helpers
// ---------------------------------------------------------------------

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `bool` as one byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as a `u64`, little-endian.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// A cursor over checkpoint bytes with typed, bounds-checked reads.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, starting at the front.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when everything has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads `len` raw bytes.
    pub fn read_bytes(&mut self, len: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < len {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn read_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.read_bytes(1)?[0])
    }

    /// Reads a `bool` (rejecting anything but 0/1).
    pub fn read_bool(&mut self) -> Result<bool, CheckpointError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CheckpointError::Malformed(format!("bad bool byte {v}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.read_bytes(4)?.try_into().expect("length checked"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.read_bytes(8)?.try_into().expect("length checked"),
        ))
    }

    /// Reads a `usize` encoded as a `u64`.
    pub fn read_usize(&mut self) -> Result<usize, CheckpointError> {
        let v = self.read_u64()?;
        usize::try_from(v).map_err(|_| CheckpointError::Malformed(format!("usize overflow: {v}")))
    }

    /// Reads a length-prefixed byte string written by [`put_bytes`].
    pub fn read_prefixed_bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let len = self.read_usize()?;
        self.read_bytes(len)
    }
}

// ---------------------------------------------------------------------
// The checkpointable-decider contract
// ---------------------------------------------------------------------

/// A [`StreamingDecider`] whose complete mid-stream configuration can be
/// serialized and restored.
///
/// Unlike [`StreamingDecider::snapshot`] — the *communication-reduction*
/// observable, which deliberately excludes quantum state (Theorem 3.6's
/// mechanism) — `write_state`/`read_state` must round-trip **everything**
/// the decider's future behavior depends on: control state, counters,
/// buffered data, pre-committed entropy, the quantum register
/// (byte-exact, via the backend snapshot seam) and the space meters. The
/// law, pinned by `tests/session_checkpoint.rs` at every token boundary:
/// `read_state(write_state(d))` behaves identically to `d` — same
/// verdicts, same metering, same randomness consumption.
pub trait Checkpointable: StreamingDecider + Sized {
    /// Stable name of the decider type. Recorded in the header of a
    /// persistent [`crate::store::CheckpointStore`], so a store written
    /// for one decider type is never decoded as another; generic deciders
    /// share one tag across backends (the register snapshot encoding is
    /// backend-portable).
    const TYPE_TAG: &'static str;

    /// Appends the decider's complete configuration to `out`.
    fn write_state(&self, out: &mut Vec<u8>);

    /// Rebuilds a decider from bytes produced by
    /// [`write_state`](Self::write_state).
    fn read_state(r: &mut ByteReader) -> Result<Self, CheckpointError>;
}

// ---------------------------------------------------------------------
// Checkpoints and sessions
// ---------------------------------------------------------------------

/// A suspended [`Session`]: version byte, stream position, and the
/// decider's serialized configuration. Opaque bytes — ship them across
/// threads, processes or the wire and [`Session::resume`] on the other
/// side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionCheckpoint {
    bytes: Vec<u8>,
}

const CP_HEADER_LEN: usize = 9; // version u8 + position u64

impl SessionCheckpoint {
    fn encode<D: Checkpointable>(position: u64, decider: &D) -> Self {
        let mut bytes = Vec::with_capacity(64);
        put_u8(&mut bytes, CHECKPOINT_VERSION);
        put_u64(&mut bytes, position);
        decider.write_state(&mut bytes);
        SessionCheckpoint { bytes }
    }

    /// The raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the checkpoint into its raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Size of the serialized configuration — what a migration actually
    /// moves between workers.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Validates the header and adopts raw bytes produced by
    /// [`Self::as_bytes`]. (The decider payload is validated by
    /// [`Session::resume`], which knows the concrete decider type.)
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, CheckpointError> {
        if bytes.len() < CP_HEADER_LEN {
            return Err(CheckpointError::Truncated);
        }
        if bytes[0] != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(bytes[0]));
        }
        Ok(SessionCheckpoint { bytes })
    }

    /// How many stream tokens the suspended session had consumed.
    pub fn position(&self) -> u64 {
        u64::from_le_bytes(self.bytes[1..9].try_into().expect("header validated"))
    }
}

/// A decider run in progress: feed tokens, then [`finish`](Self::finish)
/// for the [`RunOutcome`] — or [`suspend`](Self::suspend) mid-stream and
/// [`resume`](Self::resume) elsewhere.
#[derive(Clone, Debug)]
pub struct Session<D: StreamingDecider> {
    decider: D,
    fed: u64,
}

impl<D: StreamingDecider> Session<D> {
    /// Opens a session over a fresh decider (position 0).
    pub fn new(decider: D) -> Self {
        Session { decider, fed: 0 }
    }

    /// Consumes the next input token.
    pub fn feed(&mut self, sym: Sym) {
        self.decider.feed(sym);
        self.fed += 1;
    }

    /// Feeds a whole word.
    pub fn feed_all(&mut self, word: &[Sym]) {
        for &s in word {
            self.feed(s);
        }
    }

    /// Batch-feed fast path: hands the whole slice to the decider's
    /// [`StreamingDecider::feed_all`] and bumps the stream position once,
    /// instead of paying one dynamic dispatch and one counter increment
    /// per token. Behavior is `==`-identical to calling
    /// [`feed`](Self::feed) on each symbol in order — `feed_all` on the
    /// decider side is defined as exactly that loop — so the mux dispatch
    /// loop can use it freely without perturbing verdicts or metering.
    pub fn feed_slice(&mut self, word: &[Sym]) {
        self.decider.feed_all(word);
        self.fed += word.len() as u64;
    }

    /// Tokens consumed so far.
    pub fn position(&self) -> u64 {
        self.fed
    }

    /// Read access to the in-flight decider.
    pub fn decider(&self) -> &D {
        &self.decider
    }

    /// Ends the stream: verdict plus the full Definition 2.3 space
    /// accounting.
    pub fn finish(mut self) -> RunOutcome {
        let accept = self.decider.decide();
        RunOutcome {
            accept,
            classical_bits: self.decider.space_bits(),
            peak_qubits: self.decider.peak_qubits(),
            peak_amplitudes: self.decider.peak_amplitudes(),
        }
    }

    /// Unwraps the decider without deciding.
    pub fn into_decider(self) -> D {
        self.decider
    }
}

impl<D: Checkpointable> Session<D> {
    /// Serializes the session — decider configuration, register snapshot,
    /// metering, stream position — into a portable checkpoint. The
    /// session remains usable (suspension is an observation, not a
    /// teardown).
    pub fn suspend(&self) -> SessionCheckpoint {
        SessionCheckpoint::encode(self.fed, &self.decider)
    }

    /// Rebuilds a session from a checkpoint, ready to consume the token
    /// after [`SessionCheckpoint::position`].
    pub fn resume(cp: &SessionCheckpoint) -> Result<Self, CheckpointError> {
        let bytes = cp.as_bytes();
        // from_bytes validated version + header length.
        let fed = cp.position();
        let mut r = ByteReader::new(&bytes[CP_HEADER_LEN..]);
        let decider = D::read_state(&mut r)?;
        if !r.is_exhausted() {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after decider state",
                r.remaining()
            )));
        }
        Ok(Session { decider, fed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::run_decider;
    use oqsc_lang::token::from_str;

    /// A tiny checkpointable decider for exercising the engine without
    /// the core crate: accepts iff it saw an odd number of `1`s.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct ParityDecider {
        ones: u64,
    }

    impl ParityDecider {
        fn new() -> Self {
            ParityDecider { ones: 0 }
        }
    }

    impl StreamingDecider for ParityDecider {
        fn feed(&mut self, sym: Sym) {
            if sym == Sym::One {
                self.ones += 1;
            }
        }

        fn decide(&mut self) -> bool {
            self.ones % 2 == 1
        }

        fn space_bits(&self) -> usize {
            1
        }

        fn snapshot(&self) -> Vec<u8> {
            vec![(self.ones % 2) as u8]
        }
    }

    impl Checkpointable for ParityDecider {
        const TYPE_TAG: &'static str = "ParityDecider";

        fn write_state(&self, out: &mut Vec<u8>) {
            put_u64(out, self.ones);
        }

        fn read_state(r: &mut ByteReader) -> Result<Self, CheckpointError> {
            Ok(ParityDecider {
                ones: r.read_u64()?,
            })
        }
    }

    #[test]
    fn suspend_resume_at_every_position_matches_uninterrupted() {
        let word = from_str("1#01#110#1").expect("syms");
        let reference = run_decider(ParityDecider::new(), &word);
        for cut in 0..=word.len() {
            let mut s = Session::new(ParityDecider::new());
            s.feed_all(&word[..cut]);
            let cp = s.suspend();
            assert_eq!(cp.position(), cut as u64);
            let mut resumed = Session::<ParityDecider>::resume(&cp).expect("resumes");
            resumed.feed_all(&word[cut..]);
            assert_eq!(resumed.finish(), reference, "cut at {cut}");
        }
    }

    #[test]
    fn feed_slice_is_identical_to_repeated_feed() {
        let word = from_str("1#01#110#1").expect("syms");
        for cut in 0..=word.len() {
            let mut by_token = Session::new(ParityDecider::new());
            for &s in &word {
                by_token.feed(s);
            }
            let mut by_slice = Session::new(ParityDecider::new());
            by_slice.feed_slice(&word[..cut]);
            by_slice.feed_slice(&word[cut..]);
            by_slice.feed_slice(&[]);
            assert_eq!(by_slice.position(), by_token.position(), "cut at {cut}");
            assert_eq!(by_slice.decider(), by_token.decider(), "cut at {cut}");
            assert_eq!(by_slice.finish(), by_token.finish(), "cut at {cut}");
        }
    }

    #[test]
    fn checkpoint_bytes_round_trip_through_from_bytes() {
        let mut s = Session::new(ParityDecider::new());
        s.feed(Sym::One);
        let cp = s.suspend();
        let wire = cp.as_bytes().to_vec();
        let back = SessionCheckpoint::from_bytes(wire).expect("valid");
        assert_eq!(back, cp);
        let resumed = Session::<ParityDecider>::resume(&back).expect("resumes");
        assert_eq!(resumed.position(), 1);
        assert_eq!(resumed.decider(), &ParityDecider { ones: 1 });
    }

    #[test]
    fn unknown_checkpoint_version_is_rejected() {
        let cp = Session::new(ParityDecider::new()).suspend();
        let mut bytes = cp.into_bytes();
        bytes[0] = CHECKPOINT_VERSION + 1;
        match SessionCheckpoint::from_bytes(bytes) {
            Err(CheckpointError::UnsupportedVersion(v)) => {
                assert_eq!(v, CHECKPOINT_VERSION + 1);
            }
            other => panic!("expected version rejection, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        assert_eq!(
            SessionCheckpoint::from_bytes(vec![CHECKPOINT_VERSION]),
            Err(CheckpointError::Truncated)
        );
        let cp = Session::new(ParityDecider::new()).suspend();
        let mut bytes = cp.into_bytes();
        bytes.push(0xFF);
        let cp = SessionCheckpoint::from_bytes(bytes).expect("header still fine");
        assert!(matches!(
            Session::<ParityDecider>::resume(&cp),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn byte_reader_reads_back_what_writers_wrote() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_bool(&mut out, true);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_usize(&mut out, 12345);
        put_bytes(&mut out, b"abc");
        let mut r = ByteReader::new(&out);
        assert_eq!(r.read_u8().expect("u8"), 7);
        assert!(r.read_bool().expect("bool"));
        assert_eq!(r.read_u32().expect("u32"), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().expect("u64"), u64::MAX - 1);
        assert_eq!(r.read_usize().expect("usize"), 12345);
        assert_eq!(r.read_prefixed_bytes().expect("bytes"), b"abc");
        assert!(r.is_exhausted());
        assert_eq!(r.read_u8(), Err(CheckpointError::Truncated));
    }
}
