//! Online probabilistic Turing machines (OPTMs), Section 2.1 of the paper.
//!
//! An OPTM is a probabilistic Turing machine with a one-way (left-to-right)
//! read-only input tape and a read-write work tape over the ternary
//! alphabet `Σ = {0, 1, #}` (plus the blank). This module provides the
//! model as an explicit transition table, three execution semantics —
//! sampled runs, exact acceptance probability via evolution of the
//! configuration distribution, and reachable-configuration enumeration
//! (the object Theorem 3.6's reduction transmits) — and the configuration
//! counting bound of Fact 2.2.

use oqsc_lang::Sym;
use rand::Rng;
use std::collections::HashMap;

/// Control state identifier.
pub type State = u32;

/// Work-tape symbol: the input alphabet plus the blank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TapeSym {
    /// Bit 0.
    Zero,
    /// Bit 1.
    One,
    /// Separator `#`.
    Hash,
    /// Blank (unwritten cell / end of input marker).
    Blank,
}

impl TapeSym {
    /// Converts an input symbol.
    pub fn from_sym(s: Sym) -> TapeSym {
        match s {
            Sym::Zero => TapeSym::Zero,
            Sym::One => TapeSym::One,
            Sym::Hash => TapeSym::Hash,
        }
    }
}

/// Movement of the work-tape head.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkMove {
    /// One cell left (clamped at cell 0).
    Left,
    /// Stay put.
    Stay,
    /// One cell right.
    Right,
}

/// Movement of the one-way input head (never left — that is the "online"
/// restriction).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InputMove {
    /// Re-read the same input symbol.
    Stay,
    /// Advance to the next input symbol.
    Right,
}

/// One deterministic branch of a transition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Action {
    /// Next control state.
    pub next: State,
    /// Symbol written under the work head.
    pub write: TapeSym,
    /// Work-head movement.
    pub work_move: WorkMove,
    /// Input-head movement.
    pub input_move: InputMove,
}

/// A full machine description.
#[derive(Clone, Debug)]
pub struct Optm {
    num_states: u32,
    start: State,
    accept: Vec<State>,
    transitions: HashMap<(State, TapeSym, TapeSym), Vec<(f64, Action)>>,
}

/// A machine configuration: everything Fact 2.2 counts (control state,
/// both head positions, work-tape contents).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Configuration {
    /// Control state.
    pub state: State,
    /// Input-head position (number of symbols consumed).
    pub input_pos: usize,
    /// Work-head position.
    pub work_pos: usize,
    /// Work-tape contents up to the rightmost written cell.
    pub tape: Vec<TapeSym>,
}

impl Configuration {
    /// Initial configuration of a machine.
    pub fn initial(start: State) -> Self {
        Configuration {
            state: start,
            input_pos: 0,
            work_pos: 0,
            tape: Vec::new(),
        }
    }

    /// Work-tape cells in use (the paper's space measure).
    pub fn space_cells(&self) -> usize {
        self.tape.len().max(self.work_pos + 1)
    }

    /// Serializes the configuration (for the Theorem 3.6 reduction's
    /// messages).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.state.to_le_bytes());
        out.extend_from_slice(&(self.input_pos as u64).to_le_bytes());
        out.extend_from_slice(&(self.work_pos as u64).to_le_bytes());
        for &t in &self.tape {
            out.push(match t {
                TapeSym::Zero => 0,
                TapeSym::One => 1,
                TapeSym::Hash => 2,
                TapeSym::Blank => 3,
            });
        }
        out
    }
}

/// Result of a sampled run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptmRunOutcome {
    /// Whether the machine halted in an accepting state.
    pub accepted: bool,
    /// Whether the machine halted at all within the step budget. A
    /// non-halting run rejects (the paper permits non-halting machines and
    /// counts never-halting as rejection).
    pub halted: bool,
    /// Steps executed.
    pub steps: usize,
    /// Peak work-tape cells used.
    pub peak_cells: usize,
}

impl Optm {
    /// Creates a machine skeleton. Transitions are added with
    /// [`Optm::add`]; states without transitions on a scanned pair halt.
    pub fn new(num_states: u32, start: State, accept: Vec<State>) -> Self {
        assert!(start < num_states);
        assert!(accept.iter().all(|&a| a < num_states));
        Optm {
            num_states,
            start,
            accept,
            transitions: HashMap::new(),
        }
    }

    /// Number of control states `|Q|`.
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// Adds a probabilistic transition for `(state, input_sym, work_sym)`.
    ///
    /// # Panics
    /// If the branch probabilities for a key end up exceeding 1 + ε.
    pub fn add(
        &mut self,
        state: State,
        input: TapeSym,
        work: TapeSym,
        branches: Vec<(f64, Action)>,
    ) {
        let total: f64 = branches.iter().map(|(p, _)| p).sum();
        assert!(total <= 1.0 + 1e-9, "branch probabilities exceed 1");
        for (_, a) in &branches {
            assert!(a.next < self.num_states, "action targets unknown state");
        }
        self.transitions.insert((state, input, work), branches);
    }

    /// Adds a deterministic transition.
    pub fn add_det(&mut self, state: State, input: TapeSym, work: TapeSym, action: Action) {
        self.add(state, input, work, vec![(1.0, action)]);
    }

    /// Adds the same deterministic transition for every input symbol in
    /// `inputs`.
    pub fn add_det_many(
        &mut self,
        state: State,
        inputs: &[TapeSym],
        work: TapeSym,
        action: Action,
    ) {
        for &i in inputs {
            self.add_det(state, i, work, action);
        }
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: State) -> bool {
        self.accept.contains(&state)
    }

    fn scan(&self, cfg: &Configuration, input: &[Sym]) -> (TapeSym, TapeSym) {
        let in_sym = input
            .get(cfg.input_pos)
            .map(|&s| TapeSym::from_sym(s))
            .unwrap_or(TapeSym::Blank);
        let work_sym = cfg
            .tape
            .get(cfg.work_pos)
            .copied()
            .unwrap_or(TapeSym::Blank);
        (in_sym, work_sym)
    }

    fn apply(&self, cfg: &Configuration, action: &Action) -> Configuration {
        let mut next = cfg.clone();
        next.state = action.next;
        if next.tape.len() <= next.work_pos {
            next.tape.resize(next.work_pos + 1, TapeSym::Blank);
        }
        next.tape[next.work_pos] = action.write;
        next.work_pos = match action.work_move {
            WorkMove::Left => next.work_pos.saturating_sub(1),
            WorkMove::Stay => next.work_pos,
            WorkMove::Right => next.work_pos + 1,
        };
        if action.input_move == InputMove::Right {
            next.input_pos += 1;
        }
        // Trim trailing blanks so equal configurations hash equally.
        while next.tape.last() == Some(&TapeSym::Blank) && next.tape.len() > next.work_pos + 1 {
            next.tape.pop();
        }
        next
    }

    /// Samples one run.
    pub fn run<R: Rng + ?Sized>(
        &self,
        input: &[Sym],
        rng: &mut R,
        max_steps: usize,
    ) -> OptmRunOutcome {
        let mut cfg = Configuration::initial(self.start);
        let mut peak = 0usize;
        for step in 0..max_steps {
            peak = peak.max(cfg.space_cells());
            let key = self.scan(&cfg, input);
            let branches = match self.transitions.get(&(cfg.state, key.0, key.1)) {
                None => {
                    return OptmRunOutcome {
                        accepted: self.is_accepting(cfg.state),
                        halted: true,
                        steps: step,
                        peak_cells: peak,
                    }
                }
                Some(b) => b,
            };
            let mut u: f64 = rng.gen();
            let mut chosen = None;
            for (p, a) in branches {
                u -= p;
                if u <= 0.0 {
                    chosen = Some(a);
                    break;
                }
            }
            match chosen {
                Some(a) => cfg = self.apply(&cfg, a),
                // Probability mass < 1: the residual branch means "halt
                // and reject" (models machines that stop without accepting).
                None => {
                    return OptmRunOutcome {
                        accepted: false,
                        halted: true,
                        steps: step,
                        peak_cells: peak,
                    }
                }
            }
        }
        OptmRunOutcome {
            accepted: false,
            halted: false,
            steps: max_steps,
            peak_cells: peak,
        }
    }

    /// Exact acceptance probability by evolving the full configuration
    /// distribution for `max_steps` steps. Returns
    /// `(p_accept, p_reject, p_still_running)`. Exponential in the space
    /// used — intended for the small machines of the test-suite and for
    /// validating the reduction.
    pub fn exact_acceptance(&self, input: &[Sym], max_steps: usize) -> (f64, f64, f64) {
        let mut dist: HashMap<Configuration, f64> = HashMap::new();
        dist.insert(Configuration::initial(self.start), 1.0);
        let mut p_accept = 0.0;
        let mut p_reject = 0.0;
        for _ in 0..max_steps {
            if dist.is_empty() {
                break;
            }
            let mut next: HashMap<Configuration, f64> = HashMap::new();
            for (cfg, p) in dist {
                let key = self.scan(&cfg, input);
                match self.transitions.get(&(cfg.state, key.0, key.1)) {
                    None => {
                        if self.is_accepting(cfg.state) {
                            p_accept += p;
                        } else {
                            p_reject += p;
                        }
                    }
                    Some(branches) => {
                        let mut used = 0.0;
                        for (bp, a) in branches {
                            used += bp;
                            let c = self.apply(&cfg, a);
                            *next.entry(c).or_insert(0.0) += p * bp;
                        }
                        if used < 1.0 - 1e-12 {
                            p_reject += p * (1.0 - used);
                        }
                    }
                }
            }
            dist = next;
        }
        let p_running: f64 = dist.values().sum();
        (p_accept, p_reject, p_running)
    }

    /// All configurations reachable with positive probability *immediately
    /// after consuming* `prefix` (the input head having just moved past its
    /// last symbol), together with their probabilities, starting from
    /// `from`. This is exactly the message distribution of the Theorem 3.6
    /// reduction: the configurations `C_j` with `C^{(i−1)} →_w C_j`.
    ///
    /// `max_steps` bounds the exploration; probability mass still inside
    /// the prefix after that many steps is returned as the second value
    /// (it corresponds to the protocol's "output 0 and stop" branch).
    pub fn boundary_configurations(
        &self,
        from: &Configuration,
        prefix: &[Sym],
        max_steps: usize,
    ) -> (HashMap<Configuration, f64>, f64) {
        // Work on a shifted copy: input positions relative to `prefix`.
        let mut start = from.clone();
        let base_pos = start.input_pos;
        start.input_pos = 0;
        let mut inside: HashMap<Configuration, f64> = HashMap::new();
        inside.insert(start, 1.0);
        let mut crossed: HashMap<Configuration, f64> = HashMap::new();
        let mut lost = 0.0;
        for _ in 0..max_steps {
            if inside.is_empty() {
                break;
            }
            let mut next: HashMap<Configuration, f64> = HashMap::new();
            for (cfg, p) in inside {
                let key = self.scan(&cfg, prefix);
                match self.transitions.get(&(cfg.state, key.0, key.1)) {
                    // Halting inside the prefix: the machine will never
                    // reach the boundary; the protocol treats this like the
                    // non-halting branch (it can also be resolved locally,
                    // but we keep the paper's accounting).
                    None => lost += p,
                    Some(branches) => {
                        let mut used = 0.0;
                        for (bp, a) in branches {
                            used += bp;
                            let c = self.apply(&cfg, a);
                            if c.input_pos >= prefix.len() {
                                let mut rebased = c;
                                rebased.input_pos += base_pos;
                                *crossed.entry(rebased).or_insert(0.0) += p * bp;
                            } else {
                                *next.entry(c).or_insert(0.0) += p * bp;
                            }
                        }
                        if used < 1.0 - 1e-12 {
                            lost += p * (1.0 - used);
                        }
                    }
                }
            }
            inside = next;
        }
        lost += inside.values().sum::<f64>();
        (crossed, lost)
    }
}

/// Fact 2.2: `log₂` of the bound `n · s · |Σ|^s · |Q|` on the number of
/// configurations reachable by an `s`-space machine on length-`n` inputs.
pub fn fact_2_2_log2_configs(n: usize, s: usize, sigma: usize, q: usize) -> f64 {
    (n.max(1) as f64).log2()
        + (s.max(1) as f64).log2()
        + s as f64 * (sigma as f64).log2()
        + (q.max(1) as f64).log2()
}

// ----------------------------------------------------------------------
// Demo machines (used by tests here and by the reduction experiments)
// ----------------------------------------------------------------------

/// A machine accepting iff the input contains at least one `1`.
/// States: 0 = scanning (start), 1 = accept-halt, 2 = reject-halt.
pub fn machine_contains_one() -> Optm {
    let mut m = Optm::new(3, 0, vec![1]);
    let scan = |next| Action {
        next,
        write: TapeSym::Blank,
        work_move: WorkMove::Stay,
        input_move: InputMove::Right,
    };
    m.add_det_many(0, &[TapeSym::Zero, TapeSym::Hash], TapeSym::Blank, scan(0));
    m.add_det(0, TapeSym::One, TapeSym::Blank, scan(1));
    // On blank (end of input) in state 0: no transition → halt in 0 (reject).
    m
}

/// A machine accepting iff the number of `1`s is even (parity in the
/// control state; no work tape).
pub fn machine_even_ones() -> Optm {
    let mut m = Optm::new(2, 0, vec![0]);
    let step = |next| Action {
        next,
        write: TapeSym::Blank,
        work_move: WorkMove::Stay,
        input_move: InputMove::Right,
    };
    for parity in 0..2u32 {
        m.add_det_many(
            parity,
            &[TapeSym::Zero, TapeSym::Hash],
            TapeSym::Blank,
            step(parity),
        );
        m.add_det(parity, TapeSym::One, TapeSym::Blank, step(1 - parity));
    }
    m
}

/// A machine that accepts with probability exactly 1/2 on any input
/// (single fair coin flip, then halt).
pub fn machine_fair_coin() -> Optm {
    let mut m = Optm::new(3, 0, vec![1]);
    let halt = |next| Action {
        next,
        write: TapeSym::Blank,
        work_move: WorkMove::Stay,
        input_move: InputMove::Stay,
    };
    for sym in [TapeSym::Zero, TapeSym::One, TapeSym::Hash, TapeSym::Blank] {
        m.add(0, sym, TapeSym::Blank, vec![(0.5, halt(1)), (0.5, halt(2))]);
    }
    m
}

/// A machine that copies the first input symbol to the work tape, scans to
/// the end, and accepts iff the last symbol equals the first. Exercises
/// work-tape reads and writes (uses exactly one cell).
pub fn machine_first_equals_last() -> Optm {
    // States: 0 = read first; 1/2/3 = remember first symbol (0/1/#) in the
    // control state while recording the most recent symbol in the work
    // cell; 4 = reject-halt; 5 = accept-halt.
    let mut m = Optm::new(6, 0, vec![5]);
    let remember_state = |s: TapeSym| match s {
        TapeSym::Zero => 1u32,
        TapeSym::One => 2,
        TapeSym::Hash => 3,
        TapeSym::Blank => unreachable!(),
    };
    for first in [TapeSym::Zero, TapeSym::One, TapeSym::Hash] {
        m.add_det(
            0,
            first,
            TapeSym::Blank,
            Action {
                next: remember_state(first),
                // The first symbol is also the most recent one so far, so a
                // single-symbol input compares it against itself.
                write: first,
                work_move: WorkMove::Stay,
                input_move: InputMove::Right,
            },
        );
    }
    for first in [TapeSym::Zero, TapeSym::One, TapeSym::Hash] {
        let st = remember_state(first);
        for seen in [TapeSym::Zero, TapeSym::One, TapeSym::Hash] {
            for work in [TapeSym::Zero, TapeSym::One, TapeSym::Hash, TapeSym::Blank] {
                // Record the most recent symbol in the work cell.
                m.add_det(
                    st,
                    seen,
                    work,
                    Action {
                        next: st,
                        write: seen,
                        work_move: WorkMove::Stay,
                        input_move: InputMove::Right,
                    },
                );
            }
        }
        // End of input: accept iff work cell holds `first`.
        m.add_det(
            st,
            TapeSym::Blank,
            first,
            Action {
                next: 5,
                write: first,
                work_move: WorkMove::Stay,
                input_move: InputMove::Stay,
            },
        );
        for work in [TapeSym::Zero, TapeSym::One, TapeSym::Hash, TapeSym::Blank] {
            if work != first {
                m.add_det(
                    st,
                    TapeSym::Blank,
                    work,
                    Action {
                        next: 4,
                        write: work,
                        work_move: WorkMove::Stay,
                        input_move: InputMove::Stay,
                    },
                );
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_lang::token::from_str;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn syms(s: &str) -> Vec<Sym> {
        from_str(s).expect("valid")
    }

    #[test]
    fn contains_one_machine() {
        let m = machine_contains_one();
        let mut rng = StdRng::seed_from_u64(1);
        let pos = m.run(&syms("0001#0"), &mut rng, 1000);
        assert!(pos.accepted && pos.halted);
        let neg = m.run(&syms("000#0"), &mut rng, 1000);
        assert!(!neg.accepted && neg.halted);
        let empty = m.run(&[], &mut rng, 1000);
        assert!(!empty.accepted && empty.halted);
    }

    #[test]
    fn contains_one_exact_probabilities() {
        let m = machine_contains_one();
        let (pa, pr, run) = m.exact_acceptance(&syms("0100"), 100);
        assert!((pa - 1.0).abs() < 1e-12);
        assert!(pr.abs() < 1e-12);
        assert!(run.abs() < 1e-12);
        let (pa, pr, _) = m.exact_acceptance(&syms("0000"), 100);
        assert!(pa.abs() < 1e-12);
        assert!((pr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn even_ones_machine() {
        let m = machine_even_ones();
        for (word, expect) in [
            ("", true),
            ("1", false),
            ("11", true),
            ("101#", true),
            ("111", false),
        ] {
            let (pa, _, _) = m.exact_acceptance(&syms(word), 100);
            assert_eq!(pa > 0.5, expect, "word {word}");
        }
    }

    #[test]
    fn fair_coin_is_exactly_half() {
        let m = machine_fair_coin();
        let (pa, pr, run) = m.exact_acceptance(&syms("0"), 10);
        assert!((pa - 0.5).abs() < 1e-12);
        assert!((pr - 0.5).abs() < 1e-12);
        assert!(run.abs() < 1e-12);
        // Sampled statistics agree.
        let mut rng = StdRng::seed_from_u64(6);
        let accepts = (0..4000)
            .filter(|_| m.run(&syms("0"), &mut rng, 10).accepted)
            .count();
        let f = accepts as f64 / 4000.0;
        assert!((f - 0.5).abs() < 0.05, "freq {f}");
    }

    #[test]
    fn first_equals_last_machine() {
        let m = machine_first_equals_last();
        for (word, expect) in [
            ("00", true),
            ("01", false),
            ("010", true),
            ("1#1", true),
            ("1#0", false),
            ("##", true),
            ("0", true), // single symbol: first == last
        ] {
            let (pa, _, _) = m.exact_acceptance(&syms(word), 1000);
            assert_eq!(pa > 0.5, expect, "word {word:?}");
        }
    }

    #[test]
    fn work_tape_space_metered() {
        let m = machine_first_equals_last();
        let mut rng = StdRng::seed_from_u64(2);
        let out = m.run(&syms("0110"), &mut rng, 1000);
        assert!(out.halted);
        assert_eq!(out.peak_cells, 1);
    }

    #[test]
    fn boundary_configurations_split_runs() {
        // contains_one over "01" then "10": after consuming "01" the machine
        // is in the accept state 1 having seen a one... state 1 halts
        // immediately (no transitions), so the boundary config after "01"
        // has state 1.
        let m = machine_contains_one();
        let init = Configuration::initial(0);
        let (configs, lost) = m.boundary_configurations(&init, &syms("01"), 100);
        assert!(lost.abs() < 1e-12);
        assert_eq!(configs.len(), 1);
        let (cfg, p) = configs.iter().next().expect("one config");
        assert_eq!(cfg.state, 1);
        assert_eq!(cfg.input_pos, 2);
        assert!((p - 1.0).abs() < 1e-12);

        // All-zero prefix: stays in state 0.
        let (configs, _) = m.boundary_configurations(&init, &syms("00"), 100);
        assert_eq!(configs.len(), 1);
        assert_eq!(configs.keys().next().expect("cfg").state, 0);
    }

    #[test]
    fn boundary_then_continue_equals_direct_run() {
        // Chain boundary_configurations over "10" + "01" and compare the
        // final acceptance with exact_acceptance on "1001".
        let m = machine_even_ones();
        let init = Configuration::initial(0);
        let (mid, lost1) = m.boundary_configurations(&init, &syms("10"), 100);
        assert!(lost1.abs() < 1e-12);
        let mut p_accept = 0.0;
        for (cfg, p) in &mid {
            let (fin, lost2) = m.boundary_configurations(cfg, &syms("01"), 100);
            assert!(lost2.abs() < 1e-12);
            for (fcfg, fp) in fin {
                // Machine halts at end of input; acceptance by state.
                if m.is_accepting(fcfg.state) {
                    p_accept += p * fp;
                }
            }
        }
        let (direct, _, _) = m.exact_acceptance(&syms("1001"), 100);
        assert!((p_accept - direct).abs() < 1e-12);
    }

    #[test]
    fn fact_2_2_bound_values() {
        // n=8, s=3, |Σ|=3, |Q|=4: log2(8·3·27·4) = log2(2592).
        let got = fact_2_2_log2_configs(8, 3, 3, 4);
        assert!((got - (2592f64).log2()).abs() < 1e-9);
        // Monotone in s.
        assert!(fact_2_2_log2_configs(8, 4, 3, 4) > got);
    }

    #[test]
    fn nonhalting_mass_counts_as_running() {
        // A looping machine: state 0 always stays, never consumes input.
        let mut m = Optm::new(1, 0, vec![]);
        for sym in [TapeSym::Zero, TapeSym::One, TapeSym::Hash, TapeSym::Blank] {
            m.add_det(
                0,
                sym,
                TapeSym::Blank,
                Action {
                    next: 0,
                    write: TapeSym::Blank,
                    work_move: WorkMove::Stay,
                    input_move: InputMove::Stay,
                },
            );
        }
        let (pa, pr, run) = m.exact_acceptance(&syms("0"), 50);
        assert_eq!(pa, 0.0);
        assert_eq!(pr, 0.0);
        assert!((run - 1.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(3);
        let out = m.run(&syms("0"), &mut rng, 50);
        assert!(!out.halted && !out.accepted);
    }

    #[test]
    fn configuration_encoding_distinguishes() {
        let a = Configuration::initial(0);
        let mut b = Configuration::initial(0);
        b.tape.push(TapeSym::One);
        assert_ne!(a.encode(), b.encode());
        assert_eq!(a.space_cells(), 1);
        assert_eq!(b.space_cells(), 1);
    }
}
