//! # oqsc-machine — classical online Turing machines (Section 2.1)
//!
//! The classical substrate of the reproduction: the paper's model of
//! online (one-way) probabilistic Turing machines, with three layers:
//!
//! * [`optm`] — explicit OPTMs as probabilistic transition tables, with
//!   sampled runs, exact acceptance probabilities (configuration-
//!   distribution evolution), the boundary-configuration enumeration that
//!   Theorem 3.6's reduction transmits, and Fact 2.2's configuration
//!   counting bound;
//! * [`streaming`] — the [`StreamingDecider`](streaming::StreamingDecider)
//!   trait every concrete online algorithm implements (procedures A1/A2,
//!   the Proposition 3.7 algorithm, the sketches), with configuration
//!   snapshots for the communication reduction and the full
//!   [`RunOutcome`](streaming::RunOutcome) space accounting;
//! * [`session`] — the session engine: [`Session`](session::Session)
//!   drives a decider token by token and, for
//!   [`Checkpointable`](session::Checkpointable) deciders, suspends into
//!   a versioned [`SessionCheckpoint`](session::SessionCheckpoint) and
//!   resumes anywhere, bit-identically (DESIGN.md §7);
//! * [`batch`] — the [`BatchRunner`](batch::BatchRunner): many decider
//!   instances driven concurrently over a shard-per-worker scheduler,
//!   aggregated into a worker-count-independent
//!   [`BatchReport`](batch::BatchReport); under
//!   [`SessionSchedule::MigrateEvery`](batch::SessionSchedule) the fleet
//!   continuously suspends, migrates and resumes its shards;
//! * [`store`] — the persistent checkpoint layer: a content-addressed,
//!   append-only [`CheckpointStore`](store::CheckpointStore) log whose
//!   header pins store/checkpoint/workspace versions and the decider
//!   type, with strict open, a salvaging
//!   [`recover`](store::CheckpointStore::recover) path, finished-instance
//!   outcome records (resume skips, never replays, completed work), and
//!   [`compact`](store::CheckpointStore::compact)ion — crash-recoverable
//!   sweeps (DESIGN.md §8–§9);
//! * [`register`] — the [`MeteredRegister`](register::MeteredRegister)
//!   quantum-register handle making quantum streaming drivers generic over
//!   any [`oqsc_quantum::QuantumBackend`];
//! * [`space`] — bit-level work-space metering shared by all of them.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod batch;
pub mod builder;
pub mod counter;
pub mod nerode;
pub mod optm;
pub mod register;
pub mod session;
pub mod space;
pub mod store;
pub mod streaming;

pub use batch::{BatchReport, BatchRunner, SessionSchedule};
pub use builder::{a1_shape_machine, OptmBuilder};
pub use counter::power_of_two_length_machine;
pub use nerode::{mini_disj_space_floor, nerode_classes_at, streaming_space_floor_bits};
pub use optm::{
    fact_2_2_log2_configs, machine_contains_one, machine_even_ones, machine_fair_coin,
    machine_first_equals_last, Action, Configuration, InputMove, Optm, OptmRunOutcome, State,
    TapeSym, WorkMove,
};
pub use register::MeteredRegister;
pub use session::{
    put_bool, put_bytes, put_u32, put_u64, put_u8, put_usize, ByteReader, CheckpointError,
    Checkpointable, Session, SessionCheckpoint, CHECKPOINT_VERSION,
};
pub use space::{bits_for_counter, bits_for_range, SpaceMeter};
pub use store::{
    content_key, peek_header, peek_tag, CheckpointStore, CompactionReport, RecordScanner,
    RecoveryReport, ScannedRecord, StoreError, StoreHeader, StoreStats, COMPRESS_MIN_LEN,
    STORE_MAGIC, STORE_VERSION, STORE_VERSION_V2, WORKSPACE_VERSION,
};
pub use streaming::{
    run_decider, run_decider_stream, RunOutcome, StoreEverything, StorePredicate, StreamingDecider,
};
