//! Exact deterministic streaming lower bounds via Myhill–Nerode counting.
//!
//! Theorem 3.6's counting argument, in its simplest deterministic form:
//! a one-pass deterministic machine that decides a (finite) language must
//! reach *different* configurations after any two prefixes that some
//! suffix distinguishes, so its configuration count is at least the
//! number of Nerode classes at the worst prefix length — and its space is
//! at least the log of that (Fact 2.2 with the `|Q|`/`n` slack stripped
//! away).
//!
//! This module computes those class counts **exactly** for finite
//! languages given as membership oracles, and instantiates them for the
//! communication-style language `{ x#y : |x| = |y| = n, DISJ(x,y) }`,
//! mechanically re-deriving the `n`-bit streaming floor that underpins
//! the paper's separation (each of the `2^n` prefixes `x#` is pairwise
//! distinguishable).

use oqsc_lang::Sym;
use std::collections::HashMap;

/// All words over `Σ = {0,1,#}` of the given length (enumeration helper;
/// `3^len` words, keep `len ≤ 12`).
pub fn all_words(len: usize) -> Vec<Vec<Sym>> {
    assert!(len <= 12, "3^len suffixes would explode");
    let mut out = vec![Vec::new()];
    for _ in 0..len {
        let mut next = Vec::with_capacity(out.len() * 3);
        for w in &out {
            for s in [Sym::Zero, Sym::One, Sym::Hash] {
                let mut v = w.clone();
                v.push(s);
                next.push(v);
            }
        }
        out = next;
    }
    out
}

/// The number of Nerode-distinct prefixes of length `prefix_len` of a
/// finite language containing only words of length `word_len`, given as
/// a membership oracle: prefixes are equivalent iff every suffix
/// completes them identically.
///
/// Exponential in both lengths; intended for the small exact instances
/// that validate the counting argument.
pub fn nerode_classes_at(
    word_len: usize,
    prefix_len: usize,
    member: impl Fn(&[Sym]) -> bool,
) -> usize {
    assert!(prefix_len <= word_len);
    let suffix_len = word_len - prefix_len;
    let suffixes = all_words(suffix_len);
    let mut signatures: HashMap<Vec<bool>, ()> = HashMap::new();
    for prefix in all_words(prefix_len) {
        let signature: Vec<bool> = suffixes
            .iter()
            .map(|suf| {
                let mut w = prefix.clone();
                w.extend_from_slice(suf);
                member(&w)
            })
            .collect();
        signatures.insert(signature, ());
    }
    signatures.len()
}

/// `⌈log₂ classes⌉`: the bits any deterministic one-pass decider must
/// hold right after the worst prefix.
pub fn streaming_space_floor_bits(classes: usize) -> usize {
    usize::BITS as usize - (classes.max(1) - 1).leading_zeros() as usize
}

/// Membership oracle for the mini-language `{ x#y : |x| = |y| = n,
/// DISJ(x, y) }` over `Σ`.
pub fn mini_disj_member(n: usize, w: &[Sym]) -> bool {
    if w.len() != 2 * n + 1 || w[n] != Sym::Hash {
        return false;
    }
    let x: Option<Vec<bool>> = w[..n].iter().map(|s| s.bit()).collect();
    let y: Option<Vec<bool>> = w[n + 1..].iter().map(|s| s.bit()).collect();
    match (x, y) {
        (Some(x), Some(y)) => x.iter().zip(&y).all(|(&a, &b)| !(a && b)),
        _ => false,
    }
}

/// The exact deterministic streaming space floor for `mini-DISJ_n`,
/// measured right after the `x#` prefix. Equals `n` for every `n`
/// (there are exactly `2^n + 1` classes: one per `x`, plus the junk
/// class of ill-formed prefixes).
pub fn mini_disj_space_floor(n: usize) -> usize {
    let classes = nerode_classes_at(2 * n + 1, n + 1, |w| mini_disj_member(n, w));
    streaming_space_floor_bits(classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_words_counts() {
        assert_eq!(all_words(0).len(), 1);
        assert_eq!(all_words(1).len(), 3);
        assert_eq!(all_words(3).len(), 27);
    }

    #[test]
    fn mini_disj_membership() {
        use oqsc_lang::token::from_str;
        let w = |s: &str| from_str(s).expect("syms");
        assert!(mini_disj_member(2, &w("10#01")));
        assert!(!mini_disj_member(2, &w("10#10")));
        assert!(mini_disj_member(2, &w("00#11")));
        assert!(!mini_disj_member(2, &w("10#0"))); // wrong length
        assert!(!mini_disj_member(2, &w("10101"))); // no separator
        assert!(!mini_disj_member(2, &w("1##01"))); // hash inside x
    }

    #[test]
    fn disj_prefixes_are_all_distinguishable() {
        // Right after `x#` there are exactly 2^n + 1 Nerode classes
        // (every x distinct, plus the dead class), so the space floor is
        // > n bits — the deterministic miniature of Theorem 3.6.
        for n in 1..=4usize {
            let classes = nerode_classes_at(2 * n + 1, n + 1, |w| mini_disj_member(n, w));
            assert_eq!(classes, (1 << n) + 1, "n={n}");
            let floor = mini_disj_space_floor(n);
            assert!(floor >= n, "n={n}: floor {floor}");
        }
    }

    #[test]
    fn floor_grows_linearly_in_n() {
        let floors: Vec<usize> = (1..=4).map(mini_disj_space_floor).collect();
        for w in floors.windows(2) {
            assert_eq!(w[1], w[0] + 1, "floors {floors:?}");
        }
    }

    #[test]
    fn equality_language_has_the_same_floor() {
        // { x#x } — the language A2 sidesteps with fingerprints — has the
        // same 2^n prefix classes. The quantum machine cannot beat this
        // for EXACT equality either; A2 only needs one-sided error, which
        // is the loophole.
        for n in 1..=3usize {
            let member = |w: &[Sym]| {
                w.len() == 2 * n + 1
                    && w[n] == Sym::Hash
                    && w[..n].iter().all(|s| s.bit().is_some())
                    && w[..n] == w[n + 1..]
            };
            let classes = nerode_classes_at(2 * n + 1, n + 1, member);
            // 2^n live classes (the x values with all-bit prefixes) + dead.
            assert_eq!(classes, (1 << n) + 1, "n={n}");
        }
    }

    #[test]
    fn trivial_language_has_one_class() {
        let classes = nerode_classes_at(3, 2, |_| true);
        assert_eq!(classes, 1);
        assert_eq!(streaming_space_floor_bits(1), 0);
    }

    #[test]
    fn parity_language_has_two_classes() {
        // { w : even number of 1s } — the textbook O(1)-space language.
        for prefix_len in 1..=3usize {
            let classes = nerode_classes_at(4, prefix_len, |w| {
                w.iter().filter(|&&s| s == Sym::One).count() % 2 == 0
            });
            assert_eq!(classes, 2, "prefix_len={prefix_len}");
        }
        assert_eq!(streaming_space_floor_bits(2), 1);
    }
}
