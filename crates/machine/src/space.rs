//! Work-space accounting.
//!
//! Every online algorithm in this reproduction reports its footprint
//! through a [`SpaceMeter`], so that the space columns of the experiment
//! tables (`EXPERIMENTS.md`) come from *measured* state, not from the
//! asymptotic claim being checked.

/// Tracks the current and peak work-space of a streaming computation, in
/// bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpaceMeter {
    current_bits: usize,
    peak_bits: usize,
}

impl SpaceMeter {
    /// A fresh meter at zero.
    pub fn new() -> Self {
        SpaceMeter::default()
    }

    /// Rebuilds a meter from trusted readings.
    ///
    /// # Panics
    /// If `peak_bits < current_bits` (no valid history produces that).
    /// Wire bytes must go through [`read_checkpoint`](Self::read_checkpoint)
    /// instead, which rejects such readings as a [`CheckpointError`].
    pub fn from_parts(current_bits: usize, peak_bits: usize) -> Self {
        assert!(
            peak_bits >= current_bits,
            "peak ({peak_bits}) below current ({current_bits})"
        );
        SpaceMeter {
            current_bits,
            peak_bits,
        }
    }

    /// Serializes the readings for a session checkpoint.
    pub fn write_checkpoint(&self, out: &mut Vec<u8>) {
        crate::session::put_usize(out, self.current_bits);
        crate::session::put_usize(out, self.peak_bits);
    }

    /// Restores a meter from checkpoint bytes, rejecting readings no
    /// valid history produces (a corrupted checkpoint must fail resume
    /// with an error, never a panic).
    pub fn read_checkpoint(
        r: &mut crate::session::ByteReader,
    ) -> Result<Self, crate::session::CheckpointError> {
        let current_bits = r.read_usize()?;
        let peak_bits = r.read_usize()?;
        if peak_bits < current_bits {
            return Err(crate::session::CheckpointError::Malformed(format!(
                "space meter peak ({peak_bits}) below current ({current_bits})"
            )));
        }
        Ok(SpaceMeter {
            current_bits,
            peak_bits,
        })
    }

    /// Records the *current* total footprint; the peak is updated
    /// automatically.
    pub fn record(&mut self, bits: usize) {
        self.current_bits = bits;
        self.peak_bits = self.peak_bits.max(bits);
    }

    /// Adds to the current footprint.
    pub fn grow(&mut self, bits: usize) {
        self.record(self.current_bits + bits);
    }

    /// Removes from the current footprint (saturating).
    pub fn shrink(&mut self, bits: usize) {
        self.current_bits = self.current_bits.saturating_sub(bits);
    }

    /// Current footprint in bits.
    #[inline]
    pub fn current_bits(&self) -> usize {
        self.current_bits
    }

    /// Peak footprint in bits — the quantity the paper's space bounds
    /// constrain ("space used on the worst coin flips").
    #[inline]
    pub fn peak_bits(&self) -> usize {
        self.peak_bits
    }

    /// Merges another meter's peak (parallel sub-procedures share the
    /// worst case additively: A1 ∥ A2 ∥ A3 all run at once).
    pub fn add_parallel(&mut self, other: &SpaceMeter) {
        self.current_bits += other.current_bits;
        self.peak_bits += other.peak_bits;
    }
}

/// Bits needed to store a value in `{0, …, n−1}`: `⌈log₂ n⌉` (0 for n ≤ 1).
pub fn bits_for_range(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Bits needed for a counter counting up to and including `max`.
pub fn bits_for_counter(max: usize) -> usize {
    bits_for_range(max + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_checkpoint_round_trips_and_rejects_impossible_readings() {
        let mut m = SpaceMeter::new();
        m.record(10);
        m.record(4);
        let mut bytes = Vec::new();
        m.write_checkpoint(&mut bytes);
        let mut r = crate::session::ByteReader::new(&bytes);
        let back = SpaceMeter::read_checkpoint(&mut r).expect("valid readings");
        assert_eq!(back, m);
        // peak < current never arises from a real history: corrupted wire
        // bytes must fail with an error, not a panic.
        let mut corrupt = Vec::new();
        crate::session::put_usize(&mut corrupt, 12);
        crate::session::put_usize(&mut corrupt, 5);
        let mut r = crate::session::ByteReader::new(&corrupt);
        assert!(matches!(
            SpaceMeter::read_checkpoint(&mut r),
            Err(crate::session::CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn meter_tracks_peak() {
        let mut m = SpaceMeter::new();
        assert_eq!(m.peak_bits(), 0);
        m.record(10);
        m.record(4);
        assert_eq!(m.current_bits(), 4);
        assert_eq!(m.peak_bits(), 10);
        m.grow(20);
        assert_eq!(m.current_bits(), 24);
        assert_eq!(m.peak_bits(), 24);
        m.shrink(30);
        assert_eq!(m.current_bits(), 0);
        assert_eq!(m.peak_bits(), 24);
    }

    #[test]
    fn parallel_composition_adds() {
        let mut a = SpaceMeter::new();
        a.record(8);
        let mut b = SpaceMeter::new();
        b.record(5);
        b.record(3);
        a.add_parallel(&b);
        assert_eq!(a.peak_bits(), 13);
        assert_eq!(a.current_bits(), 11);
    }

    #[test]
    fn range_bits() {
        assert_eq!(bits_for_range(0), 0);
        assert_eq!(bits_for_range(1), 0);
        assert_eq!(bits_for_range(2), 1);
        assert_eq!(bits_for_range(3), 2);
        assert_eq!(bits_for_range(4), 2);
        assert_eq!(bits_for_range(5), 3);
        assert_eq!(bits_for_range(1 << 20), 20);
    }

    #[test]
    fn counter_bits() {
        assert_eq!(bits_for_counter(0), 0);
        assert_eq!(bits_for_counter(1), 1);
        assert_eq!(bits_for_counter(7), 3);
        assert_eq!(bits_for_counter(8), 4);
    }
}
