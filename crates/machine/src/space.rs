//! Work-space accounting.
//!
//! Every online algorithm in this reproduction reports its footprint
//! through a [`SpaceMeter`], so that the space columns of the experiment
//! tables (`EXPERIMENTS.md`) come from *measured* state, not from the
//! asymptotic claim being checked.

/// Tracks the current and peak work-space of a streaming computation, in
/// bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpaceMeter {
    current_bits: usize,
    peak_bits: usize,
}

impl SpaceMeter {
    /// A fresh meter at zero.
    pub fn new() -> Self {
        SpaceMeter::default()
    }

    /// Records the *current* total footprint; the peak is updated
    /// automatically.
    pub fn record(&mut self, bits: usize) {
        self.current_bits = bits;
        self.peak_bits = self.peak_bits.max(bits);
    }

    /// Adds to the current footprint.
    pub fn grow(&mut self, bits: usize) {
        self.record(self.current_bits + bits);
    }

    /// Removes from the current footprint (saturating).
    pub fn shrink(&mut self, bits: usize) {
        self.current_bits = self.current_bits.saturating_sub(bits);
    }

    /// Current footprint in bits.
    #[inline]
    pub fn current_bits(&self) -> usize {
        self.current_bits
    }

    /// Peak footprint in bits — the quantity the paper's space bounds
    /// constrain ("space used on the worst coin flips").
    #[inline]
    pub fn peak_bits(&self) -> usize {
        self.peak_bits
    }

    /// Merges another meter's peak (parallel sub-procedures share the
    /// worst case additively: A1 ∥ A2 ∥ A3 all run at once).
    pub fn add_parallel(&mut self, other: &SpaceMeter) {
        self.current_bits += other.current_bits;
        self.peak_bits += other.peak_bits;
    }
}

/// Bits needed to store a value in `{0, …, n−1}`: `⌈log₂ n⌉` (0 for n ≤ 1).
pub fn bits_for_range(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Bits needed for a counter counting up to and including `max`.
pub fn bits_for_counter(max: usize) -> usize {
    bits_for_range(max + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_tracks_peak() {
        let mut m = SpaceMeter::new();
        assert_eq!(m.peak_bits(), 0);
        m.record(10);
        m.record(4);
        assert_eq!(m.current_bits(), 4);
        assert_eq!(m.peak_bits(), 10);
        m.grow(20);
        assert_eq!(m.current_bits(), 24);
        assert_eq!(m.peak_bits(), 24);
        m.shrink(30);
        assert_eq!(m.current_bits(), 0);
        assert_eq!(m.peak_bits(), 24);
    }

    #[test]
    fn parallel_composition_adds() {
        let mut a = SpaceMeter::new();
        a.record(8);
        let mut b = SpaceMeter::new();
        b.record(5);
        b.record(3);
        a.add_parallel(&b);
        assert_eq!(a.peak_bits(), 13);
        assert_eq!(a.current_bits(), 11);
    }

    #[test]
    fn range_bits() {
        assert_eq!(bits_for_range(0), 0);
        assert_eq!(bits_for_range(1), 0);
        assert_eq!(bits_for_range(2), 1);
        assert_eq!(bits_for_range(3), 2);
        assert_eq!(bits_for_range(4), 2);
        assert_eq!(bits_for_range(5), 3);
        assert_eq!(bits_for_range(1 << 20), 20);
    }

    #[test]
    fn counter_bits() {
        assert_eq!(bits_for_counter(0), 0);
        assert_eq!(bits_for_counter(1), 1);
        assert_eq!(bits_for_counter(7), 3);
        assert_eq!(bits_for_counter(8), 4);
    }
}
