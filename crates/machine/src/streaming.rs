//! The online (one-way) decider abstraction.
//!
//! An OPTM in the paper reads its input left to right, once, keeping only
//! its work tape. [`StreamingDecider`] captures exactly that interface for
//! all the concrete algorithms of the reproduction (procedures A1/A2, the
//! Proposition 3.7 block algorithm, the sub-√m sketches, and the classical
//! front half of the quantum machine): symbols are fed in order, a verdict
//! is produced at end-of-stream, and the work-space footprint is reported
//! in bits.
//!
//! [`snapshot`](StreamingDecider::snapshot) serializes the decider's
//! configuration; it is what the Theorem 3.6 reduction transmits between
//! Alice and Bob, so its length *is* the message length of the induced
//! one-way communication protocol.

use oqsc_lang::Sym;

/// A bounded-space online decider over the alphabet `Σ = {0, 1, #}`.
pub trait StreamingDecider {
    /// Consumes the next input symbol.
    fn feed(&mut self, sym: Sym);

    /// Verdict at end of stream: `true` = accept.
    fn decide(&mut self) -> bool;

    /// Peak work-space used so far, in bits (the paper measures space on
    /// the worst coin flips; deciders must meter their own worst case).
    fn space_bits(&self) -> usize;

    /// Peak quantum-register width in qubits over the run so far. Purely
    /// classical deciders report 0 (the default); quantum streaming
    /// drivers forward their [`crate::MeteredRegister::peak_qubits`].
    fn peak_qubits(&self) -> usize {
        0
    }

    /// Peak number of stored amplitudes over the run so far (`2^qubits`
    /// for dense backends, the support high-water for sparse ones).
    /// Purely classical deciders report 0 (the default); quantum
    /// streaming drivers forward
    /// [`crate::MeteredRegister::peak_support`].
    fn peak_amplitudes(&self) -> usize {
        0
    }

    /// Serializes the current configuration (work-tape contents + control
    /// state). Used by the communication reduction of Theorem 3.6; the
    /// byte length bounds the message size.
    fn snapshot(&self) -> Vec<u8>;

    /// Convenience: feeds a whole word.
    fn feed_all(&mut self, word: &[Sym]) {
        for &s in word {
            self.feed(s);
        }
    }
}

/// Everything one decider run reports: the verdict plus the full
/// Definition 2.3 space accounting — classical bits *and* the quantum
/// register's metered peaks (0 for classical deciders). Replaces the old
/// bare `(bool, usize)` return of [`run_decider`], which silently dropped
/// the [`crate::MeteredRegister`] report of quantum-backed deciders.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// End-of-stream verdict: `true` = accept.
    pub accept: bool,
    /// Peak classical work space, in bits.
    pub classical_bits: usize,
    /// Peak quantum register width, in qubits (0 if never allocated).
    pub peak_qubits: usize,
    /// Peak stored amplitudes (`2^qubits` dense, support high-water
    /// sparse; 0 if no register was allocated).
    pub peak_amplitudes: usize,
}

impl RunOutcome {
    /// Total space on the single-axis Definition 2.3 scale: classical
    /// bits plus qubits.
    pub fn total_space(&self) -> usize {
        self.classical_bits + self.peak_qubits
    }
}

/// Runs a decider over any symbol stream (materialized or generated
/// lazily) and returns the full [`RunOutcome`]. A thin wrapper over the
/// session engine — one [`crate::session::Session`] opened, fed, and
/// finished — so every one-shot run goes through the same seam the
/// suspendable/migratable runs use. [`run_decider`] and the batch
/// scheduler both delegate here.
pub fn run_decider_stream<D, W>(decider: D, word: W) -> RunOutcome
where
    D: StreamingDecider,
    W: IntoIterator<Item = Sym>,
{
    let mut session = crate::session::Session::new(decider);
    for sym in word {
        session.feed(sym);
    }
    session.finish()
}

/// Runs a decider over a word and returns the full [`RunOutcome`].
pub fn run_decider<D: StreamingDecider>(decider: D, word: &[Sym]) -> RunOutcome {
    run_decider_stream(decider, word.iter().copied())
}

/// The offline predicate a [`StoreEverything`] decider applies at end of
/// stream — a closed *named* set rather than an arbitrary closure, so the
/// decider's complete configuration (buffer **and** verdict rule) is a
/// finite byte string and [`StoreEverything`] can implement
/// [`crate::session::Checkpointable`] like every other decider in the
/// tree. (The closure form was the one decider a checkpoint could not
/// carry: a `Fn` has no serializable identity.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorePredicate {
    /// Accept iff the buffered word contains a `1`.
    ContainsOne,
    /// Accept iff the buffer is empty.
    IsEmpty,
    /// Accept iff the buffer length equals the given value.
    LengthEquals(u64),
    /// Accept every word.
    AcceptAll,
    /// Accept iff the buffered word is in `L_DISJ` (the reference
    /// offline decider, [`oqsc_lang::is_in_ldisj`]).
    InLdisj,
}

impl StorePredicate {
    /// Applies the predicate to a buffered word.
    pub fn eval(&self, word: &[Sym]) -> bool {
        match self {
            StorePredicate::ContainsOne => word.contains(&Sym::One),
            StorePredicate::IsEmpty => word.is_empty(),
            StorePredicate::LengthEquals(n) => word.len() as u64 == *n,
            StorePredicate::AcceptAll => true,
            StorePredicate::InLdisj => oqsc_lang::is_in_ldisj(word),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            StorePredicate::ContainsOne => 0,
            StorePredicate::IsEmpty => 1,
            StorePredicate::LengthEquals(_) => 2,
            StorePredicate::AcceptAll => 3,
            StorePredicate::InLdisj => 4,
        }
    }
}

/// A trivial decider that stores the entire input and applies a named
/// offline predicate: the "if the classical device can store the two
/// strings in memory, the problem is trivial" baseline from the paper's
/// introduction. Space is linear in the input length.
pub struct StoreEverything {
    buffer: Vec<Sym>,
    predicate: StorePredicate,
}

impl StoreEverything {
    /// Creates the decider with the offline predicate to apply at the end.
    pub fn new(predicate: StorePredicate) -> Self {
        StoreEverything {
            buffer: Vec::new(),
            predicate,
        }
    }
}

impl StreamingDecider for StoreEverything {
    fn feed(&mut self, sym: Sym) {
        self.buffer.push(sym);
    }

    fn decide(&mut self) -> bool {
        self.predicate.eval(&self.buffer)
    }

    fn space_bits(&self) -> usize {
        // Ternary symbols: 2 bits each is the natural packing.
        2 * self.buffer.len()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buffer.len() / 4 + 1);
        for chunk in self.buffer.chunks(4) {
            let mut byte = 0u8;
            for (i, &s) in chunk.iter().enumerate() {
                let code = match s {
                    Sym::Zero => 0u8,
                    Sym::One => 1,
                    Sym::Hash => 2,
                };
                byte |= code << (2 * i);
            }
            out.push(byte);
        }
        out
    }
}

impl crate::session::Checkpointable for StoreEverything {
    const TYPE_TAG: &'static str = "StoreEverything";

    fn write_state(&self, out: &mut Vec<u8>) {
        crate::session::put_u8(out, self.predicate.tag());
        if let StorePredicate::LengthEquals(n) = self.predicate {
            crate::session::put_u64(out, n);
        }
        crate::session::put_usize(out, self.buffer.len());
        for &s in &self.buffer {
            crate::session::put_u8(
                out,
                match s {
                    Sym::Zero => 0,
                    Sym::One => 1,
                    Sym::Hash => 2,
                },
            );
        }
    }

    fn read_state(
        r: &mut crate::session::ByteReader,
    ) -> Result<Self, crate::session::CheckpointError> {
        use crate::session::CheckpointError;
        let predicate = match r.read_u8()? {
            0 => StorePredicate::ContainsOne,
            1 => StorePredicate::IsEmpty,
            2 => StorePredicate::LengthEquals(r.read_u64()?),
            3 => StorePredicate::AcceptAll,
            4 => StorePredicate::InLdisj,
            t => return Err(CheckpointError::Malformed(format!("bad predicate tag {t}"))),
        };
        let len = r.read_usize()?;
        if r.remaining() < len {
            return Err(CheckpointError::Truncated);
        }
        let mut buffer = Vec::with_capacity(len);
        for _ in 0..len {
            buffer.push(match r.read_u8()? {
                0 => Sym::Zero,
                1 => Sym::One,
                2 => Sym::Hash,
                b => return Err(CheckpointError::Malformed(format!("bad symbol byte {b}"))),
            });
        }
        Ok(StoreEverything { buffer, predicate })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{ByteReader, Checkpointable, Session};
    use oqsc_lang::token::from_str;

    #[test]
    fn store_everything_applies_predicate() {
        let word = from_str("1#01#").expect("ok");
        let decider = StoreEverything::new(StorePredicate::ContainsOne);
        let out = run_decider(decider, &word);
        assert!(out.accept);
        assert_eq!(out.classical_bits, 2 * word.len());
        // Classical deciders report no quantum resources.
        assert_eq!(out.peak_qubits, 0);
        assert_eq!(out.peak_amplitudes, 0);
        assert_eq!(out.total_space(), out.classical_bits);
    }

    #[test]
    fn store_everything_rejects() {
        let word = from_str("0#0#").expect("ok");
        let decider = StoreEverything::new(StorePredicate::ContainsOne);
        assert!(!run_decider(decider, &word).accept);
    }

    #[test]
    fn snapshot_packs_two_bits_per_symbol() {
        let word = from_str("01#0101#").expect("ok");
        let mut d = StoreEverything::new(StorePredicate::AcceptAll);
        d.feed_all(&word);
        let snap = d.snapshot();
        assert_eq!(snap.len(), word.len().div_ceil(4));
        // First byte: 0,1,#,0 → 0 | 1<<2 | 2<<4 | 0<<6 = 0b100100.
        assert_eq!(snap[0], 0b0010_0100);
    }

    #[test]
    fn empty_stream_decides() {
        let mut d = StoreEverything::new(StorePredicate::IsEmpty);
        assert!(d.decide());
        assert_eq!(d.space_bits(), 0);
        assert!(d.snapshot().is_empty());
    }

    #[test]
    fn named_predicates_cover_their_semantics() {
        let word = from_str("01#1").expect("ok");
        let cases = [
            (StorePredicate::ContainsOne, true),
            (StorePredicate::IsEmpty, false),
            (StorePredicate::LengthEquals(4), true),
            (StorePredicate::LengthEquals(5), false),
            (StorePredicate::AcceptAll, true),
            (StorePredicate::InLdisj, false),
        ];
        for (pred, expect) in cases {
            assert_eq!(
                run_decider(StoreEverything::new(pred), &word).accept,
                expect,
                "{pred:?}"
            );
        }
    }

    #[test]
    fn store_everything_checkpoints_round_trip() {
        // The ROADMAP holdout: the buffer decider now survives the
        // suspend/serialize/resume seam like every other decider.
        let word = from_str("1#01#110#1").expect("ok");
        for pred in [
            StorePredicate::ContainsOne,
            StorePredicate::LengthEquals(3),
            StorePredicate::InLdisj,
        ] {
            let reference = run_decider(StoreEverything::new(pred), &word);
            for cut in 0..=word.len() {
                let mut s = Session::new(StoreEverything::new(pred));
                s.feed_all(&word[..cut]);
                let cp = s.suspend();
                let mut resumed = Session::<StoreEverything>::resume(&cp).expect("resumes");
                resumed.feed_all(&word[cut..]);
                assert_eq!(resumed.finish(), reference, "{pred:?} cut {cut}");
            }
        }
    }

    #[test]
    fn store_everything_rejects_malformed_state() {
        let mut bytes = Vec::new();
        crate::session::put_u8(&mut bytes, 200); // no such predicate tag
        assert!(StoreEverything::read_state(&mut ByteReader::new(&bytes)).is_err());
        let mut bytes = Vec::new();
        crate::session::put_u8(&mut bytes, 0);
        crate::session::put_usize(&mut bytes, usize::MAX); // overflowing length
        assert!(matches!(
            StoreEverything::read_state(&mut ByteReader::new(&bytes)),
            Err(crate::session::CheckpointError::Truncated)
        ));
    }
}
