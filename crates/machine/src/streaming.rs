//! The online (one-way) decider abstraction.
//!
//! An OPTM in the paper reads its input left to right, once, keeping only
//! its work tape. [`StreamingDecider`] captures exactly that interface for
//! all the concrete algorithms of the reproduction (procedures A1/A2, the
//! Proposition 3.7 block algorithm, the sub-√m sketches, and the classical
//! front half of the quantum machine): symbols are fed in order, a verdict
//! is produced at end-of-stream, and the work-space footprint is reported
//! in bits.
//!
//! [`snapshot`](StreamingDecider::snapshot) serializes the decider's
//! configuration; it is what the Theorem 3.6 reduction transmits between
//! Alice and Bob, so its length *is* the message length of the induced
//! one-way communication protocol.

use oqsc_lang::Sym;

/// A bounded-space online decider over the alphabet `Σ = {0, 1, #}`.
pub trait StreamingDecider {
    /// Consumes the next input symbol.
    fn feed(&mut self, sym: Sym);

    /// Verdict at end of stream: `true` = accept.
    fn decide(&mut self) -> bool;

    /// Peak work-space used so far, in bits (the paper measures space on
    /// the worst coin flips; deciders must meter their own worst case).
    fn space_bits(&self) -> usize;

    /// Peak quantum-register width in qubits over the run so far. Purely
    /// classical deciders report 0 (the default); quantum streaming
    /// drivers forward their [`crate::MeteredRegister::peak_qubits`].
    fn peak_qubits(&self) -> usize {
        0
    }

    /// Peak number of stored amplitudes over the run so far (`2^qubits`
    /// for dense backends, the support high-water for sparse ones).
    /// Purely classical deciders report 0 (the default); quantum
    /// streaming drivers forward
    /// [`crate::MeteredRegister::peak_support`].
    fn peak_amplitudes(&self) -> usize {
        0
    }

    /// Serializes the current configuration (work-tape contents + control
    /// state). Used by the communication reduction of Theorem 3.6; the
    /// byte length bounds the message size.
    fn snapshot(&self) -> Vec<u8>;

    /// Convenience: feeds a whole word.
    fn feed_all(&mut self, word: &[Sym]) {
        for &s in word {
            self.feed(s);
        }
    }
}

/// Everything one decider run reports: the verdict plus the full
/// Definition 2.3 space accounting — classical bits *and* the quantum
/// register's metered peaks (0 for classical deciders). Replaces the old
/// bare `(bool, usize)` return of [`run_decider`], which silently dropped
/// the [`crate::MeteredRegister`] report of quantum-backed deciders.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// End-of-stream verdict: `true` = accept.
    pub accept: bool,
    /// Peak classical work space, in bits.
    pub classical_bits: usize,
    /// Peak quantum register width, in qubits (0 if never allocated).
    pub peak_qubits: usize,
    /// Peak stored amplitudes (`2^qubits` dense, support high-water
    /// sparse; 0 if no register was allocated).
    pub peak_amplitudes: usize,
}

impl RunOutcome {
    /// Total space on the single-axis Definition 2.3 scale: classical
    /// bits plus qubits.
    pub fn total_space(&self) -> usize {
        self.classical_bits + self.peak_qubits
    }
}

/// Runs a decider over any symbol stream (materialized or generated
/// lazily) and returns the full [`RunOutcome`]. A thin wrapper over the
/// session engine — one [`crate::session::Session`] opened, fed, and
/// finished — so every one-shot run goes through the same seam the
/// suspendable/migratable runs use. [`run_decider`] and the batch
/// scheduler both delegate here.
pub fn run_decider_stream<D, W>(decider: D, word: W) -> RunOutcome
where
    D: StreamingDecider,
    W: IntoIterator<Item = Sym>,
{
    let mut session = crate::session::Session::new(decider);
    for sym in word {
        session.feed(sym);
    }
    session.finish()
}

/// Runs a decider over a word and returns the full [`RunOutcome`].
pub fn run_decider<D: StreamingDecider>(decider: D, word: &[Sym]) -> RunOutcome {
    run_decider_stream(decider, word.iter().copied())
}

/// A trivial decider that stores the entire input and applies an arbitrary
/// offline predicate: the "if the classical device can store the two
/// strings in memory, the problem is trivial" baseline from the paper's
/// introduction. Space is linear in the input length.
pub struct StoreEverything<F: Fn(&[Sym]) -> bool> {
    buffer: Vec<Sym>,
    predicate: F,
}

impl<F: Fn(&[Sym]) -> bool> StoreEverything<F> {
    /// Creates the decider with the offline predicate to apply at the end.
    pub fn new(predicate: F) -> Self {
        StoreEverything {
            buffer: Vec::new(),
            predicate,
        }
    }
}

impl<F: Fn(&[Sym]) -> bool> StreamingDecider for StoreEverything<F> {
    fn feed(&mut self, sym: Sym) {
        self.buffer.push(sym);
    }

    fn decide(&mut self) -> bool {
        (self.predicate)(&self.buffer)
    }

    fn space_bits(&self) -> usize {
        // Ternary symbols: 2 bits each is the natural packing.
        2 * self.buffer.len()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buffer.len() / 4 + 1);
        for chunk in self.buffer.chunks(4) {
            let mut byte = 0u8;
            for (i, &s) in chunk.iter().enumerate() {
                let code = match s {
                    Sym::Zero => 0u8,
                    Sym::One => 1,
                    Sym::Hash => 2,
                };
                byte |= code << (2 * i);
            }
            out.push(byte);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_lang::token::from_str;

    #[test]
    fn store_everything_applies_predicate() {
        let word = from_str("1#01#").expect("ok");
        let decider = StoreEverything::new(|w: &[Sym]| w.contains(&Sym::One));
        let out = run_decider(decider, &word);
        assert!(out.accept);
        assert_eq!(out.classical_bits, 2 * word.len());
        // Classical deciders report no quantum resources.
        assert_eq!(out.peak_qubits, 0);
        assert_eq!(out.peak_amplitudes, 0);
        assert_eq!(out.total_space(), out.classical_bits);
    }

    #[test]
    fn store_everything_rejects() {
        let word = from_str("0#0#").expect("ok");
        let decider = StoreEverything::new(|w: &[Sym]| w.contains(&Sym::One));
        assert!(!run_decider(decider, &word).accept);
    }

    #[test]
    fn snapshot_packs_two_bits_per_symbol() {
        let word = from_str("01#0101#").expect("ok");
        let mut d = StoreEverything::new(|_: &[Sym]| true);
        d.feed_all(&word);
        let snap = d.snapshot();
        assert_eq!(snap.len(), word.len().div_ceil(4));
        // First byte: 0,1,#,0 → 0 | 1<<2 | 2<<4 | 0<<6 = 0b100100.
        assert_eq!(snap[0], 0b0010_0100);
    }

    #[test]
    fn empty_stream_decides() {
        let mut d = StoreEverything::new(|w: &[Sym]| w.is_empty());
        assert!(d.decide());
        assert_eq!(d.space_bits(), 0);
        assert!(d.snapshot().is_empty());
    }
}
