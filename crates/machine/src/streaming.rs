//! The online (one-way) decider abstraction.
//!
//! An OPTM in the paper reads its input left to right, once, keeping only
//! its work tape. [`StreamingDecider`] captures exactly that interface for
//! all the concrete algorithms of the reproduction (procedures A1/A2, the
//! Proposition 3.7 block algorithm, the sub-√m sketches, and the classical
//! front half of the quantum machine): symbols are fed in order, a verdict
//! is produced at end-of-stream, and the work-space footprint is reported
//! in bits.
//!
//! [`snapshot`](StreamingDecider::snapshot) serializes the decider's
//! configuration; it is what the Theorem 3.6 reduction transmits between
//! Alice and Bob, so its length *is* the message length of the induced
//! one-way communication protocol.

use oqsc_lang::Sym;

/// A bounded-space online decider over the alphabet `Σ = {0, 1, #}`.
pub trait StreamingDecider {
    /// Consumes the next input symbol.
    fn feed(&mut self, sym: Sym);

    /// Verdict at end of stream: `true` = accept.
    fn decide(&mut self) -> bool;

    /// Peak work-space used so far, in bits (the paper measures space on
    /// the worst coin flips; deciders must meter their own worst case).
    fn space_bits(&self) -> usize;

    /// Serializes the current configuration (work-tape contents + control
    /// state). Used by the communication reduction of Theorem 3.6; the
    /// byte length bounds the message size.
    fn snapshot(&self) -> Vec<u8>;

    /// Convenience: feeds a whole word.
    fn feed_all(&mut self, word: &[Sym]) {
        for &s in word {
            self.feed(s);
        }
    }
}

/// Runs a decider over a word and returns `(verdict, peak_space_bits)`.
pub fn run_decider<D: StreamingDecider>(mut decider: D, word: &[Sym]) -> (bool, usize) {
    decider.feed_all(word);
    let verdict = decider.decide();
    (verdict, decider.space_bits())
}

/// A trivial decider that stores the entire input and applies an arbitrary
/// offline predicate: the "if the classical device can store the two
/// strings in memory, the problem is trivial" baseline from the paper's
/// introduction. Space is linear in the input length.
pub struct StoreEverything<F: Fn(&[Sym]) -> bool> {
    buffer: Vec<Sym>,
    predicate: F,
}

impl<F: Fn(&[Sym]) -> bool> StoreEverything<F> {
    /// Creates the decider with the offline predicate to apply at the end.
    pub fn new(predicate: F) -> Self {
        StoreEverything {
            buffer: Vec::new(),
            predicate,
        }
    }
}

impl<F: Fn(&[Sym]) -> bool> StreamingDecider for StoreEverything<F> {
    fn feed(&mut self, sym: Sym) {
        self.buffer.push(sym);
    }

    fn decide(&mut self) -> bool {
        (self.predicate)(&self.buffer)
    }

    fn space_bits(&self) -> usize {
        // Ternary symbols: 2 bits each is the natural packing.
        2 * self.buffer.len()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buffer.len() / 4 + 1);
        for chunk in self.buffer.chunks(4) {
            let mut byte = 0u8;
            for (i, &s) in chunk.iter().enumerate() {
                let code = match s {
                    Sym::Zero => 0u8,
                    Sym::One => 1,
                    Sym::Hash => 2,
                };
                byte |= code << (2 * i);
            }
            out.push(byte);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_lang::token::from_str;

    #[test]
    fn store_everything_applies_predicate() {
        let word = from_str("1#01#").expect("ok");
        let decider = StoreEverything::new(|w: &[Sym]| w.contains(&Sym::One));
        let (verdict, space) = run_decider(decider, &word);
        assert!(verdict);
        assert_eq!(space, 2 * word.len());
    }

    #[test]
    fn store_everything_rejects() {
        let word = from_str("0#0#").expect("ok");
        let decider = StoreEverything::new(|w: &[Sym]| w.contains(&Sym::One));
        let (verdict, _) = run_decider(decider, &word);
        assert!(!verdict);
    }

    #[test]
    fn snapshot_packs_two_bits_per_symbol() {
        let word = from_str("01#0101#").expect("ok");
        let mut d = StoreEverything::new(|_: &[Sym]| true);
        d.feed_all(&word);
        let snap = d.snapshot();
        assert_eq!(snap.len(), word.len().div_ceil(4));
        // First byte: 0,1,#,0 → 0 | 1<<2 | 2<<4 | 0<<6 = 0b100100.
        assert_eq!(snap[0], 0b0010_0100);
    }

    #[test]
    fn empty_stream_decides() {
        let mut d = StoreEverything::new(|w: &[Sym]| w.is_empty());
        assert!(d.decide());
        assert_eq!(d.space_bits(), 0);
        assert!(d.snapshot().is_empty());
    }
}
