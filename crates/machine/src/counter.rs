//! A work-tape-using demonstration machine: binary counting in
//! `O(log n)` cells.
//!
//! The demo machines in [`crate::optm`] keep their state in the finite
//! control; this one genuinely programs the work tape — a binary counter
//! with carry propagation and a start-of-tape marker — so the tape
//! mechanics (reads, writes, two-way head movement, growth) and the
//! space metering are exercised by a machine whose space is a nontrivial
//! function of the input, exactly the `Θ(log n)` regime the paper's
//! quantum machine lives in.
//!
//! The language: **inputs whose length is a power of two**. The machine
//! increments a binary counter per input symbol (LSB at cell 1; cell 0
//! holds a `#` marker so the rewind can find home without position
//! sensing), then accepts iff the counter has exactly one `1` bit.

use crate::optm::{Action, InputMove, Optm, TapeSym, WorkMove};

/// States of the power-of-two length counter machine.
mod state {
    pub const INIT: u32 = 0;
    pub const READ: u32 = 1;
    pub const INC: u32 = 2;
    pub const REWIND: u32 = 3;
    pub const CHECK0: u32 = 4;
    pub const CHECK1: u32 = 5;
    pub const ACCEPT: u32 = 6;
    pub const REJECT: u32 = 7;
    pub const COUNT: u32 = 8;
}

/// Builds the machine accepting exactly the inputs of power-of-two
/// length (over any symbols of `Σ`).
pub fn power_of_two_length_machine() -> Optm {
    use state::*;
    let mut m = Optm::new(COUNT, INIT, vec![ACCEPT]);
    let all_inputs = [TapeSym::Zero, TapeSym::One, TapeSym::Hash];
    let all_work = [TapeSym::Zero, TapeSym::One, TapeSym::Hash, TapeSym::Blank];

    // INIT: plant the home marker at cell 0, step onto cell 1.
    for i in all_inputs.iter().copied().chain([TapeSym::Blank]) {
        m.add_det(
            INIT,
            i,
            TapeSym::Blank,
            Action {
                next: READ,
                write: TapeSym::Hash,
                work_move: WorkMove::Right,
                input_move: InputMove::Stay,
            },
        );
    }

    // READ (work head at cell 1, the LSB): consume one input symbol and
    // start an increment; at end of input start the check.
    for i in all_inputs {
        for w in all_work {
            m.add_det(
                READ,
                i,
                w,
                Action {
                    next: INC,
                    write: w,
                    work_move: WorkMove::Stay,
                    input_move: InputMove::Right,
                },
            );
        }
    }
    for w in all_work {
        m.add_det(
            READ,
            TapeSym::Blank,
            w,
            Action {
                next: CHECK0,
                write: w,
                work_move: WorkMove::Stay,
                input_move: InputMove::Stay,
            },
        );
    }

    // INC: binary increment with carry, walking right.
    for i in all_inputs.iter().copied().chain([TapeSym::Blank]) {
        // 0/blank → 1, done; rewind.
        for w in [TapeSym::Zero, TapeSym::Blank] {
            m.add_det(
                INC,
                i,
                w,
                Action {
                    next: REWIND,
                    write: TapeSym::One,
                    work_move: WorkMove::Left,
                    input_move: InputMove::Stay,
                },
            );
        }
        // 1 → 0, carry right.
        m.add_det(
            INC,
            i,
            TapeSym::One,
            Action {
                next: INC,
                write: TapeSym::Zero,
                work_move: WorkMove::Right,
                input_move: InputMove::Stay,
            },
        );
        // REWIND: walk left to the marker, then step right onto the LSB.
        for w in [TapeSym::Zero, TapeSym::One] {
            m.add_det(
                REWIND,
                i,
                w,
                Action {
                    next: REWIND,
                    write: w,
                    work_move: WorkMove::Left,
                    input_move: InputMove::Stay,
                },
            );
        }
        m.add_det(
            REWIND,
            i,
            TapeSym::Hash,
            Action {
                next: READ,
                write: TapeSym::Hash,
                work_move: WorkMove::Right,
                input_move: InputMove::Stay,
            },
        );
    }

    // CHECK: scan the counter for exactly one 1 bit.
    let scan = |next: u32, write: TapeSym| Action {
        next,
        write,
        work_move: WorkMove::Right,
        input_move: InputMove::Stay,
    };
    m.add_det(
        CHECK0,
        TapeSym::Blank,
        TapeSym::Zero,
        scan(CHECK0, TapeSym::Zero),
    );
    m.add_det(
        CHECK0,
        TapeSym::Blank,
        TapeSym::One,
        scan(CHECK1, TapeSym::One),
    );
    // Counter empty (length 0): reject.
    m.add_det(
        CHECK0,
        TapeSym::Blank,
        TapeSym::Blank,
        Action {
            next: REJECT,
            write: TapeSym::Blank,
            work_move: WorkMove::Stay,
            input_move: InputMove::Stay,
        },
    );
    m.add_det(
        CHECK1,
        TapeSym::Blank,
        TapeSym::Zero,
        scan(CHECK1, TapeSym::Zero),
    );
    // Second 1 bit: not a power of two.
    m.add_det(
        CHECK1,
        TapeSym::Blank,
        TapeSym::One,
        Action {
            next: REJECT,
            write: TapeSym::One,
            work_move: WorkMove::Stay,
            input_move: InputMove::Stay,
        },
    );
    m.add_det(
        CHECK1,
        TapeSym::Blank,
        TapeSym::Blank,
        Action {
            next: ACCEPT,
            write: TapeSym::Blank,
            work_move: WorkMove::Stay,
            input_move: InputMove::Stay,
        },
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optm::fact_2_2_log2_configs;
    use oqsc_lang::Sym;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn word(len: usize) -> Vec<Sym> {
        (0..len)
            .map(|i| if i % 3 == 0 { Sym::One } else { Sym::Zero })
            .collect()
    }

    fn accepts(len: usize) -> (bool, usize) {
        let m = power_of_two_length_machine();
        let mut rng = StdRng::seed_from_u64(7);
        let out = m.run(&word(len), &mut rng, 200 * len + 500);
        assert!(out.halted, "len={len} must halt");
        (out.accepted, out.peak_cells)
    }

    #[test]
    fn accepts_powers_of_two() {
        for len in [1usize, 2, 4, 8, 16, 32, 64] {
            let (ok, _) = accepts(len);
            assert!(ok, "len={len}");
        }
    }

    #[test]
    fn rejects_non_powers() {
        for len in [0usize, 3, 5, 6, 7, 9, 12, 33, 63] {
            let (ok, _) = accepts(len);
            assert!(!ok, "len={len}");
        }
    }

    #[test]
    fn space_is_logarithmic_in_length() {
        // Counter cells: marker + ⌈log₂(len+1)⌉ (+1 transient carry cell).
        for len in [4usize, 16, 64, 256] {
            let (_, cells) = accepts(len);
            let log = (len as f64).log2().ceil() as usize;
            assert!(cells <= log + 3, "len={len}: {cells} cells");
            assert!(cells >= log, "len={len}: counter must grow, got {cells}");
        }
    }

    #[test]
    fn exact_acceptance_is_deterministic() {
        let m = power_of_two_length_machine();
        let (pa, pr, run) = m.exact_acceptance(&word(8), 5_000);
        assert!((pa - 1.0).abs() < 1e-12);
        assert!(pr.abs() < 1e-12 && run.abs() < 1e-12);
        let (pa, pr, _) = m.exact_acceptance(&word(6), 5_000);
        assert!(pa.abs() < 1e-12 && (pr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fact_2_2_bound_dominates_reality() {
        // The machine's reachable configurations on length-n inputs are far
        // below the Fact 2.2 bound (as they must be).
        let m = power_of_two_length_machine();
        let n = 16usize;
        let s = 7usize; // measured cells at n = 16 is ≤ 7
        let bound = fact_2_2_log2_configs(n, s, 3, m.num_states() as usize);
        // Reachable: ≤ n · s · states ≈ 2^10.3 — comfortably under.
        assert!(bound > 10.0);
    }
}
