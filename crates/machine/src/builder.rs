//! A small DSL for constructing OPTMs, and the explicit transition-table
//! version of procedure A1.
//!
//! The streaming implementations in `oqsc-core` are the practical
//! algorithms; this module closes the loop with the *formal* model of
//! Section 2.1: [`OptmBuilder`] assembles genuine transition tables from
//! named states, and [`a1_shape_machine`] compiles the condition-(i)
//! shape check for a **fixed** `k` into an explicit OPTM whose behaviour
//! is tested against the streaming `FormatChecker`. Because the counters
//! fit in the control states for fixed `k`, the machine uses zero work
//! cells — every configuration is just (state, input position), which
//! makes it an ideal exhibit for the Theorem 3.6 reduction's
//! configuration counting.

use crate::optm::{Action, InputMove, Optm, State, TapeSym, WorkMove};
use std::collections::HashMap;

/// Fluent construction of OPTMs with named states.
#[derive(Debug, Default)]
pub struct OptmBuilder {
    names: HashMap<String, State>,
    next: State,
    start: Option<State>,
    accept: Vec<State>,
    #[allow(clippy::type_complexity)] // (state, input, work) -> weighted actions, used once
    transitions: Vec<(State, TapeSym, TapeSym, Vec<(f64, Action)>)>,
}

impl OptmBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        OptmBuilder::default()
    }

    /// Interns a state name.
    pub fn state(&mut self, name: &str) -> State {
        if let Some(&s) = self.names.get(name) {
            return s;
        }
        let s = self.next;
        self.next += 1;
        self.names.insert(name.to_string(), s);
        s
    }

    /// Declares the start state.
    pub fn start(&mut self, name: &str) -> &mut Self {
        let s = self.state(name);
        self.start = Some(s);
        self
    }

    /// Declares an accepting (halt) state.
    pub fn accept(&mut self, name: &str) -> &mut Self {
        let s = self.state(name);
        self.accept.push(s);
        self
    }

    /// Adds a deterministic "scan" transition: on reading any of `inputs`
    /// in `from` (any work symbol), go to `to` and advance the input head.
    pub fn scan(&mut self, from: &str, inputs: &[TapeSym], to: &str) -> &mut Self {
        let f = self.state(from);
        let t = self.state(to);
        for &i in inputs {
            for w in [TapeSym::Zero, TapeSym::One, TapeSym::Hash, TapeSym::Blank] {
                self.transitions.push((
                    f,
                    i,
                    w,
                    vec![(
                        1.0,
                        Action {
                            next: t,
                            write: w,
                            work_move: WorkMove::Stay,
                            input_move: InputMove::Right,
                        },
                    )],
                ));
            }
        }
        self
    }

    /// Adds a deterministic transition with full control.
    #[allow(clippy::too_many_arguments)] // mirrors the 8-tuple of Definition 2.1 transitions
    pub fn rule(
        &mut self,
        from: &str,
        input: TapeSym,
        work: TapeSym,
        to: &str,
        write: TapeSym,
        work_move: WorkMove,
        input_move: InputMove,
    ) -> &mut Self {
        let f = self.state(from);
        let t = self.state(to);
        self.transitions.push((
            f,
            input,
            work,
            vec![(
                1.0,
                Action {
                    next: t,
                    write,
                    work_move,
                    input_move,
                },
            )],
        ));
        self
    }

    /// Adds a probabilistic branch set.
    pub fn branch(
        &mut self,
        from: &str,
        input: TapeSym,
        work: TapeSym,
        branches: &[(f64, &str)],
    ) -> &mut Self {
        let f = self.state(from);
        let acts: Vec<(f64, Action)> = branches
            .iter()
            .map(|&(p, to)| {
                let t = self.state(to);
                (
                    p,
                    Action {
                        next: t,
                        write: work,
                        work_move: WorkMove::Stay,
                        input_move: InputMove::Stay,
                    },
                )
            })
            .collect();
        self.transitions.push((f, input, work, acts));
        self
    }

    /// Number of states interned so far.
    pub fn num_states(&self) -> u32 {
        self.next
    }

    /// Finalizes into an [`Optm`].
    ///
    /// # Panics
    /// If no start state was declared.
    pub fn build(self) -> Optm {
        let start = self.start.expect("start state required");
        let mut m = Optm::new(self.next.max(1), start, self.accept);
        for (f, i, w, acts) in self.transitions {
            m.add(f, i, w, acts);
        }
        m
    }
}

/// The explicit-OPTM shape check of procedure A1 for a **fixed** `k`:
/// accepts exactly the words `1^k#(b^{2^{2k}}#)^{3·2^k}`. Counters live
/// in the control states (legitimate for fixed `k`; the streaming
/// `FormatChecker` in `oqsc-core` handles unknown `k` with tape
/// counters). Uses zero work cells.
///
/// # Panics
/// If `k = 0` or `k > 3` (the state count `≈ 3·2^{3k}` would explode).
pub fn a1_shape_machine(k: u32) -> Optm {
    assert!((1..=3).contains(&k), "fixed-k A1 built for 1 ≤ k ≤ 3");
    let m = 1usize << (2 * k);
    let blocks = 3 * (1usize << k);
    let mut b = OptmBuilder::new();
    b.start("prefix_0");
    b.accept("accept");

    let bits = [TapeSym::Zero, TapeSym::One];

    // Prefix: exactly k ones then '#'.
    for i in 0..k {
        let from = format!("prefix_{i}");
        let to = format!("prefix_{}", i + 1);
        b.scan(&from, &[TapeSym::One], &to);
        // Anything else dead-ends (no transition = halt in non-accepting
        // state = reject).
    }
    b.scan(&format!("prefix_{k}"), &[TapeSym::Hash], "block_0_bit_0");

    // Blocks: block_j_bit_p for j < blocks, p ≤ m.
    for j in 0..blocks {
        for p in 0..m {
            b.scan(
                &format!("block_{j}_bit_{p}"),
                &bits,
                &format!("block_{j}_bit_{}", p + 1),
            );
        }
        // On '#' at exactly m bits: next block, or the end check.
        let after = if j + 1 == blocks {
            "end".to_string()
        } else {
            format!("block_{}_bit_0", j + 1)
        };
        b.scan(&format!("block_{j}_bit_{m}"), &[TapeSym::Hash], &after);
    }
    // "end" must see the blank (end of input) to accept.
    b.rule(
        "end",
        TapeSym::Blank,
        TapeSym::Blank,
        "accept",
        TapeSym::Blank,
        WorkMove::Stay,
        InputMove::Stay,
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_lang::token::from_str;
    use oqsc_lang::Sym;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn accepts(m: &Optm, word: &[Sym]) -> bool {
        let (pa, _, _) = m.exact_acceptance(word, 10 * word.len() + 50);
        pa > 0.5
    }

    #[test]
    fn builder_interns_states_once() {
        let mut b = OptmBuilder::new();
        let a = b.state("a");
        let a2 = b.state("a");
        let c = b.state("c");
        assert_eq!(a, a2);
        assert_ne!(a, c);
        assert_eq!(b.num_states(), 2);
    }

    #[test]
    fn builder_probabilistic_branch() {
        let mut b = OptmBuilder::new();
        b.start("s");
        b.accept("yes");
        b.branch(
            "s",
            TapeSym::Blank,
            TapeSym::Blank,
            &[(0.25, "yes"), (0.75, "no")],
        );
        let m = b.build();
        let (pa, pr, _) = m.exact_acceptance(&[], 10);
        assert!((pa - 0.25).abs() < 1e-12);
        assert!((pr - 0.75).abs() < 1e-12);
    }

    #[test]
    fn a1_machine_accepts_well_shaped_k1() {
        let m = a1_shape_machine(1);
        let word = from_str("1#1010#0101#1010#1010#0101#1010#").expect("syms");
        assert!(accepts(&m, &word));
    }

    #[test]
    fn a1_machine_rejects_shape_violations() {
        let m = a1_shape_machine(1);
        for bad in [
            "",
            "#",
            "11#1010#0101#1010#1010#0101#1010#", // wrong k
            "1#101#0101#1010#1010#0101#1010#",   // short block
            "1#10100#0101#1010#1010#0101#1010#", // long block
            "1#1010#0101#1010#",                 // too few blocks
            "1#1010#0101#1010#1010#0101#1010#1", // trailing
        ] {
            let word = from_str(bad).expect("syms");
            assert!(!accepts(&m, &word), "should reject {bad:?}");
        }
    }

    #[test]
    fn a1_machine_matches_parser_on_random_words() {
        use oqsc_lang::parse_shape;
        let mut rng = StdRng::seed_from_u64(140);
        let m = a1_shape_machine(1);
        for _ in 0..40 {
            // Random words of L_DISJ-ish lengths over Σ.
            let len = 20 + (rng.next_u32() % 25) as usize;
            let word: Vec<Sym> = (0..len)
                .map(|_| match rng.next_u32() % 4 {
                    0 | 1 => Sym::Zero,
                    2 => Sym::One,
                    _ => Sym::Hash,
                })
                .collect();
            let expect = match parse_shape(&word) {
                Ok(p) => p.k == 1,
                Err(_) => false,
            };
            assert_eq!(accepts(&m, &word), expect, "word {word:?}");
        }
    }

    #[test]
    fn a1_machine_k2_roundtrip() {
        let m = a1_shape_machine(2);
        let mut rng = StdRng::seed_from_u64(141);
        let inst = oqsc_lang::random_member(2, &mut rng);
        assert!(accepts(&m, &inst.encode()));
        let bad = oqsc_lang::malform(&inst, oqsc_lang::Malformation::ShortBlock, &mut rng);
        assert!(!accepts(&m, &bad));
        // Consistency corruption keeps the shape: A1 accepts it.
        let shaped = oqsc_lang::malform(&inst, oqsc_lang::Malformation::ZCopyMismatch, &mut rng);
        assert!(accepts(&m, &shaped));
    }

    #[test]
    fn a1_machine_uses_zero_work_cells() {
        let m = a1_shape_machine(1);
        let mut rng = StdRng::seed_from_u64(142);
        let inst = oqsc_lang::random_member(1, &mut rng);
        let out = m.run(&inst.encode(), &mut rng, 10_000);
        assert!(out.accepted);
        assert!(out.peak_cells <= 1, "counters live in the control states");
    }

    #[test]
    #[should_panic(expected = "1 ≤ k ≤ 3")]
    fn a1_machine_k0_panics() {
        a1_shape_machine(0);
    }
}
