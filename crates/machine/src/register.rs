//! Metered quantum registers for streaming drivers.
//!
//! Definition 2.3's machine is a classical streaming driver *plus* a
//! quantum register of width `s(|w|)`; the paper meters both resources
//! separately. [`MeteredRegister`] is the driver-side handle for the
//! quantum half: it owns an optional backend state (registers are only
//! allocated once the input's `1^k#` prefix reveals `k`), meters the
//! peak width in qubits, and — for sparse backends — the peak *support*,
//! the memory actually committed. Every quantum streaming driver
//! (`oqsc_core`'s procedure A3 and anything built like it) is generic
//! over the backend through this type, so swapping dense for sparse
//! simulation is a type parameter, not a rewrite.

use crate::session::{put_bool, put_bytes, put_usize, ByteReader, CheckpointError};
use oqsc_quantum::{QuantumBackend, StateSnapshot};

/// A lazily allocated, space-metered quantum register over backend `B`.
#[derive(Clone, Debug)]
pub struct MeteredRegister<B: QuantumBackend> {
    state: Option<B>,
    peak_qubits: usize,
    peak_support: usize,
}

impl<B: QuantumBackend> Default for MeteredRegister<B> {
    fn default() -> Self {
        MeteredRegister::unallocated()
    }
}

impl<B: QuantumBackend> MeteredRegister<B> {
    /// An unallocated register (the state before the prefix is parsed, and
    /// forever in metering-only runs).
    pub fn unallocated() -> Self {
        MeteredRegister {
            state: None,
            peak_qubits: 0,
            peak_support: 0,
        }
    }

    /// Allocates the register by running `init`.
    ///
    /// # Panics
    /// If the register is already allocated (a streaming driver allocates
    /// at most once per run).
    pub fn allocate_with<F: FnOnce() -> B>(&mut self, init: F) -> &mut B {
        assert!(self.state.is_none(), "register already allocated");
        let state = init();
        self.peak_qubits = self.peak_qubits.max(state.num_qubits());
        self.peak_support = self.peak_support.max(state.support());
        self.state.insert(state)
    }

    /// Whether the register has been allocated.
    pub fn is_allocated(&self) -> bool {
        self.state.is_some()
    }

    /// Read access to the state, if allocated.
    pub fn state(&self) -> Option<&B> {
        self.state.as_ref()
    }

    /// Write access to the state, if allocated. Callers should
    /// [`record`](Self::record) after mutating so support metering stays
    /// accurate.
    pub fn state_mut(&mut self) -> Option<&mut B> {
        self.state.as_mut()
    }

    /// Refreshes the support high-water mark (call after applying gates).
    pub fn record(&mut self) {
        if let Some(s) = &self.state {
            self.peak_support = self.peak_support.max(s.support());
        }
    }

    /// Current register width in qubits (0 when unallocated).
    pub fn qubits(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.num_qubits())
    }

    /// Peak register width in qubits over the run.
    pub fn peak_qubits(&self) -> usize {
        self.peak_qubits
    }

    /// Peak number of stored amplitudes over the run: `2^qubits` for dense
    /// backends, the support high-water for sparse ones. This is the
    /// number the "memory proportional to support size" claim is measured
    /// by.
    pub fn peak_support(&self) -> usize {
        self.peak_support
    }

    /// Serializes the register for a session checkpoint: allocation flag,
    /// the state as a versioned byte-exact
    /// [`oqsc_quantum::StateSnapshot`], and both metering high-water
    /// marks.
    pub fn write_checkpoint(&self, out: &mut Vec<u8>) {
        match &self.state {
            Some(s) => {
                put_bool(out, true);
                put_bytes(out, s.snapshot().as_bytes());
            }
            None => put_bool(out, false),
        }
        put_usize(out, self.peak_qubits);
        put_usize(out, self.peak_support);
    }

    /// Rebuilds a register from bytes written by
    /// [`write_checkpoint`](Self::write_checkpoint). The state restores
    /// bit-exactly (no renormalization — the snapshot seam's contract).
    pub fn read_checkpoint(r: &mut ByteReader) -> Result<Self, CheckpointError> {
        let state = if r.read_bool()? {
            let snap = StateSnapshot::from_bytes(r.read_prefixed_bytes()?.to_vec())
                .map_err(CheckpointError::from)?;
            Some(B::restore(&snap)?)
        } else {
            None
        };
        let peak_qubits = r.read_usize()?;
        let peak_support = r.read_usize()?;
        Ok(MeteredRegister {
            state,
            peak_qubits,
            peak_support,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oqsc_quantum::{Gate, QuantumBackend, SparseState, StateVector};

    #[test]
    fn starts_unallocated() {
        let reg: MeteredRegister<StateVector> = MeteredRegister::unallocated();
        assert!(!reg.is_allocated());
        assert_eq!(reg.qubits(), 0);
        assert_eq!(reg.peak_qubits(), 0);
        assert_eq!(reg.peak_support(), 0);
        assert!(reg.state().is_none());
    }

    #[test]
    fn dense_register_meters_full_dimension() {
        let mut reg: MeteredRegister<StateVector> = MeteredRegister::unallocated();
        reg.allocate_with(|| StateVector::zero(5));
        assert_eq!(reg.qubits(), 5);
        assert_eq!(reg.peak_qubits(), 5);
        assert_eq!(reg.peak_support(), 32);
    }

    #[test]
    fn sparse_register_meters_support_high_water() {
        let mut reg: MeteredRegister<SparseState> = MeteredRegister::unallocated();
        reg.allocate_with(|| SparseState::zero(8));
        assert_eq!(reg.peak_support(), 1);
        let s = reg.state_mut().expect("allocated");
        s.apply_gate(&Gate::H(0));
        s.apply_gate(&Gate::H(1));
        reg.record();
        assert_eq!(reg.peak_support(), 4);
        // Collapsing shrinks the live support but not the high-water mark.
        reg.state_mut().expect("allocated").collapse_qubit(0, 0);
        reg.record();
        assert_eq!(reg.peak_support(), 4);
        assert_eq!(reg.state().expect("allocated").support(), 2);
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn double_allocation_panics() {
        let mut reg: MeteredRegister<StateVector> = MeteredRegister::unallocated();
        reg.allocate_with(|| StateVector::zero(2));
        reg.allocate_with(|| StateVector::zero(2));
    }
}
