//! The parallel dense backend: [`StateVector`] semantics, scoped-thread
//! execution.
//!
//! [`ParallelStateVector`] wraps the dense reference representation and
//! splits the `O(2^n)` passes — single-qubit gate application, Hadamard
//! sweeps, diagonal phase ops, reflections, probability sums — into
//! contiguous chunks executed under [`std::thread::scope`] (see
//! [`crate::par`]; no rayon, the build environment has no registry
//! access). States below [`PARALLEL_THRESHOLD`] amplitudes stay entirely
//! serial: at small dimension the spawn cost dwarfs the pass itself.
//!
//! **Determinism contract** (DESIGN.md §6): every operation produces
//! results bit-for-bit identical to [`StateVector`], for every thread
//! count. Elementwise passes (gates, phases, reflections, scaling) apply
//! the *same* per-amplitude arithmetic — the workers share the serial
//! kernels [`crate::state`] exposes — and reductions follow the chunked
//! summation contract of [`crate::par`], which fixes the floating-point
//! accumulation order regardless of how many threads computed the
//! partials. The A1/A2/A3 pipeline suite pins this with exact equality,
//! not a tolerance.
//!
//! Basis permutations (`permute_in_place`) stay serial: an arbitrary
//! involution may pair indices across chunk boundaries. They are cheap
//! swaps, not complex arithmetic, and are not on the measured hot path
//! (the streaming bit-mode operators touch O(1) amplitudes).

use crate::backend::QuantumBackend;
use crate::complex::{Complex, ZERO};
use crate::gate::Gate;
use crate::matrix::Matrix;
use crate::par;
use crate::simd;
use crate::snapshot::{SnapshotError, StateSnapshot};
use crate::state::StateVector;
use rand::Rng;

/// Dimension (amplitude count) below which [`ParallelStateVector`] runs
/// every operation serially. `2^13` amplitudes ≈ 128 KiB: below this a
/// full pass costs a few microseconds, comparable to spawning one thread.
pub const PARALLEL_THRESHOLD: usize = 1 << 13;

/// A dense pure state whose `O(2^n)` passes run on scoped worker threads.
///
/// Construct via the [`QuantumBackend`] initializers (worker count
/// defaults to [`par::available_threads`]) or [`Self::with_threads`] to
/// pin it. The thread count is an execution knob, not state: it is
/// ignored by `PartialEq` and preserved by `Clone`.
#[derive(Clone)]
pub struct ParallelStateVector {
    inner: StateVector,
    threads: usize,
}

impl PartialEq for ParallelStateVector {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl std::fmt::Debug for ParallelStateVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Parallel[{} threads] {:?}", self.threads, self.inner)
    }
}

impl ParallelStateVector {
    /// Wraps a dense state, running passes on up to `threads` workers
    /// (clamped to at least 1).
    pub fn with_threads(inner: StateVector, threads: usize) -> Self {
        ParallelStateVector {
            inner,
            threads: threads.max(1),
        }
    }

    /// Wraps a dense state with the default worker count.
    pub fn from_dense(inner: StateVector) -> Self {
        Self::with_threads(inner, par::available_threads())
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Re-pins the worker count (clamped to at least 1).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Read access to the wrapped dense state.
    pub fn as_dense(&self) -> &StateVector {
        &self.inner
    }

    /// Workers to actually use for this state's dimension: 1 below the
    /// serial threshold, the configured count otherwise.
    fn effective_threads(&self) -> usize {
        if self.inner.dim() < PARALLEL_THRESHOLD {
            1
        } else {
            self.threads
        }
    }

    /// Parallel elementwise pass `f(basis_index, amplitude)` over the
    /// amplitudes. With one effective worker this is a plain serial loop
    /// over the same closure — identical arithmetic either way.
    fn for_each_amp<F: Fn(usize, &mut Complex) + Sync>(&mut self, f: F) {
        let threads = self.effective_threads();
        par::for_each_chunk_mut(self.inner.amplitudes_mut(), 1, threads, |offset, chunk| {
            for (i, a) in chunk.iter_mut().enumerate() {
                f(offset + i, a);
            }
        });
    }
}

impl QuantumBackend for ParallelStateVector {
    fn zero(n: usize) -> Self {
        Self::from_dense(StateVector::zero(n))
    }

    fn basis(n: usize, b: usize) -> Self {
        Self::from_dense(StateVector::basis(n, b))
    }

    fn uniform(n: usize) -> Self {
        Self::from_dense(StateVector::uniform(n))
    }

    fn from_amplitudes(amps: Vec<Complex>) -> Self {
        Self::from_dense(StateVector::from_amplitudes(amps))
    }

    fn num_qubits(&self) -> usize {
        self.inner.num_qubits()
    }

    fn support(&self) -> usize {
        self.inner.dim()
    }

    fn amp(&self, b: usize) -> Complex {
        self.inner.amp(b)
    }

    fn norm(&self) -> f64 {
        par::par_chunked_norm_sqr(self.inner.amplitudes(), self.effective_threads()).sqrt()
    }

    fn normalize(&mut self) {
        let norm = self.norm();
        assert!(
            norm > crate::state::STATE_EPS,
            "cannot normalize the zero vector"
        );
        let inv = 1.0 / norm;
        let threads = self.effective_threads();
        par::for_each_chunk_mut(self.inner.amplitudes_mut(), 1, threads, |_, chunk| {
            simd::scale(chunk, inv)
        });
    }

    fn inner(&self, other: &Self) -> Complex {
        assert_eq!(
            self.inner.num_qubits(),
            other.inner.num_qubits(),
            "qubit count mismatch"
        );
        par::par_chunked_inner(
            self.inner.amplitudes(),
            other.inner.amplitudes(),
            self.effective_threads(),
        )
    }

    fn to_dense(&self) -> StateVector {
        self.inner.clone()
    }

    fn snapshot(&self) -> StateSnapshot {
        QuantumBackend::snapshot(&self.inner)
    }

    fn restore(snap: &StateSnapshot) -> Result<Self, SnapshotError> {
        // The thread count is an execution knob, not state: a restored
        // register picks up the restoring host's parallelism, which is
        // exactly what a migrated shard wants.
        Ok(Self::from_dense(crate::backend::restore_dense(snap)?))
    }

    fn apply_gate(&mut self, gate: &Gate) {
        assert!(
            gate.is_well_formed(),
            "gate operands must be distinct: {gate:?}"
        );
        assert!(
            gate.max_qubit() < self.num_qubits(),
            "gate {gate:?} out of range for {} qubits",
            self.num_qubits()
        );
        // Diagonal and plain single-qubit kernels go through the parallel
        // passes; permutations keep the serial reference path — identical
        // results either way, per the determinism contract. The
        // classification (and its phase constants) is the shared
        // `gate_kernel` table, so it cannot drift from the dense backend.
        match crate::backend::gate_kernel(gate) {
            crate::backend::GateKernel::Diagonal { mask, phase } => {
                self.phase_if(|b| b & mask == mask, phase)
            }
            crate::backend::GateKernel::ControlledFlip { .. }
            | crate::backend::GateKernel::SwapBits { .. } => self.inner.apply(gate),
            crate::backend::GateKernel::Single { q } => self.apply_single(q, &gate.local_matrix()),
        }
    }

    fn apply_single(&mut self, q: usize, m: &Matrix) {
        assert!(
            q < self.num_qubits(),
            "qubit {q} out of range for {} qubits",
            self.num_qubits()
        );
        assert_eq!((m.rows(), m.cols()), (2, 2), "expected 2x2 matrix");
        let threads = self.effective_threads();
        if threads <= 1 {
            self.inner.apply_single(q, m);
            return;
        }
        let stride = 1usize << q;
        let block = stride << 1;
        let amps = self.inner.amplitudes_mut();
        if amps.len() / block >= threads {
            // Many independent 2·stride blocks: hand each worker a
            // contiguous, block-aligned run of them, vectorized by the
            // same dispatched kernel the dense backend runs.
            par::for_each_chunk_mut(amps, block, threads, |_, chunk| {
                simd::apply_single_run(chunk, stride, m);
            });
        } else {
            // Few huge blocks (high target qubit): split each block's two
            // halves into matching sub-ranges, one worker per pair (the
            // shared splitting helper runs the last pair inline).
            for b in amps.chunks_exact_mut(block) {
                let (los, his) = b.split_at_mut(stride);
                par::for_each_pair_chunk_mut(los, his, threads, |lo_c, hi_c| {
                    simd::apply_single_pairs(lo_c, hi_c, m)
                });
            }
        }
    }

    fn apply_hadamard_all(&mut self, qs: &[usize]) {
        let h = Gate::H(0).local_matrix();
        for &q in qs {
            self.apply_single(q, &h);
        }
    }

    fn phase_if<F: Fn(usize) -> bool + Sync>(&mut self, pred: F, phase: Complex) {
        self.for_each_amp(|b, a| {
            if pred(b) {
                *a *= phase;
            }
        });
    }

    fn permute_in_place<F: Fn(usize) -> usize>(&mut self, f: F) {
        // Serial: an arbitrary involution pairs indices across chunks.
        self.inner.permute_in_place(f);
    }

    fn store_amplitudes(&mut self, writes: &[(usize, Complex)]) {
        self.inner.write_amplitudes(writes);
    }

    fn reflect_about(&mut self, psi: &Self) {
        assert_eq!(
            self.inner.num_qubits(),
            psi.inner.num_qubits(),
            "qubit count mismatch"
        );
        let threads = self.effective_threads();
        let overlap =
            par::par_chunked_inner(psi.inner.amplitudes(), self.inner.amplitudes(), threads);
        let psi_amps = psi.inner.amplitudes();
        par::for_each_chunk_mut(self.inner.amplitudes_mut(), 1, threads, |offset, chunk| {
            simd::reflect_about(chunk, &psi_amps[offset..offset + chunk.len()], overlap)
        });
    }

    fn add_scaled(&mut self, other: &Self, coeff: Complex) {
        assert_eq!(
            self.inner.num_qubits(),
            other.inner.num_qubits(),
            "qubit count mismatch"
        );
        let threads = self.effective_threads();
        let other_amps = other.inner.amplitudes();
        par::for_each_chunk_mut(self.inner.amplitudes_mut(), 1, threads, |offset, chunk| {
            simd::add_scaled(chunk, &other_amps[offset..offset + chunk.len()], coeff)
        });
    }

    fn prob_one(&self, q: usize) -> f64 {
        assert!(q < self.num_qubits());
        par::par_chunked_prob_mask(
            self.inner.amplitudes(),
            self.effective_threads(),
            1usize << q,
        )
    }

    fn probability_where<F: Fn(usize) -> bool + Sync>(&self, pred: F) -> f64 {
        par::par_chunked_prob_where(self.inner.amplitudes(), self.effective_threads(), pred)
    }

    fn probabilities(&self) -> Vec<f64> {
        self.inner.probabilities()
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        self.inner.probabilities_into(out);
    }

    fn collapse_qubit(&mut self, q: usize, outcome: u8) {
        let mask = 1usize << q;
        self.for_each_amp(|b, a| {
            let bit = u8::from(b & mask != 0);
            if bit != outcome {
                *a = ZERO;
            }
        });
        self.normalize();
    }

    fn sample_basis<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.inner.sample_basis(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Bit-level equality of two dense amplitude slices.
    fn assert_bitwise_eq(a: &StateVector, b: &StateVector, context: &str) {
        assert_eq!(a.num_qubits(), b.num_qubits(), "{context}");
        for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "{context}: re at {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "{context}: im at {i}");
        }
    }

    fn random_gate(n: usize, rng: &mut StdRng) -> Gate {
        let q = rng.gen_range(0..n);
        let r = (q + 1 + rng.gen_range(0..n - 1)) % n;
        match rng.gen_range(0u8..10) {
            0 => Gate::H(q),
            1 => Gate::T(q),
            2 => Gate::Tdg(q),
            3 => Gate::X(q),
            4 => Gate::Z(q),
            5 => Gate::S(q),
            6 => Gate::Phase(q, rng.gen_range(0.0..std::f64::consts::TAU)),
            7 => Gate::Cnot {
                control: q,
                target: r,
            },
            8 => Gate::Cz(q, r),
            _ => Gate::Swap(q, r),
        }
    }

    #[test]
    fn random_circuits_match_dense_bit_for_bit() {
        // 14 qubits crosses PARALLEL_THRESHOLD, so the threaded paths run.
        let n = 14;
        for threads in [1usize, 2, 3, 8] {
            let mut rng = StdRng::seed_from_u64(1234);
            let mut dense = StateVector::zero(n);
            let mut par = ParallelStateVector::with_threads(StateVector::zero(n), threads);
            for step in 0..40 {
                let gate = random_gate(n, &mut rng);
                dense.apply(&gate);
                par.apply_gate(&gate);
                if step % 10 == 0 {
                    assert_bitwise_eq(&dense, par.as_dense(), &format!("threads={threads}"));
                }
            }
            assert_bitwise_eq(&dense, par.as_dense(), &format!("threads={threads} final"));
            assert_eq!(dense.norm().to_bits(), par.norm().to_bits());
        }
    }

    #[test]
    fn hadamard_sweep_and_reductions_match_dense() {
        let n = 14;
        let qs: Vec<usize> = (0..n).collect();
        let mut dense = StateVector::zero(n);
        dense.apply_hadamard_all(&qs);
        for threads in [2usize, 5] {
            let mut par = ParallelStateVector::with_threads(StateVector::zero(n), threads);
            par.apply_hadamard_all(&qs);
            assert_bitwise_eq(&dense, par.as_dense(), "sweep");
            for q in [0usize, n / 2, n - 1] {
                assert_eq!(dense.prob_one(q).to_bits(), par.prob_one(q).to_bits());
            }
            let pd = QuantumBackend::probability_where(&dense, |b| b % 7 == 3);
            let pp = par.probability_where(|b| b % 7 == 3);
            assert_eq!(pd.to_bits(), pp.to_bits());
        }
    }

    #[test]
    fn reflect_and_collapse_match_dense() {
        let n = 14;
        let mut rng = StdRng::seed_from_u64(77);
        let amps: Vec<Complex> = (0..1usize << n)
            .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let mut dense = StateVector::from_amplitudes(amps.clone());
        let psi_dense = StateVector::uniform(n);
        dense.reflect_about(&psi_dense);
        dense.collapse_qubit(3, 1);
        for threads in [2usize, 4] {
            let mut par = ParallelStateVector::with_threads(
                StateVector::from_amplitudes(amps.clone()),
                threads,
            );
            let psi = ParallelStateVector::with_threads(psi_dense.clone(), threads);
            par.reflect_about(&psi);
            par.collapse_qubit(3, 1);
            assert_bitwise_eq(&dense, par.as_dense(), &format!("threads={threads}"));
        }
    }

    #[test]
    fn high_qubit_gate_uses_the_split_block_path() {
        // One block only (target = n−1): exercises the pair-splitting
        // regime explicitly.
        let n = 14;
        let h = Gate::H(0).local_matrix();
        let mut dense = StateVector::uniform(n);
        dense.apply_single(n - 1, &h);
        let mut par = ParallelStateVector::with_threads(StateVector::uniform(n), 4);
        par.apply_single(n - 1, &h);
        assert_bitwise_eq(&dense, par.as_dense(), "high qubit");
    }

    #[test]
    fn below_threshold_states_stay_serial_and_exact() {
        let mut dense = StateVector::zero(6);
        let mut par = ParallelStateVector::with_threads(StateVector::zero(6), 8);
        assert_eq!(par.effective_threads(), 1);
        for g in [
            Gate::H(0),
            Gate::Cnot {
                control: 0,
                target: 5,
            },
            Gate::T(5),
        ] {
            dense.apply(&g);
            par.apply_gate(&g);
        }
        assert_bitwise_eq(&dense, par.as_dense(), "small state");
    }

    #[test]
    fn measurement_consumes_identical_randomness() {
        let mut dense = StateVector::uniform(5);
        let mut par = ParallelStateVector::with_threads(StateVector::uniform(5), 3);
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let a = dense.measure_qubit(2, &mut rng_a);
        let b = par.measure_qubit(2, &mut rng_b);
        assert_eq!(a, b);
        assert_bitwise_eq(&dense, par.as_dense(), "post measurement");
        assert_eq!(dense.sample_basis(&mut rng_a), par.sample_basis(&mut rng_b));
    }

    #[test]
    fn thread_knob_is_not_state() {
        let a = ParallelStateVector::with_threads(StateVector::uniform(4), 1);
        let b = ParallelStateVector::with_threads(StateVector::uniform(4), 8);
        assert_eq!(a, b);
        assert_eq!(b.threads(), 8);
        let mut c = b.clone();
        c.set_threads(0);
        assert_eq!(c.threads(), 1, "clamped to at least one worker");
    }
}
