//! Dense state-vector simulation.
//!
//! A [`StateVector`] over `n` qubits holds `2^n` complex amplitudes in
//! little-endian basis order: the amplitude at index `b` belongs to the
//! basis state whose qubit `q` is bit `(b >> q) & 1`. Gates are applied in
//! place in `O(2^n)` time without materializing any matrix, which is the
//! hot path of every experiment in this reproduction.

use crate::complex::{Complex, ONE, ZERO};
use crate::gate::Gate;
use crate::matrix::Matrix;
use rand::Rng;

/// Numerical tolerance used by internal sanity checks.
pub const STATE_EPS: f64 = 1e-9;

/// A pure quantum state of `n` qubits as a dense amplitude vector.
#[derive(Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩` on `n` qubits (the initial state of the
    /// paper's quantum register).
    ///
    /// # Panics
    /// If `n > 28` (the dense representation would not fit in memory).
    pub fn zero(n: usize) -> Self {
        assert!(n <= 28, "dense simulation limited to 28 qubits, got {n}");
        let mut amps = vec![ZERO; 1usize << n];
        amps[0] = ONE;
        StateVector { n, amps }
    }

    /// The computational basis state `|b⟩`.
    ///
    /// # Panics
    /// If `b >= 2^n`.
    pub fn basis(n: usize, b: usize) -> Self {
        assert!(b < (1usize << n), "basis index out of range");
        let mut s = StateVector::zero(n);
        s.amps[0] = ZERO;
        s.amps[b] = ONE;
        s
    }

    /// Builds a state from explicit amplitudes, normalizing them.
    ///
    /// # Panics
    /// If the length is not a power of two or the vector is (numerically)
    /// zero.
    pub fn from_amplitudes(amps: Vec<Complex>) -> Self {
        let len = amps.len();
        assert!(len.is_power_of_two() && len > 0, "length must be 2^n");
        let n = len.trailing_zeros() as usize;
        let mut s = StateVector { n, amps };
        let norm = s.norm();
        assert!(norm > STATE_EPS, "cannot normalize the zero vector");
        crate::simd::scale(&mut s.amps, 1.0 / norm);
        s
    }

    /// Builds a state from explicit amplitudes **without renormalizing**:
    /// the restore path of the snapshot seam, where scaling by `1/norm`
    /// (even with `norm ≈ 1`) would perturb amplitude bits and break the
    /// checkpointed-run-equals-uninterrupted-run contract. The caller
    /// guarantees the amplitudes came from a valid state.
    pub(crate) fn from_amplitudes_unchecked(amps: Vec<Complex>) -> Self {
        let len = amps.len();
        assert!(len.is_power_of_two() && len > 0, "length must be 2^n");
        let n = len.trailing_zeros() as usize;
        StateVector { n, amps }
    }

    /// The uniform superposition `H^{⊗n}|0…0⟩` over all `2^n` basis states
    /// (the paper's `|φ_k⟩` restricted to the index register).
    pub fn uniform(n: usize) -> Self {
        let len = 1usize << n;
        let amp = Complex::real(1.0 / (len as f64).sqrt());
        StateVector {
            n,
            amps: vec![amp; len],
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of amplitudes (`2^n`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Read-only view of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Mutable view of the amplitudes (crate-internal: the parallel dense
    /// backend splits this slice into chunks for its scoped workers).
    #[inline]
    pub(crate) fn amplitudes_mut(&mut self) -> &mut [Complex] {
        &mut self.amps
    }

    /// The amplitude of basis state `b`.
    #[inline]
    pub fn amp(&self, b: usize) -> Complex {
        self.amps[b]
    }

    /// Euclidean norm of the vector (should always be 1 for a valid state).
    ///
    /// Summed per [`crate::par::REDUCE_CHUNK`]-sized block (the workspace
    /// summation contract), so the parallel dense backend reproduces this
    /// value bit-for-bit.
    pub fn norm(&self) -> f64 {
        crate::par::chunked_norm_sqr(&self.amps).sqrt()
    }

    /// Renormalizes in place (used after a measurement collapse).
    pub fn normalize(&mut self) {
        let norm = self.norm();
        assert!(norm > STATE_EPS, "cannot normalize the zero vector");
        crate::simd::scale(&mut self.amps, 1.0 / norm);
    }

    /// Inner product `⟨self|other⟩` (chunked summation contract; see
    /// [`crate::par`]).
    pub fn inner(&self, other: &StateVector) -> Complex {
        assert_eq!(self.n, other.n, "qubit count mismatch");
        crate::par::chunked_inner(&self.amps, &other.amps)
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// True when the states agree amplitude-wise within `eps`.
    pub fn approx_eq(&self, other: &StateVector, eps: f64) -> bool {
        self.n == other.n
            && self
                .amps
                .iter()
                .zip(&other.amps)
                .all(|(a, b)| a.approx_eq(*b, eps))
    }

    /// True when the states are equal up to a global phase.
    pub fn approx_eq_up_to_phase(&self, other: &StateVector, eps: f64) -> bool {
        if self.n != other.n {
            return false;
        }
        (self.fidelity(other) - 1.0).abs() <= eps
    }

    /// Tensor product `|self⟩ ⊗ |other⟩`; `other`'s qubits become the new
    /// high-order qubits.
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let n = self.n + other.n;
        assert!(n <= 28, "tensor product too large");
        let mut amps = vec![ZERO; 1usize << n];
        for (j, &b) in other.amps.iter().enumerate() {
            if b.is_approx_zero(0.0) {
                continue;
            }
            let base = j << self.n;
            for (i, &a) in self.amps.iter().enumerate() {
                amps[base | i] = a * b;
            }
        }
        StateVector { n, amps }
    }

    // ------------------------------------------------------------------
    // Gate application
    // ------------------------------------------------------------------

    /// Applies an arbitrary 2×2 unitary to qubit `q` via the dispatched
    /// SIMD gate kernel ([`crate::simd::apply_single_run`]; scalar
    /// fallback bit-for-bit identical).
    pub fn apply_single(&mut self, q: usize, m: &Matrix) {
        assert!(q < self.n, "qubit {q} out of range for {} qubits", self.n);
        assert_eq!((m.rows(), m.cols()), (2, 2), "expected 2x2 matrix");
        let stride = 1usize << q;
        crate::simd::apply_single_run(&mut self.amps, stride, m);
    }

    /// Applies a named gate, dispatching on the shared
    /// [`crate::backend::gate_kernel`] classification (one table for all
    /// backends — see DESIGN.md §6).
    pub fn apply(&mut self, gate: &Gate) {
        assert!(
            gate.is_well_formed(),
            "gate operands must be distinct: {gate:?}"
        );
        assert!(
            gate.max_qubit() < self.n,
            "gate {gate:?} out of range for {} qubits",
            self.n
        );
        match crate::backend::gate_kernel(gate) {
            crate::backend::GateKernel::Diagonal { mask, phase } => {
                self.phase_if(|b| b & mask == mask, phase)
            }
            // Uncontrolled single-bit flip (Pauli X): a direct stride-swap
            // loop touches each amplitude pair once, skipping the
            // per-index predicate of the generic permutation path. Same
            // swaps, same state — just the dense fast path layered on the
            // shared classification.
            crate::backend::GateKernel::ControlledFlip { controls: 0, xor }
                if xor.is_power_of_two() =>
            {
                let stride = xor;
                let dim = self.amps.len();
                let mut base = 0usize;
                while base < dim {
                    for lo in base..base + stride {
                        self.amps.swap(lo, lo + stride);
                    }
                    base += stride << 1;
                }
            }
            crate::backend::GateKernel::ControlledFlip { controls, xor } => {
                self.permute_in_place(|b| if b & controls == controls { b ^ xor } else { b })
            }
            crate::backend::GateKernel::SwapBits { a, b } => {
                self.permute_in_place(|i| {
                    let ba = (i >> a) & 1;
                    let bb = (i >> b) & 1;
                    if ba != bb {
                        i ^ (1usize << a) ^ (1usize << b)
                    } else {
                        i
                    }
                });
            }
            crate::backend::GateKernel::Single { q } => self.apply_single(q, &gate.local_matrix()),
        }
    }

    /// Applies Hadamards to every qubit in `qs` (the paper's `U_k` acts as
    /// `H^{⊗2k}` on the index register).
    pub fn apply_hadamard_all(&mut self, qs: &[usize]) {
        let h = Gate::H(0).local_matrix();
        for &q in qs {
            self.apply_single(q, &h);
        }
    }

    /// Multiplies the amplitude of every basis state satisfying `pred` by
    /// `phase`. This is how structured diagonal operators (the paper's
    /// `S_k`, `W_x`) are applied in `O(2^n)`.
    pub fn phase_if<F: Fn(usize) -> bool>(&mut self, pred: F, phase: Complex) {
        for (b, a) in self.amps.iter_mut().enumerate() {
            if pred(b) {
                *a *= phase;
            }
        }
    }

    /// Applies a basis-state permutation given as an involution
    /// `f: b ↦ f(b)` with `f(f(b)) = b`. Structured operators of the paper
    /// that are classical reversible maps (`V_x`, `R_x`) are involutions, so
    /// this suffices and runs in one pass.
    ///
    /// # Panics
    /// Debug-asserts that `f` is an involution.
    pub fn permute_in_place<F: Fn(usize) -> usize>(&mut self, f: F) {
        for b in 0..self.amps.len() {
            let t = f(b);
            debug_assert_eq!(f(t), b, "permutation must be an involution");
            if t > b {
                self.amps.swap(b, t);
            }
        }
    }

    /// Overwrites specific amplitudes in place. Low-level hook used by the
    /// streaming structured operators (crate-internal); callers are
    /// responsible for keeping the state normalized.
    pub(crate) fn write_amplitudes(&mut self, writes: &[(usize, Complex)]) {
        for &(idx, val) in writes {
            self.amps[idx] = val;
        }
    }

    /// Adds `coeff · |other⟩` into this state elementwise. Not unitary on
    /// its own — it is the accumulation step of reflection-style operators
    /// (the π/3 fixed-point recursion); callers renormalize.
    pub fn add_scaled(&mut self, other: &StateVector, coeff: Complex) {
        assert_eq!(self.n, other.n, "qubit count mismatch");
        crate::simd::add_scaled(&mut self.amps, &other.amps, coeff);
    }

    /// Reflects this state about `psi`: `|s⟩ ← (2|ψ⟩⟨ψ| − I)|s⟩`. This is
    /// the Householder step of amplitude amplification (reflection about
    /// the initial state); it is unitary whenever `psi` is normalized.
    pub fn reflect_about(&mut self, psi: &StateVector) {
        assert_eq!(self.n, psi.n, "qubit count mismatch");
        let overlap = psi.inner(self);
        crate::simd::reflect_about(&mut self.amps, &psi.amps, overlap);
    }

    /// Applies an arbitrary unitary matrix over the **whole** register
    /// (testing/verification only; `O(4^n)`).
    pub fn apply_unitary(&mut self, u: &Matrix) {
        assert_eq!(u.rows(), self.amps.len(), "unitary dimension mismatch");
        self.amps = u.mul_vec(&self.amps);
    }

    // ------------------------------------------------------------------
    // Measurement
    // ------------------------------------------------------------------

    /// Probability that measuring qubit `q` yields 1 (chunked summation
    /// contract via the vectorized mask reduction; see [`crate::par`]).
    pub fn prob_one(&self, q: usize) -> f64 {
        assert!(q < self.n);
        crate::par::chunked_prob_mask(&self.amps, 1usize << q)
    }

    /// Measures qubit `q` in the computational basis, collapsing the state.
    /// Returns the observed bit.
    pub fn measure_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> u8 {
        let p1 = self.prob_one(q);
        let outcome = u8::from(rng.gen::<f64>() < p1);
        self.collapse_qubit(q, outcome);
        outcome
    }

    /// Projects qubit `q` onto `outcome` and renormalizes (post-selection).
    ///
    /// # Panics
    /// If the projected state has (numerically) zero norm, i.e. the outcome
    /// was impossible.
    pub fn collapse_qubit(&mut self, q: usize, outcome: u8) {
        let mask = 1usize << q;
        for (b, a) in self.amps.iter_mut().enumerate() {
            let bit = u8::from(b & mask != 0);
            if bit != outcome {
                *a = ZERO;
            }
        }
        self.normalize();
    }

    /// Samples a full computational-basis measurement without collapsing.
    ///
    /// The prefix scan first skips whole [`crate::par::REDUCE_CHUNK`]
    /// blocks using the vectorized block-norm reduction, then walks only
    /// the block the random variate lands in. Off-support amplitudes
    /// subtract exactly `+0.0`, so the sparse backend's support-only walk
    /// makes bitwise-identical decisions and returns the same sample from
    /// the same randomness.
    pub fn sample_basis<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut u: f64 = rng.gen();
        for (ci, chunk) in self.amps.chunks(crate::par::REDUCE_CHUNK).enumerate() {
            let s = crate::simd::block_norm_sqr(chunk);
            if u > s {
                u -= s;
                continue;
            }
            let base = ci * crate::par::REDUCE_CHUNK;
            for (j, a) in chunk.iter().enumerate() {
                u -= a.norm_sqr();
                if u <= 0.0 {
                    return base + j;
                }
            }
        }
        self.amps.len() - 1
    }

    /// The probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.probabilities_into(&mut out);
        out
    }

    /// Fills `out` with the probability distribution, reusing its
    /// allocation — the repeated-sampling loops of the experiment drivers
    /// call this instead of [`Self::probabilities`] to avoid a `2^n`
    /// allocation per shot.
    pub fn probabilities_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.amps.len(), 0.0);
        crate::simd::norm_sqr_into(&self.amps, out);
    }
}

impl std::fmt::Debug for StateVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "StateVector({} qubits) [", self.n)?;
        for (b, a) in self.amps.iter().enumerate() {
            if !a.is_approx_zero(1e-12) {
                writeln!(f, "  |{:0width$b}⟩: {:?}", b, a, width = self.n)?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::FRAC_1_SQRT_2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f64 = 1e-10;

    #[test]
    fn zero_state_layout() {
        let s = StateVector::zero(3);
        assert_eq!(s.num_qubits(), 3);
        assert_eq!(s.dim(), 8);
        assert!(s.amp(0).approx_eq(ONE, EPS));
        for b in 1..8 {
            assert!(s.amp(b).is_approx_zero(EPS));
        }
        assert!((s.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn basis_state() {
        let s = StateVector::basis(3, 5);
        assert!(s.amp(5).approx_eq(ONE, EPS));
        assert_eq!(s.prob_one(0), 1.0); // 5 = 0b101
        assert_eq!(s.prob_one(1), 0.0);
        assert_eq!(s.prob_one(2), 1.0);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut s = StateVector::zero(4);
        s.apply_hadamard_all(&[0, 1, 2, 3]);
        assert!(s.approx_eq(&StateVector::uniform(4), EPS));
        for q in 0..4 {
            assert!((s.prob_one(q) - 0.5).abs() < EPS);
        }
    }

    #[test]
    fn hadamard_twice_is_identity() {
        let mut s = StateVector::basis(2, 3);
        let orig = s.clone();
        s.apply(&Gate::H(0));
        s.apply(&Gate::H(1));
        s.apply(&Gate::H(1));
        s.apply(&Gate::H(0));
        assert!(s.approx_eq(&orig, EPS));
    }

    #[test]
    fn x_gate_flips_basis() {
        let mut s = StateVector::zero(2);
        s.apply(&Gate::X(1));
        assert!(s.approx_eq(&StateVector::basis(2, 2), EPS));
        s.apply(&Gate::X(0));
        assert!(s.approx_eq(&StateVector::basis(2, 3), EPS));
    }

    #[test]
    fn cnot_truth_table() {
        for (input, expected) in [(0usize, 0usize), (1, 3), (2, 2), (3, 1)] {
            let mut s = StateVector::basis(2, input);
            s.apply(&Gate::Cnot {
                control: 0,
                target: 1,
            });
            assert!(
                s.approx_eq(&StateVector::basis(2, expected), EPS),
                "CNOT|{input}⟩"
            );
        }
    }

    #[test]
    fn toffoli_truth_table() {
        for input in 0..8usize {
            let mut s = StateVector::basis(3, input);
            s.apply(&Gate::Toffoli {
                c1: 0,
                c2: 1,
                target: 2,
            });
            let expected = if input & 3 == 3 { input ^ 4 } else { input };
            assert!(s.approx_eq(&StateVector::basis(3, expected), EPS));
        }
    }

    #[test]
    fn bell_state_construction() {
        let mut s = StateVector::zero(2);
        s.apply(&Gate::H(0));
        s.apply(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        assert!(s.amp(0).approx_eq(Complex::real(FRAC_1_SQRT_2), EPS));
        assert!(s.amp(3).approx_eq(Complex::real(FRAC_1_SQRT_2), EPS));
        assert!(s.amp(1).is_approx_zero(EPS));
        assert!(s.amp(2).is_approx_zero(EPS));
        // Measuring either qubit yields perfectly correlated bits.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let mut t = s.clone();
            let b0 = t.measure_qubit(0, &mut rng);
            let b1 = t.measure_qubit(1, &mut rng);
            assert_eq!(b0, b1);
        }
    }

    #[test]
    fn gate_application_matches_kron_matrix() {
        // Apply H(1) then CNOT(0→2) on 3 qubits both ways.
        let mut s = StateVector::from_amplitudes(
            (0..8)
                .map(|i| Complex::new(1.0 + i as f64, -(i as f64)))
                .collect(),
        );
        let mut via_matrix = s.clone();
        s.apply(&Gate::H(1));

        let h = Gate::H(0).local_matrix();
        let id = Matrix::identity(2);
        // little-endian: qubit 0 is the least-significant factor: I ⊗ H ⊗ I
        // with kron(outer=high, inner=low) = id2 ⊗ h ⊗ id2; our kron(a,b) puts
        // a as the LOW factor (a's index varies fastest), so U = h-at-q1 =
        // kron over [id (q0), h (q1), id (q2)] built low-to-high.
        let u = build_full(&[id.clone(), h, id]);
        via_matrix.apply_unitary(&u);
        assert!(s.approx_eq(&via_matrix, EPS));
    }

    /// Builds `U = factors[n-1] ⊗ … ⊗ factors[0]` so that `factors[q]` acts
    /// on qubit `q` in little-endian order.
    fn build_full(factors: &[Matrix]) -> Matrix {
        let mut u = Matrix::identity(1);
        for f in factors {
            u = f.kron(&u);
        }
        u
    }

    #[test]
    fn phase_if_applies_sk_style_flip() {
        // S_k on 2 qubits: negate everything except |00⟩.
        let mut s = StateVector::uniform(2);
        s.phase_if(|b| b != 0, -ONE);
        assert!(s.amp(0).approx_eq(Complex::real(0.5), EPS));
        for b in 1..4 {
            assert!(s.amp(b).approx_eq(Complex::real(-0.5), EPS));
        }
        assert!((s.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn measurement_statistics_match_probabilities() {
        let mut s = StateVector::zero(1);
        s.apply(&Gate::Ry(0, 2.0 * (0.3f64.sqrt()).asin())); // P(1) = 0.3
        assert!((s.prob_one(0) - 0.3).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let ones: u32 = (0..trials)
            .map(|_| u32::from(s.clone().measure_qubit(0, &mut rng)))
            .sum();
        let freq = f64::from(ones) / f64::from(trials);
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn collapse_renormalizes() {
        let mut s = StateVector::uniform(3);
        s.collapse_qubit(1, 1);
        assert!((s.norm() - 1.0).abs() < EPS);
        assert_eq!(s.prob_one(1), 1.0);
        // Remaining qubits still uniform.
        assert!((s.prob_one(0) - 0.5).abs() < EPS);
        assert!((s.prob_one(2) - 0.5).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "cannot normalize")]
    fn collapse_impossible_outcome_panics() {
        let mut s = StateVector::zero(2);
        s.collapse_qubit(0, 1);
    }

    #[test]
    fn tensor_product_layout() {
        let a = StateVector::basis(1, 1);
        let b = StateVector::basis(2, 2);
        let t = a.tensor(&b);
        // |1⟩ ⊗ |10⟩ = low qubit 1 set, then b's qubits shifted up: 0b101
        assert_eq!(t.num_qubits(), 3);
        assert!(t.amp(0b101).approx_eq(ONE, EPS));
    }

    #[test]
    fn inner_product_and_fidelity() {
        let s = StateVector::uniform(2);
        let z = StateVector::zero(2);
        assert!(s.inner(&z).approx_eq(Complex::real(0.5), EPS));
        assert!((s.fidelity(&z) - 0.25).abs() < EPS);
        assert!((s.fidelity(&s) - 1.0).abs() < EPS);
    }

    #[test]
    fn global_phase_equivalence() {
        let mut a = StateVector::uniform(2);
        let b = a.clone();
        a.phase_if(|_| true, Complex::from_phase(1.234));
        assert!(a.approx_eq_up_to_phase(&b, EPS));
        assert!(!a.approx_eq(&b, EPS));
    }

    #[test]
    fn sample_basis_distribution() {
        let s = StateVector::uniform(2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[s.sample_basis(&mut rng)] += 1;
        }
        for &c in &counts {
            let f = f64::from(c) / 8000.0;
            assert!((f - 0.25).abs() < 0.03, "count fraction {f}");
        }
    }

    #[test]
    fn swap_and_cz() {
        let mut s = StateVector::basis(2, 1);
        s.apply(&Gate::Swap(0, 1));
        assert!(s.approx_eq(&StateVector::basis(2, 2), EPS));
        let mut u = StateVector::uniform(2);
        u.apply(&Gate::Cz(0, 1));
        assert!(u.amp(3).approx_eq(Complex::real(-0.5), EPS));
        assert!(u.amp(1).approx_eq(Complex::real(0.5), EPS));
    }

    #[test]
    fn reflect_about_is_involutive_and_unitary() {
        let psi = StateVector::uniform(3);
        let mut s = StateVector::basis(3, 5);
        let orig = s.clone();
        s.reflect_about(&psi);
        assert!((s.norm() - 1.0).abs() < EPS);
        // Reflection squared is the identity.
        s.reflect_about(&psi);
        assert!(s.approx_eq(&orig, EPS));
        // Reflecting psi itself fixes it.
        let mut p = psi.clone();
        p.reflect_about(&psi);
        assert!(p.approx_eq(&psi, EPS));
    }

    #[test]
    fn norm_preserved_by_random_circuit() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut s = StateVector::zero(5);
        for _ in 0..200 {
            let q = rng.gen_range(0..5);
            let r = (q + 1 + rng.gen_range(0..4usize)) % 5;
            match rng.gen_range(0..6) {
                0 => s.apply(&Gate::H(q)),
                1 => s.apply(&Gate::T(q)),
                2 => s.apply(&Gate::X(q)),
                3 => s.apply(&Gate::Cnot {
                    control: q,
                    target: r,
                }),
                4 => s.apply(&Gate::Phase(q, rng.gen_range(0.0..std::f64::consts::TAU))),
                _ => s.apply(&Gate::Cz(q, r)),
            }
        }
        assert!((s.norm() - 1.0).abs() < 1e-8);
    }
}
