//! Minimal complex arithmetic for state-vector simulation.
//!
//! The offline crate set for this reproduction does not include
//! `num-complex`, so we provide the (small) subset of complex arithmetic the
//! simulator needs: field operations, conjugation, modulus, polar helpers
//! and approximate comparison. The type is `Copy` and `#[repr(C)]` so dense
//! amplitude buffers are tightly packed.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity.
pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
/// The multiplicative identity.
pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
/// The imaginary unit `i`.
pub const I: Complex = Complex { re: 0.0, im: 1.0 };

impl Complex {
    /// Creates `re + i·im`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn from_phase(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`, the measurement probability weight of an
    /// amplitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns NaNs when `self` is zero, matching
    /// IEEE float division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// True when both parts are within `eps` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Complex, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }

    /// True when `|z| ≤ eps`.
    #[inline]
    pub fn is_approx_zero(self, eps: f64) -> bool {
        self.norm_sqr() <= eps * eps
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via a·b⁻¹ is the definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<It: Iterator<Item = Complex>>(iter: It) -> Complex {
        iter.fold(ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+.6}{:+.6}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// `1/√2`, the Hadamard amplitude.
pub const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::new(1.0, 2.0).re, 1.0);
        assert_eq!(Complex::new(1.0, 2.0).im, 2.0);
        assert_eq!(ONE * I, I);
        assert_eq!(I * I, -ONE);
        assert_eq!(Complex::real(3.0), Complex::new(3.0, 0.0));
        assert_eq!(Complex::from(2.5), Complex::real(2.5));
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(1.5, -2.25);
        let w = Complex::new(-0.5, 3.0);
        assert!((z + w - w).approx_eq(z, EPS));
        assert!((z * w / w).approx_eq(z, EPS));
        assert!((z - z).approx_eq(ZERO, EPS));
        assert!((z * z.inv()).approx_eq(ONE, EPS));
        assert!((-z + z).approx_eq(ZERO, EPS));
    }

    #[test]
    fn conjugation_and_modulus() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        // z·z̄ = |z|²
        assert!((z * z.conj()).approx_eq(Complex::real(25.0), EPS));
    }

    #[test]
    fn polar_roundtrip() {
        for &theta in &[0.0, 0.1, 1.0, std::f64::consts::PI / 3.0, -2.0] {
            let z = Complex::from_phase(theta);
            assert!((z.norm() - 1.0).abs() < EPS);
            assert!((z.arg() - theta).abs() < 1e-10 || (z.arg() - theta).abs() > 6.0);
        }
    }

    #[test]
    fn phase_multiplication_adds_angles() {
        let a = Complex::from_phase(0.3);
        let b = Complex::from_phase(0.4);
        assert!((a * b).approx_eq(Complex::from_phase(0.7), EPS));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::new(1.0, 1.0);
        z += ONE;
        assert_eq!(z, Complex::new(2.0, 1.0));
        z -= I;
        assert_eq!(z, Complex::new(2.0, 0.0));
        z *= I;
        assert_eq!(z, Complex::new(0.0, 2.0));
    }

    #[test]
    fn real_scaling() {
        let z = Complex::new(2.0, -4.0);
        assert_eq!(z * 0.5, Complex::new(1.0, -2.0));
        assert_eq!(0.5 * z, Complex::new(1.0, -2.0));
        assert_eq!(z.scale(0.0), ZERO);
    }

    #[test]
    fn sum_iterator() {
        let zs = [ONE, I, Complex::new(1.0, 1.0)];
        let s: Complex = zs.iter().copied().sum();
        assert_eq!(s, Complex::new(2.0, 2.0));
    }

    #[test]
    fn approx_zero_and_nan() {
        assert!(Complex::new(1e-15, -1e-15).is_approx_zero(1e-12));
        assert!(!Complex::new(1e-3, 0.0).is_approx_zero(1e-12));
        assert!(Complex::new(f64::NAN, 0.0).is_nan());
        assert!(!ONE.is_nan());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1-2i");
    }
}
