//! Quantum gates.
//!
//! The paper's machine model (Definition 2.3) emits circuits over the strict
//! universal set `G = {G0, G1, G2} = {H, T, CNOT}`. For building and testing
//! circuits we also provide the usual derived gates (Pauli, S, Toffoli, …),
//! all of which [`crate::decompose`] can lower to the strict set exactly.

use crate::complex::{Complex, FRAC_1_SQRT_2, ONE, ZERO};
use crate::matrix::Matrix;

/// A gate applied to concrete qubit indices.
///
/// Qubit indices are little-endian positions into the state vector: qubit
/// `q` of basis state `b` is bit `(b >> q) & 1`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Hadamard (the paper's `G0`).
    H(usize),
    /// π/8 gate `T = diag(1, e^{iπ/4})` (the paper's `G1`).
    T(usize),
    /// `T† = diag(1, e^{-iπ/4})`; equals `T^7` up to global phase, so it is
    /// expressible in the strict set.
    Tdg(usize),
    /// Phase gate `S = T²`.
    S(usize),
    /// `S† = T^6` up to global phase.
    Sdg(usize),
    /// Pauli X.
    X(usize),
    /// Pauli Y.
    Y(usize),
    /// Pauli Z.
    Z(usize),
    /// `diag(1, e^{iθ})`.
    Phase(usize, f64),
    /// Rotation about Y: `exp(-iθY/2)`.
    Ry(usize, f64),
    /// Controlled NOT (the paper's `G2`): flips `target` when `control` is 1.
    Cnot {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled Z (symmetric in its operands).
    Cz(usize, usize),
    /// Swap two qubits.
    Swap(usize, usize),
    /// Doubly-controlled NOT.
    Toffoli {
        /// First control qubit.
        c1: usize,
        /// Second control qubit.
        c2: usize,
        /// Target qubit.
        target: usize,
    },
}

impl Gate {
    /// The qubits the gate touches, in a fixed order (controls first).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::Phase(q, _)
            | Gate::Ry(q, _) => vec![q],
            Gate::Cnot { control, target } => vec![control, target],
            Gate::Cz(a, b) => vec![a, b],
            Gate::Swap(a, b) => vec![a, b],
            Gate::Toffoli { c1, c2, target } => vec![c1, c2, target],
        }
    }

    /// Largest qubit index touched.
    pub fn max_qubit(&self) -> usize {
        self.qubits()
            .into_iter()
            .max()
            .expect("gate touches qubits")
    }

    /// True iff the gate is one of the strict paper set `{H, T, CNOT}`.
    pub fn is_strict(&self) -> bool {
        matches!(self, Gate::H(_) | Gate::T(_) | Gate::Cnot { .. })
    }

    /// True when the gate's operands are pairwise distinct (a well-formed
    /// multi-qubit gate). Single-qubit gates are always well formed. The
    /// paper's output convention maps `a = b` to the identity; that case is
    /// handled at the circuit-format layer, not here.
    pub fn is_well_formed(&self) -> bool {
        let qs = self.qubits();
        for i in 0..qs.len() {
            for j in (i + 1)..qs.len() {
                if qs[i] == qs[j] {
                    return false;
                }
            }
        }
        true
    }

    /// The unitary matrix of the gate on its own operands, with the first
    /// operand as the **least significant** bit of the row/column index.
    pub fn local_matrix(&self) -> Matrix {
        match *self {
            Gate::H(_) => Matrix::from_reals(
                2,
                &[FRAC_1_SQRT_2, FRAC_1_SQRT_2, FRAC_1_SQRT_2, -FRAC_1_SQRT_2],
            ),
            Gate::T(_) => diag2(ONE, Complex::from_phase(std::f64::consts::FRAC_PI_4)),
            Gate::Tdg(_) => diag2(ONE, Complex::from_phase(-std::f64::consts::FRAC_PI_4)),
            Gate::S(_) => diag2(ONE, Complex::new(0.0, 1.0)),
            Gate::Sdg(_) => diag2(ONE, Complex::new(0.0, -1.0)),
            Gate::X(_) => Matrix::from_reals(2, &[0.0, 1.0, 1.0, 0.0]),
            Gate::Y(_) => Matrix::from_rows(
                2,
                2,
                &[ZERO, Complex::new(0.0, -1.0), Complex::new(0.0, 1.0), ZERO],
            ),
            Gate::Z(_) => diag2(ONE, -ONE),
            Gate::Phase(_, theta) => diag2(ONE, Complex::from_phase(theta)),
            Gate::Ry(_, theta) => {
                let c = (theta / 2.0).cos();
                let s = (theta / 2.0).sin();
                Matrix::from_reals(2, &[c, -s, s, c])
            }
            // Two-qubit matrices: operand order (control, target) with the
            // control as the low bit. Index = control + 2*target.
            Gate::Cnot { .. } => Matrix::from_reals(
                4,
                &[
                    1.0, 0.0, 0.0, 0.0, //
                    0.0, 0.0, 0.0, 1.0, //
                    0.0, 0.0, 1.0, 0.0, //
                    0.0, 1.0, 0.0, 0.0,
                ],
            ),
            Gate::Cz(_, _) => {
                let mut m = Matrix::identity(4);
                m[(3, 3)] = -ONE;
                m
            }
            Gate::Swap(_, _) => Matrix::from_reals(
                4,
                &[
                    1.0, 0.0, 0.0, 0.0, //
                    0.0, 0.0, 1.0, 0.0, //
                    0.0, 1.0, 0.0, 0.0, //
                    0.0, 0.0, 0.0, 1.0,
                ],
            ),
            Gate::Toffoli { .. } => {
                // Index = c1 + 2*c2 + 4*target; flips target when c1=c2=1.
                let mut m = Matrix::identity(8);
                m[(3, 3)] = ZERO;
                m[(7, 7)] = ZERO;
                m[(3, 7)] = ONE;
                m[(7, 3)] = ONE;
                m
            }
        }
    }

    /// Human-readable gate name (without operand indices).
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H(_) => "H",
            Gate::T(_) => "T",
            Gate::Tdg(_) => "T†",
            Gate::S(_) => "S",
            Gate::Sdg(_) => "S†",
            Gate::X(_) => "X",
            Gate::Y(_) => "Y",
            Gate::Z(_) => "Z",
            Gate::Phase(_, _) => "P",
            Gate::Ry(_, _) => "Ry",
            Gate::Cnot { .. } => "CNOT",
            Gate::Cz(_, _) => "CZ",
            Gate::Swap(_, _) => "SWAP",
            Gate::Toffoli { .. } => "CCX",
        }
    }
}

fn diag2(a: Complex, b: Complex) -> Matrix {
    Matrix::from_rows(2, 2, &[a, ZERO, ZERO, b])
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn all_sample_gates() -> Vec<Gate> {
        vec![
            Gate::H(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::Phase(0, 0.37),
            Gate::Ry(0, 1.1),
            Gate::Cnot {
                control: 0,
                target: 1,
            },
            Gate::Cz(0, 1),
            Gate::Swap(0, 1),
            Gate::Toffoli {
                c1: 0,
                c2: 1,
                target: 2,
            },
        ]
    }

    #[test]
    fn every_gate_matrix_is_unitary() {
        for g in all_sample_gates() {
            assert!(g.local_matrix().is_unitary(EPS), "{:?} not unitary", g);
        }
    }

    #[test]
    fn strict_set_membership() {
        assert!(Gate::H(3).is_strict());
        assert!(Gate::T(0).is_strict());
        assert!(Gate::Cnot {
            control: 1,
            target: 0
        }
        .is_strict());
        assert!(!Gate::S(0).is_strict());
        assert!(!Gate::Toffoli {
            c1: 0,
            c2: 1,
            target: 2
        }
        .is_strict());
    }

    #[test]
    fn t_to_the_eighth_is_identity() {
        let t = Gate::T(0).local_matrix();
        let mut acc = Matrix::identity(2);
        for _ in 0..8 {
            acc = acc.mul(&t);
        }
        assert!(acc.approx_eq(&Matrix::identity(2), EPS));
    }

    #[test]
    fn tdg_is_t_seventh_up_to_phase() {
        let t = Gate::T(0).local_matrix();
        let mut t7 = Matrix::identity(2);
        for _ in 0..7 {
            t7 = t7.mul(&t);
        }
        assert!(t7.approx_eq_up_to_phase(&Gate::Tdg(0).local_matrix(), EPS));
        // And exactly: T^7 = T† because T^8 = I exactly.
        assert!(t7.approx_eq(&Gate::Tdg(0).local_matrix(), EPS));
    }

    #[test]
    fn s_is_t_squared() {
        let t = Gate::T(0).local_matrix();
        assert!(t.mul(&t).approx_eq(&Gate::S(0).local_matrix(), EPS));
    }

    #[test]
    fn z_is_s_squared_and_t_fourth() {
        let s = Gate::S(0).local_matrix();
        assert!(s.mul(&s).approx_eq(&Gate::Z(0).local_matrix(), EPS));
    }

    #[test]
    fn x_is_hzh() {
        let h = Gate::H(0).local_matrix();
        let z = Gate::Z(0).local_matrix();
        assert!(h.mul(&z).mul(&h).approx_eq(&Gate::X(0).local_matrix(), EPS));
    }

    #[test]
    fn qubit_lists() {
        assert_eq!(Gate::H(5).qubits(), vec![5]);
        assert_eq!(
            Gate::Cnot {
                control: 2,
                target: 7
            }
            .qubits(),
            vec![2, 7]
        );
        assert_eq!(
            Gate::Toffoli {
                c1: 1,
                c2: 2,
                target: 0
            }
            .qubits(),
            vec![1, 2, 0]
        );
        assert_eq!(
            Gate::Toffoli {
                c1: 1,
                c2: 2,
                target: 0
            }
            .max_qubit(),
            2
        );
    }

    #[test]
    fn well_formedness() {
        assert!(Gate::Cnot {
            control: 0,
            target: 1
        }
        .is_well_formed());
        assert!(!Gate::Cnot {
            control: 1,
            target: 1
        }
        .is_well_formed());
        assert!(!Gate::Toffoli {
            c1: 0,
            c2: 0,
            target: 1
        }
        .is_well_formed());
        assert!(Gate::H(0).is_well_formed());
    }

    #[test]
    fn phase_gate_generalizes_t_and_s() {
        assert!(Gate::Phase(0, std::f64::consts::FRAC_PI_4)
            .local_matrix()
            .approx_eq(&Gate::T(0).local_matrix(), EPS));
        assert!(Gate::Phase(0, std::f64::consts::FRAC_PI_2)
            .local_matrix()
            .approx_eq(&Gate::S(0).local_matrix(), EPS));
        assert!(Gate::Phase(0, std::f64::consts::PI)
            .local_matrix()
            .approx_eq(&Gate::Z(0).local_matrix(), EPS));
    }
}
