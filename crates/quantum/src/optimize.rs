//! Peephole optimization of strict circuits.
//!
//! The Definition 2.3 compiler in `oqsc-core::emit` lowers structured
//! operators mechanically (`T† = T⁷`, `X = H T⁴ H`, X-conjugated
//! multi-controls), which leaves obvious local redundancies: adjacent
//! `H H` pairs, runs of `T` reducible mod 8, explicit identity triples.
//! This pass removes them without changing the unitary (exactly — every
//! rewrite used is an operator identity, not an approximation):
//!
//! * `H q · H q → ε`
//! * `CNOT(c,t) · CNOT(c,t) → ε`
//! * `T q × 8 → ε` (more precisely: any maximal run of `T q` is reduced
//!   mod 8 — note `T⁸ = I` exactly, including global phase)
//! * identity triples (`a = b`) are dropped
//!
//! The pass iterates to a fixed point, since a cancellation can expose a
//! new adjacent pair. Commutation-aware rewrites (e.g. sliding a `T`
//! through a control) are deliberately out of scope: the goal is the
//! honest ablation "how much of the mechanical lowering overhead is
//! trivially recoverable", not a full synthesis tool.

use crate::circuit::{Circuit, StrictCircuit};
use crate::gate::Gate;

/// Statistics of one optimization run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Gates before.
    pub before: usize,
    /// Gates after.
    pub after: usize,
    /// Fixed-point iterations used.
    pub passes: usize,
}

impl OptimizeStats {
    /// Fraction of gates removed.
    pub fn reduction(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            1.0 - self.after as f64 / self.before as f64
        }
    }
}

fn cancel_pairs_and_fold_t(gates: &[Gate]) -> Vec<Gate> {
    // Stack-based single pass: maintain the output as a stack; for each
    // incoming gate, try to cancel or merge with the top.
    let mut out: Vec<Gate> = Vec::with_capacity(gates.len());
    for &g in gates {
        match (out.last().copied(), g) {
            (Some(Gate::H(a)), Gate::H(b)) if a == b => {
                out.pop();
            }
            (
                Some(Gate::Cnot {
                    control: c1,
                    target: t1,
                }),
                Gate::Cnot {
                    control: c2,
                    target: t2,
                },
            ) if c1 == c2 && t1 == t2 => {
                out.pop();
            }
            _ => out.push(g),
        }
    }
    // Fold maximal runs of T on the same qubit mod 8.
    let mut folded: Vec<Gate> = Vec::with_capacity(out.len());
    let mut i = 0;
    while i < out.len() {
        if let Gate::T(q) = out[i] {
            let mut run = 0usize;
            while i < out.len() && out[i] == Gate::T(q) {
                run += 1;
                i += 1;
            }
            for _ in 0..(run % 8) {
                folded.push(Gate::T(q));
            }
        } else {
            folded.push(out[i]);
            i += 1;
        }
    }
    folded
}

/// Optimizes a gate list to a fixed point. Only valid on strict gates
/// (`H`, `T`, `CNOT`); other gates pass through untouched by the `T`
/// folding but still participate in pair cancellation rules that apply.
pub fn optimize_gates(gates: &[Gate]) -> (Vec<Gate>, OptimizeStats) {
    let before = gates.len();
    let mut current = gates.to_vec();
    let mut passes = 0usize;
    loop {
        passes += 1;
        let next = cancel_pairs_and_fold_t(&current);
        let fixed = next.len() == current.len();
        current = next;
        if fixed || passes > 64 {
            break;
        }
    }
    let after = current.len();
    (
        current,
        OptimizeStats {
            before,
            after,
            passes,
        },
    )
}

/// Optimizes a [`StrictCircuit`] (dropping identity triples first).
pub fn optimize_strict(circuit: &StrictCircuit) -> (StrictCircuit, OptimizeStats) {
    let decoded = circuit.to_circuit(); // drops a = b identities
    let dropped_identities = circuit.len() - decoded.len();
    let (gates, mut stats) = optimize_gates(decoded.gates());
    stats.before += dropped_identities;
    let mut out = StrictCircuit::new(circuit.num_qubits());
    for g in &gates {
        out.push_gate(*g);
    }
    // `tdg`/`x` helpers re-expand T runs; rebuild `after` from the actual
    // emitted triple count.
    stats.after = out.len();
    (out, stats)
}

/// Optimizes a general [`Circuit`] in place semantics (returns a new one).
pub fn optimize_circuit(circuit: &Circuit) -> (Circuit, OptimizeStats) {
    let (gates, stats) = optimize_gates(circuit.gates());
    let mut out = Circuit::new(circuit.num_qubits());
    for g in gates {
        out.push(g);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;
    use proptest::prelude::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn cancels_adjacent_hadamards() {
        let gates = vec![Gate::H(0), Gate::H(0), Gate::T(1)];
        let (opt, stats) = optimize_gates(&gates);
        assert_eq!(opt, vec![Gate::T(1)]);
        assert_eq!(stats.before, 3);
        assert_eq!(stats.after, 1);
        assert!(stats.reduction() > 0.6);
    }

    #[test]
    fn cancels_adjacent_cnots() {
        let gates = vec![
            Gate::Cnot {
                control: 0,
                target: 1,
            },
            Gate::Cnot {
                control: 0,
                target: 1,
            },
        ];
        let (opt, _) = optimize_gates(&gates);
        assert!(opt.is_empty());
        // Different operands do NOT cancel.
        let gates = vec![
            Gate::Cnot {
                control: 0,
                target: 1,
            },
            Gate::Cnot {
                control: 1,
                target: 0,
            },
        ];
        let (opt, _) = optimize_gates(&gates);
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn folds_t_runs_mod_8() {
        let gates = vec![Gate::T(0); 19]; // 19 mod 8 = 3
        let (opt, _) = optimize_gates(&gates);
        assert_eq!(opt, vec![Gate::T(0); 3]);
        let gates = vec![Gate::T(0); 8];
        let (opt, _) = optimize_gates(&gates);
        assert!(opt.is_empty());
    }

    #[test]
    fn cascading_cancellation_reaches_fixed_point() {
        // H T^8 H: folding Ts exposes the HH pair.
        let mut gates = vec![Gate::H(0)];
        gates.extend(vec![Gate::T(0); 8]);
        gates.push(Gate::H(0));
        let (opt, stats) = optimize_gates(&gates);
        assert!(opt.is_empty(), "got {opt:?}");
        assert!(stats.passes >= 2);
    }

    #[test]
    fn interleaved_qubits_not_cancelled() {
        // H(0) H(1) H(0): the two H(0) are not adjacent.
        let gates = vec![Gate::H(0), Gate::H(1), Gate::H(0)];
        let (opt, _) = optimize_gates(&gates);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn strict_circuit_roundtrip_with_identities() {
        let mut sc = StrictCircuit::new(3);
        sc.identity();
        sc.h(0);
        sc.h(0);
        sc.t(1);
        sc.identity();
        sc.cnot(0, 2);
        let (opt, stats) = optimize_strict(&sc);
        assert_eq!(stats.before, 6);
        assert_eq!(opt.len(), 2); // T(1), CNOT(0,2)
                                  // Semantics preserved.
        assert!(opt.run_from_zero().approx_eq(&sc.run_from_zero(), EPS));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The optimizer never changes the circuit's action on |0…0⟩ (and
        /// since the rewrites are unitary identities, on any state).
        #[test]
        fn prop_optimization_preserves_semantics(
            ops in proptest::collection::vec((0usize..3, 0usize..3, 0u8..3), 0..60)
        ) {
            let mut c = Circuit::new(3);
            for (a, b, kind) in ops {
                match kind {
                    0 => c.push(Gate::H(a)),
                    1 => c.push(Gate::T(a)),
                    _ => {
                        if a != b {
                            c.push(Gate::Cnot { control: a, target: b });
                        }
                    }
                }
            }
            let (opt, stats) = optimize_circuit(&c);
            prop_assert!(stats.after <= stats.before);
            // Compare action on a few basis states (cheaper than the full
            // unitary, still a sound equivalence check over all 8 columns).
            for col in 0..8usize {
                let mut s1 = StateVector::basis(3, col);
                let mut s2 = StateVector::basis(3, col);
                c.apply_to(&mut s1);
                opt.apply_to(&mut s2);
                prop_assert!(s1.approx_eq(&s2, EPS), "column {}", col);
            }
        }

        /// Idempotence: optimizing twice changes nothing more.
        #[test]
        fn prop_optimizer_idempotent(
            ops in proptest::collection::vec((0usize..3, 0u8..2), 0..40)
        ) {
            let mut c = Circuit::new(3);
            for (q, kind) in ops {
                c.push(if kind == 0 { Gate::H(q) } else { Gate::T(q) });
            }
            let (once, _) = optimize_circuit(&c);
            let (twice, stats) = optimize_circuit(&once);
            prop_assert_eq!(once.gates(), twice.gates());
            prop_assert_eq!(stats.before, stats.after);
        }
    }
}
