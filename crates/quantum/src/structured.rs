//! The structured operators of the paper's procedure A3.
//!
//! Section 3.2 defines, over a register `|i⟩|h⟩|l⟩` with `i` ranging over
//! `{0,…,2^{2k}−1}` and `h, l ∈ {0,1}`:
//!
//! * `S_k : |i⟩|h⟩|l⟩ ↦ −|i⟩|h⟩|l⟩` for `i ≠ 0`, identity on `i = 0`;
//! * `V_x : |i⟩|h⟩|l⟩ ↦ |i⟩|h ⊕ x_i⟩|l⟩`;
//! * `W_x : |i⟩|h⟩|l⟩ ↦ (−1)^{h ∧ x_i}|i⟩|h⟩|l⟩`;
//! * `R_x : |i⟩|h⟩|l⟩ ↦ |i⟩|h⟩|l ⊕ (h ∧ x_i)⟩`;
//! * `U_k = H^{⊗2k} ⊗ I ⊗ I`.
//!
//! `V_x W_y V_x` multiplies the amplitude of `|i⟩|0⟩|0⟩` by
//! `(−1)^{x_i ∧ y_i}`, i.e. it is one Grover phase oracle for the
//! intersection predicate, and `U_k S_k U_k` is the diffusion operator —
//! exactly one Grover iteration per block of streamed input.
//!
//! Two application modes are provided:
//!
//! * **block mode** — the whole bit-string `x` is known; one `O(2^n)` pass;
//! * **bit mode** — one input bit `x_i` at a time, touching only the four
//!   amplitudes whose index part equals `i` (`O(1)` per streamed symbol).
//!   This is what makes the online simulation of procedure A3 run in time
//!   linear in the input length.

use crate::backend::QuantumBackend;
use crate::complex::ONE;
use crate::state::StateVector;

/// Register layout for the paper's A3 procedure: index qubits
/// `0 … idx_width−1` (little-endian value `i`), then `h`, then `l`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroverLayout {
    /// Width of the index register; the paper uses `idx_width = 2k`.
    pub idx_width: usize,
}

impl GroverLayout {
    /// Layout for the paper's parameter `k` (index width `2k`).
    pub fn for_k(k: u32) -> Self {
        GroverLayout {
            idx_width: 2 * k as usize,
        }
    }

    /// Total register width `idx_width + 2`.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.idx_width + 2
    }

    /// Number of index values `N = 2^{idx_width}` (the paper's `2^{2k}`,
    /// the length of the strings `x, y`).
    #[inline]
    pub fn domain(&self) -> usize {
        1usize << self.idx_width
    }

    /// Qubit index of the `h` register.
    #[inline]
    pub fn h_qubit(&self) -> usize {
        self.idx_width
    }

    /// Qubit index of the `l` register (the qubit measured at the end of
    /// A3).
    #[inline]
    pub fn l_qubit(&self) -> usize {
        self.idx_width + 1
    }

    /// Basis-state index of `|i⟩|h⟩|l⟩`.
    #[inline]
    pub fn basis(&self, i: usize, h: u8, l: u8) -> usize {
        debug_assert!(i < self.domain());
        i | ((h as usize) << self.h_qubit()) | ((l as usize) << self.l_qubit())
    }

    /// The index qubits as a list (for Hadamard sweeps).
    pub fn index_qubits(&self) -> Vec<usize> {
        (0..self.idx_width).collect()
    }

    /// The paper's initial state `|φ_k⟩ = 2^{-k} Σ_i |i⟩|0⟩|0⟩` in the
    /// dense reference backend.
    pub fn phi(&self) -> StateVector {
        self.phi_in::<StateVector>()
    }

    /// `|φ_k⟩` in any backend (the sparse backend stores its `2^{idx_width}`
    /// support entries and nothing else).
    pub fn phi_in<B: QuantumBackend>(&self) -> B {
        let mut s = B::zero(self.num_qubits());
        s.apply_hadamard_all(&self.index_qubits());
        s
    }

    // ------------------------------------------------------------------
    // Block-mode operators
    // ------------------------------------------------------------------

    /// Applies `U_k = H^{⊗idx_width} ⊗ I ⊗ I`.
    pub fn apply_uk<B: QuantumBackend>(&self, s: &mut B) {
        s.apply_hadamard_all(&self.index_qubits());
    }

    /// Applies `S_k` (phase −1 on every `i ≠ 0`).
    pub fn apply_sk<B: QuantumBackend>(&self, s: &mut B) {
        let mask = self.domain() - 1;
        s.phase_if(|b| b & mask != 0, -ONE);
    }

    /// Applies `V_x` for the full string `x` (`x.len() = domain`).
    pub fn apply_vx<B: QuantumBackend>(&self, s: &mut B, x: &[bool]) {
        assert_eq!(x.len(), self.domain(), "string length mismatch");
        let mask = self.domain() - 1;
        let hbit = 1usize << self.h_qubit();
        s.permute_in_place(|b| if x[b & mask] { b ^ hbit } else { b });
    }

    /// Applies `W_x` for the full string `x`.
    pub fn apply_wx<B: QuantumBackend>(&self, s: &mut B, x: &[bool]) {
        assert_eq!(x.len(), self.domain(), "string length mismatch");
        let mask = self.domain() - 1;
        let hbit = 1usize << self.h_qubit();
        s.phase_if(|b| b & hbit != 0 && x[b & mask], -ONE);
    }

    /// Applies `R_x` for the full string `x`.
    pub fn apply_rx<B: QuantumBackend>(&self, s: &mut B, x: &[bool]) {
        assert_eq!(x.len(), self.domain(), "string length mismatch");
        let mask = self.domain() - 1;
        let hbit = 1usize << self.h_qubit();
        let lbit = 1usize << self.l_qubit();
        s.permute_in_place(|b| {
            if b & hbit != 0 && x[b & mask] {
                b ^ lbit
            } else {
                b
            }
        });
    }

    /// One full Grover iteration `U_k S_k U_k V_z W_y V_x` (applied right to
    /// left, i.e. `V_x` first), as in step 3 of procedure A3.
    pub fn apply_grover_iteration<B: QuantumBackend>(
        &self,
        s: &mut B,
        x: &[bool],
        y: &[bool],
        z: &[bool],
    ) {
        self.apply_vx(s, x);
        self.apply_wx(s, y);
        self.apply_vx(s, z);
        self.apply_uk(s);
        self.apply_sk(s);
        self.apply_uk(s);
    }

    // ------------------------------------------------------------------
    // Bit-mode (streaming) operators: O(1) per streamed input bit
    // ------------------------------------------------------------------

    /// Streaming `V_x` fragment: the factor of `V_x` acting on index value
    /// `i` with bit `x_i = xi`. Swaps the two `h` branches of the four
    /// amplitudes whose index part is `i`.
    pub fn apply_vx_bit<B: QuantumBackend>(&self, s: &mut B, i: usize, xi: bool) {
        if !xi {
            return;
        }
        debug_assert!(i < self.domain());
        // Directly swap (i, h=0, l) ↔ (i, h=1, l) for l ∈ {0,1}.
        let b00 = self.basis(i, 0, 0);
        let b10 = self.basis(i, 1, 0);
        let b01 = self.basis(i, 0, 1);
        let b11 = self.basis(i, 1, 1);
        // SAFETY of logic: distinct indices by construction.
        let (a00, a10, a01, a11) = (s.amp(b00), s.amp(b10), s.amp(b01), s.amp(b11));
        s.store_amplitudes(&[(b00, a10), (b10, a00), (b01, a11), (b11, a01)]);
    }

    /// Streaming `W_x` fragment for index `i`: negates the `h = 1` branches.
    pub fn apply_wx_bit<B: QuantumBackend>(&self, s: &mut B, i: usize, xi: bool) {
        if !xi {
            return;
        }
        let b10 = self.basis(i, 1, 0);
        let b11 = self.basis(i, 1, 1);
        let (a10, a11) = (s.amp(b10), s.amp(b11));
        s.store_amplitudes(&[(b10, -a10), (b11, -a11)]);
    }

    /// Streaming `R_x` fragment for index `i`: swaps `l` on the `h = 1`
    /// branches.
    pub fn apply_rx_bit<B: QuantumBackend>(&self, s: &mut B, i: usize, xi: bool) {
        if !xi {
            return;
        }
        let b10 = self.basis(i, 1, 0);
        let b11 = self.basis(i, 1, 1);
        let (a10, a11) = (s.amp(b10), s.amp(b11));
        s.store_amplitudes(&[(b10, a11), (b11, a10)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const EPS: f64 = 1e-10;

    fn rand_bits(n: usize, rng: &mut StdRng) -> Vec<bool> {
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn layout_geometry() {
        let l = GroverLayout::for_k(2);
        assert_eq!(l.idx_width, 4);
        assert_eq!(l.num_qubits(), 6);
        assert_eq!(l.domain(), 16);
        assert_eq!(l.h_qubit(), 4);
        assert_eq!(l.l_qubit(), 5);
        assert_eq!(l.basis(5, 1, 0), 5 | 16);
        assert_eq!(l.basis(5, 0, 1), 5 | 32);
    }

    #[test]
    fn phi_is_uniform_on_index_zero_elsewhere() {
        let l = GroverLayout { idx_width: 3 };
        let s = l.phi();
        let amp = 1.0 / (8f64).sqrt();
        for i in 0..8 {
            assert!(s.amp(l.basis(i, 0, 0)).approx_eq(Complex::real(amp), EPS));
            assert!(s.amp(l.basis(i, 1, 0)).is_approx_zero(EPS));
            assert!(s.amp(l.basis(i, 0, 1)).is_approx_zero(EPS));
            assert!(s.amp(l.basis(i, 1, 1)).is_approx_zero(EPS));
        }
    }

    #[test]
    fn vx_flips_h_on_set_bits() {
        let l = GroverLayout { idx_width: 2 };
        let x = vec![true, false, true, false];
        let mut s = l.phi();
        l.apply_vx(&mut s, &x);
        let amp = Complex::real(0.5);
        assert!(s.amp(l.basis(0, 1, 0)).approx_eq(amp, EPS));
        assert!(s.amp(l.basis(1, 0, 0)).approx_eq(amp, EPS));
        assert!(s.amp(l.basis(2, 1, 0)).approx_eq(amp, EPS));
        assert!(s.amp(l.basis(3, 0, 0)).approx_eq(amp, EPS));
    }

    #[test]
    fn vx_is_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = GroverLayout { idx_width: 3 };
        let x = rand_bits(8, &mut rng);
        let mut s = l.phi();
        let orig = s.clone();
        l.apply_vx(&mut s, &x);
        l.apply_vx(&mut s, &x);
        assert!(s.approx_eq(&orig, EPS));
    }

    #[test]
    fn paper_phase_identity_vx_wy_vx() {
        // Equation from the proof of Theorem 3.4:
        // V_x W_y V_x (Σ α_i|i,0,0⟩) = Σ α_i (−1)^{x_i ∧ y_i}|i,0,0⟩.
        let mut rng = StdRng::seed_from_u64(11);
        let l = GroverLayout { idx_width: 3 };
        let x = rand_bits(8, &mut rng);
        let y = rand_bits(8, &mut rng);
        let mut s = l.phi();
        l.apply_vx(&mut s, &x);
        l.apply_wx(&mut s, &y);
        l.apply_vx(&mut s, &x);
        let amp = 1.0 / (8f64).sqrt();
        for i in 0..8 {
            let sign = if x[i] && y[i] { -1.0 } else { 1.0 };
            assert!(
                s.amp(l.basis(i, 0, 0))
                    .approx_eq(Complex::real(sign * amp), EPS),
                "index {i}"
            );
            assert!(s.amp(l.basis(i, 1, 0)).is_approx_zero(EPS));
        }
    }

    #[test]
    fn sk_flips_all_but_zero() {
        let l = GroverLayout { idx_width: 2 };
        let mut s = l.phi();
        l.apply_sk(&mut s);
        assert!(s.amp(l.basis(0, 0, 0)).approx_eq(Complex::real(0.5), EPS));
        for i in 1..4 {
            assert!(s.amp(l.basis(i, 0, 0)).approx_eq(Complex::real(-0.5), EPS));
        }
    }

    #[test]
    fn diffusion_preserves_phi() {
        // U_k S_k U_k fixes |φ⟩ up to global phase (it reflects about the
        // mean, and φ *is* the mean direction): D|φ⟩ = −|φ⟩ with our sign
        // convention... verify it maps φ to ±φ.
        let l = GroverLayout { idx_width: 3 };
        let mut s = l.phi();
        l.apply_uk(&mut s);
        l.apply_sk(&mut s);
        l.apply_uk(&mut s);
        let phi = l.phi();
        assert!(
            s.approx_eq_up_to_phase(&phi, EPS),
            "diffusion should fix the uniform state up to phase"
        );
    }

    #[test]
    fn rx_marks_l_register() {
        let l = GroverLayout { idx_width: 2 };
        let x = vec![false, true, false, true];
        // Prepare (|1,1,0⟩ + |2,1,0⟩)/√2: h = 1 everywhere.
        let mut amps = vec![crate::complex::ZERO; 1 << l.num_qubits()];
        amps[l.basis(1, 1, 0)] = Complex::real(1.0);
        amps[l.basis(2, 1, 0)] = Complex::real(1.0);
        let mut s = StateVector::from_amplitudes(amps);
        l.apply_rx(&mut s, &x);
        // x_1 = 1 so |1,1,0⟩ → |1,1,1⟩; x_2 = 0 so |2,1,0⟩ unchanged.
        assert!(s.amp(l.basis(1, 1, 1)).norm_sqr() > 0.4);
        assert!(s.amp(l.basis(1, 1, 0)).is_approx_zero(EPS));
        assert!(s.amp(l.basis(2, 1, 0)).norm_sqr() > 0.4);
    }

    #[test]
    fn bit_mode_matches_block_mode() {
        let mut rng = StdRng::seed_from_u64(21);
        let l = GroverLayout { idx_width: 3 };
        let x = rand_bits(8, &mut rng);

        // Random-ish starting state reached by a few gates.
        let mut start = l.phi();
        l.apply_vx(&mut start, &rand_bits(8, &mut rng));
        l.apply_uk(&mut start);

        for (name, block, bit) in [
            (
                "Vx",
                (|l: &GroverLayout, s: &mut StateVector, x: &[bool]| l.apply_vx(s, x))
                    as fn(&GroverLayout, &mut StateVector, &[bool]),
                (|l: &GroverLayout, s: &mut StateVector, i: usize, b: bool| l.apply_vx_bit(s, i, b))
                    as fn(&GroverLayout, &mut StateVector, usize, bool),
            ),
            (
                "Wx",
                |l, s, x| l.apply_wx(s, x),
                |l, s, i, b| l.apply_wx_bit(s, i, b),
            ),
            (
                "Rx",
                |l, s, x| l.apply_rx(s, x),
                |l, s, i, b| l.apply_rx_bit(s, i, b),
            ),
        ] {
            let mut a = start.clone();
            let mut b = start.clone();
            block(&l, &mut a, &x);
            for (i, &xi) in x.iter().enumerate() {
                bit(&l, &mut b, i, xi);
            }
            assert!(a.approx_eq(&b, EPS), "bit-mode mismatch for {name}");
        }
    }

    #[test]
    fn grover_iteration_amplifies_single_target() {
        // With x = z = e_t and y = e_t (single intersection), each iteration
        // rotates toward |t⟩; after ⌊π/4·√N⌋ iterations P(t) is near 1.
        let l = GroverLayout { idx_width: 4 }; // N = 16
        let n = l.domain();
        let t = 11usize;
        let mut x = vec![false; n];
        x[t] = true;
        let y = x.clone();
        let mut s = l.phi();
        let iters = (std::f64::consts::FRAC_PI_4 * (n as f64).sqrt()).floor() as usize;
        for _ in 0..iters {
            l.apply_grover_iteration(&mut s, &x, &y, &x);
        }
        let p_t: f64 = s.amp(l.basis(t, 0, 0)).norm_sqr();
        assert!(p_t > 0.9, "Grover should amplify target, got {p_t}");
    }

    #[test]
    fn unitarity_of_every_structured_op() {
        let mut rng = StdRng::seed_from_u64(8);
        let l = GroverLayout { idx_width: 3 };
        let x = rand_bits(8, &mut rng);
        let mut s = l.phi();
        for _ in 0..5 {
            l.apply_vx(&mut s, &x);
            l.apply_wx(&mut s, &x);
            l.apply_rx(&mut s, &x);
            l.apply_sk(&mut s);
            l.apply_uk(&mut s);
            assert!((s.norm() - 1.0).abs() < 1e-8);
        }
    }
}
