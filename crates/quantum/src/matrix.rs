//! Small dense complex matrices.
//!
//! These are used for gate definitions (2×2, 4×4, 8×8) and for *verifying*
//! circuit identities in tests by building full `2^n × 2^n` unitaries with
//! Kronecker products. The state-vector simulator itself never materializes
//! large matrices; it applies gates in-place (see [`crate::state`]).

use crate::complex::{Complex, ONE, ZERO};

/// A dense row-major complex matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = ONE;
        }
        m
    }

    /// Builds a matrix from a row-major slice of entries.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[Complex]) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Builds a square matrix from real row-major entries.
    pub fn from_reals(n: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), n * n, "matrix shape mismatch");
        Matrix {
            rows: n,
            cols: n,
            data: data.iter().map(|&r| Complex::real(r)).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw row-major entries.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    /// If the inner dimensions disagree.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_approx_zero(0.0) {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = a * rhs[(k, j)];
                    out[(i, j)] += v;
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(self.cols, v.len(), "vector length mismatch");
        let mut out = vec![ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Conjugate transpose `A†`.
    pub fn dagger(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                for p in 0..rhs.rows {
                    for q in 0..rhs.cols {
                        out[(i * rhs.rows + p, j * rhs.cols + q)] = a * rhs[(p, q)];
                    }
                }
            }
        }
        out
    }

    /// True when `‖self − other‖_max ≤ eps` entry-wise.
    pub fn approx_eq(&self, other: &Matrix, eps: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, eps))
    }

    /// True when `A·A† = I` within `eps`.
    pub fn is_unitary(&self, eps: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        self.mul(&self.dagger())
            .approx_eq(&Matrix::identity(self.rows), eps)
    }

    /// True when the matrices are equal up to a global phase factor:
    /// `self = e^{iφ}·other` for some φ, within `eps`.
    pub fn approx_eq_up_to_phase(&self, other: &Matrix, eps: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        // Find the largest entry of `other` to anchor the phase.
        let mut best = 0usize;
        let mut best_norm = 0.0;
        for (idx, z) in other.data.iter().enumerate() {
            let n = z.norm_sqr();
            if n > best_norm {
                best_norm = n;
                best = idx;
            }
        }
        if best_norm <= eps * eps {
            return self.approx_eq(other, eps);
        }
        let phase = self.data[best] / other.data[best];
        if (phase.norm() - 1.0).abs() > eps {
            return false;
        }
        self.data
            .iter()
            .zip(&other.data)
            .all(|(a, b)| a.approx_eq(phase * *b, eps))
    }

    /// Scales every entry by `z`.
    pub fn scale(&self, z: Complex) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| a * z).collect(),
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{FRAC_1_SQRT_2, I};

    const EPS: f64 = 1e-12;

    fn hadamard() -> Matrix {
        Matrix::from_reals(
            2,
            &[FRAC_1_SQRT_2, FRAC_1_SQRT_2, FRAC_1_SQRT_2, -FRAC_1_SQRT_2],
        )
    }

    #[test]
    fn identity_is_unitary_and_neutral() {
        let id = Matrix::identity(4);
        assert!(id.is_unitary(EPS));
        let h = hadamard();
        assert!(h.mul(&Matrix::identity(2)).approx_eq(&h, EPS));
        assert!(Matrix::identity(2).mul(&h).approx_eq(&h, EPS));
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let h = hadamard();
        assert!(h.is_unitary(EPS));
        assert!(h.mul(&h).approx_eq(&Matrix::identity(2), EPS));
    }

    #[test]
    fn dagger_involution() {
        let m = Matrix::from_rows(
            2,
            2,
            &[Complex::new(1.0, 2.0), I, ONE_C, Complex::new(0.0, -3.0)],
        );
        assert!(m.dagger().dagger().approx_eq(&m, EPS));
    }

    const ONE_C: Complex = crate::complex::ONE;

    #[test]
    fn kron_dimensions_and_values() {
        let a = Matrix::from_reals(2, &[1.0, 0.0, 0.0, 2.0]);
        let b = Matrix::from_reals(2, &[0.0, 1.0, 1.0, 0.0]);
        let k = a.kron(&b);
        assert_eq!(k.rows(), 4);
        assert_eq!(k.cols(), 4);
        assert_eq!(k[(0, 1)], Complex::real(1.0));
        assert_eq!(k[(2, 3)], Complex::real(2.0));
        assert_eq!(k[(0, 0)], ZERO);
    }

    #[test]
    fn kron_of_unitaries_is_unitary() {
        let h = hadamard();
        assert!(h.kron(&h).is_unitary(EPS));
        assert!(h.kron(&Matrix::identity(2)).is_unitary(EPS));
    }

    #[test]
    fn mul_vec_matches_mul() {
        let h = hadamard();
        let v = vec![ONE_C, ZERO];
        let out = h.mul_vec(&v);
        assert!(out[0].approx_eq(Complex::real(FRAC_1_SQRT_2), EPS));
        assert!(out[1].approx_eq(Complex::real(FRAC_1_SQRT_2), EPS));
    }

    #[test]
    fn phase_equivalence() {
        let h = hadamard();
        let g = h.scale(Complex::from_phase(0.7));
        assert!(g.approx_eq_up_to_phase(&h, EPS));
        assert!(!g.approx_eq(&h, EPS));
        // A genuinely different matrix is not phase-equivalent.
        let x = Matrix::from_reals(2, &[0.0, 1.0, 1.0, 0.0]);
        assert!(!x.approx_eq_up_to_phase(&h, 1e-9));
    }

    #[test]
    fn non_square_not_unitary() {
        assert!(!Matrix::zeros(2, 3).is_unitary(EPS));
    }
}
