//! Circuit intermediate representation and the paper's output format.
//!
//! Definition 2.3 of the paper requires the classical machine to write a
//! circuit description of the form `a1#b1#c1#…#ar#br#cr` on its output
//! tape, where `a_i, b_i ∈ {0, …, s−1}` are qubit labels, `c_i ∈ {0,1,2}`
//! selects a gate from `G = {G0=H, G1=T, G2=CNOT}`, and `a_i = b_i` encodes
//! the identity. [`Circuit`] is the general in-memory IR;
//! [`StrictCircuit`] is the subset expressible in the paper's format along
//! with its exact serialization.

use crate::gate::Gate;
use crate::matrix::Matrix;
use crate::state::StateVector;
use std::collections::BTreeMap;

/// An ordered list of gates over a fixed-width register.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    gates: Vec<Gate>,
    num_qubits: usize,
}

impl Circuit {
    /// An empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            gates: Vec::new(),
            num_qubits,
        }
    }

    /// Appends a gate.
    ///
    /// # Panics
    /// If the gate addresses a qubit outside the register or repeats an
    /// operand.
    pub fn push(&mut self, gate: Gate) {
        assert!(
            gate.max_qubit() < self.num_qubits,
            "gate {gate:?} exceeds register width {}",
            self.num_qubits
        );
        assert!(gate.is_well_formed(), "gate operands must be distinct");
        self.gates.push(gate);
    }

    /// Appends every gate of `other` (registers must match).
    pub fn extend_from(&mut self, other: &Circuit) {
        assert_eq!(self.num_qubits, other.num_qubits, "register width mismatch");
        self.gates.extend_from_slice(&other.gates);
    }

    /// The gates in application order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Register width.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Total gate count.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Gate counts grouped by gate name (for reporting).
    pub fn gate_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut h = BTreeMap::new();
        for g in &self.gates {
            *h.entry(g.name()).or_insert(0) += 1;
        }
        h
    }

    /// Circuit depth: the length of the longest chain of gates sharing a
    /// qubit (standard greedy layering).
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let layer = g.qubits().iter().map(|&q| frontier[q]).max().unwrap_or(0) + 1;
            for q in g.qubits() {
                frontier[q] = layer;
            }
            depth = depth.max(layer);
        }
        depth
    }

    /// True iff every gate is in the strict paper set `{H, T, CNOT}`.
    pub fn is_strict(&self) -> bool {
        self.gates.iter().all(Gate::is_strict)
    }

    /// Runs the circuit on `state` in place, in any backend.
    ///
    /// # Panics
    /// If the state register is narrower than the circuit's.
    pub fn apply_to<B: crate::backend::QuantumBackend>(&self, state: &mut B) {
        assert!(
            state.num_qubits() >= self.num_qubits,
            "state too small for circuit"
        );
        for g in &self.gates {
            state.apply_gate(g);
        }
    }

    /// Runs the circuit on `|0…0⟩` and returns the final state in the
    /// dense reference backend.
    pub fn run_from_zero(&self) -> StateVector {
        self.run_from_zero_in()
    }

    /// Runs the circuit on `|0…0⟩` in any backend.
    pub fn run_from_zero_in<B: crate::backend::QuantumBackend>(&self) -> B {
        let mut s = B::zero(self.num_qubits);
        self.apply_to(&mut s);
        s
    }

    /// Builds the full `2^n × 2^n` unitary of the circuit (testing only;
    /// exponential in `n`).
    pub fn to_unitary(&self) -> Matrix {
        let dim = 1usize << self.num_qubits;
        let mut u = Matrix::zeros(dim, dim);
        for col in 0..dim {
            let mut s = StateVector::basis(self.num_qubits, col);
            self.apply_to(&mut s);
            for row in 0..dim {
                u[(row, col)] = s.amp(row);
            }
        }
        u
    }
}

/// A circuit restricted to the paper's gate set, serializable to the
/// Definition 2.3 output-tape format.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StrictCircuit {
    ops: Vec<StrictOp>,
    num_qubits: usize,
}

/// One `a#b#c` triple of the paper's output format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StrictOp {
    /// First qubit label `a`.
    pub a: usize,
    /// Second qubit label `b` (equal to `a` for the identity convention and
    /// for single-qubit gates, where it is ignored by the semantics other
    /// than `a = b ⇒ identity`; we use `b = a` never for real single-qubit
    /// gates — see [`StrictOp::gate`]).
    pub b: usize,
    /// Gate selector `c ∈ {0,1,2}`: 0 = H, 1 = T, 2 = CNOT.
    pub c: u8,
}

impl StrictOp {
    /// Decodes the triple into a gate, or `None` for the `a = b` identity
    /// convention.
    pub fn gate(&self) -> Option<Gate> {
        if self.a == self.b {
            return None; // paper convention: identity
        }
        Some(match self.c {
            0 => Gate::H(self.a),
            1 => Gate::T(self.a),
            2 => Gate::Cnot {
                control: self.a,
                target: self.b,
            },
            _ => unreachable!("validated at construction"),
        })
    }
}

/// Errors from parsing the Definition 2.3 output format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormatError {
    /// The token stream did not consist of `#`-separated decimal fields.
    Malformed(String),
    /// Number of fields not a multiple of 3 (or zero).
    BadArity(usize),
    /// A qubit label was ≥ the declared register size.
    QubitOutOfRange(usize),
    /// A gate selector outside `{0,1,2}`.
    BadGateSelector(u64),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Malformed(tok) => write!(f, "malformed field {tok:?}"),
            FormatError::BadArity(n) => write!(f, "field count {n} not a positive multiple of 3"),
            FormatError::QubitOutOfRange(q) => write!(f, "qubit label {q} out of range"),
            FormatError::BadGateSelector(c) => write!(f, "gate selector {c} not in {{0,1,2}}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl StrictCircuit {
    /// An empty strict circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        StrictCircuit {
            ops: Vec::new(),
            num_qubits,
        }
    }

    /// Register width.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw `a#b#c` triples.
    #[inline]
    pub fn ops(&self) -> &[StrictOp] {
        &self.ops
    }

    /// Number of triples (including identity padding).
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no triples have been emitted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Emits `H` on qubit `q`. Uses `b = (q+1) mod s` as the (ignored)
    /// second label so it never collides with the identity convention.
    pub fn h(&mut self, q: usize) {
        self.push_checked(q, (q + 1) % self.num_qubits.max(2), 0);
    }

    /// Emits `T` on qubit `q`.
    pub fn t(&mut self, q: usize) {
        self.push_checked(q, (q + 1) % self.num_qubits.max(2), 1);
    }

    /// Emits `T† = T^7` (seven `T` triples).
    pub fn tdg(&mut self, q: usize) {
        for _ in 0..7 {
            self.t(q);
        }
    }

    /// Emits `CNOT` with the given control and target.
    pub fn cnot(&mut self, control: usize, target: usize) {
        assert_ne!(control, target, "CNOT operands must differ");
        self.push_checked(control, target, 2);
    }

    /// Emits the paper's explicit identity triple (`a = b`).
    pub fn identity(&mut self) {
        let op = StrictOp { a: 0, b: 0, c: 0 };
        self.ops.push(op);
    }

    fn push_checked(&mut self, a: usize, b: usize, c: u8) {
        assert!(
            a < self.num_qubits && b < self.num_qubits,
            "label out of range"
        );
        self.ops.push(StrictOp { a, b, c });
    }

    /// Appends a general gate, provided it is in the strict set.
    ///
    /// # Panics
    /// If the gate is not `H`, `T`, or `CNOT`.
    pub fn push_gate(&mut self, g: Gate) {
        match g {
            Gate::H(q) => self.h(q),
            Gate::T(q) => self.t(q),
            Gate::Cnot { control, target } => self.cnot(control, target),
            other => panic!("gate {other:?} not in the strict set"),
        }
    }

    /// Decodes into the general [`Circuit`] IR, dropping identity triples.
    pub fn to_circuit(&self) -> Circuit {
        let mut c = Circuit::new(self.num_qubits);
        for op in &self.ops {
            if let Some(g) = op.gate() {
                c.push(g);
            }
        }
        c
    }

    /// Runs the circuit on `|0…0⟩` in the dense reference backend.
    pub fn run_from_zero(&self) -> StateVector {
        self.to_circuit().run_from_zero()
    }

    /// Runs the circuit on `|0…0⟩` in any backend.
    pub fn run_from_zero_in<B: crate::backend::QuantumBackend>(&self) -> B {
        self.to_circuit().run_from_zero_in()
    }

    /// Serializes to the paper's output-tape string
    /// `a1#b1#c1#…#ar#br#cr`.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push('#');
            }
            out.push_str(&format!("{}#{}#{}", op.a, op.b, op.c));
        }
        out
    }

    /// Parses the paper's output-tape format back into a circuit over
    /// `num_qubits` qubits.
    pub fn parse(s: &str, num_qubits: usize) -> Result<Self, FormatError> {
        let fields: Vec<&str> = s.split('#').collect();
        if s.is_empty() || !fields.len().is_multiple_of(3) {
            return Err(FormatError::BadArity(if s.is_empty() {
                0
            } else {
                fields.len()
            }));
        }
        let mut ops = Vec::with_capacity(fields.len() / 3);
        for chunk in fields.chunks_exact(3) {
            let parse_field = |f: &str| -> Result<u64, FormatError> {
                if f.is_empty() || !f.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(FormatError::Malformed(f.to_string()));
                }
                f.parse::<u64>()
                    .map_err(|_| FormatError::Malformed(f.to_string()))
            };
            let a = parse_field(chunk[0])? as usize;
            let b = parse_field(chunk[1])? as usize;
            let c = parse_field(chunk[2])?;
            if a >= num_qubits {
                return Err(FormatError::QubitOutOfRange(a));
            }
            if b >= num_qubits {
                return Err(FormatError::QubitOutOfRange(b));
            }
            if c > 2 {
                return Err(FormatError::BadGateSelector(c));
            }
            ops.push(StrictOp { a, b, c: c as u8 });
        }
        Ok(StrictCircuit { ops, num_qubits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;

    const EPS: f64 = 1e-10;

    #[test]
    fn build_and_run_bell_circuit() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        assert_eq!(c.len(), 2);
        assert_eq!(c.depth(), 2);
        assert!(c.is_strict());
        let s = c.run_from_zero();
        assert!((s.amp(0).norm_sqr() - 0.5).abs() < EPS);
        assert!((s.amp(3).norm_sqr() - 0.5).abs() < EPS);
    }

    #[test]
    fn depth_counts_parallel_layers() {
        let mut c = Circuit::new(4);
        c.push(Gate::H(0));
        c.push(Gate::H(1));
        c.push(Gate::H(2));
        c.push(Gate::H(3));
        assert_eq!(c.depth(), 1);
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        assert_eq!(c.depth(), 2);
        c.push(Gate::Cnot {
            control: 2,
            target: 3,
        });
        assert_eq!(c.depth(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds register width")]
    fn push_out_of_range_panics() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(2));
    }

    #[test]
    fn histogram_counts() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::H(1));
        c.push(Gate::T(0));
        let h = c.gate_histogram();
        assert_eq!(h["H"], 2);
        assert_eq!(h["T"], 1);
    }

    #[test]
    fn to_unitary_matches_gate_matrices() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        c.push(Gate::T(0));
        let u = c.to_unitary();
        let expected = Gate::T(0).local_matrix().mul(&Gate::H(0).local_matrix());
        assert!(u.approx_eq(&expected, EPS));
        assert!(u.is_unitary(EPS));
    }

    #[test]
    fn strict_serialize_roundtrip() {
        let mut sc = StrictCircuit::new(4);
        sc.h(0);
        sc.t(2);
        sc.cnot(1, 3);
        sc.identity();
        let text = sc.serialize();
        let parsed = StrictCircuit::parse(&text, 4).expect("parse");
        assert_eq!(parsed, sc);
    }

    #[test]
    fn strict_format_matches_paper_shape() {
        let mut sc = StrictCircuit::new(3);
        sc.cnot(0, 2);
        sc.h(1);
        let text = sc.serialize();
        // a#b#c # a#b#c
        assert_eq!(text, "0#2#2#1#2#0");
    }

    #[test]
    fn identity_convention_drops_gate() {
        let mut sc = StrictCircuit::new(2);
        sc.identity();
        sc.h(0);
        let c = sc.to_circuit();
        assert_eq!(c.len(), 1);
        assert_eq!(c.gates()[0], Gate::H(0));
    }

    #[test]
    fn parse_rejects_bad_inputs() {
        assert!(matches!(
            StrictCircuit::parse("", 2),
            Err(FormatError::BadArity(0))
        ));
        assert!(matches!(
            StrictCircuit::parse("0#1", 2),
            Err(FormatError::BadArity(2))
        ));
        assert!(matches!(
            StrictCircuit::parse("0#1#5", 2),
            Err(FormatError::BadGateSelector(5))
        ));
        assert!(matches!(
            StrictCircuit::parse("0#9#2", 2),
            Err(FormatError::QubitOutOfRange(9))
        ));
        assert!(matches!(
            StrictCircuit::parse("0#x#2", 2),
            Err(FormatError::Malformed(_))
        ));
        assert!(matches!(
            StrictCircuit::parse("0##2", 2),
            Err(FormatError::Malformed(_))
        ));
    }

    #[test]
    fn tdg_emits_seven_ts_and_inverts_t() {
        let mut sc = StrictCircuit::new(1);
        // Use 2-qubit register so the ignored b label differs; width 1 is
        // only meaningful with max(2) fallback.
        let mut sc2 = StrictCircuit::new(2);
        sc2.t(0);
        sc2.tdg(0);
        assert_eq!(sc2.len(), 8);
        let mut s = StateVector::uniform(2);
        let orig = s.clone();
        sc2.to_circuit().apply_to(&mut s);
        assert!(s.approx_eq(&orig, EPS));
        sc.identity();
        assert_eq!(sc.len(), 1);
    }

    #[test]
    fn strict_circuit_equivalent_to_general() {
        let mut sc = StrictCircuit::new(2);
        sc.h(0);
        sc.cnot(0, 1);
        let via_strict = sc.run_from_zero();
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let direct = c.run_from_zero();
        assert!(via_strict.approx_eq(&direct, EPS));
        assert!(via_strict
            .amp(0)
            .approx_eq(Complex::real(std::f64::consts::FRAC_1_SQRT_2), EPS));
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = Circuit::new(2);
        a.push(Gate::H(0));
        let mut b = Circuit::new(2);
        b.push(Gate::X(1));
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }
}
