//! Approximate single-qubit synthesis over `⟨H, T⟩`.
//!
//! `{H, T}` generates a dense subgroup of `SU(2)` (up to phase), which is
//! why the paper's gate set is universal for *approximate* quantum
//! computation. The exact lowering in [`crate::decompose`] covers
//! everything procedure A3 needs; this module provides the complementary
//! capability — approximating an arbitrary single-qubit unitary by a
//! breadth-first search over short `H`/`T` words — so the library is a
//! complete compiler for the paper's machine model, and so tests can
//! demonstrate universality quantitatively (error shrinking with word
//! length).
//!
//! The search deduplicates group elements by a rounded-entry key and keeps
//! the closest word found within the budget. This is not the
//! Ross–Selinger grid synthesis (which achieves optimal T-counts), but for
//! the ε ranges exercised here (ε ≥ 10⁻³) it is small and dependable.

use crate::complex::Complex;
use crate::gate::Gate;
use crate::matrix::Matrix;
use std::collections::HashMap;
use std::collections::VecDeque;

/// Result of an approximation query.
#[derive(Clone, Debug)]
pub struct Approximation {
    /// The `H`/`T` word, in application order.
    pub gates: Vec<Gate>,
    /// Phase-invariant distance to the target (see [`phase_distance`]).
    pub distance: f64,
}

/// Phase-invariant distance between 2×2 unitaries:
/// `sqrt(1 − |tr(A†B)|/2)`, which is 0 iff `A = e^{iφ}B`.
pub fn phase_distance(a: &Matrix, b: &Matrix) -> f64 {
    debug_assert_eq!((a.rows(), a.cols()), (2, 2));
    debug_assert_eq!((b.rows(), b.cols()), (2, 2));
    let adag_b = a.dagger().mul(b);
    let tr = adag_b[(0, 0)] + adag_b[(1, 1)];
    (1.0 - (tr.norm() / 2.0)).max(0.0).sqrt()
}

fn matrix_key(m: &Matrix) -> [i64; 8] {
    // Quotient out the global phase by rotating the first sizeable entry to
    // the positive real axis before rounding.
    let anchor = if m[(0, 0)].norm() > 0.5 {
        m[(0, 0)]
    } else {
        m[(0, 1)]
    };
    let phase = anchor.conj().scale(1.0 / anchor.norm());
    let mut key = [0i64; 8];
    for (idx, &(i, j)) in [(0, 0), (0, 1), (1, 0), (1, 1)].iter().enumerate() {
        let z: Complex = phase * m[(i, j)];
        key[2 * idx] = (z.re * 1e6).round() as i64;
        key[2 * idx + 1] = (z.im * 1e6).round() as i64;
    }
    key
}

/// Breadth-first search for an `H`/`T` word approximating `target` (2×2
/// unitary) up to global phase.
///
/// Explores words up to `max_len` gates (deduplicated: the group ball is
/// far smaller than `2^max_len`) and returns the closest element found.
/// `max_len = 25` explores a few hundred thousand group elements.
pub fn approximate_single_qubit(target: &Matrix, max_len: usize) -> Approximation {
    assert_eq!((target.rows(), target.cols()), (2, 2), "need 2x2 target");
    let h = Gate::H(0).local_matrix();
    let t = Gate::T(0).local_matrix();

    let mut best = Approximation {
        gates: Vec::new(),
        distance: phase_distance(&Matrix::identity(2), target),
    };
    let mut seen: HashMap<[i64; 8], ()> = HashMap::new();
    let mut queue: VecDeque<(Matrix, Vec<Gate>)> = VecDeque::new();
    let id = Matrix::identity(2);
    seen.insert(matrix_key(&id), ());
    queue.push_back((id, Vec::new()));

    while let Some((m, word)) = queue.pop_front() {
        if word.len() >= max_len {
            continue;
        }
        for (gate, gm) in [(Gate::H(0), &h), (Gate::T(0), &t)] {
            // Appending a gate means multiplying on the left (applied after).
            let next = gm.mul(&m);
            let key = matrix_key(&next);
            if seen.contains_key(&key) {
                continue;
            }
            seen.insert(key, ());
            let mut next_word = word.clone();
            next_word.push(gate);
            let d = phase_distance(&next, target);
            if d < best.distance {
                best = Approximation {
                    gates: next_word.clone(),
                    distance: d,
                };
            }
            queue.push_back((next, next_word));
        }
    }
    best
}

/// Convenience: approximate `Phase(θ)` (`diag(1, e^{iθ})`).
pub fn approximate_phase(theta: f64, max_len: usize) -> Approximation {
    approximate_single_qubit(&Gate::Phase(0, theta).local_matrix(), max_len)
}

/// Applies an approximation's word to a target qubit by re-indexing the
/// placeholder qubit 0.
pub fn retarget(word: &[Gate], qubit: usize) -> Vec<Gate> {
    word.iter()
        .map(|g| match *g {
            Gate::H(_) => Gate::H(qubit),
            Gate::T(_) => Gate::T(qubit),
            other => panic!("synth words contain only H/T, got {other:?}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn distance_zero_for_phase_equivalent() {
        let h = Gate::H(0).local_matrix();
        let g = h.scale(Complex::from_phase(0.9));
        assert!(phase_distance(&h, &g) < 1e-9);
        let x = Gate::X(0).local_matrix();
        assert!(phase_distance(&h, &x) > 0.1);
    }

    #[test]
    fn exact_targets_found_exactly() {
        // H and T themselves, and S = T².
        for (target, max_expected_len) in [
            (Gate::H(0).local_matrix(), 1),
            (Gate::T(0).local_matrix(), 1),
            (Gate::S(0).local_matrix(), 2),
            (Gate::Z(0).local_matrix(), 4),
            (Gate::X(0).local_matrix(), 6),
        ] {
            let approx = approximate_single_qubit(&target, 8);
            assert!(
                approx.distance < 1e-9,
                "target should be hit exactly within 8 gates"
            );
            assert!(approx.gates.len() <= max_expected_len);
        }
    }

    #[test]
    fn generic_phase_error_decreases_with_budget() {
        let theta = 1.0; // not a multiple of π/4
        let coarse = approximate_phase(theta, 10);
        let fine = approximate_phase(theta, 20);
        assert!(fine.distance <= coarse.distance);
        assert!(
            fine.distance < 0.12,
            "20-gate budget should reach ~1e-1 accuracy, got {}",
            fine.distance
        );
        assert!(coarse.distance > 1e-12, "θ=1 has no exact realization");
    }

    #[test]
    fn synthesized_word_acts_like_target() {
        let theta = 2.0;
        let approx = approximate_phase(theta, 18);
        let mut c = Circuit::new(1);
        for g in &approx.gates {
            c.push(*g);
        }
        let u = c.to_unitary();
        let d = phase_distance(&u, &Gate::Phase(0, theta).local_matrix());
        assert!((d - approx.distance).abs() < 1e-9);
    }

    #[test]
    fn retarget_moves_qubit_index() {
        let word = vec![Gate::H(0), Gate::T(0)];
        let moved = retarget(&word, 3);
        assert_eq!(moved, vec![Gate::H(3), Gate::T(3)]);
    }

    #[test]
    fn identity_is_trivially_approximated() {
        let approx = approximate_single_qubit(&Matrix::identity(2), 6);
        assert!(approx.distance < 1e-9);
        assert!(approx.gates.is_empty());
    }
}
