//! Explicit-SIMD kernels for the dense hot loops, behind runtime dispatch.
//!
//! This is the only module in the workspace that contains `unsafe` code; the
//! crate root carries `#![deny(unsafe_code)]` and this file alone opts back
//! in. Every unsafe block is a `std::arch` intrinsic sequence whose safety
//! argument is (a) the corresponding CPU feature was verified at runtime by
//! [`active`] before the call, and (b) all pointer arithmetic stays inside
//! the bounds of the slices passed in ([`Complex`] is `#[repr(C)]`, so a
//! `&[Complex]` of length `k` is exactly `2k` packed `f64`s).
//!
//! ## The bitwise contract
//!
//! The substrate promises that every backend produces bit-for-bit identical
//! amplitudes and reduction values at any worker count. SIMD must not bend
//! that promise, so each kernel here is *defined* by its scalar reference
//! implementation in [`scalar`], and the vector paths are transcriptions
//! that perform the same IEEE-754 operations on the same values in the same
//! order per output. Two classes of kernel exist:
//!
//! * **Maps** (gate application, axpy, scaling): each output element depends
//!   only on its own inputs, so vectorizing across elements changes nothing.
//!   The only identities relied on are bitwise-exact ones: `a·b ≡ b·a`,
//!   `a + b ≡ b + a`, `a − (−c) ≡ a + c`, and `(−x)·y ≡ −(x·y)`. No FMA is
//!   ever emitted (every multiply and add is a separate correctly-rounded
//!   intrinsic), matching the scalar code.
//! * **Reductions** (norms, masked probabilities, inner products): the
//!   canonical accumulation order *inside* a `REDUCE_CHUNK` block is
//!   stratified into [`LANES`] independent real lanes (element `j`
//!   accumulates into lane `j & 3`) folded as `((l0+l1)+l2)+l3`, and
//!   [`COMPLEX_LANES`] complex lanes (lane `j & 1`, folded `l0+l1`) for
//!   inner products. The scalar reference uses exactly this order, and a
//!   256-bit (or paired 128-bit) accumulator reproduces it natively. Blocks
//!   themselves are combined in block order by `par.rs`, unchanged.
//!
//! Dispatch is resolved once per process ([`detected`], honouring the
//! `OQSC_SIMD` environment variable) with a test/bench override
//! ([`force`]) that is clamped to what the hardware supports.

#![allow(unsafe_code)]

use crate::complex::Complex;
use crate::matrix::Matrix;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Number of stratified real accumulation lanes inside a reduction block.
///
/// Element `j` of a block accumulates into lane `j & (LANES - 1)`; the lanes
/// are folded as `((l0 + l1) + l2) + l3`. Because `REDUCE_CHUNK` is a
/// multiple of `LANES`, an element's lane is the same whether indexed within
/// its block or globally.
pub const LANES: usize = 4;

/// Number of stratified complex accumulation lanes for inner products.
///
/// Element `j` accumulates `a[j].conj() * b[j]` into complex lane `j & 1`;
/// the two lanes are folded as `l0 + l1`.
pub const COMPLEX_LANES: usize = 2;

/// The instruction-set level a kernel call executes at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SimdLevel {
    /// Portable scalar Rust — the reference semantics.
    Scalar = 1,
    /// x86-64 AVX2 (4 × f64 per vector).
    Avx2 = 2,
    /// AArch64 NEON (2 × f64 per vector).
    Neon = 3,
}

impl SimdLevel {
    /// Stable lower-case name, for logs and bench records.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }
}

/// The best level this CPU supports, ignoring any override.
pub fn supported() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return SimdLevel::Neon;
        }
    }
    SimdLevel::Scalar
}

/// The level selected at first use: hardware detection, unless the
/// `OQSC_SIMD` environment variable is `off`/`0`/`scalar`/`none`.
pub fn detected() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| match std::env::var("OQSC_SIMD") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "off" | "0" | "scalar" | "none" => SimdLevel::Scalar,
            _ => supported(),
        },
        Err(_) => supported(),
    })
}

/// Process-wide override installed by [`force`]; `0` means "no override".
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The level the next kernel call will dispatch to.
pub fn active() -> SimdLevel {
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdLevel::Scalar,
        2 => SimdLevel::Avx2,
        3 => SimdLevel::Neon,
        _ => detected(),
    }
}

/// Overrides dispatch for tests and benches. `None` restores automatic
/// selection. A requested level the hardware cannot run is clamped to
/// [`SimdLevel::Scalar`]. The override wins over `OQSC_SIMD`.
pub fn force(level: Option<SimdLevel>) {
    let v = match level {
        None => 0,
        Some(l) => {
            let l = if l == SimdLevel::Scalar || l == supported() {
                l
            } else {
                SimdLevel::Scalar
            };
            l as u8
        }
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// Applies a 2×2 gate to every `(lo, hi)` pair formed by consecutive
/// `2·stride` blocks of `amps` (lo half, then hi half). `amps.len()` must be
/// a multiple of `2·stride`.
pub fn apply_single_run(amps: &mut [Complex], stride: usize, m: &Matrix) {
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::apply_single_run(amps, stride, m) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::apply_single_run(amps, stride, m) },
        _ => scalar::apply_single_run(amps, stride, m),
    }
}

/// Applies a 2×2 gate to element-wise pairs of two equal-length halves.
pub fn apply_single_pairs(los: &mut [Complex], his: &mut [Complex], m: &Matrix) {
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::apply_single_pairs(los, his, m) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::apply_single_pairs(los, his, m) },
        _ => scalar::apply_single_pairs(los, his, m),
    }
}

/// `dst[i] += coeff * src[i]` (complex axpy).
pub fn add_scaled(dst: &mut [Complex], src: &[Complex], coeff: Complex) {
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::add_scaled(dst, src, coeff) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::add_scaled(dst, src, coeff) },
        _ => scalar::add_scaled(dst, src, coeff),
    }
}

/// `dst[i] = overlap * psi[i] * 2.0 - dst[i]` (Grover reflection step).
pub fn reflect_about(dst: &mut [Complex], psi: &[Complex], overlap: Complex) {
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::reflect_about(dst, psi, overlap) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::reflect_about(dst, psi, overlap) },
        _ => scalar::reflect_about(dst, psi, overlap),
    }
}

/// `amps[i] = amps[i].scale(s)` (real rescaling, used by normalization).
pub fn scale(amps: &mut [Complex], s: f64) {
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::scale(amps, s) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::scale(amps, s) },
        _ => scalar::scale(amps, s),
    }
}

/// `out[i] = amps[i].norm_sqr()` (probability vector fill).
pub fn norm_sqr_into(amps: &[Complex], out: &mut [f64]) {
    debug_assert_eq!(amps.len(), out.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::norm_sqr_into(amps, out) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::norm_sqr_into(amps, out) },
        _ => scalar::norm_sqr_into(amps, out),
    }
}

/// Sum of `|a|²` over one block, in the stratified-lane order.
pub fn block_norm_sqr(chunk: &[Complex]) -> f64 {
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::block_norm_sqr(chunk) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::block_norm_sqr(chunk) },
        _ => scalar::block_norm_sqr(chunk),
    }
}

/// Sum of `|a|²` over the elements of one block whose global basis index
/// (`base + j`) has a non-zero AND with `mask`, in stratified-lane order.
///
/// Skipping a non-selected element is bitwise identical to adding `+0.0`
/// to its lane, because every lane starts at `+0.0` and `|a|²` terms are
/// never `-0.0`-producing in a way that changes the sum's sign.
pub fn block_prob_mask(base: usize, chunk: &[Complex], mask: usize) -> f64 {
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::block_prob_mask(base, chunk, mask) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::block_prob_mask(base, chunk, mask) },
        _ => scalar::block_prob_mask(base, chunk, mask),
    }
}

/// Sum of `a[j].conj() * b[j]` over one block, in the two-complex-lane
/// stratified order.
pub fn block_inner(a: &[Complex], b: &[Complex]) -> Complex {
    debug_assert_eq!(a.len(), b.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::block_inner(a, b) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::block_inner(a, b) },
        _ => scalar::block_inner(a, b),
    }
}

/// Portable reference implementations — the definition of every kernel's
/// semantics. The vector paths above must match these bit for bit.
pub mod scalar {
    use crate::complex::Complex;
    use crate::complex::ZERO;
    use crate::matrix::Matrix;

    /// Folds the four stratified lanes in the canonical order.
    #[inline]
    pub fn fold_lanes(l: [f64; 4]) -> f64 {
        ((l[0] + l[1]) + l[2]) + l[3]
    }

    /// Scalar reference for [`super::apply_single_pairs`].
    pub fn apply_single_pairs(los: &mut [Complex], his: &mut [Complex], m: &Matrix) {
        let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
        debug_assert_eq!(los.len(), his.len());
        let pairs = los.len();
        let his = &mut his[..pairs];
        for i in 0..pairs {
            let (a0, a1) = (los[i], his[i]);
            los[i] = m00 * a0 + m01 * a1;
            his[i] = m10 * a0 + m11 * a1;
        }
    }

    /// Scalar reference for [`super::apply_single_run`].
    pub fn apply_single_run(amps: &mut [Complex], stride: usize, m: &Matrix) {
        for block in amps.chunks_exact_mut(stride << 1) {
            let (los, his) = block.split_at_mut(stride);
            apply_single_pairs(los, his, m);
        }
    }

    /// Scalar reference for [`super::add_scaled`].
    pub fn add_scaled(dst: &mut [Complex], src: &[Complex], coeff: Complex) {
        for (a, o) in dst.iter_mut().zip(src) {
            *a += coeff * *o;
        }
    }

    /// Scalar reference for [`super::reflect_about`].
    pub fn reflect_about(dst: &mut [Complex], psi: &[Complex], overlap: Complex) {
        for (a, p) in dst.iter_mut().zip(psi) {
            *a = overlap * *p * 2.0 - *a;
        }
    }

    /// Scalar reference for [`super::scale`].
    pub fn scale(amps: &mut [Complex], s: f64) {
        for a in amps.iter_mut() {
            *a = a.scale(s);
        }
    }

    /// Scalar reference for [`super::norm_sqr_into`].
    pub fn norm_sqr_into(amps: &[Complex], out: &mut [f64]) {
        for (o, a) in out.iter_mut().zip(amps) {
            *o = a.norm_sqr();
        }
    }

    /// Scalar reference for [`super::block_norm_sqr`].
    pub fn block_norm_sqr(chunk: &[Complex]) -> f64 {
        let mut lanes = [0.0f64; 4];
        for (j, a) in chunk.iter().enumerate() {
            lanes[j & 3] += a.norm_sqr();
        }
        fold_lanes(lanes)
    }

    /// Scalar reference for [`super::block_prob_mask`].
    pub fn block_prob_mask(base: usize, chunk: &[Complex], mask: usize) -> f64 {
        let mut lanes = [0.0f64; 4];
        for (j, a) in chunk.iter().enumerate() {
            if (base + j) & mask != 0 {
                lanes[j & 3] += a.norm_sqr();
            }
        }
        fold_lanes(lanes)
    }

    /// Scalar reference for [`super::block_inner`].
    pub fn block_inner(a: &[Complex], b: &[Complex]) -> Complex {
        let mut lanes = [ZERO; 2];
        for (j, (x, y)) in a.iter().zip(b).enumerate() {
            lanes[j & 1] += x.conj() * *y;
        }
        lanes[0] + lanes[1]
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 transcriptions: 2 complexes (4 × f64) per `__m256d`.
    //!
    //! Reductions keep a 4-lane accumulator whose *physical* lanes hold the
    //! *logical* stratified lanes in the order `[0, 2, 1, 3]` — that is what
    //! `unpacklo/unpackhi` across two consecutive loads naturally produce —
    //! and re-map on extraction, so the per-lane addition order is exactly
    //! the scalar reference's.

    use super::scalar;
    use crate::complex::Complex;
    use crate::matrix::Matrix;
    use std::arch::x86_64::*;

    /// A complex constant in the two broadcast layouts `cmul` consumes.
    #[derive(Clone, Copy)]
    struct CVec {
        /// `[re, im, re, im]`
        vec: __m256d,
        /// `[im, re, im, re]`
        swap: __m256d,
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cvec(c: Complex) -> CVec {
        CVec {
            vec: _mm256_setr_pd(c.re, c.im, c.re, c.im),
            swap: _mm256_setr_pd(c.im, c.re, c.im, c.re),
        }
    }

    /// `v * c` per packed complex, bitwise-equal to the scalar product:
    /// `addsub([vr·cr, vr·ci], [vi·ci, vi·cr]) = [vr·cr − vi·ci, vr·ci + vi·cr]`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cmul(v: __m256d, c: CVec) -> __m256d {
        let t0 = _mm256_mul_pd(_mm256_movedup_pd(v), c.vec);
        let t1 = _mm256_mul_pd(_mm256_permute_pd(v, 0b1111), c.swap);
        _mm256_addsub_pd(t0, t1)
    }

    /// `conj(a) * b` per packed complex. With `t1` sign-flipped on the odd
    /// lanes, `t0 + t1 = [ar·br + ai·bi, ar·bi − ai·br]`, matching the
    /// scalar `a.conj() * b` via `x − (−y) ≡ x + y` and `(−x)·y ≡ −(x·y)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn conj_mul(a: __m256d, b: __m256d, sign_odd: __m256d) -> __m256d {
        let t0 = _mm256_mul_pd(_mm256_movedup_pd(a), b);
        let t1 = _mm256_mul_pd(_mm256_permute_pd(a, 0b1111), _mm256_permute_pd(b, 0b0101));
        _mm256_add_pd(t0, _mm256_xor_pd(t1, sign_odd))
    }

    /// `[n_j, n_{j+2}, n_{j+1}, n_{j+3}]` for four consecutive complexes —
    /// physical lanes hold logical stratified lanes `[0, 2, 1, 3]`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn norm_sqr4(p: *const f64, j: usize) -> __m256d {
        let v0 = _mm256_loadu_pd(p.add(2 * j));
        let v1 = _mm256_loadu_pd(p.add(2 * j + 4));
        let x = _mm256_mul_pd(v0, v0);
        let y = _mm256_mul_pd(v1, v1);
        _mm256_add_pd(_mm256_unpacklo_pd(x, y), _mm256_unpackhi_pd(x, y))
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn apply_single_pairs(los: &mut [Complex], his: &mut [Complex], m: &Matrix) {
        debug_assert_eq!(los.len(), his.len());
        let pairs = los.len();
        let m00 = cvec(m[(0, 0)]);
        let m01 = cvec(m[(0, 1)]);
        let m10 = cvec(m[(1, 0)]);
        let m11 = cvec(m[(1, 1)]);
        let lo_p = los.as_mut_ptr() as *mut f64;
        let hi_p = his.as_mut_ptr() as *mut f64;
        let vec_pairs = pairs & !1;
        let mut i = 0;
        while i < vec_pairs {
            let a0 = _mm256_loadu_pd(lo_p.add(2 * i));
            let a1 = _mm256_loadu_pd(hi_p.add(2 * i));
            let lo = _mm256_add_pd(cmul(a0, m00), cmul(a1, m01));
            let hi = _mm256_add_pd(cmul(a0, m10), cmul(a1, m11));
            _mm256_storeu_pd(lo_p.add(2 * i), lo);
            _mm256_storeu_pd(hi_p.add(2 * i), hi);
            i += 2;
        }
        if i < pairs {
            scalar::apply_single_pairs(&mut los[i..], &mut his[i..], m);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn apply_single_run(amps: &mut [Complex], stride: usize, m: &Matrix) {
        if stride == 1 {
            apply_single_stride1(amps, m);
            return;
        }
        for block in amps.chunks_exact_mut(stride << 1) {
            let (los, his) = block.split_at_mut(stride);
            apply_single_pairs(los, his, m);
        }
    }

    /// `stride == 1`: blocks are adjacent `[lo, hi]` complex pairs. Two
    /// blocks per iteration, de-interleaved across 128-bit halves.
    #[target_feature(enable = "avx2")]
    unsafe fn apply_single_stride1(amps: &mut [Complex], m: &Matrix) {
        let m00 = cvec(m[(0, 0)]);
        let m01 = cvec(m[(0, 1)]);
        let m10 = cvec(m[(1, 0)]);
        let m11 = cvec(m[(1, 1)]);
        let p = amps.as_mut_ptr() as *mut f64;
        let blocks = amps.len() >> 1;
        let vec_blocks = blocks & !1;
        let mut b = 0;
        while b < vec_blocks {
            let v0 = _mm256_loadu_pd(p.add(4 * b));
            let v1 = _mm256_loadu_pd(p.add(4 * b + 4));
            let a0 = _mm256_permute2f128_pd(v0, v1, 0x20); // [lo0, lo1]
            let a1 = _mm256_permute2f128_pd(v0, v1, 0x31); // [hi0, hi1]
            let lo = _mm256_add_pd(cmul(a0, m00), cmul(a1, m01));
            let hi = _mm256_add_pd(cmul(a0, m10), cmul(a1, m11));
            _mm256_storeu_pd(p.add(4 * b), _mm256_permute2f128_pd(lo, hi, 0x20));
            _mm256_storeu_pd(p.add(4 * b + 4), _mm256_permute2f128_pd(lo, hi, 0x31));
            b += 2;
        }
        if b < blocks {
            scalar::apply_single_run(&mut amps[(b << 1)..], 1, m);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_scaled(dst: &mut [Complex], src: &[Complex], coeff: Complex) {
        let n = dst.len().min(src.len());
        let c = cvec(coeff);
        let dp = dst.as_mut_ptr() as *mut f64;
        let sp = src.as_ptr() as *const f64;
        let vec_n = n & !1;
        let mut j = 0;
        while j < vec_n {
            let d = _mm256_loadu_pd(dp.add(2 * j));
            let s = _mm256_loadu_pd(sp.add(2 * j));
            _mm256_storeu_pd(dp.add(2 * j), _mm256_add_pd(d, cmul(s, c)));
            j += 2;
        }
        while j < n {
            dst[j] += coeff * src[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn reflect_about(dst: &mut [Complex], psi: &[Complex], overlap: Complex) {
        let n = dst.len().min(psi.len());
        let c = cvec(overlap);
        let two = _mm256_set1_pd(2.0);
        let dp = dst.as_mut_ptr() as *mut f64;
        let pp = psi.as_ptr() as *const f64;
        let vec_n = n & !1;
        let mut j = 0;
        while j < vec_n {
            let d = _mm256_loadu_pd(dp.add(2 * j));
            let p = _mm256_loadu_pd(pp.add(2 * j));
            let r = _mm256_sub_pd(_mm256_mul_pd(cmul(p, c), two), d);
            _mm256_storeu_pd(dp.add(2 * j), r);
            j += 2;
        }
        while j < n {
            dst[j] = overlap * psi[j] * 2.0 - dst[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale(amps: &mut [Complex], s: f64) {
        let sv = _mm256_set1_pd(s);
        let p = amps.as_mut_ptr() as *mut f64;
        let n = amps.len();
        let vec_n = n & !1;
        let mut j = 0;
        while j < vec_n {
            _mm256_storeu_pd(
                p.add(2 * j),
                _mm256_mul_pd(_mm256_loadu_pd(p.add(2 * j)), sv),
            );
            j += 2;
        }
        while j < n {
            amps[j] = amps[j].scale(s);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn norm_sqr_into(amps: &[Complex], out: &mut [f64]) {
        let n = amps.len();
        let p = amps.as_ptr() as *const f64;
        let op = out.as_mut_ptr();
        let vec_n = n & !3;
        let mut j = 0;
        while j < vec_n {
            // Physical order [n0, n2, n1, n3] → natural order via 0b11011000.
            let ordered = _mm256_permute4x64_pd(norm_sqr4(p, j), 0b11011000);
            _mm256_storeu_pd(op.add(j), ordered);
            j += 4;
        }
        while j < n {
            *op.add(j) = amps[j].norm_sqr();
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn block_norm_sqr(chunk: &[Complex]) -> f64 {
        let p = chunk.as_ptr() as *const f64;
        let n = chunk.len();
        let vec_n = n & !3;
        let mut acc = _mm256_setzero_pd();
        let mut j = 0;
        while j < vec_n {
            acc = _mm256_add_pd(acc, norm_sqr4(p, j));
            j += 4;
        }
        let mut l = [0.0f64; 4];
        _mm256_storeu_pd(l.as_mut_ptr(), acc);
        let mut lanes = [l[0], l[2], l[1], l[3]];
        while j < n {
            lanes[j & 3] += chunk[j].norm_sqr();
            j += 1;
        }
        scalar::fold_lanes(lanes)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn block_prob_mask(base: usize, chunk: &[Complex], mask: usize) -> f64 {
        let p = chunk.as_ptr() as *const f64;
        let n = chunk.len();
        let vec_n = n & !3;
        let mut acc = _mm256_setzero_pd();
        // Basis indices in the physical lane order [j, j+2, j+1, j+3].
        let mut idx = _mm256_set_epi64x(
            (base + 3) as i64,
            (base + 1) as i64,
            (base + 2) as i64,
            base as i64,
        );
        let step = _mm256_set1_epi64x(4);
        let mvec = _mm256_set1_epi64x(mask as i64);
        let zero = _mm256_setzero_si256();
        let mut j = 0;
        while j < vec_n {
            let nsq = norm_sqr4(p, j);
            let is_zero = _mm256_cmpeq_epi64(_mm256_and_si256(idx, mvec), zero);
            let masked = _mm256_andnot_pd(_mm256_castsi256_pd(is_zero), nsq);
            acc = _mm256_add_pd(acc, masked);
            idx = _mm256_add_epi64(idx, step);
            j += 4;
        }
        let mut l = [0.0f64; 4];
        _mm256_storeu_pd(l.as_mut_ptr(), acc);
        let mut lanes = [l[0], l[2], l[1], l[3]];
        while j < n {
            if (base + j) & mask != 0 {
                lanes[j & 3] += chunk[j].norm_sqr();
            }
            j += 1;
        }
        scalar::fold_lanes(lanes)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn block_inner(a: &[Complex], b: &[Complex]) -> Complex {
        let n = a.len();
        let ap = a.as_ptr() as *const f64;
        let bp = b.as_ptr() as *const f64;
        let sign_odd = _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
        // [even.re, even.im, odd.re, odd.im]
        let mut acc = _mm256_setzero_pd();
        let vec_n = n & !1;
        let mut j = 0;
        while j < vec_n {
            let va = _mm256_loadu_pd(ap.add(2 * j));
            let vb = _mm256_loadu_pd(bp.add(2 * j));
            acc = _mm256_add_pd(acc, conj_mul(va, vb, sign_odd));
            j += 2;
        }
        let mut l = [0.0f64; 4];
        _mm256_storeu_pd(l.as_mut_ptr(), acc);
        let mut lanes = [Complex::new(l[0], l[1]), Complex::new(l[2], l[3])];
        while j < n {
            lanes[j & 1] += a[j].conj() * b[j];
            j += 1;
        }
        lanes[0] + lanes[1]
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON transcriptions: 1 complex (2 × f64) per `float64x2_t`.
    //!
    //! Reductions keep one accumulator per stratified lane pair, in natural
    //! logical order, so no extraction permutation is needed.

    use super::scalar;
    use crate::complex::Complex;
    use crate::matrix::Matrix;
    use std::arch::aarch64::*;

    /// A complex constant in the two layouts `cmul` consumes.
    #[derive(Clone, Copy)]
    struct CVec {
        /// `[re, im]`
        vec: float64x2_t,
        /// `[im, re]`
        swap: float64x2_t,
    }

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn cvec(c: Complex) -> CVec {
        let vec = vld1q_f64([c.re, c.im].as_ptr());
        CVec {
            vec,
            swap: vextq_f64::<1>(vec, vec),
        }
    }

    /// `sign` masks for flipping one f64 lane's sign bit via XOR.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn sign_even() -> float64x2_t {
        vld1q_f64([-0.0f64, 0.0].as_ptr())
    }

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn sign_odd() -> float64x2_t {
        vld1q_f64([0.0f64, -0.0].as_ptr())
    }

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn feor(a: float64x2_t, b: float64x2_t) -> float64x2_t {
        vreinterpretq_f64_u64(veorq_u64(
            vreinterpretq_u64_f64(a),
            vreinterpretq_u64_f64(b),
        ))
    }

    /// `v * c` for one complex: `[vr·cr + (−(vi·ci)), vr·ci + vi·cr]`,
    /// bitwise-equal to the scalar product via `x − y ≡ x + (−y)`.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn cmul(v: float64x2_t, c: CVec, sign_even: float64x2_t) -> float64x2_t {
        let t0 = vmulq_f64(vdupq_laneq_f64::<0>(v), c.vec);
        let t1 = vmulq_f64(vdupq_laneq_f64::<1>(v), c.swap);
        vaddq_f64(t0, feor(t1, sign_even))
    }

    /// `conj(a) * b` for one complex: `[ar·br + ai·bi, ar·bi − ai·br]`.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn conj_mul(a: float64x2_t, b: float64x2_t, sign_odd: float64x2_t) -> float64x2_t {
        let t0 = vmulq_f64(vdupq_laneq_f64::<0>(a), b);
        let t1 = vmulq_f64(vdupq_laneq_f64::<1>(a), vextq_f64::<1>(b, b));
        vaddq_f64(t0, feor(t1, sign_odd))
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn apply_single_pairs(los: &mut [Complex], his: &mut [Complex], m: &Matrix) {
        debug_assert_eq!(los.len(), his.len());
        let pairs = los.len();
        let m00 = cvec(m[(0, 0)]);
        let m01 = cvec(m[(0, 1)]);
        let m10 = cvec(m[(1, 0)]);
        let m11 = cvec(m[(1, 1)]);
        let se = sign_even();
        let lo_p = los.as_mut_ptr() as *mut f64;
        let hi_p = his.as_mut_ptr() as *mut f64;
        for i in 0..pairs {
            let a0 = vld1q_f64(lo_p.add(2 * i));
            let a1 = vld1q_f64(hi_p.add(2 * i));
            let lo = vaddq_f64(cmul(a0, m00, se), cmul(a1, m01, se));
            let hi = vaddq_f64(cmul(a0, m10, se), cmul(a1, m11, se));
            vst1q_f64(lo_p.add(2 * i), lo);
            vst1q_f64(hi_p.add(2 * i), hi);
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn apply_single_run(amps: &mut [Complex], stride: usize, m: &Matrix) {
        for block in amps.chunks_exact_mut(stride << 1) {
            let (los, his) = block.split_at_mut(stride);
            apply_single_pairs(los, his, m);
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn add_scaled(dst: &mut [Complex], src: &[Complex], coeff: Complex) {
        let n = dst.len().min(src.len());
        let c = cvec(coeff);
        let se = sign_even();
        let dp = dst.as_mut_ptr() as *mut f64;
        let sp = src.as_ptr() as *const f64;
        for j in 0..n {
            let d = vld1q_f64(dp.add(2 * j));
            let s = vld1q_f64(sp.add(2 * j));
            vst1q_f64(dp.add(2 * j), vaddq_f64(d, cmul(s, c, se)));
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn reflect_about(dst: &mut [Complex], psi: &[Complex], overlap: Complex) {
        let n = dst.len().min(psi.len());
        let c = cvec(overlap);
        let se = sign_even();
        let two = vdupq_n_f64(2.0);
        let dp = dst.as_mut_ptr() as *mut f64;
        let pp = psi.as_ptr() as *const f64;
        for j in 0..n {
            let d = vld1q_f64(dp.add(2 * j));
            let p = vld1q_f64(pp.add(2 * j));
            vst1q_f64(dp.add(2 * j), vsubq_f64(vmulq_f64(cmul(p, c, se), two), d));
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn scale(amps: &mut [Complex], s: f64) {
        let sv = vdupq_n_f64(s);
        let p = amps.as_mut_ptr() as *mut f64;
        for j in 0..amps.len() {
            vst1q_f64(p.add(2 * j), vmulq_f64(vld1q_f64(p.add(2 * j)), sv));
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn norm_sqr_into(amps: &[Complex], out: &mut [f64]) {
        let n = amps.len();
        let p = amps.as_ptr() as *const f64;
        let op = out.as_mut_ptr();
        let vec_n = n & !1;
        let mut j = 0;
        while j < vec_n {
            let v0 = vld1q_f64(p.add(2 * j));
            let v1 = vld1q_f64(p.add(2 * j + 2));
            // vpaddq([re0², im0²], [re1², im1²]) = [n0, n1]
            vst1q_f64(op.add(j), vpaddq_f64(vmulq_f64(v0, v0), vmulq_f64(v1, v1)));
            j += 2;
        }
        while j < n {
            *op.add(j) = amps[j].norm_sqr();
            j += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn block_norm_sqr(chunk: &[Complex]) -> f64 {
        let p = chunk.as_ptr() as *const f64;
        let n = chunk.len();
        let vec_n = n & !3;
        let mut acc01 = vdupq_n_f64(0.0);
        let mut acc23 = vdupq_n_f64(0.0);
        let mut j = 0;
        while j < vec_n {
            let v0 = vld1q_f64(p.add(2 * j));
            let v1 = vld1q_f64(p.add(2 * j + 2));
            let v2 = vld1q_f64(p.add(2 * j + 4));
            let v3 = vld1q_f64(p.add(2 * j + 6));
            acc01 = vaddq_f64(acc01, vpaddq_f64(vmulq_f64(v0, v0), vmulq_f64(v1, v1)));
            acc23 = vaddq_f64(acc23, vpaddq_f64(vmulq_f64(v2, v2), vmulq_f64(v3, v3)));
            j += 4;
        }
        let mut lanes = [
            vgetq_lane_f64::<0>(acc01),
            vgetq_lane_f64::<1>(acc01),
            vgetq_lane_f64::<0>(acc23),
            vgetq_lane_f64::<1>(acc23),
        ];
        while j < n {
            lanes[j & 3] += chunk[j].norm_sqr();
            j += 1;
        }
        scalar::fold_lanes(lanes)
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn block_prob_mask(base: usize, chunk: &[Complex], mask: usize) -> f64 {
        let p = chunk.as_ptr() as *const f64;
        let n = chunk.len();
        let vec_n = n & !3;
        let mut acc01 = vdupq_n_f64(0.0);
        let mut acc23 = vdupq_n_f64(0.0);
        let mvec = vdupq_n_u64(mask as u64);
        let mut idx01 = vld1q_u64([base as u64, (base + 1) as u64].as_ptr());
        let mut idx23 = vld1q_u64([(base + 2) as u64, (base + 3) as u64].as_ptr());
        let step = vdupq_n_u64(4);
        let mut j = 0;
        while j < vec_n {
            let v0 = vld1q_f64(p.add(2 * j));
            let v1 = vld1q_f64(p.add(2 * j + 2));
            let v2 = vld1q_f64(p.add(2 * j + 4));
            let v3 = vld1q_f64(p.add(2 * j + 6));
            let n01 = vpaddq_f64(vmulq_f64(v0, v0), vmulq_f64(v1, v1));
            let n23 = vpaddq_f64(vmulq_f64(v2, v2), vmulq_f64(v3, v3));
            // vtstq: all-ones where (idx & mask) != 0.
            let hit01 = vtstq_u64(idx01, mvec);
            let hit23 = vtstq_u64(idx23, mvec);
            acc01 = vaddq_f64(
                acc01,
                vreinterpretq_f64_u64(vandq_u64(hit01, vreinterpretq_u64_f64(n01))),
            );
            acc23 = vaddq_f64(
                acc23,
                vreinterpretq_f64_u64(vandq_u64(hit23, vreinterpretq_u64_f64(n23))),
            );
            idx01 = vaddq_u64(idx01, step);
            idx23 = vaddq_u64(idx23, step);
            j += 4;
        }
        let mut lanes = [
            vgetq_lane_f64::<0>(acc01),
            vgetq_lane_f64::<1>(acc01),
            vgetq_lane_f64::<0>(acc23),
            vgetq_lane_f64::<1>(acc23),
        ];
        while j < n {
            if (base + j) & mask != 0 {
                lanes[j & 3] += chunk[j].norm_sqr();
            }
            j += 1;
        }
        scalar::fold_lanes(lanes)
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn block_inner(a: &[Complex], b: &[Complex]) -> Complex {
        let n = a.len();
        let ap = a.as_ptr() as *const f64;
        let bp = b.as_ptr() as *const f64;
        let so = sign_odd();
        let mut acc0 = vdupq_n_f64(0.0);
        let mut acc1 = vdupq_n_f64(0.0);
        let vec_n = n & !1;
        let mut j = 0;
        while j < vec_n {
            acc0 = vaddq_f64(
                acc0,
                conj_mul(vld1q_f64(ap.add(2 * j)), vld1q_f64(bp.add(2 * j)), so),
            );
            acc1 = vaddq_f64(
                acc1,
                conj_mul(
                    vld1q_f64(ap.add(2 * j + 2)),
                    vld1q_f64(bp.add(2 * j + 2)),
                    so,
                ),
            );
            j += 2;
        }
        let mut lanes = [
            Complex::new(vgetq_lane_f64::<0>(acc0), vgetq_lane_f64::<1>(acc0)),
            Complex::new(vgetq_lane_f64::<0>(acc1), vgetq_lane_f64::<1>(acc1)),
        ];
        while j < n {
            lanes[j & 1] += a[j].conj() * b[j];
            j += 1;
        }
        lanes[0] + lanes[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::FRAC_1_SQRT_2;

    /// Deterministic pseudo-random amplitude buffer (splitmix64).
    fn buf(len: usize, seed: u64) -> Vec<Complex> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        (0..len)
            .map(|_| {
                let re = (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                let im = (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                Complex::new(re, im)
            })
            .collect()
    }

    fn hadamard() -> Matrix {
        Matrix::from_rows(
            2,
            2,
            &[
                Complex::real(FRAC_1_SQRT_2),
                Complex::real(FRAC_1_SQRT_2),
                Complex::real(FRAC_1_SQRT_2),
                Complex::real(-FRAC_1_SQRT_2),
            ],
        )
    }

    fn bits(v: &[Complex]) -> Vec<(u64, u64)> {
        v.iter().map(|c| (c.re.to_bits(), c.im.to_bits())).collect()
    }

    const SIZES: [usize; 8] = [1, 2, 3, 7, 64, 1000, 4096, 5000];

    #[test]
    fn dispatched_reductions_match_scalar_reference() {
        for &n in &SIZES {
            let a = buf(n, 1);
            let b = buf(n, 2);
            assert_eq!(
                block_norm_sqr(&a).to_bits(),
                scalar::block_norm_sqr(&a).to_bits(),
                "norm n={n}"
            );
            for &(base, mask) in &[(0usize, 1usize), (4096, 6), (8192, 1 << 10)] {
                assert_eq!(
                    block_prob_mask(base, &a, mask).to_bits(),
                    scalar::block_prob_mask(base, &a, mask).to_bits(),
                    "prob n={n} base={base} mask={mask}"
                );
            }
            let d = block_inner(&a, &b);
            let s = scalar::block_inner(&a, &b);
            assert_eq!(d.re.to_bits(), s.re.to_bits(), "inner re n={n}");
            assert_eq!(d.im.to_bits(), s.im.to_bits(), "inner im n={n}");
        }
    }

    #[test]
    fn dispatched_maps_match_scalar_reference() {
        let m = hadamard();
        for &pairs in &SIZES {
            let (mut lo_a, mut hi_a) = (buf(pairs, 3), buf(pairs, 4));
            let (mut lo_b, mut hi_b) = (lo_a.clone(), hi_a.clone());
            apply_single_pairs(&mut lo_a, &mut hi_a, &m);
            scalar::apply_single_pairs(&mut lo_b, &mut hi_b, &m);
            assert_eq!(bits(&lo_a), bits(&lo_b), "pairs lo n={pairs}");
            assert_eq!(bits(&hi_a), bits(&hi_b), "pairs hi n={pairs}");

            let coeff = Complex::new(0.3, -0.7);
            let src = buf(pairs, 5);
            let (mut d_a, mut d_b) = (buf(pairs, 6), Vec::new());
            d_b.extend_from_slice(&d_a);
            add_scaled(&mut d_a, &src, coeff);
            scalar::add_scaled(&mut d_b, &src, coeff);
            assert_eq!(bits(&d_a), bits(&d_b), "axpy n={pairs}");

            let overlap = Complex::new(-0.25, 0.5);
            let psi = buf(pairs, 7);
            let (mut r_a, mut r_b) = (buf(pairs, 8), Vec::new());
            r_b.extend_from_slice(&r_a);
            reflect_about(&mut r_a, &psi, overlap);
            scalar::reflect_about(&mut r_b, &psi, overlap);
            assert_eq!(bits(&r_a), bits(&r_b), "reflect n={pairs}");

            let (mut s_a, mut s_b) = (buf(pairs, 9), Vec::new());
            s_b.extend_from_slice(&s_a);
            scale(&mut s_a, 1.337);
            scalar::scale(&mut s_b, 1.337);
            assert_eq!(bits(&s_a), bits(&s_b), "scale n={pairs}");

            let probs_src = buf(pairs, 10);
            let (mut p_a, mut p_b) = (vec![0.0; pairs], vec![0.0; pairs]);
            norm_sqr_into(&probs_src, &mut p_a);
            scalar::norm_sqr_into(&probs_src, &mut p_b);
            let pa: Vec<u64> = p_a.iter().map(|x| x.to_bits()).collect();
            let pb: Vec<u64> = p_b.iter().map(|x| x.to_bits()).collect();
            assert_eq!(pa, pb, "norm_sqr_into n={pairs}");
        }
    }

    #[test]
    fn dispatched_gate_runs_match_scalar_at_all_strides() {
        let m = hadamard();
        for &stride in &[1usize, 2, 4, 64, 2048] {
            for &blocks in &[1usize, 2, 3, 5] {
                let len = blocks * (stride << 1);
                let mut a = buf(len, 11);
                let mut b = a.clone();
                apply_single_run(&mut a, stride, &m);
                scalar::apply_single_run(&mut b, stride, &m);
                assert_eq!(bits(&a), bits(&b), "run stride={stride} blocks={blocks}");
            }
        }
    }

    #[test]
    fn force_is_clamped_to_hardware() {
        // Forcing an unavailable level falls back to scalar rather than
        // executing illegal instructions.
        let unavailable = if supported() == SimdLevel::Avx2 {
            SimdLevel::Neon
        } else {
            SimdLevel::Avx2
        };
        force(Some(unavailable));
        assert_eq!(active(), SimdLevel::Scalar);
        force(None);
        assert_eq!(active(), detected());
    }

    #[test]
    fn level_names_are_stable() {
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
        assert_eq!(SimdLevel::Neon.name(), "neon");
    }
}
