//! Sparse pure-state simulation: amplitudes keyed by basis index.
//!
//! [`SparseState`] stores only (numerically) nonzero amplitudes in an
//! ordered map, so memory and per-gate time scale with the **support**
//! of the state rather than the `2^n` dimension. This is exactly the
//! structure the paper's procedure A3 exposes: its register `|i⟩|h⟩|l⟩`
//! lives in a `2^{2k+2}`-dimensional space but every reachable state is
//! supported on at most `2·2^{2k}` basis states (index register times the
//! `h` branch; the `l` branch only populates during the marking round) —
//! and diagonal/permutation structured operators (`S_k`, `V_x`, `W_x`,
//! `R_x`) never grow the support at all. Recognizers over `O(log n)` live
//! qubits therefore run in support-proportional memory, and the
//! `O(1)`-per-streamed-bit updates of
//! [`GroverLayout`](crate::GroverLayout) touch at most four map entries.
//!
//! Dense Hadamard sweeps (`U_k`) still cost `O(support · 2)` per qubit
//! and can double the support, as they must — sparsity is a property of
//! the states the workload reaches, not a universal speed-up. The
//! cross-backend equivalence suite pins this backend to the dense
//! reference at fidelity `≥ 1 − 1e−9`.

use crate::backend::QuantumBackend;
use crate::complex::{Complex, ONE, ZERO};
use crate::gate::Gate;
use crate::matrix::Matrix;
use crate::snapshot::{SnapshotError, StateSnapshot};
use crate::state::StateVector;
use rand::Rng;
use std::collections::BTreeMap;

/// Amplitudes with squared magnitude below this are dropped from the map
/// (well under every tolerance the workspace tests at, and far above
/// f64 rounding noise accumulation over any circuit we run).
pub const SPARSE_PRUNE_EPS: f64 = 1e-30;

/// A pure quantum state storing only its nonzero amplitudes.
///
/// The map is ordered ([`BTreeMap`]) so iteration — and therefore
/// sampling, probability sums and `Debug` output — is deterministic.
///
/// `prune_eps` is the squared-magnitude eviction threshold, normally
/// [`SPARSE_PRUNE_EPS`]. The adaptive backend runs its sparse phase in
/// **exact mode** (`prune_eps = 0.0`: only exact zeros are evicted), so
/// even sub-`1e-15` near-cancellation residues — which later gates remix
/// into nonzero amplitudes — stay bit-for-bit aligned with the dense
/// reference.
#[derive(Clone, PartialEq)]
pub struct SparseState {
    n: usize,
    amps: BTreeMap<usize, Complex>,
    prune_eps: f64,
}

impl SparseState {
    /// Read-only view of the stored `(basis index, amplitude)` pairs in
    /// increasing index order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, Complex)> + '_ {
        self.amps.iter().map(|(&b, &a)| (b, a))
    }

    /// Number of explicitly stored amplitudes — the same value as
    /// [`QuantumBackend::support`], exposed inherently so audit code can
    /// assert on it without importing the backend trait. This is the
    /// number the pruning invariant bounds: every stored entry has
    /// squared magnitude above [`SPARSE_PRUNE_EPS`].
    pub fn support_len(&self) -> usize {
        self.amps.len()
    }

    /// The pruning-audit hook: panics if any stored amplitude has been
    /// driven to (numerical) zero without being evicted — i.e. if the
    /// support has silently grown past the state's true support. The
    /// cross-backend equivalence suite calls this after every operation
    /// it checks.
    pub fn assert_support_pruned(&self) {
        for (&b, a) in &self.amps {
            assert!(
                a.norm_sqr() > self.prune_eps,
                "unpruned zero amplitude retained at basis index {b}: {a:?}"
            );
        }
    }

    /// Exact densification: scatters the support into a full amplitude
    /// vector with exact `+0.0` off the support, **without** the
    /// renormalization `to_dense` applies. This is the adaptive backend's
    /// promotion path — scaling by `1/norm` (even with `norm ≈ 1`) would
    /// perturb amplitude bits and break its bit-for-bit-equals-dense
    /// contract.
    pub(crate) fn densify_exact(&self) -> StateVector {
        assert!(self.n <= 28, "dense representation limited to 28 qubits");
        let mut amps = vec![ZERO; 1usize << self.n];
        for (&b, &a) in &self.amps {
            amps[b] = a;
        }
        StateVector::from_amplitudes_unchecked(amps)
    }

    /// Switches this state to exact mode: only exact zeros are evicted
    /// from the support. The adaptive backend's sparse phase runs here —
    /// it is what makes "adaptive equals dense digit for digit" hold
    /// through near-cancellations. Call on a freshly initialized state
    /// (past pruning is not undone).
    pub(crate) fn set_exact_mode(&mut self) {
        self.prune_eps = 0.0;
    }

    /// [`QuantumBackend::restore`] with an explicit eviction threshold
    /// (the adaptive backend restores in exact mode so residues carried
    /// by its own snapshots survive the round trip).
    pub(crate) fn restore_with_eps(snap: &StateSnapshot, eps: f64) -> Result<Self, SnapshotError> {
        let dec = snap.decode()?;
        if dec.num_qubits >= usize::BITS as usize {
            return Err(SnapshotError::Malformed("qubit count out of range"));
        }
        let mut amps = BTreeMap::new();
        for (b, a) in dec.entries {
            // Dense encodings carry explicit zeros; keep exactly what the
            // target mode's setters would have kept.
            Self::insert_pruned(&mut amps, b, a, eps);
        }
        Ok(SparseState {
            n: dec.num_qubits,
            amps,
            prune_eps: eps,
        })
    }

    fn insert_pruned(map: &mut BTreeMap<usize, Complex>, b: usize, a: Complex, eps: f64) {
        if a.norm_sqr() > eps {
            map.insert(b, a);
        }
    }

    fn set(&mut self, b: usize, a: Complex) {
        if a.norm_sqr() > self.prune_eps {
            self.amps.insert(b, a);
        } else {
            self.amps.remove(&b);
        }
    }

    fn scale_all(&mut self, s: f64) {
        for a in self.amps.values_mut() {
            *a = a.scale(s);
        }
    }
}

impl QuantumBackend for SparseState {
    fn zero(n: usize) -> Self {
        assert!(n < usize::BITS as usize, "basis indices must fit in usize");
        let mut amps = BTreeMap::new();
        amps.insert(0usize, ONE);
        SparseState {
            n,
            amps,
            prune_eps: SPARSE_PRUNE_EPS,
        }
    }

    fn basis(n: usize, b: usize) -> Self {
        assert!(n < usize::BITS as usize, "basis indices must fit in usize");
        // n ≤ 63, so the shift cannot overflow.
        assert!(b < (1usize << n), "basis index out of range");
        let mut amps = BTreeMap::new();
        amps.insert(b, ONE);
        SparseState {
            n,
            amps,
            prune_eps: SPARSE_PRUNE_EPS,
        }
    }

    fn uniform(n: usize) -> Self {
        assert!(n <= 28, "a uniform state is dense; limited to 28 qubits");
        let len = 1usize << n;
        let amp = Complex::real(1.0 / (len as f64).sqrt());
        SparseState {
            n,
            amps: (0..len).map(|b| (b, amp)).collect(),
            prune_eps: SPARSE_PRUNE_EPS,
        }
    }

    fn from_amplitudes(amps: Vec<Complex>) -> Self {
        let len = amps.len();
        assert!(len.is_power_of_two() && len > 0, "length must be 2^n");
        let n = len.trailing_zeros() as usize;
        // Chunked like the dense constructor, so both backends scale a
        // shared amplitude vector by bitwise-identical factors.
        let norm = crate::par::chunked_norm_sqr(&amps).sqrt();
        assert!(
            norm > crate::state::STATE_EPS,
            "cannot normalize the zero vector"
        );
        let inv = 1.0 / norm;
        let mut map = BTreeMap::new();
        for (b, a) in amps.into_iter().enumerate() {
            Self::insert_pruned(&mut map, b, a.scale(inv), SPARSE_PRUNE_EPS);
        }
        SparseState {
            n,
            amps: map,
            prune_eps: SPARSE_PRUNE_EPS,
        }
    }

    fn num_qubits(&self) -> usize {
        self.n
    }

    fn support(&self) -> usize {
        self.amps.len()
    }

    fn amp(&self, b: usize) -> Complex {
        debug_assert!(b < (1usize << self.n));
        self.amps.get(&b).copied().unwrap_or(ZERO)
    }

    fn norm(&self) -> f64 {
        // Chunk-ordered per the summation contract (crate::par): the
        // support iterates in increasing index order, so grouping terms
        // by REDUCE_CHUNK block reproduces the dense reduction bit for
        // bit — what keeps the adaptive backend's sparse phase on the
        // dense backend's digits.
        crate::par::chunked_sum_sparse(self.amps.iter().map(|(&b, a)| (b, a.norm_sqr()))).sqrt()
    }

    fn normalize(&mut self) {
        let norm = self.norm();
        assert!(
            norm > crate::state::STATE_EPS,
            "cannot normalize the zero vector"
        );
        self.scale_all(1.0 / norm);
    }

    fn inner(&self, other: &Self) -> Complex {
        assert_eq!(self.n, other.n, "qubit count mismatch");
        // Sum over the smaller support, probing the larger.
        let (small, large, conj_small) = if self.amps.len() <= other.amps.len() {
            (&self.amps, &other.amps, true)
        } else {
            (&other.amps, &self.amps, false)
        };
        small
            .iter()
            .filter_map(|(b, &a)| {
                large.get(b).map(|&o| {
                    if conj_small {
                        // a is ⟨self|'s ket entry: conj(self_b) · other_b.
                        a.conj() * o
                    } else {
                        o.conj() * a
                    }
                })
            })
            .sum()
    }

    fn to_dense(&self) -> StateVector {
        assert!(self.n <= 28, "dense representation limited to 28 qubits");
        let mut amps = vec![ZERO; 1usize << self.n];
        for (&b, &a) in &self.amps {
            amps[b] = a;
        }
        StateVector::from_amplitudes(amps)
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::encode_sparse(self.n, self.entries())
    }

    fn restore(snap: &StateSnapshot) -> Result<Self, SnapshotError> {
        Self::restore_with_eps(snap, SPARSE_PRUNE_EPS)
    }

    fn apply_gate(&mut self, gate: &Gate) {
        assert!(
            gate.is_well_formed(),
            "gate operands must be distinct: {gate:?}"
        );
        assert!(
            gate.max_qubit() < self.n,
            "gate {gate:?} out of range for {} qubits",
            self.n
        );
        match crate::backend::gate_kernel(gate) {
            crate::backend::GateKernel::Diagonal { mask, phase } => {
                self.phase_if(|b| b & mask == mask, phase)
            }
            crate::backend::GateKernel::ControlledFlip { controls, xor } => {
                self.permute_in_place(|b| if b & controls == controls { b ^ xor } else { b })
            }
            crate::backend::GateKernel::SwapBits { a, b } => {
                self.permute_in_place(|i| {
                    let ba = (i >> a) & 1;
                    let bb = (i >> b) & 1;
                    if ba != bb {
                        i ^ (1usize << a) ^ (1usize << b)
                    } else {
                        i
                    }
                });
            }
            crate::backend::GateKernel::Single { q } => self.apply_single(q, &gate.local_matrix()),
        }
    }

    fn apply_single(&mut self, q: usize, m: &Matrix) {
        assert!(q < self.n, "qubit {q} out of range for {} qubits", self.n);
        assert_eq!((m.rows(), m.cols()), (2, 2), "expected 2x2 matrix");
        let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
        let bit = 1usize << q;
        let eps = self.prune_eps;
        let mut next = BTreeMap::new();
        for (&b, &a) in &self.amps {
            let lo = b & !bit;
            let hi = lo | bit;
            if b & bit == 0 {
                let a1 = self.amps.get(&hi).copied().unwrap_or(ZERO);
                Self::insert_pruned(&mut next, lo, m00 * a + m01 * a1, eps);
                Self::insert_pruned(&mut next, hi, m10 * a + m11 * a1, eps);
            } else if !self.amps.contains_key(&lo) {
                // The pair was not visited from its low index.
                Self::insert_pruned(&mut next, lo, m01 * a, eps);
                Self::insert_pruned(&mut next, hi, m11 * a, eps);
            }
        }
        self.amps = next;
    }

    fn phase_if<F: Fn(usize) -> bool + Sync>(&mut self, pred: F, phase: Complex) {
        // Diagonal: zero amplitudes stay zero, so only the support moves.
        for (&b, a) in self.amps.iter_mut() {
            if pred(b) {
                *a *= phase;
            }
        }
    }

    fn permute_in_place<F: Fn(usize) -> usize>(&mut self, f: F) {
        // A permutation re-keys the support without changing its size.
        let mut next = BTreeMap::new();
        for (&b, &a) in &self.amps {
            let t = f(b);
            debug_assert_eq!(f(t), b, "permutation must be an involution");
            next.insert(t, a);
        }
        self.amps = next;
    }

    fn store_amplitudes(&mut self, writes: &[(usize, Complex)]) {
        for &(idx, val) in writes {
            self.set(idx, val);
        }
    }

    fn reflect_about(&mut self, psi: &Self) {
        assert_eq!(self.n, psi.n, "qubit count mismatch");
        let overlap = psi.inner(self);
        let two_overlap = overlap * 2.0;
        // s ← 2⟨ψ|s⟩·ψ − s over the union of supports.
        let eps = self.prune_eps;
        let mut next = BTreeMap::new();
        for (&b, &p) in &psi.amps {
            Self::insert_pruned(&mut next, b, two_overlap * p - self.amp(b), eps);
        }
        for (&b, &a) in &self.amps {
            if !psi.amps.contains_key(&b) {
                Self::insert_pruned(&mut next, b, -a, eps);
            }
        }
        self.amps = next;
    }

    fn add_scaled(&mut self, other: &Self, coeff: Complex) {
        assert_eq!(self.n, other.n, "qubit count mismatch");
        for (&b, &o) in &other.amps {
            let v = self.amp(b) + coeff * o;
            self.set(b, v);
        }
    }

    fn prob_one(&self, q: usize) -> f64 {
        assert!(q < self.n);
        let mask = 1usize << q;
        self.probability_where(|b| b & mask != 0)
    }

    fn probability_where<F: Fn(usize) -> bool + Sync>(&self, pred: F) -> f64 {
        // Chunk-ordered (see `norm`): bitwise equal to the dense
        // chunked_prob_where over the equivalent dense vector.
        crate::par::chunked_sum_sparse(
            self.amps
                .iter()
                .map(|(&b, a)| (b, if pred(b) { a.norm_sqr() } else { 0.0 })),
        )
    }

    fn probabilities(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.probabilities_into(&mut out);
        out
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        assert!(self.n <= 28, "dense distribution limited to 28 qubits");
        out.clear();
        out.resize(1usize << self.n, 0.0);
        for (&b, &a) in &self.amps {
            out[b] = a.norm_sqr();
        }
    }

    fn collapse_qubit(&mut self, q: usize, outcome: u8) {
        let mask = 1usize << q;
        self.amps.retain(|&b, _| u8::from(b & mask != 0) == outcome);
        self.normalize();
    }

    fn sample_basis<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // Mirrors the dense prefix scan exactly: skip whole REDUCE_CHUNK
        // blocks by their stratified block mass, then walk the block the
        // variate lands in. Off-support terms are `+0.0` in both the
        // block sums and the walk, so every skip/return decision is
        // bitwise identical to the dense backend's and the same random
        // variate yields the same sample.
        let mut u: f64 = rng.gen();
        let mut last = 0usize;
        let dim = 1usize << self.n;
        let chunk = crate::par::REDUCE_CHUNK;
        let mut base = 0usize;
        while base < dim {
            let end = dim.min(base + chunk);
            let mut lanes = [0.0f64; crate::par::REDUCE_LANES];
            for (&b, a) in self.amps.range(base..end) {
                // Block bases are multiples of the lane count, so the
                // global index selects the same lane as the in-block one.
                lanes[b & (crate::par::REDUCE_LANES - 1)] += a.norm_sqr();
            }
            let s = crate::simd::scalar::fold_lanes(lanes);
            if u > s {
                u -= s;
                base = end;
                continue;
            }
            for (&b, a) in self.amps.range(base..end) {
                last = b;
                u -= a.norm_sqr();
                if u <= 0.0 {
                    return b;
                }
            }
            base = end;
        }
        self.amps.keys().next_back().copied().unwrap_or(last)
    }
}

impl std::fmt::Debug for SparseState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "SparseState({} qubits, support {}) [",
            self.n,
            self.amps.len()
        )?;
        for (&b, &a) in &self.amps {
            if !a.is_approx_zero(1e-12) {
                writeln!(f, "  |{:0width$b}⟩: {:?}", b, a, width = self.n)?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f64 = 1e-10;

    #[test]
    fn zero_and_basis_have_unit_support() {
        let z = SparseState::zero(5);
        assert_eq!(z.support(), 1);
        assert!(z.amp(0).approx_eq(ONE, EPS));
        let b = SparseState::basis(5, 19);
        assert_eq!(b.support(), 1);
        assert!(b.amp(19).approx_eq(ONE, EPS));
        assert!((b.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn zero_beyond_dense_limit_is_cheap() {
        // The whole point of the sparse backend: 50 "qubits" cost one entry.
        let s = SparseState::zero(50);
        assert_eq!(s.support(), 1);
        assert_eq!(s.num_qubits(), 50);
    }

    #[test]
    fn hadamard_grows_support_geometrically() {
        let mut s = SparseState::zero(10);
        for q in 0..4 {
            s.apply_gate(&Gate::H(q));
            assert_eq!(s.support(), 1 << (q + 1));
        }
        assert!((s.norm() - 1.0).abs() < EPS);
        for b in 0..16 {
            assert!(s.amp(b).approx_eq(Complex::real(0.25), EPS));
        }
    }

    #[test]
    fn matches_dense_on_bell_state() {
        let mut sp = SparseState::zero(2);
        let mut dv = StateVector::zero(2);
        for g in [
            Gate::H(0),
            Gate::Cnot {
                control: 0,
                target: 1,
            },
        ] {
            sp.apply_gate(&g);
            dv.apply(&g);
        }
        assert!((sp.to_dense().fidelity(&dv) - 1.0).abs() < 1e-12);
        assert_eq!(sp.support(), 2);
    }

    #[test]
    fn diagonal_and_permutation_ops_preserve_support() {
        let mut s = SparseState::zero(6);
        s.apply_hadamard_all(&[0, 1, 2]);
        let before = s.support();
        s.phase_if(|b| b % 3 == 1, Complex::from_phase(0.7));
        s.permute_in_place(|b| b ^ 0b101);
        s.apply_gate(&Gate::Cz(0, 2));
        s.apply_gate(&Gate::X(4));
        assert_eq!(s.support(), before);
        assert!((s.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn collapse_shrinks_support_and_renormalizes() {
        let mut s = SparseState::uniform(3);
        assert_eq!(s.support(), 8);
        s.collapse_qubit(1, 1);
        assert_eq!(s.support(), 4);
        assert!((s.norm() - 1.0).abs() < EPS);
        assert_eq!(s.prob_one(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "basis index out of range")]
    fn basis_out_of_range_panics_at_max_width() {
        let _ = SparseState::basis(63, usize::MAX);
    }

    #[test]
    #[should_panic(expected = "cannot normalize")]
    fn collapse_impossible_outcome_panics() {
        let mut s = SparseState::zero(2);
        s.collapse_qubit(0, 1);
    }

    #[test]
    fn measurement_statistics_match_dense() {
        let mut sp = SparseState::zero(1);
        sp.apply_gate(&Gate::Ry(0, 2.0 * (0.3f64.sqrt()).asin()));
        assert!((sp.prob_one(0) - 0.3).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let ones: u32 = (0..trials)
            .map(|_| u32::from(sp.clone().measure_qubit(0, &mut rng)))
            .sum();
        let freq = f64::from(ones) / f64::from(trials);
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn sample_basis_distribution_uniform() {
        let s = SparseState::uniform(2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[s.sample_basis(&mut rng)] += 1;
        }
        for &c in &counts {
            let f = f64::from(c) / 8000.0;
            assert!((f - 0.25).abs() < 0.03, "count fraction {f}");
        }
    }

    #[test]
    fn inner_product_over_disjoint_support_is_zero() {
        let a = SparseState::basis(4, 3);
        let b = SparseState::basis(4, 12);
        assert!(a.inner(&b).is_approx_zero(EPS));
        assert!((a.inner(&a).norm_sqr() - 1.0).abs() < EPS);
    }

    #[test]
    fn reflect_about_is_involutive() {
        let psi = SparseState::uniform(3);
        let mut s = SparseState::basis(3, 5);
        let orig = s.clone();
        s.reflect_about(&psi);
        assert!((s.norm() - 1.0).abs() < EPS);
        s.reflect_about(&psi);
        assert!((s.to_dense().fidelity(&orig.to_dense()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn store_amplitudes_prunes_zeros() {
        let mut s = SparseState::uniform(2);
        s.store_amplitudes(&[(0, ZERO), (3, Complex::real(0.9))]);
        assert_eq!(s.support(), 3);
        assert!(s.amp(0).is_approx_zero(0.0));
    }

    #[test]
    fn from_amplitudes_normalizes_and_prunes() {
        let s =
            SparseState::from_amplitudes(vec![Complex::real(3.0), ZERO, ZERO, Complex::real(4.0)]);
        assert_eq!(s.support(), 2);
        assert!(s.amp(0).approx_eq(Complex::real(0.6), EPS));
        assert!(s.amp(3).approx_eq(Complex::real(0.8), EPS));
    }

    #[test]
    fn interference_evicts_cancelled_amplitudes() {
        // H on a fresh |0⟩ qubit doubles the support; a second H cancels
        // the |1⟩ branch to an exact floating-point zero, which must be
        // *evicted*, not retained as a stored zero.
        let mut s = SparseState::zero(8);
        s.apply_gate(&Gate::H(0));
        s.apply_gate(&Gate::T(0));
        s.apply_gate(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        let before = s.support_len();
        s.apply_gate(&Gate::H(5));
        assert_eq!(s.support_len(), 2 * before);
        s.apply_gate(&Gate::H(5));
        assert_eq!(s.support_len(), before, "cancelled branch not evicted");
        s.assert_support_pruned();
    }

    #[test]
    fn reflection_evicts_cancelled_amplitudes() {
        // |0⟩ reflected twice about uniform(2): all amplitudes are exact
        // binary fractions, so the second reflection drives the three
        // transient entries to exact zero — the support must shrink back.
        let psi = SparseState::uniform(2);
        let mut s = SparseState::basis(2, 0);
        s.reflect_about(&psi);
        assert_eq!(s.support_len(), 4);
        s.assert_support_pruned();
        s.reflect_about(&psi);
        assert_eq!(s.support_len(), 1, "reflection residue not evicted");
        s.assert_support_pruned();
        assert!(s.amp(0).approx_eq(ONE, EPS));
    }

    #[test]
    fn prop_uncomputed_circuits_shrink_support_to_one() {
        // Property (seeded sweep): running a random circuit and then its
        // exact inverse must return the support to a single basis state —
        // every amplitude the forward pass populated is driven back below
        // the prune threshold and evicted. The invariant hook is checked
        // after every gate.
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(0xE71C + seed);
            let n = 5;
            let mut s = SparseState::zero(n);
            let gates: Vec<Gate> = (0..10)
                .map(|_| {
                    let q = rng.gen_range(0..n);
                    let r = (q + 1 + rng.gen_range(0..n - 1)) % n;
                    match rng.gen_range(0u8..6) {
                        0 => Gate::H(q),
                        1 => Gate::T(q),
                        2 => Gate::X(q),
                        3 => Gate::S(q),
                        4 => Gate::Cnot {
                            control: q,
                            target: r,
                        },
                        _ => Gate::Cz(q, r),
                    }
                })
                .collect();
            for g in &gates {
                s.apply_gate(g);
                s.assert_support_pruned();
            }
            for g in gates.iter().rev() {
                let inverse = match *g {
                    Gate::T(q) => Gate::Tdg(q),
                    Gate::S(q) => Gate::Sdg(q),
                    self_inverse => self_inverse,
                };
                s.apply_gate(&inverse);
                s.assert_support_pruned();
            }
            assert_eq!(
                s.support_len(),
                1,
                "seed {seed}: uncompute left residue in the support"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unpruned zero amplitude")]
    fn audit_hook_catches_a_stored_zero() {
        let mut s = SparseState::uniform(2);
        // Bypass the pruned setter to simulate a backend bug.
        s.amps.insert(7usize % 4, Complex::real(0.0));
        s.assert_support_pruned();
    }

    #[test]
    fn probabilities_match_dense_layout() {
        let mut s = SparseState::zero(3);
        s.apply_gate(&Gate::H(1));
        let p = s.probabilities();
        assert_eq!(p.len(), 8);
        assert!((p[0] - 0.5).abs() < EPS);
        assert!((p[2] - 0.5).abs() < EPS);
        assert!(p[1].abs() < EPS);
    }
}
