//! Statistical diagnostics for measurement sampling.
//!
//! The experiments repeatedly compare sampled measurement frequencies
//! against exact probabilities with ad-hoc tolerances; this module makes
//! those comparisons principled: histogram collection over repeated
//! basis measurements, Pearson's χ² statistic against the exact
//! distribution, and a conservative acceptance threshold from the
//! χ²-quantile bound `df + 2√(2·df·ln(1/α)) + 2·ln(1/α)` (a standard
//! sub-exponential tail bound, valid for every df).

use crate::state::StateVector;
use rand::Rng;

/// A sampled histogram over computational-basis outcomes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl SampleHistogram {
    /// Samples `trials` non-collapsing basis measurements of `state`.
    pub fn collect<R: Rng + ?Sized>(state: &StateVector, trials: u64, rng: &mut R) -> Self {
        let mut counts = vec![0u64; state.dim()];
        for _ in 0..trials {
            counts[state.sample_basis(rng)] += 1;
        }
        SampleHistogram {
            counts,
            total: trials,
        }
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical frequency of outcome `b`.
    pub fn frequency(&self, b: usize) -> f64 {
        self.counts[b] as f64 / self.total as f64
    }

    /// Pearson's χ² statistic against the expected distribution, pooling
    /// bins with expected count below `min_expected` (the classic validity
    /// rule) into one. Returns `(statistic, degrees_of_freedom)`.
    pub fn chi_squared(&self, expected: &[f64], min_expected: f64) -> (f64, usize) {
        assert_eq!(expected.len(), self.counts.len());
        let n = self.total as f64;
        let mut stat = 0.0;
        let mut bins = 0usize;
        let mut pooled_obs = 0.0;
        let mut pooled_exp = 0.0;
        for (&c, &p) in self.counts.iter().zip(expected) {
            let e = p * n;
            if e < min_expected {
                pooled_obs += c as f64;
                pooled_exp += e;
            } else {
                stat += (c as f64 - e).powi(2) / e;
                bins += 1;
            }
        }
        if pooled_exp >= f64::EPSILON {
            stat += (pooled_obs - pooled_exp).powi(2) / pooled_exp;
            bins += 1;
        }
        (stat, bins.saturating_sub(1))
    }

    /// True when the histogram is consistent with `expected` at
    /// significance `alpha` (χ² below the sub-exponential quantile
    /// bound).
    pub fn consistent_with(&self, expected: &[f64], alpha: f64) -> bool {
        let (stat, df) = self.chi_squared(expected, 5.0);
        if df == 0 {
            return true;
        }
        stat <= chi_squared_quantile_bound(df, alpha)
    }
}

/// Conservative upper bound on the `(1 − α)`-quantile of χ²(df):
/// `df + 2√(df·ln(1/α)) + 2·ln(1/α)` (Laurent–Massart).
pub fn chi_squared_quantile_bound(df: usize, alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0);
    let df = df as f64;
    let l = (1.0 / alpha).ln();
    df + 2.0 * (df * l).sqrt() + 2.0 * l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_state_passes_chi_squared() {
        let s = StateVector::uniform(4);
        let mut rng = StdRng::seed_from_u64(230);
        let hist = SampleHistogram::collect(&s, 16_000, &mut rng);
        assert!(hist.consistent_with(&s.probabilities(), 1e-4));
        assert_eq!(hist.total(), 16_000);
        assert_eq!(hist.counts().iter().sum::<u64>(), 16_000);
    }

    #[test]
    fn bell_state_histogram() {
        let mut s = StateVector::zero(2);
        s.apply(&Gate::H(0));
        s.apply(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        let mut rng = StdRng::seed_from_u64(231);
        let hist = SampleHistogram::collect(&s, 10_000, &mut rng);
        assert!(hist.consistent_with(&s.probabilities(), 1e-4));
        // The anti-correlated outcomes never appear.
        assert_eq!(hist.counts()[1], 0);
        assert_eq!(hist.counts()[2], 0);
        assert!((hist.frequency(0) - 0.5).abs() < 0.03);
    }

    #[test]
    fn wrong_distribution_fails_chi_squared() {
        // Sample from uniform, test against a skewed expectation.
        let s = StateVector::uniform(3);
        let mut rng = StdRng::seed_from_u64(232);
        let hist = SampleHistogram::collect(&s, 20_000, &mut rng);
        let mut skewed = vec![0.05; 8];
        skewed[0] = 0.65;
        assert!(!hist.consistent_with(&skewed, 1e-4));
    }

    #[test]
    fn quantile_bound_is_sane() {
        // df=1, α=0.05: true quantile 3.84; bound must dominate.
        assert!(chi_squared_quantile_bound(1, 0.05) >= 3.84);
        // df=10, α=0.01: true 23.2.
        assert!(chi_squared_quantile_bound(10, 0.01) >= 23.2);
        // Bound grows with df and with 1/α.
        assert!(chi_squared_quantile_bound(20, 0.01) > chi_squared_quantile_bound(10, 0.01));
        assert!(chi_squared_quantile_bound(10, 0.001) > chi_squared_quantile_bound(10, 0.01));
    }

    #[test]
    fn pooling_small_bins() {
        // A sharp state: most bins have tiny expectation and get pooled.
        let s = StateVector::basis(3, 2);
        let mut rng = StdRng::seed_from_u64(233);
        let hist = SampleHistogram::collect(&s, 1_000, &mut rng);
        let (stat, df) = hist.chi_squared(&s.probabilities(), 5.0);
        assert!(stat.abs() < 1e-9, "deterministic outcome: χ² = {stat}");
        assert!(df <= 1);
        assert!(hist.consistent_with(&s.probabilities(), 1e-4));
    }
}
