//! The adaptive backend: start sparse, promote to parallel-dense when the
//! state actually densifies.
//!
//! [`AdaptiveState`] makes the dense/sparse tradeoff DESIGN.md §2
//! documents statically into a **runtime** decision driven by the state's
//! measured [`support_density`](crate::QuantumBackend::support_density).
//! A register begins life in the support-proportional sparse
//! representation — the right choice for the structured states of
//! procedure A3, whose density sits at 1/4 for the whole run — and
//! switches to the scoped-thread parallel dense representation the moment
//! the support crosses [`should_promote`]'s threshold, after which every
//! `O(2^n)` pass runs at dense-kernel speed on worker threads.
//!
//! **The promotion rule is a pure function of the state** (qubit count
//! and support size — never wall clock, thread count or call history), so
//! adaptive runs are bit-reproducible at every worker count:
//!
//! * in the sparse phase, every operation follows the dense backend's
//!   arithmetic and the chunk-ordered summation contract
//!   ([`crate::par`]), so all observables match dense bit for bit;
//! * promotion densifies **exactly** (no renormalization — off-support
//!   entries become exact `+0.0`, stored bits are moved, not recomputed);
//! * the dense phase is [`ParallelStateVector`], itself pinned bit-for-bit
//!   to [`StateVector`] at every thread count.
//!
//! The composition is pinned by the equivalence suites: `AdaptiveState`
//! tracks the dense reference **digit for digit** through the full
//! A1/A2/A3 pipelines (tests/backend_pipelines.rs).
//!
//! **Demotion is not attempted.** Once dense, a state stays dense even if
//! a collapse shrinks its support again: demotion would buy back memory
//! only after the peak allocation has already happened (the metered
//! observable is the high-water mark), would make the representation a
//! function of measurement outcomes rather than of reachable support, and
//! would re-enter the representation-switch cost on workloads that
//! oscillate around the threshold. See DESIGN.md §7.

use crate::backend::QuantumBackend;
use crate::complex::Complex;
use crate::gate::Gate;
use crate::matrix::Matrix;
use crate::parallel::ParallelStateVector;
use crate::snapshot::{SnapshotError, StateSnapshot};
use crate::sparse::SparseState;
use crate::state::StateVector;
use rand::Rng;

/// Widest register the adaptive backend will ever densify. Above this, a
/// dense vector would not fit (the dense backends cap at 28 qubits) and a
/// support dense enough to trigger promotion would already dwarf any
/// sensible budget — the state simply stays sparse.
pub const ADAPTIVE_MAX_DENSE_QUBITS: usize = 26;

/// Promotion threshold numerator: promote when
/// `support / 2^n ≥ 3/8`. Chosen between A3's structured density
/// (exactly 1/4 on well-formed streams, which must *stay* sparse for the
/// memory win) and the 1/2 that mixed-branch diffusion reaches the moment
/// a stream stops being structured (which should run dense).
pub const ADAPTIVE_PROMOTE_NUM: usize = 3;

/// Promotion threshold denominator; see [`ADAPTIVE_PROMOTE_NUM`].
pub const ADAPTIVE_PROMOTE_DEN: usize = 8;

/// The promotion rule, exposed as the pure function it is required to be
/// (DESIGN.md §7): promote iff the register can be densified at all
/// (`num_qubits ≤ `[`ADAPTIVE_MAX_DENSE_QUBITS`]) and the support density
/// has reached [`ADAPTIVE_PROMOTE_NUM`]`/`[`ADAPTIVE_PROMOTE_DEN`].
/// Integer arithmetic only — no float threshold can drift.
pub fn should_promote(num_qubits: usize, support: usize) -> bool {
    num_qubits <= ADAPTIVE_MAX_DENSE_QUBITS
        && support * ADAPTIVE_PROMOTE_DEN >= (1usize << num_qubits) * ADAPTIVE_PROMOTE_NUM
}

#[derive(Clone, Debug)]
enum Repr {
    Sparse(SparseState),
    Dense(ParallelStateVector),
}

/// A pure state that begins sparse and promotes itself to the parallel
/// dense representation when its support density crosses the
/// deterministic [`should_promote`] threshold (see module docs).
#[derive(Clone, Debug)]
pub struct AdaptiveState {
    repr: Repr,
}

impl AdaptiveState {
    /// True once the state has promoted to the dense representation.
    pub fn is_dense_phase(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }

    /// Human-readable name of the live representation (diagnostics).
    pub fn phase_name(&self) -> &'static str {
        match self.repr {
            Repr::Sparse(_) => "sparse",
            Repr::Dense(_) => "parallel-dense",
        }
    }

    fn from_sparse(mut s: SparseState) -> Self {
        // Exact mode: only exact zeros leave the support, so even
        // sub-threshold near-cancellation residues — which the dense
        // reference keeps and later gates remix into nonzero amplitudes —
        // stay digit-for-digit aligned with dense. The memory story is
        // unchanged on structured workloads, whose cancellations are
        // exact.
        s.set_exact_mode();
        let mut out = AdaptiveState {
            repr: Repr::Sparse(s),
        };
        out.settle();
        out
    }

    /// Applies the promotion rule to the current state. Called after
    /// every operation that can grow the support; a no-op in the dense
    /// phase (no demotion).
    fn settle(&mut self) {
        if let Repr::Sparse(s) = &self.repr {
            if should_promote(s.num_qubits(), s.support()) {
                // Exact densification: bits are moved, never recomputed.
                let dense = s.densify_exact();
                self.repr = Repr::Dense(ParallelStateVector::from_dense(dense));
            }
        }
    }

    /// Exact dense view of either phase (no renormalization).
    fn densify_exact(&self) -> StateVector {
        match &self.repr {
            Repr::Sparse(s) => s.densify_exact(),
            Repr::Dense(d) => d.as_dense().clone(),
        }
    }
}

impl QuantumBackend for AdaptiveState {
    fn zero(n: usize) -> Self {
        Self::from_sparse(SparseState::zero(n))
    }

    fn basis(n: usize, b: usize) -> Self {
        Self::from_sparse(SparseState::basis(n, b))
    }

    fn uniform(n: usize) -> Self {
        // Density 1: promotes immediately (for n within the dense cap).
        Self::from_sparse(SparseState::uniform(n))
    }

    fn from_amplitudes(amps: Vec<Complex>) -> Self {
        Self::from_sparse(SparseState::from_amplitudes(amps))
    }

    fn num_qubits(&self) -> usize {
        match &self.repr {
            Repr::Sparse(s) => s.num_qubits(),
            Repr::Dense(d) => d.num_qubits(),
        }
    }

    fn support(&self) -> usize {
        match &self.repr {
            Repr::Sparse(s) => s.support(),
            Repr::Dense(d) => d.support(),
        }
    }

    fn amp(&self, b: usize) -> Complex {
        match &self.repr {
            Repr::Sparse(s) => s.amp(b),
            Repr::Dense(d) => d.amp(b),
        }
    }

    fn norm(&self) -> f64 {
        match &self.repr {
            Repr::Sparse(s) => s.norm(),
            Repr::Dense(d) => d.norm(),
        }
    }

    fn normalize(&mut self) {
        match &mut self.repr {
            Repr::Sparse(s) => s.normalize(),
            Repr::Dense(d) => d.normalize(),
        }
    }

    fn inner(&self, other: &Self) -> Complex {
        match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => a.inner(b),
            (Repr::Dense(a), Repr::Dense(b)) => QuantumBackend::inner(a, b),
            // Mixed phases (one operand promoted, the other not): go
            // through the exact dense views and the canonical chunked
            // reduction.
            _ => crate::par::chunked_inner(
                self.densify_exact().amplitudes(),
                other.densify_exact().amplitudes(),
            ),
        }
    }

    fn to_dense(&self) -> StateVector {
        match &self.repr {
            Repr::Sparse(s) => s.to_dense(),
            Repr::Dense(d) => d.to_dense(),
        }
    }

    fn snapshot(&self) -> StateSnapshot {
        match &self.repr {
            Repr::Sparse(s) => s.snapshot(),
            Repr::Dense(d) => QuantumBackend::snapshot(d),
        }
    }

    fn restore(snap: &StateSnapshot) -> Result<Self, SnapshotError> {
        // Restore into the phase the encoding was taken from, then apply
        // the promotion rule: an adaptive snapshot round-trips into the
        // identical phase (a sparse-phase state never satisfies the rule,
        // a dense one restores dense), while a foreign sparse snapshot
        // that is already past the threshold promotes right away.
        let dec = snap.decode()?;
        if dec.dense {
            Ok(AdaptiveState {
                repr: Repr::Dense(ParallelStateVector::restore(snap)?),
            })
        } else {
            // Exact-mode restore: residues carried by an adaptive
            // snapshot survive the round trip bit for bit.
            Ok(Self::from_sparse(SparseState::restore_with_eps(snap, 0.0)?))
        }
    }

    fn apply_gate(&mut self, gate: &Gate) {
        match &mut self.repr {
            Repr::Sparse(s) => s.apply_gate(gate),
            Repr::Dense(d) => d.apply_gate(gate),
        }
        self.settle();
    }

    fn apply_single(&mut self, q: usize, m: &Matrix) {
        match &mut self.repr {
            Repr::Sparse(s) => s.apply_single(q, m),
            Repr::Dense(d) => d.apply_single(q, m),
        }
        self.settle();
    }

    fn apply_hadamard_all(&mut self, qs: &[usize]) {
        // Qubit by qubit so a sweep that crosses the threshold midway
        // finishes on the dense kernels — the rule consults the state
        // after every gate, not once per sweep.
        let h = Gate::H(0).local_matrix();
        for &q in qs {
            self.apply_single(q, &h);
        }
    }

    fn phase_if<F: Fn(usize) -> bool + Sync>(&mut self, pred: F, phase: Complex) {
        match &mut self.repr {
            Repr::Sparse(s) => s.phase_if(pred, phase),
            Repr::Dense(d) => d.phase_if(pred, phase),
        }
        // Diagonal: the support cannot grow; no settle needed.
    }

    fn permute_in_place<F: Fn(usize) -> usize>(&mut self, f: F) {
        match &mut self.repr {
            Repr::Sparse(s) => s.permute_in_place(f),
            Repr::Dense(d) => d.permute_in_place(f),
        }
        // Permutation: support size is invariant; no settle needed.
    }

    fn store_amplitudes(&mut self, writes: &[(usize, Complex)]) {
        match &mut self.repr {
            Repr::Sparse(s) => s.store_amplitudes(writes),
            Repr::Dense(d) => d.store_amplitudes(writes),
        }
        self.settle();
    }

    fn reflect_about(&mut self, psi: &Self) {
        match (&mut self.repr, &psi.repr) {
            (Repr::Sparse(s), Repr::Sparse(p)) => s.reflect_about(p),
            (Repr::Dense(d), Repr::Dense(p)) => d.reflect_about(p),
            (Repr::Dense(d), Repr::Sparse(p)) => {
                let p_dense = ParallelStateVector::with_threads(p.densify_exact(), d.threads());
                d.reflect_about(&p_dense);
            }
            (Repr::Sparse(_), Repr::Dense(_)) => {
                // The mirror state is already dense: reflecting about it
                // densifies this state's reachable support anyway, so
                // promote first and run the dense kernel.
                let dense = ParallelStateVector::from_dense(self.densify_exact());
                self.repr = Repr::Dense(dense);
                self.reflect_about(psi);
                return;
            }
        }
        self.settle();
    }

    fn add_scaled(&mut self, other: &Self, coeff: Complex) {
        match (&mut self.repr, &other.repr) {
            (Repr::Sparse(s), Repr::Sparse(o)) => s.add_scaled(o, coeff),
            (Repr::Dense(d), Repr::Dense(o)) => d.add_scaled(o, coeff),
            (Repr::Dense(d), Repr::Sparse(o)) => {
                let o_dense = ParallelStateVector::with_threads(o.densify_exact(), d.threads());
                d.add_scaled(&o_dense, coeff);
            }
            (Repr::Sparse(_), Repr::Dense(_)) => {
                let dense = ParallelStateVector::from_dense(self.densify_exact());
                self.repr = Repr::Dense(dense);
                self.add_scaled(other, coeff);
                return;
            }
        }
        self.settle();
    }

    fn prob_one(&self, q: usize) -> f64 {
        match &self.repr {
            Repr::Sparse(s) => s.prob_one(q),
            Repr::Dense(d) => d.prob_one(q),
        }
    }

    fn probability_where<F: Fn(usize) -> bool + Sync>(&self, pred: F) -> f64 {
        match &self.repr {
            Repr::Sparse(s) => s.probability_where(pred),
            Repr::Dense(d) => d.probability_where(pred),
        }
    }

    fn probabilities(&self) -> Vec<f64> {
        match &self.repr {
            Repr::Sparse(s) => s.probabilities(),
            Repr::Dense(d) => d.probabilities(),
        }
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        match &self.repr {
            Repr::Sparse(s) => s.probabilities_into(out),
            Repr::Dense(d) => d.probabilities_into(out),
        }
    }

    fn collapse_qubit(&mut self, q: usize, outcome: u8) {
        match &mut self.repr {
            Repr::Sparse(s) => s.collapse_qubit(q, outcome),
            Repr::Dense(d) => d.collapse_qubit(q, outcome),
        }
        // Collapse only shrinks the support; no settle, no demotion.
    }

    fn sample_basis<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match &self.repr {
            Repr::Sparse(s) => s.sample_basis(rng),
            Repr::Dense(d) => d.sample_basis(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::ONE;

    const EPS: f64 = 1e-10;

    #[test]
    fn promotion_rule_is_pure_and_integer() {
        // Exactly at the threshold: 3/8 of dim promotes.
        let n = 8usize;
        let dim = 1usize << n;
        assert!(!should_promote(n, dim * 3 / 8 - 1));
        assert!(should_promote(n, dim * 3 / 8));
        assert!(should_promote(n, dim));
        // Never densify past the cap, however dense the support claims
        // to be.
        assert!(!should_promote(
            ADAPTIVE_MAX_DENSE_QUBITS + 1,
            usize::MAX >> 8
        ));
    }

    #[test]
    fn starts_sparse_and_promotes_during_hadamard_growth() {
        let n = 10;
        let mut s = AdaptiveState::zero(n);
        assert!(!s.is_dense_phase(), "zero state must start sparse");
        let mut promoted_at = None;
        for q in 0..n {
            s.apply_gate(&Gate::H(q));
            if s.is_dense_phase() && promoted_at.is_none() {
                promoted_at = Some(q);
            }
        }
        // Support after H on qubits 0..=q is 2^{q+1}; 3/8·1024 = 384 is
        // first reached at support 512, i.e. after the 9th Hadamard.
        assert_eq!(promoted_at, Some(8), "deterministic promotion point");
        assert!((s.norm() - 1.0).abs() < EPS);
        assert_eq!(s.support(), 1 << n);
    }

    #[test]
    fn structured_quarter_density_stays_sparse() {
        // The A3 shape: uniform over the low 2k index qubits of a
        // (2k+2)-qubit register = density 1/4 < 3/8.
        let k = 3usize;
        let mut s = AdaptiveState::zero(2 * k + 2);
        let idx: Vec<usize> = (0..2 * k).collect();
        s.apply_hadamard_all(&idx);
        assert!(!s.is_dense_phase());
        assert_eq!(s.support(), 1 << (2 * k));
        assert_eq!(s.phase_name(), "sparse");
    }

    #[test]
    fn no_demotion_after_collapse() {
        let mut s = AdaptiveState::uniform(6);
        assert!(s.is_dense_phase(), "uniform is density 1");
        for q in 0..5 {
            s.collapse_qubit(q, 0);
        }
        assert_eq!(s.support(), 64, "dense support is the dimension");
        assert!(s.is_dense_phase(), "demotion is not attempted");
    }

    #[test]
    fn matches_dense_bitwise_across_the_promotion_boundary() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = 9;
        let mut rng = StdRng::seed_from_u64(0xADA);
        let mut dense = StateVector::zero(n);
        let mut ad = AdaptiveState::zero(n);
        let mut crossed = false;
        for step in 0..60 {
            let q = rng.gen_range(0..n);
            let r = (q + 1 + rng.gen_range(0..n - 1)) % n;
            let gate = match rng.gen_range(0u8..6) {
                0 | 1 => Gate::H(q),
                2 => Gate::T(q),
                3 => Gate::X(q),
                4 => Gate::Cnot {
                    control: q,
                    target: r,
                },
                _ => Gate::Cz(q, r),
            };
            dense.apply(&gate);
            ad.apply_gate(&gate);
            crossed |= ad.is_dense_phase();
            for b in 0..(1usize << n) {
                let (x, y) = (dense.amp(b), ad.amp(b));
                // Exact IEEE equality: identical digits everywhere, with
                // ±0.0 identified (a diagonal phase on a dense zero can
                // leave a −0.0 the sparse phase never stores; the sign of
                // zero is unobservable in every reduction).
                assert!(
                    x.re == y.re && x.im == y.im,
                    "step {step} amp {b}: {x:?} vs {y:?}"
                );
            }
            let (pd, pa) = (dense.prob_one(q), ad.prob_one(q));
            assert_eq!(pd.to_bits(), pa.to_bits(), "step {step}");
        }
        assert!(crossed, "the circuit must exercise the promotion");
    }

    #[test]
    fn snapshot_round_trips_in_both_phases() {
        // Sparse phase.
        let mut s = AdaptiveState::basis(7, 5);
        s.apply_gate(&Gate::H(0));
        assert!(!s.is_dense_phase());
        let snap = s.snapshot();
        let r = AdaptiveState::restore(&snap).expect("restores");
        assert!(!r.is_dense_phase(), "phase survives the round trip");
        assert_eq!(s.amp(5).re.to_bits(), r.amp(5).re.to_bits());
        // Dense phase.
        let d = AdaptiveState::uniform(5);
        assert!(d.is_dense_phase());
        let rd = AdaptiveState::restore(&d.snapshot()).expect("restores");
        assert!(rd.is_dense_phase());
        assert_eq!(d.amp(3).re.to_bits(), rd.amp(3).re.to_bits());
    }

    #[test]
    fn wide_registers_never_densify() {
        let mut s = AdaptiveState::zero(40);
        s.store_amplitudes(&[(1usize << 35, ONE)]);
        assert!(!s.is_dense_phase());
        assert_eq!(s.support(), 2);
        assert!(s.support_density() < 1e-9);
    }

    #[test]
    fn reflect_handles_mixed_phases() {
        // psi dense (uniform), self sparse (basis): promotes and reflects.
        let psi = AdaptiveState::uniform(4);
        let mut s = AdaptiveState::basis(4, 3);
        assert!(!s.is_dense_phase());
        s.reflect_about(&psi);
        assert!(s.is_dense_phase());
        assert!((s.norm() - 1.0).abs() < EPS);
        // And the result matches the all-dense computation digit for digit.
        let psi_d = StateVector::uniform(4);
        let mut s_d = StateVector::basis(4, 3);
        s_d.reflect_about(&psi_d);
        for b in 0..16 {
            assert_eq!(s.amp(b).re.to_bits(), s_d.amp(b).re.to_bits(), "amp {b}");
        }
    }
}
