//! The [`QuantumBackend`] abstraction: one trait, many simulators.
//!
//! Every consumer of the simulation substrate — `oqsc_core`'s A1/A2/A3
//! procedures, `oqsc_grover`'s exact Grover simulation, `oqsc_machine`'s
//! metered quantum register — is generic over this trait rather than tied
//! to the dense [`StateVector`]. Two implementations ship today:
//!
//! * [`StateVector`] — dense `O(2^n)` amplitudes, `O(2^n)` per gate; the
//!   default everywhere, and the reference semantics;
//! * [`crate::SparseState`] — a map from basis index to amplitude storing
//!   only (numerically) nonzero entries, so the structured Grover states
//!   of procedure A3 — support `2^{2k}` inside a `2^{2k+2}`-dimensional
//!   space, halved again after the marking round — cost memory and time
//!   proportional to the *support*, not the dimension.
//!
//! The trait surface is the exact op set those consumers need: state
//! initialization, gate application (named gates, raw 2×2 unitaries,
//! Hadamard sweeps), the structured diagonal/permutation fast paths
//! (`phase_if`, `permute_in_place`, `store_amplitudes`) that make the
//! paper's `O(1)`-per-symbol streaming updates possible, reflections for
//! amplitude amplification, and measurement (probabilities, sampling,
//! collapse). Closure-typed methods keep the trait object-unsafe on
//! purpose: backends are chosen statically (monomorphized), which is what
//! lets the gate kernels inline and vectorize.
//!
//! Future backends (rayon-parallel dense kernels, batched instance
//! sweeps, GPU execution) plug in here without touching any consumer.

use crate::complex::Complex;
use crate::gate::Gate;
use crate::matrix::Matrix;
use crate::snapshot::{SnapshotError, StateSnapshot};
use crate::state::StateVector;
use rand::Rng;

/// A pure-state quantum simulator over `n` qubits in little-endian basis
/// order (qubit `q` of basis index `b` is bit `(b >> q) & 1`).
///
/// Implementations must agree with [`StateVector`]'s semantics on every
/// operation (the cross-backend equivalence suite in
/// `crates/quantum/tests/backend_equivalence.rs` enforces fidelity
/// `≥ 1 − 1e−9` against the dense reference on random circuits).
pub trait QuantumBackend: Clone + std::fmt::Debug {
    // ------------------------------------------------------------------
    // Initialization
    // ------------------------------------------------------------------

    /// The all-zeros state `|0…0⟩` on `n` qubits.
    fn zero(n: usize) -> Self;

    /// The computational basis state `|b⟩`.
    fn basis(n: usize, b: usize) -> Self;

    /// The uniform superposition `H^{⊗n}|0…0⟩`.
    fn uniform(n: usize) -> Self;

    /// Builds a state from explicit dense amplitudes, normalizing them.
    fn from_amplitudes(amps: Vec<Complex>) -> Self;

    // ------------------------------------------------------------------
    // Geometry and read access
    // ------------------------------------------------------------------

    /// Number of qubits.
    fn num_qubits(&self) -> usize;

    /// Hilbert-space dimension `2^n`.
    fn dim(&self) -> usize {
        1usize << self.num_qubits()
    }

    /// Number of explicitly stored amplitudes. Dense backends report the
    /// full dimension; sparse backends report the support size (the
    /// memory-scaling observable the space experiments record).
    fn support(&self) -> usize;

    /// The amplitude of basis state `b`.
    fn amp(&self, b: usize) -> Complex;

    /// Euclidean norm (1 for a valid state).
    fn norm(&self) -> f64;

    /// Renormalizes in place (used after measurement collapse).
    fn normalize(&mut self);

    /// Inner product `⟨self|other⟩`.
    fn inner(&self, other: &Self) -> Complex;

    /// Fidelity `|⟨self|other⟩|²`.
    fn fidelity(&self, other: &Self) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Densifies into the reference representation (equivalence testing
    /// and cross-backend fidelity).
    fn to_dense(&self) -> StateVector;

    /// Fraction of the Hilbert dimension that is explicitly stored:
    /// `support() / dim()`. Dense backends always report 1; sparse ones
    /// report their live occupancy. This is the observable the adaptive
    /// backend's promotion rule ([`crate::adaptive::AdaptiveState`]) is a
    /// pure function of.
    fn support_density(&self) -> f64 {
        self.support() as f64 / self.dim() as f64
    }

    // ------------------------------------------------------------------
    // Snapshot / restore (the session engine's quantum seam)
    // ------------------------------------------------------------------

    /// Serializes the state into a versioned, byte-exact
    /// [`StateSnapshot`]. Together with [`restore`](Self::restore) this
    /// must be a bit-for-bit round trip: every amplitude (including
    /// signed zeros) comes back with the identical IEEE-754 pattern, so a
    /// suspended run resumes on exactly the digits it left.
    fn snapshot(&self) -> StateSnapshot;

    /// Rebuilds a state from a snapshot **without renormalizing**. Any
    /// backend can restore any backend's snapshot (the migration path may
    /// move a register between representations); restoring its own must
    /// reproduce the state exactly.
    fn restore(snap: &StateSnapshot) -> Result<Self, SnapshotError>;

    // ------------------------------------------------------------------
    // Gate application
    // ------------------------------------------------------------------

    /// Applies a named gate.
    fn apply_gate(&mut self, gate: &Gate);

    /// Applies an arbitrary 2×2 unitary to qubit `q`.
    fn apply_single(&mut self, q: usize, m: &Matrix);

    /// Applies a Hadamard to every qubit in `qs` (the paper's `U_k`).
    fn apply_hadamard_all(&mut self, qs: &[usize]) {
        let h = Gate::H(0).local_matrix();
        for &q in qs {
            self.apply_single(q, &h);
        }
    }

    /// Multiplies the amplitude of every basis state satisfying `pred` by
    /// `phase` (structured diagonal operators: `S_k`, `W_x`, oracles).
    ///
    /// `pred` is `Sync` so parallel backends may evaluate it from several
    /// worker threads at once.
    fn phase_if<F: Fn(usize) -> bool + Sync>(&mut self, pred: F, phase: Complex);

    /// Applies a basis-state permutation given as an involution
    /// (`V_x`, `R_x`, X/CNOT-style classical reversible maps).
    fn permute_in_place<F: Fn(usize) -> usize>(&mut self, f: F);

    /// Overwrites specific amplitudes in place — the low-level hook behind
    /// the `O(1)`-per-streamed-bit structured updates. Callers are
    /// responsible for keeping the state normalized.
    fn store_amplitudes(&mut self, writes: &[(usize, Complex)]);

    /// Householder reflection about `psi`: `|s⟩ ← (2|ψ⟩⟨ψ| − I)|s⟩`.
    fn reflect_about(&mut self, psi: &Self);

    /// Adds `coeff · |other⟩` into this state (non-unitary accumulation
    /// step of the fixed-point recursion; callers renormalize).
    fn add_scaled(&mut self, other: &Self, coeff: Complex);

    // ------------------------------------------------------------------
    // Measurement
    // ------------------------------------------------------------------

    /// Probability that measuring qubit `q` yields 1.
    fn prob_one(&self, q: usize) -> f64;

    /// Total probability of the basis states satisfying `pred` (marked-set
    /// success statistics).
    ///
    /// `pred` is `Sync` so parallel backends may evaluate it from several
    /// worker threads at once.
    fn probability_where<F: Fn(usize) -> bool + Sync>(&self, pred: F) -> f64;

    /// The full distribution over basis states.
    fn probabilities(&self) -> Vec<f64>;

    /// Fills `out` with the full distribution over basis states, reusing
    /// its allocation. Repeated-sampling loops should prefer this over
    /// [`Self::probabilities`], which allocates `2^n` doubles per call;
    /// backends with a dense buffer override it to write in place.
    fn probabilities_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.probabilities());
    }

    /// Measures qubit `q`, collapsing the state; returns the observed bit.
    fn measure_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> u8 {
        let p1 = self.prob_one(q);
        let outcome = u8::from(rng.gen::<f64>() < p1);
        self.collapse_qubit(q, outcome);
        outcome
    }

    /// Projects qubit `q` onto `outcome` and renormalizes.
    fn collapse_qubit(&mut self, q: usize, outcome: u8);

    /// Samples a full computational-basis measurement without collapsing.
    fn sample_basis<R: Rng + ?Sized>(&self, rng: &mut R) -> usize;
}

/// How a named gate acts on the computational basis — the **single**
/// classification table every backend's `apply_gate` dispatches on.
/// The diagonal phase constants and permutation masks live here exactly
/// once; the cross-backend bit-for-bit contract (DESIGN.md §6) depends
/// on the dense, sparse and parallel backends agreeing on them, so they
/// must not be re-derived per backend.
pub(crate) enum GateKernel {
    /// Multiply the amplitude of every basis state with
    /// `b & mask == mask` by `phase` (Z, S, S†, T, T†, Phase, CZ).
    Diagonal {
        /// Bits that must all be set for the phase to apply.
        mask: usize,
        /// The unimodular factor.
        phase: Complex,
    },
    /// The involution `b ↦ b ^ xor` on basis states with
    /// `b & controls == controls` (X, CNOT, Toffoli; `controls = 0`
    /// means unconditional).
    ControlledFlip {
        /// Bits that must all be set for the flip to apply.
        controls: usize,
        /// Target bits to flip.
        xor: usize,
    },
    /// Exchange the values of two qubits (SWAP).
    SwapBits {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// Arbitrary single-qubit unitary on `q`; apply via
    /// [`Gate::local_matrix`] (H, Y, Ry, …).
    Single {
        /// Target qubit.
        q: usize,
    },
}

/// Classifies a named gate into its basis-action kernel.
pub(crate) fn gate_kernel(gate: &Gate) -> GateKernel {
    match *gate {
        Gate::X(q) => GateKernel::ControlledFlip {
            controls: 0,
            xor: 1usize << q,
        },
        Gate::Z(q) => GateKernel::Diagonal {
            mask: 1usize << q,
            phase: -crate::complex::ONE,
        },
        Gate::S(q) => GateKernel::Diagonal {
            mask: 1usize << q,
            phase: Complex::new(0.0, 1.0),
        },
        Gate::Sdg(q) => GateKernel::Diagonal {
            mask: 1usize << q,
            phase: Complex::new(0.0, -1.0),
        },
        Gate::T(q) => GateKernel::Diagonal {
            mask: 1usize << q,
            phase: Complex::from_phase(std::f64::consts::FRAC_PI_4),
        },
        Gate::Tdg(q) => GateKernel::Diagonal {
            mask: 1usize << q,
            phase: Complex::from_phase(-std::f64::consts::FRAC_PI_4),
        },
        Gate::Phase(q, theta) => GateKernel::Diagonal {
            mask: 1usize << q,
            phase: Complex::from_phase(theta),
        },
        Gate::Cz(a, b) => GateKernel::Diagonal {
            mask: (1usize << a) | (1usize << b),
            phase: -crate::complex::ONE,
        },
        Gate::Cnot { control, target } => GateKernel::ControlledFlip {
            controls: 1usize << control,
            xor: 1usize << target,
        },
        Gate::Toffoli { c1, c2, target } => GateKernel::ControlledFlip {
            controls: (1usize << c1) | (1usize << c2),
            xor: 1usize << target,
        },
        Gate::Swap(a, b) => GateKernel::SwapBits { a, b },
        _ => {
            let qs = gate.qubits();
            debug_assert_eq!(qs.len(), 1, "multi-qubit fallthrough");
            GateKernel::Single { q: qs[0] }
        }
    }
}

/// Shared dense restore: scatters decoded entries (dense or sparse
/// encoding) into a full amplitude vector with exact `+0.0` off the
/// support, **without** renormalizing. Used by [`StateVector`],
/// [`crate::ParallelStateVector`] and the adaptive backend's dense phase.
pub(crate) fn restore_dense(snap: &StateSnapshot) -> Result<StateVector, SnapshotError> {
    let dec = snap.decode()?;
    if dec.num_qubits > 28 {
        return Err(SnapshotError::Malformed(
            "state too wide for a dense backend (> 28 qubits)",
        ));
    }
    let mut amps = vec![crate::complex::ZERO; 1usize << dec.num_qubits];
    for (b, a) in dec.entries {
        amps[b] = a;
    }
    Ok(StateVector::from_amplitudes_unchecked(amps))
}

impl QuantumBackend for StateVector {
    fn zero(n: usize) -> Self {
        StateVector::zero(n)
    }

    fn basis(n: usize, b: usize) -> Self {
        StateVector::basis(n, b)
    }

    fn uniform(n: usize) -> Self {
        StateVector::uniform(n)
    }

    fn from_amplitudes(amps: Vec<Complex>) -> Self {
        StateVector::from_amplitudes(amps)
    }

    fn num_qubits(&self) -> usize {
        StateVector::num_qubits(self)
    }

    fn dim(&self) -> usize {
        StateVector::dim(self)
    }

    fn support(&self) -> usize {
        StateVector::dim(self)
    }

    fn amp(&self, b: usize) -> Complex {
        StateVector::amp(self, b)
    }

    fn norm(&self) -> f64 {
        StateVector::norm(self)
    }

    fn normalize(&mut self) {
        StateVector::normalize(self)
    }

    fn inner(&self, other: &Self) -> Complex {
        StateVector::inner(self, other)
    }

    fn to_dense(&self) -> StateVector {
        self.clone()
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::encode_dense(StateVector::num_qubits(self), self.amplitudes())
    }

    fn restore(snap: &StateSnapshot) -> Result<Self, SnapshotError> {
        restore_dense(snap)
    }

    fn apply_gate(&mut self, gate: &Gate) {
        StateVector::apply(self, gate)
    }

    fn apply_single(&mut self, q: usize, m: &Matrix) {
        StateVector::apply_single(self, q, m)
    }

    fn apply_hadamard_all(&mut self, qs: &[usize]) {
        StateVector::apply_hadamard_all(self, qs)
    }

    fn phase_if<F: Fn(usize) -> bool + Sync>(&mut self, pred: F, phase: Complex) {
        StateVector::phase_if(self, pred, phase)
    }

    fn permute_in_place<F: Fn(usize) -> usize>(&mut self, f: F) {
        StateVector::permute_in_place(self, f)
    }

    fn store_amplitudes(&mut self, writes: &[(usize, Complex)]) {
        StateVector::write_amplitudes(self, writes)
    }

    fn reflect_about(&mut self, psi: &Self) {
        StateVector::reflect_about(self, psi)
    }

    fn add_scaled(&mut self, other: &Self, coeff: Complex) {
        StateVector::add_scaled(self, other, coeff)
    }

    fn prob_one(&self, q: usize) -> f64 {
        StateVector::prob_one(self, q)
    }

    fn probability_where<F: Fn(usize) -> bool + Sync>(&self, pred: F) -> f64 {
        crate::par::chunked_prob_where(self.amplitudes(), pred)
    }

    fn probabilities(&self) -> Vec<f64> {
        StateVector::probabilities(self)
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        StateVector::probabilities_into(self, out)
    }

    fn measure_qubit<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> u8 {
        StateVector::measure_qubit(self, q, rng)
    }

    fn collapse_qubit(&mut self, q: usize, outcome: u8) {
        StateVector::collapse_qubit(self, q, outcome)
    }

    fn sample_basis<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        StateVector::sample_basis(self, rng)
    }
}
