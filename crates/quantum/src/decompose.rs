//! Exact lowering of derived gates to the paper's strict set `{H, T, CNOT}`.
//!
//! Definition 2.3 only lets the machine output gates from
//! `G = {G0=H, G1=T, G2=CNOT}`. Every operator used by procedure A3 is a
//! classical reversible map or a ±1-diagonal, so the whole circuit can be
//! lowered **exactly** (no Solovay–Kitaev approximation needed):
//!
//! * `T† = T^7`, `S = T²`, `S† = T^6`, `Z = T^4` (all exact since `T^8 = I`);
//! * `X = H·Z·H`, `CZ = (I⊗H)·CNOT·(I⊗H)`;
//! * Toffoli via the standard 15-gate Clifford+T network;
//! * `n`-controlled X via a Toffoli V-chain with `n − 2` clean ancillas;
//! * "phase flip on a chosen basis value" (the paper's `S_k` up to global
//!   phase) via X-conjugation and a multi-controlled Z.
//!
//! Everything here returns gate *sequences*; [`expand_to_strict`] performs
//! the final rewrite into pure `{H, T, CNOT}`.

use crate::gate::Gate;

/// Errors raised when a gate cannot be lowered exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum LowerError {
    /// The gate has a continuous parameter not representable exactly in
    /// Clifford+T (use the approximate synthesizer in [`crate::synth`]).
    NotExact(&'static str),
    /// Not enough ancilla qubits were supplied for a multi-controlled gate.
    NotEnoughAncillas {
        /// Ancillas required.
        needed: usize,
        /// Ancillas provided.
        got: usize,
    },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::NotExact(name) => {
                write!(f, "gate {name} has no exact Clifford+T realization")
            }
            LowerError::NotEnoughAncillas { needed, got } => {
                write!(f, "need {needed} ancillas, got {got}")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// The standard exact Toffoli decomposition into `{H, T, T†, CNOT}`
/// (15 gates; Nielsen & Chuang Fig. 4.9).
pub fn toffoli_clifford_t(c1: usize, c2: usize, t: usize) -> Vec<Gate> {
    vec![
        Gate::H(t),
        Gate::Cnot {
            control: c2,
            target: t,
        },
        Gate::Tdg(t),
        Gate::Cnot {
            control: c1,
            target: t,
        },
        Gate::T(t),
        Gate::Cnot {
            control: c2,
            target: t,
        },
        Gate::Tdg(t),
        Gate::Cnot {
            control: c1,
            target: t,
        },
        Gate::T(c2),
        Gate::T(t),
        Gate::H(t),
        Gate::Cnot {
            control: c1,
            target: c2,
        },
        Gate::T(c1),
        Gate::Tdg(c2),
        Gate::Cnot {
            control: c1,
            target: c2,
        },
    ]
}

/// Multi-controlled X over arbitrarily many controls using a Toffoli
/// V-chain. Requires `max(controls.len().saturating_sub(2), 0)` **clean**
/// (|0⟩) ancillas, which are returned clean.
///
/// Emits `X`/`CNOT`/`Toffoli` gates; feed the result through
/// [`expand_to_strict`] for the paper's gate set.
pub fn mcx(controls: &[usize], target: usize, ancillas: &[usize]) -> Result<Vec<Gate>, LowerError> {
    match controls.len() {
        0 => Ok(vec![Gate::X(target)]),
        1 => Ok(vec![Gate::Cnot {
            control: controls[0],
            target,
        }]),
        2 => Ok(vec![Gate::Toffoli {
            c1: controls[0],
            c2: controls[1],
            target,
        }]),
        c => {
            let needed = c - 2;
            if ancillas.len() < needed {
                return Err(LowerError::NotEnoughAncillas {
                    needed,
                    got: ancillas.len(),
                });
            }
            let mut gates = Vec::new();
            // Compute chain: a[0] = c0∧c1, a[j] = a[j-1]∧c[j+1].
            gates.push(Gate::Toffoli {
                c1: controls[0],
                c2: controls[1],
                target: ancillas[0],
            });
            for j in 1..needed {
                gates.push(Gate::Toffoli {
                    c1: ancillas[j - 1],
                    c2: controls[j + 1],
                    target: ancillas[j],
                });
            }
            // Final AND with the last control hits the target.
            gates.push(Gate::Toffoli {
                c1: ancillas[needed - 1],
                c2: controls[c - 1],
                target,
            });
            // Uncompute.
            for j in (1..needed).rev() {
                gates.push(Gate::Toffoli {
                    c1: ancillas[j - 1],
                    c2: controls[j + 1],
                    target: ancillas[j],
                });
            }
            gates.push(Gate::Toffoli {
                c1: controls[0],
                c2: controls[1],
                target: ancillas[0],
            });
            Ok(gates)
        }
    }
}

/// Multi-controlled Z over `qubits` (applies −1 exactly on the all-ones
/// assignment of `qubits`). Uses the identity `MCZ = H_t · MCX · H_t` with
/// the last qubit as target.
pub fn mcz(qubits: &[usize], ancillas: &[usize]) -> Result<Vec<Gate>, LowerError> {
    assert!(!qubits.is_empty(), "MCZ needs at least one qubit");
    if qubits.len() == 1 {
        return Ok(vec![Gate::Z(qubits[0])]);
    }
    let (target, controls) = qubits.split_last().expect("nonempty");
    let mut gates = vec![Gate::H(*target)];
    gates.extend(mcx(controls, *target, ancillas)?);
    gates.push(Gate::H(*target));
    Ok(gates)
}

/// Applies phase −1 exactly on the basis states where the bits of `qubits`
/// equal `value` (bit `j` of `value` ↔ `qubits[j]`). This realizes the
/// paper's `S_k` up to an unobservable global −1: `S_k` negates every
/// `i ≠ 0`, which equals `−1 ×` (negate only `i = 0`), i.e.
/// `phase_flip_on_value(index_qubits, 0, …)`.
pub fn phase_flip_on_value(
    qubits: &[usize],
    value: usize,
    ancillas: &[usize],
) -> Result<Vec<Gate>, LowerError> {
    assert!(!qubits.is_empty());
    assert!(value < (1usize << qubits.len()), "value out of range");
    let mut gates = Vec::new();
    // X-conjugate the zero bits so that `value` becomes all-ones.
    let flips: Vec<Gate> = qubits
        .iter()
        .enumerate()
        .filter(|(j, _)| (value >> j) & 1 == 0)
        .map(|(_, &q)| Gate::X(q))
        .collect();
    gates.extend(flips.iter().copied());
    gates.extend(mcz(qubits, ancillas)?);
    gates.extend(flips);
    Ok(gates)
}

/// Multi-controlled X that fires when the bits of `controls` equal
/// `value` (not necessarily all-ones).
pub fn mcx_on_value(
    controls: &[usize],
    value: usize,
    target: usize,
    ancillas: &[usize],
) -> Result<Vec<Gate>, LowerError> {
    assert!(value < (1usize << controls.len().min(63)) || controls.is_empty());
    let flips: Vec<Gate> = controls
        .iter()
        .enumerate()
        .filter(|(j, _)| (value >> j) & 1 == 0)
        .map(|(_, &q)| Gate::X(q))
        .collect();
    let mut gates = Vec::new();
    gates.extend(flips.iter().copied());
    gates.extend(mcx(controls, target, ancillas)?);
    gates.extend(flips);
    Ok(gates)
}

/// Rewrites a gate sequence into the strict paper set `{H, T, CNOT}`,
/// exactly (up to global phase for `X`, `Y`, `Z`-family gates).
///
/// # Errors
/// [`LowerError::NotExact`] for `Phase(θ)`/`Ry(θ)` with generic θ.
pub fn expand_to_strict(gates: &[Gate]) -> Result<Vec<Gate>, LowerError> {
    let mut out = Vec::with_capacity(gates.len() * 4);
    for g in gates {
        expand_one(g, &mut out)?;
    }
    Ok(out)
}

fn push_t_power(q: usize, pow: usize, out: &mut Vec<Gate>) {
    for _ in 0..pow {
        out.push(Gate::T(q));
    }
}

fn expand_one(g: &Gate, out: &mut Vec<Gate>) -> Result<(), LowerError> {
    match *g {
        Gate::H(_) | Gate::T(_) | Gate::Cnot { .. } => out.push(*g),
        Gate::Tdg(q) => push_t_power(q, 7, out),
        Gate::S(q) => push_t_power(q, 2, out),
        Gate::Sdg(q) => push_t_power(q, 6, out),
        Gate::Z(q) => push_t_power(q, 4, out),
        Gate::X(q) => {
            out.push(Gate::H(q));
            push_t_power(q, 4, out);
            out.push(Gate::H(q));
        }
        Gate::Y(q) => {
            // Y = S·X·S† up to global phase (i): verified in tests.
            push_t_power(q, 6, out); // S†
            out.push(Gate::H(q));
            push_t_power(q, 4, out); // Z
            out.push(Gate::H(q));
            push_t_power(q, 2, out); // S
        }
        Gate::Cz(a, b) => {
            out.push(Gate::H(b));
            out.push(Gate::Cnot {
                control: a,
                target: b,
            });
            out.push(Gate::H(b));
        }
        Gate::Swap(a, b) => {
            out.push(Gate::Cnot {
                control: a,
                target: b,
            });
            out.push(Gate::Cnot {
                control: b,
                target: a,
            });
            out.push(Gate::Cnot {
                control: a,
                target: b,
            });
        }
        Gate::Toffoli { c1, c2, target } => {
            for inner in toffoli_clifford_t(c1, c2, target) {
                expand_one(&inner, out)?;
            }
        }
        Gate::Phase(q, theta) => {
            // Exact only at multiples of π/4.
            let steps = theta / std::f64::consts::FRAC_PI_4;
            let rounded = steps.round();
            if (steps - rounded).abs() < 1e-12 {
                let pow = rounded.rem_euclid(8.0) as usize;
                push_t_power(q, pow, out);
            } else {
                return Err(LowerError::NotExact("Phase"));
            }
        }
        Gate::Ry(_, _) => return Err(LowerError::NotExact("Ry")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::state::StateVector;

    const EPS: f64 = 1e-9;

    fn unitary_of(gates: &[Gate], n: usize) -> crate::matrix::Matrix {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(*g);
        }
        c.to_unitary()
    }

    #[test]
    fn toffoli_decomposition_exact() {
        let dec = unitary_of(&toffoli_clifford_t(0, 1, 2), 3);
        let reference = unitary_of(
            &[Gate::Toffoli {
                c1: 0,
                c2: 1,
                target: 2,
            }],
            3,
        );
        assert!(dec.approx_eq(&reference, EPS), "Toffoli lowering incorrect");
    }

    #[test]
    fn toffoli_strict_expansion_exact() {
        let strict = expand_to_strict(&[Gate::Toffoli {
            c1: 0,
            c2: 1,
            target: 2,
        }])
        .expect("expand");
        assert!(strict.iter().all(Gate::is_strict));
        let dec = unitary_of(&strict, 3);
        let reference = unitary_of(
            &[Gate::Toffoli {
                c1: 0,
                c2: 1,
                target: 2,
            }],
            3,
        );
        assert!(dec.approx_eq(&reference, EPS));
    }

    #[test]
    fn single_qubit_expansions_match_up_to_phase() {
        for g in [
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::Tdg(0),
        ] {
            let strict = expand_to_strict(&[g]).expect("expand");
            assert!(strict.iter().all(Gate::is_strict), "{g:?}");
            let dec = unitary_of(&strict, 1);
            let reference = unitary_of(&[g], 1);
            assert!(
                dec.approx_eq_up_to_phase(&reference, EPS),
                "{g:?} lowering incorrect"
            );
        }
    }

    #[test]
    fn cz_and_swap_expansions_exact() {
        for g in [Gate::Cz(0, 1), Gate::Swap(0, 1)] {
            let strict = expand_to_strict(&[g]).expect("expand");
            let dec = unitary_of(&strict, 2);
            let reference = unitary_of(&[g], 2);
            assert!(dec.approx_eq(&reference, EPS), "{g:?}");
        }
    }

    #[test]
    fn phase_multiples_of_pi_over_4_are_exact() {
        for mult in 0..8 {
            let theta = mult as f64 * std::f64::consts::FRAC_PI_4;
            let strict = expand_to_strict(&[Gate::Phase(0, theta)]).expect("expand");
            let dec = unitary_of(&strict, 1);
            let reference = unitary_of(&[Gate::Phase(0, theta)], 1);
            assert!(dec.approx_eq(&reference, EPS), "θ = {mult}π/4");
        }
        assert!(matches!(
            expand_to_strict(&[Gate::Phase(0, 0.1)]),
            Err(LowerError::NotExact("Phase"))
        ));
        assert!(matches!(
            expand_to_strict(&[Gate::Ry(0, 0.1)]),
            Err(LowerError::NotExact("Ry"))
        ));
    }

    #[test]
    fn mcx_small_cases() {
        // 0 controls = X, 1 = CNOT, 2 = Toffoli.
        assert_eq!(mcx(&[], 0, &[]).unwrap(), vec![Gate::X(0)]);
        assert_eq!(
            mcx(&[3], 0, &[]).unwrap(),
            vec![Gate::Cnot {
                control: 3,
                target: 0
            }]
        );
        assert_eq!(
            mcx(&[1, 2], 0, &[]).unwrap(),
            vec![Gate::Toffoli {
                c1: 1,
                c2: 2,
                target: 0
            }]
        );
    }

    #[test]
    fn mcx_three_controls_truth_table() {
        // Controls 0,1,2, target 3, ancilla 4 — check all 16 control/target
        // patterns (ancilla starts and must end at |0⟩).
        let gates = mcx(&[0, 1, 2], 3, &[4]).expect("mcx");
        for input in 0..16usize {
            let mut s = StateVector::basis(5, input);
            for g in &gates {
                s.apply(g);
            }
            let expected = if input & 0b111 == 0b111 {
                input ^ 0b1000
            } else {
                input
            };
            assert!(
                s.approx_eq(&StateVector::basis(5, expected), EPS),
                "input {input:#07b}"
            );
        }
    }

    #[test]
    fn mcx_four_controls_with_two_ancillas() {
        let gates = mcx(&[0, 1, 2, 3], 4, &[5, 6]).expect("mcx");
        for input in 0..32usize {
            let mut s = StateVector::basis(7, input);
            for g in &gates {
                s.apply(g);
            }
            let expected = if input & 0b1111 == 0b1111 {
                input ^ 0b10000
            } else {
                input
            };
            assert!(
                s.approx_eq(&StateVector::basis(7, expected), EPS),
                "input {input:#07b}"
            );
        }
    }

    #[test]
    fn mcx_rejects_missing_ancillas() {
        assert!(matches!(
            mcx(&[0, 1, 2, 3], 4, &[5]),
            Err(LowerError::NotEnoughAncillas { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn mcz_phases_only_all_ones() {
        let gates = mcz(&[0, 1, 2], &[4]).expect("mcz");
        // Use 5 qubits (ancilla at 4, qubit 3 spectator).
        for input in 0..8usize {
            let mut s = StateVector::basis(5, input);
            for g in &gates {
                s.apply(g);
            }
            let expected_sign = if input & 0b111 == 0b111 { -1.0 } else { 1.0 };
            let a = s.amp(input);
            assert!(
                (a.re - expected_sign).abs() < EPS && a.im.abs() < EPS,
                "input {input}"
            );
        }
    }

    #[test]
    fn phase_flip_on_zero_realizes_sk_up_to_global_phase() {
        use crate::structured::GroverLayout;
        // S_k on a 2-bit index (layout k=1): compare structured apply_sk
        // against −1 × phase_flip_on_value(index, 0).
        let layout = GroverLayout { idx_width: 2 };
        let n = layout.num_qubits(); // 4 qubits; no ancilla needed (2 ctrl MCZ)
        let gates = phase_flip_on_value(&[0, 1], 0, &[]).expect("flip");

        let mut via_gates = layout.phi();
        layout.apply_vx(&mut via_gates, &[true, false, true, false]); // scramble
        let mut via_structured = via_gates.clone();
        for g in &gates {
            via_gates.apply(g);
        }
        layout.apply_sk(&mut via_structured);
        assert_eq!(via_gates.num_qubits(), n);
        assert!(
            via_gates.approx_eq_up_to_phase(&via_structured, EPS),
            "phase-flip-on-zero must equal S_k up to global phase"
        );
    }

    #[test]
    fn mcx_on_value_fires_on_selected_pattern() {
        let gates = mcx_on_value(&[0, 1, 2], 0b101, 3, &[4]).expect("mcx_on_value");
        for input in 0..16usize {
            let mut s = StateVector::basis(5, input);
            for g in &gates {
                s.apply(g);
            }
            let expected = if input & 0b111 == 0b101 {
                input ^ 0b1000
            } else {
                input
            };
            assert!(
                s.approx_eq(&StateVector::basis(5, expected), EPS),
                "input {input:#07b}"
            );
        }
    }

    #[test]
    fn strict_expansion_of_mcx_matches() {
        let gates = mcx_on_value(&[0, 1], 0b10, 2, &[]).expect("build");
        let strict = expand_to_strict(&gates).expect("expand");
        assert!(strict.iter().all(Gate::is_strict));
        let a = unitary_of(&gates, 3);
        let b = unitary_of(&strict, 3);
        assert!(a.approx_eq_up_to_phase(&b, EPS));
    }
}
