//! Vendored work-splitting helpers for the parallel dense backend.
//!
//! The build environment has no registry access, so instead of rayon this
//! module provides the two primitives the concurrency layer (DESIGN.md §6)
//! actually needs, on plain [`std::thread::scope`]:
//!
//! * [`for_each_chunk_mut`] — run a closure over disjoint contiguous,
//!   boundary-aligned chunks of a mutable slice, one scoped thread per
//!   chunk;
//! * the *chunked reduction* family ([`chunked_norm_sqr`],
//!   [`chunked_inner`], [`chunked_prob_where`] and their `par_*`
//!   counterparts) — floating-point sums accumulated per
//!   [`REDUCE_CHUNK`]-sized block and folded in block order.
//!
//! The chunked reductions define the workspace's **summation contract**:
//! the serial dense backend and the parallel dense backend both sum
//! per-block partials in increasing block order, so their results are
//! bit-for-bit identical regardless of how many threads computed the
//! partials. This is what makes the "parallel-dense matches dense
//! digit-for-digit" equivalence pin (tests/backend_pipelines.rs) an exact
//! equality rather than a tolerance.

use crate::complex::{Complex, ZERO};

/// Block size (in elements) of the chunked floating-point reductions.
/// A power of two, so block boundaries always align with the `2^q` strides
/// of single-qubit gate application.
pub const REDUCE_CHUNK: usize = 1 << 12;

/// Number of worker threads the parallel backend uses by default: the
/// machine's available parallelism (1 when it cannot be queried).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f(offset, chunk)` over disjoint contiguous chunks of `data`, one
/// scoped thread per chunk, with every chunk boundary a multiple of
/// `align` elements. With `threads <= 1` (or when the slice is shorter
/// than one aligned block per thread) the call degrades to a single
/// in-place invocation — no thread is spawned.
///
/// `offset` is the chunk's starting index in `data`, so predicates over
/// basis indices stay correct inside a chunk.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], align: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let align = align.max(1);
    let blocks = len / align;
    if threads <= 1 || blocks <= 1 {
        f(0, data);
        return;
    }
    let per_chunk = blocks.div_ceil(threads) * align;
    std::thread::scope(|scope| {
        // Spawn workers for all chunks but the last, which runs inline on
        // the calling thread — it would otherwise idle inside the scope,
        // and one saved spawn is measurable at dimensions just above the
        // serial threshold.
        let mut chunks: Vec<(usize, &mut [T])> = data
            .chunks_mut(per_chunk)
            .enumerate()
            .map(|(i, c)| (i * per_chunk, c))
            .collect();
        let last = chunks.pop();
        for (offset, chunk) in chunks {
            let f = &f;
            scope.spawn(move || f(offset, chunk));
        }
        if let Some((offset, chunk)) = last {
            f(offset, chunk);
        }
    });
}

/// Serial per-block partial sums of `term(index, element)` over
/// [`REDUCE_CHUNK`]-sized blocks, folded in block order. The canonical
/// (reference) summation every backend agrees with.
pub fn chunked_sum<T, F: Fn(usize, &T) -> f64>(data: &[T], term: F) -> f64 {
    let mut total = 0.0;
    for (ci, chunk) in data.chunks(REDUCE_CHUNK).enumerate() {
        let base = ci * REDUCE_CHUNK;
        let mut partial = 0.0;
        for (i, t) in chunk.iter().enumerate() {
            partial += term(base + i, t);
        }
        total += partial;
    }
    total
}

/// Parallel version of [`chunked_sum`]: the per-block partials are
/// computed on up to `threads` scoped threads, then folded serially in
/// block order — bit-for-bit equal to the serial result.
pub fn par_chunked_sum<T, F>(data: &[T], threads: usize, term: F) -> f64
where
    T: Sync,
    F: Fn(usize, &T) -> f64 + Sync,
{
    if threads <= 1 || data.len() <= REDUCE_CHUNK {
        return chunked_sum(data, term);
    }
    let blocks = data.len().div_ceil(REDUCE_CHUNK);
    let mut partials = vec![0.0f64; blocks];
    let blocks_per_thread = blocks.div_ceil(threads);
    let span = blocks_per_thread * REDUCE_CHUNK;
    let fill_group = |group_idx: usize, slot_group: &mut [f64], block_group: &[T]| {
        for (bi, (slot, chunk)) in slot_group
            .iter_mut()
            .zip(block_group.chunks(REDUCE_CHUNK))
            .enumerate()
        {
            let base = group_idx * span + bi * REDUCE_CHUNK;
            let mut partial = 0.0;
            for (i, t) in chunk.iter().enumerate() {
                partial += term(base + i, t);
            }
            *slot = partial;
        }
    };
    std::thread::scope(|scope| {
        // Last group runs inline on the calling thread (see
        // [`for_each_chunk_mut`]).
        let mut groups: Vec<(usize, &mut [f64], &[T])> = partials
            .chunks_mut(blocks_per_thread)
            .zip(data.chunks(span))
            .enumerate()
            .map(|(i, (s, b))| (i, s, b))
            .collect();
        let last = groups.pop();
        for (group_idx, slot_group, block_group) in groups {
            let fill_group = &fill_group;
            scope.spawn(move || fill_group(group_idx, slot_group, block_group));
        }
        if let Some((group_idx, slot_group, block_group)) = last {
            fill_group(group_idx, slot_group, block_group);
        }
    });
    partials.into_iter().sum()
}

/// Canonical chunked `Σ |a_i|²` (squared norm) of a dense amplitude slice.
pub fn chunked_norm_sqr(amps: &[Complex]) -> f64 {
    chunked_sum(amps, |_, a| a.norm_sqr())
}

/// Parallel [`chunked_norm_sqr`]; bit-for-bit equal to the serial form.
pub fn par_chunked_norm_sqr(amps: &[Complex], threads: usize) -> f64 {
    par_chunked_sum(amps, threads, |_, a| a.norm_sqr())
}

/// Canonical chunked probability mass of the basis states satisfying
/// `pred`.
pub fn chunked_prob_where<F: Fn(usize) -> bool>(amps: &[Complex], pred: F) -> f64 {
    chunked_sum(amps, |b, a| if pred(b) { a.norm_sqr() } else { 0.0 })
}

/// Parallel [`chunked_prob_where`]; bit-for-bit equal to the serial form.
pub fn par_chunked_prob_where<F>(amps: &[Complex], threads: usize, pred: F) -> f64
where
    F: Fn(usize) -> bool + Sync,
{
    par_chunked_sum(
        amps,
        threads,
        |b, a: &Complex| if pred(b) { a.norm_sqr() } else { 0.0 },
    )
}

/// Canonical chunked inner product `⟨a|b⟩` of two equal-length dense
/// amplitude slices: complex per-block partials folded in block order.
pub fn chunked_inner(a: &[Complex], b: &[Complex]) -> Complex {
    debug_assert_eq!(a.len(), b.len());
    let mut total = ZERO;
    for (ca, cb) in a.chunks(REDUCE_CHUNK).zip(b.chunks(REDUCE_CHUNK)) {
        let mut partial = ZERO;
        for (x, y) in ca.iter().zip(cb) {
            partial += x.conj() * *y;
        }
        total += partial;
    }
    total
}

/// Parallel [`chunked_inner`]; bit-for-bit equal to the serial form.
pub fn par_chunked_inner(a: &[Complex], b: &[Complex], threads: usize) -> Complex {
    debug_assert_eq!(a.len(), b.len());
    if threads <= 1 || a.len() <= REDUCE_CHUNK {
        return chunked_inner(a, b);
    }
    let blocks = a.len().div_ceil(REDUCE_CHUNK);
    let mut partials = vec![ZERO; blocks];
    let blocks_per_thread = blocks.div_ceil(threads);
    let span = blocks_per_thread * REDUCE_CHUNK;
    fn fill_group(slot_group: &mut [Complex], ca: &[Complex], cb: &[Complex]) {
        for ((slot, xa), xb) in slot_group
            .iter_mut()
            .zip(ca.chunks(REDUCE_CHUNK))
            .zip(cb.chunks(REDUCE_CHUNK))
        {
            let mut partial = ZERO;
            for (x, y) in xa.iter().zip(xb) {
                partial += x.conj() * *y;
            }
            *slot = partial;
        }
    }
    std::thread::scope(|scope| {
        // Last group runs inline on the calling thread (see
        // [`for_each_chunk_mut`]).
        let mut groups: Vec<(&mut [Complex], &[Complex], &[Complex])> = partials
            .chunks_mut(blocks_per_thread)
            .zip(a.chunks(span))
            .zip(b.chunks(span))
            .map(|((s, ca), cb)| (s, ca, cb))
            .collect();
        let last = groups.pop();
        for (slot_group, ca, cb) in groups {
            scope.spawn(move || fill_group(slot_group, ca, cb));
        }
        if let Some((slot_group, ca, cb)) = last {
            fill_group(slot_group, ca, cb);
        }
    });
    let mut total = ZERO;
    for p in partials {
        total += p;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::ONE;

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 * 0.01, -(i as f64) * 0.003))
            .collect()
    }

    #[test]
    fn for_each_chunk_mut_covers_whole_slice_with_aligned_offsets() {
        for threads in [1usize, 2, 3, 8] {
            let mut data: Vec<usize> = vec![0; 1024];
            for_each_chunk_mut(&mut data, 16, threads, |offset, chunk| {
                assert_eq!(offset % 16, 0, "threads={threads}");
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = offset + i;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_sums_are_bitwise_equal_to_serial() {
        // Cross the REDUCE_CHUNK boundary with a ragged tail.
        let amps = ramp(3 * REDUCE_CHUNK + 17);
        let serial = chunked_norm_sqr(&amps);
        for threads in [1usize, 2, 3, 5, 8] {
            let par = par_chunked_norm_sqr(&amps, threads);
            assert_eq!(serial.to_bits(), par.to_bits(), "threads={threads}");
        }
        let serial_p = chunked_prob_where(&amps, |b| b % 3 == 0);
        for threads in [2usize, 7] {
            let par = par_chunked_prob_where(&amps, threads, |b| b % 3 == 0);
            assert_eq!(serial_p.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_inner_is_bitwise_equal_to_serial() {
        let a = ramp(2 * REDUCE_CHUNK + 5);
        let b: Vec<Complex> = a.iter().map(|c| *c * Complex::new(0.5, 0.25)).collect();
        let serial = chunked_inner(&a, &b);
        for threads in [2usize, 4, 9] {
            let par = par_chunked_inner(&a, &b, threads);
            assert_eq!(serial.re.to_bits(), par.re.to_bits(), "threads={threads}");
            assert_eq!(serial.im.to_bits(), par.im.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chunked_sum_indexes_globally() {
        let amps = vec![ONE; REDUCE_CHUNK + 3];
        // Count the elements whose global index is beyond the first block.
        let count = chunked_sum(&amps, |i, _| if i >= REDUCE_CHUNK { 1.0 } else { 0.0 });
        assert_eq!(count, 3.0);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
