//! The single scoped-thread work-splitting and chunked-summation module.
//!
//! The build environment has no registry access, so instead of rayon this
//! module provides every splitting primitive the concurrency layer
//! (DESIGN.md §6) uses — **all** scoped-thread spawning in the simulation
//! substrate lives here, so the parallel dense backend and the adaptive
//! backend share one implementation:
//!
//! * [`for_each_chunk_mut`] — run a closure over disjoint contiguous,
//!   boundary-aligned chunks of a mutable slice, one scoped thread per
//!   chunk;
//! * [`for_each_pair_chunk_mut`] — the same over two matching mutable
//!   slices (the `|…0…⟩`/`|…1…⟩` halves of a single huge gate block);
//! * [`par_block_partials`] — the generic engine computing per-block
//!   reduction partials on scoped workers, folded by the caller in block
//!   order;
//! * the *chunked reduction* family ([`chunked_norm_sqr`],
//!   [`chunked_inner`], [`chunked_prob_where`], their `par_*`
//!   counterparts, and the sparse-iteration form [`chunked_sum_sparse`])
//!   — floating-point sums accumulated per [`REDUCE_CHUNK`]-sized block
//!   and folded in block order.
//!
//! The chunked reductions define the workspace's **summation contract**:
//! every backend sums per-block partials in increasing block order, so
//! results are bit-for-bit identical regardless of how many threads
//! computed the partials — and regardless of whether the backend iterates
//! a dense slice or a sparse support ([`chunked_sum_sparse`] groups a
//! sparse in-order iteration by the same block boundaries; absent indices
//! contribute exactly `+0.0` to a dense partial, so the two agree
//! bitwise). This is what makes the "parallel-dense matches dense
//! digit-for-digit" and "adaptive matches dense digit-for-digit"
//! equivalence pins (tests/backend_pipelines.rs) exact equalities rather
//! than tolerances.

use crate::complex::{Complex, ZERO};

/// Block size (in elements) of the chunked floating-point reductions.
/// A power of two, so block boundaries always align with the `2^q` strides
/// of single-qubit gate application.
pub const REDUCE_CHUNK: usize = 1 << 12;

/// Number of worker threads the parallel backend uses by default: the
/// machine's available parallelism (1 when it cannot be queried).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f(offset, chunk)` over disjoint contiguous chunks of `data`, one
/// scoped thread per chunk, with every chunk boundary a multiple of
/// `align` elements. With `threads <= 1` (or when the slice is shorter
/// than one aligned block per thread) the call degrades to a single
/// in-place invocation — no thread is spawned.
///
/// `offset` is the chunk's starting index in `data`, so predicates over
/// basis indices stay correct inside a chunk.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], align: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let align = align.max(1);
    let blocks = len / align;
    if threads <= 1 || blocks <= 1 {
        f(0, data);
        return;
    }
    let per_chunk = blocks.div_ceil(threads) * align;
    std::thread::scope(|scope| {
        // Spawn workers for all chunks but the last, which runs inline on
        // the calling thread — it would otherwise idle inside the scope,
        // and one saved spawn is measurable at dimensions just above the
        // serial threshold.
        let mut chunks: Vec<(usize, &mut [T])> = data
            .chunks_mut(per_chunk)
            .enumerate()
            .map(|(i, c)| (i * per_chunk, c))
            .collect();
        let last = chunks.pop();
        for (offset, chunk) in chunks {
            let f = &f;
            scope.spawn(move || f(offset, chunk));
        }
        if let Some((offset, chunk)) = last {
            f(offset, chunk);
        }
    });
}

/// Splits two equal-length mutable slices into matching contiguous
/// sub-ranges of up to `⌈len/threads⌉` elements and runs `f(lo, hi)` on
/// one scoped worker per pair; the last pair runs inline on the calling
/// thread. The parallel dense backend's single-huge-block gate path (high
/// target qubit) pairs the `|…0…⟩` and `|…1…⟩` halves of a block this
/// way.
pub fn for_each_pair_chunk_mut<T, F>(los: &mut [T], his: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut [T], &mut [T]) + Sync,
{
    debug_assert_eq!(los.len(), his.len());
    if threads <= 1 || los.len() <= 1 {
        f(los, his);
        return;
    }
    let per = los.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let mut pairs: Vec<(&mut [T], &mut [T])> =
            los.chunks_mut(per).zip(his.chunks_mut(per)).collect();
        let last = pairs.pop();
        for (lo_c, hi_c) in pairs {
            let f = &f;
            scope.spawn(move || f(lo_c, hi_c));
        }
        if let Some((lo_c, hi_c)) = last {
            f(lo_c, hi_c);
        }
    });
}

/// The generic parallel-reduction engine: computes `blocks` per-block
/// partials with `fill(block_index)` on up to `threads` scoped workers
/// (contiguous block groups, last group inline on the calling thread) and
/// returns them in block order. Callers fold the vector front to back —
/// the summation contract — so the result cannot depend on the thread
/// count. Every `par_*` reduction in this module is a thin wrapper over
/// this engine; new backends must not re-derive the grouping.
pub fn par_block_partials<A, F>(blocks: usize, threads: usize, fill: F) -> Vec<A>
where
    A: Send + Default,
    F: Fn(usize) -> A + Sync,
{
    let mut partials: Vec<A> = std::iter::repeat_with(A::default).take(blocks).collect();
    let per = blocks.div_ceil(threads.max(1));
    let run = |group_idx: usize, slots: &mut [A]| {
        for (bi, slot) in slots.iter_mut().enumerate() {
            *slot = fill(group_idx * per + bi);
        }
    };
    std::thread::scope(|scope| {
        let mut groups: Vec<(usize, &mut [A])> = partials.chunks_mut(per).enumerate().collect();
        let last = groups.pop();
        for (group_idx, slots) in groups {
            let run = &run;
            scope.spawn(move || run(group_idx, slots));
        }
        if let Some((group_idx, slots)) = last {
            run(group_idx, slots);
        }
    });
    partials
}

/// Serial per-block partial sums of `term(index, element)` over
/// [`REDUCE_CHUNK`]-sized blocks, folded in block order. The canonical
/// (reference) summation every backend agrees with.
pub fn chunked_sum<T, F: Fn(usize, &T) -> f64>(data: &[T], term: F) -> f64 {
    let mut total = 0.0;
    for (ci, chunk) in data.chunks(REDUCE_CHUNK).enumerate() {
        let base = ci * REDUCE_CHUNK;
        let mut partial = 0.0;
        for (i, t) in chunk.iter().enumerate() {
            partial += term(base + i, t);
        }
        total += partial;
    }
    total
}

/// [`chunked_sum`] over a *sparse* in-order iteration: `entries` yields
/// `(global_index, term)` pairs with strictly increasing indices, and the
/// terms are accumulated into per-[`REDUCE_CHUNK`]-block partials folded
/// in block order. Bitwise equal to [`chunked_sum`] over the equivalent
/// dense vector whenever (a) the dense vector's off-support terms are
/// exactly `+0.0` and (b) all terms are non-negative (so no partial is
/// `-0.0`): adding `+0.0` to a partial, or an empty block's `+0.0`
/// partial to the total, never changes a bit. The sparse and adaptive
/// backends' probability/norm reductions go through here, which is what
/// keeps them on the dense backend's digits.
pub fn chunked_sum_sparse<I>(entries: I) -> f64
where
    I: IntoIterator<Item = (usize, f64)>,
{
    let mut total = 0.0;
    let mut partial = 0.0;
    let mut block = 0usize;
    for (i, t) in entries {
        let b = i / REDUCE_CHUNK;
        if b != block {
            total += partial;
            partial = 0.0;
            block = b;
        }
        partial += t;
    }
    total + partial
}

/// Parallel version of [`chunked_sum`]: the per-block partials are
/// computed on up to `threads` scoped threads via
/// [`par_block_partials`], then folded serially in block order —
/// bit-for-bit equal to the serial result.
pub fn par_chunked_sum<T, F>(data: &[T], threads: usize, term: F) -> f64
where
    T: Sync,
    F: Fn(usize, &T) -> f64 + Sync,
{
    if threads <= 1 || data.len() <= REDUCE_CHUNK {
        return chunked_sum(data, term);
    }
    let blocks = data.len().div_ceil(REDUCE_CHUNK);
    let partials = par_block_partials(blocks, threads, |b| {
        let base = b * REDUCE_CHUNK;
        let chunk = &data[base..data.len().min(base + REDUCE_CHUNK)];
        let mut partial = 0.0;
        for (i, t) in chunk.iter().enumerate() {
            partial += term(base + i, t);
        }
        partial
    });
    let mut total = 0.0;
    for p in partials {
        total += p;
    }
    total
}

/// Canonical chunked `Σ |a_i|²` (squared norm) of a dense amplitude slice.
pub fn chunked_norm_sqr(amps: &[Complex]) -> f64 {
    chunked_sum(amps, |_, a| a.norm_sqr())
}

/// Parallel [`chunked_norm_sqr`]; bit-for-bit equal to the serial form.
pub fn par_chunked_norm_sqr(amps: &[Complex], threads: usize) -> f64 {
    par_chunked_sum(amps, threads, |_, a| a.norm_sqr())
}

/// Canonical chunked probability mass of the basis states satisfying
/// `pred`.
pub fn chunked_prob_where<F: Fn(usize) -> bool>(amps: &[Complex], pred: F) -> f64 {
    chunked_sum(amps, |b, a| if pred(b) { a.norm_sqr() } else { 0.0 })
}

/// Parallel [`chunked_prob_where`]; bit-for-bit equal to the serial form.
pub fn par_chunked_prob_where<F>(amps: &[Complex], threads: usize, pred: F) -> f64
where
    F: Fn(usize) -> bool + Sync,
{
    par_chunked_sum(
        amps,
        threads,
        |b, a: &Complex| if pred(b) { a.norm_sqr() } else { 0.0 },
    )
}

/// Canonical chunked inner product `⟨a|b⟩` of two equal-length dense
/// amplitude slices: complex per-block partials folded in block order.
pub fn chunked_inner(a: &[Complex], b: &[Complex]) -> Complex {
    debug_assert_eq!(a.len(), b.len());
    let mut total = ZERO;
    for (ca, cb) in a.chunks(REDUCE_CHUNK).zip(b.chunks(REDUCE_CHUNK)) {
        let mut partial = ZERO;
        for (x, y) in ca.iter().zip(cb) {
            partial += x.conj() * *y;
        }
        total += partial;
    }
    total
}

/// Parallel [`chunked_inner`]; bit-for-bit equal to the serial form.
pub fn par_chunked_inner(a: &[Complex], b: &[Complex], threads: usize) -> Complex {
    debug_assert_eq!(a.len(), b.len());
    if threads <= 1 || a.len() <= REDUCE_CHUNK {
        return chunked_inner(a, b);
    }
    let blocks = a.len().div_ceil(REDUCE_CHUNK);
    let partials = par_block_partials(blocks, threads, |bi| {
        let base = bi * REDUCE_CHUNK;
        let end = a.len().min(base + REDUCE_CHUNK);
        let mut partial = ZERO;
        for (x, y) in a[base..end].iter().zip(&b[base..end]) {
            partial += x.conj() * *y;
        }
        partial
    });
    let mut total = ZERO;
    for p in partials {
        total += p;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::ONE;

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 * 0.01, -(i as f64) * 0.003))
            .collect()
    }

    #[test]
    fn for_each_chunk_mut_covers_whole_slice_with_aligned_offsets() {
        for threads in [1usize, 2, 3, 8] {
            let mut data: Vec<usize> = vec![0; 1024];
            for_each_chunk_mut(&mut data, 16, threads, |offset, chunk| {
                assert_eq!(offset % 16, 0, "threads={threads}");
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = offset + i;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i, "threads={threads}");
            }
        }
    }

    #[test]
    fn for_each_pair_chunk_mut_pairs_matching_ranges() {
        for threads in [1usize, 2, 3, 8] {
            let mut lo: Vec<usize> = (0..100).collect();
            let mut hi: Vec<usize> = (100..200).collect();
            for_each_pair_chunk_mut(&mut lo, &mut hi, threads, |lc, hc| {
                assert_eq!(lc.len(), hc.len());
                for (l, h) in lc.iter_mut().zip(hc.iter_mut()) {
                    assert_eq!(*h, *l + 100, "pairs must stay aligned");
                    std::mem::swap(l, h);
                }
            });
            for (i, v) in lo.iter().enumerate() {
                assert_eq!(*v, i + 100, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_sums_are_bitwise_equal_to_serial() {
        // Cross the REDUCE_CHUNK boundary with a ragged tail.
        let amps = ramp(3 * REDUCE_CHUNK + 17);
        let serial = chunked_norm_sqr(&amps);
        for threads in [1usize, 2, 3, 5, 8] {
            let par = par_chunked_norm_sqr(&amps, threads);
            assert_eq!(serial.to_bits(), par.to_bits(), "threads={threads}");
        }
        let serial_p = chunked_prob_where(&amps, |b| b % 3 == 0);
        for threads in [2usize, 7] {
            let par = par_chunked_prob_where(&amps, threads, |b| b % 3 == 0);
            assert_eq!(serial_p.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_inner_is_bitwise_equal_to_serial() {
        let a = ramp(2 * REDUCE_CHUNK + 5);
        let b: Vec<Complex> = a.iter().map(|c| *c * Complex::new(0.5, 0.25)).collect();
        let serial = chunked_inner(&a, &b);
        for threads in [2usize, 4, 9] {
            let par = par_chunked_inner(&a, &b, threads);
            assert_eq!(serial.re.to_bits(), par.re.to_bits(), "threads={threads}");
            assert_eq!(serial.im.to_bits(), par.im.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chunked_sum_indexes_globally() {
        let amps = vec![ONE; REDUCE_CHUNK + 3];
        // Count the elements whose global index is beyond the first block.
        let count = chunked_sum(&amps, |i, _| if i >= REDUCE_CHUNK { 1.0 } else { 0.0 });
        assert_eq!(count, 3.0);
    }

    #[test]
    fn sparse_chunked_sum_matches_dense_bitwise() {
        // A dense vector that is zero except on a scattered support
        // spanning several blocks: the sparse iteration must reproduce
        // the dense chunked sum bit for bit.
        let len = 3 * REDUCE_CHUNK + 100;
        let support: Vec<usize> = (0..len).filter(|i| i % 97 == 13).collect();
        let mut dense = vec![ZERO; len];
        for &i in &support {
            dense[i] = Complex::new(0.01 + i as f64 * 1e-6, -1e-7 * i as f64);
        }
        let reference = chunked_norm_sqr(&dense);
        let sparse = chunked_sum_sparse(support.iter().map(|&i| (i, dense[i].norm_sqr())));
        assert_eq!(reference.to_bits(), sparse.to_bits());
        // Empty iteration sums to exactly zero.
        assert_eq!(
            chunked_sum_sparse(std::iter::empty()).to_bits(),
            0.0f64.to_bits()
        );
    }

    #[test]
    fn par_block_partials_orders_blocks() {
        for threads in [1usize, 2, 5, 16] {
            let partials = par_block_partials(11, threads, |b| b as f64);
            let expected: Vec<f64> = (0..11).map(|b| b as f64).collect();
            assert_eq!(partials, expected, "threads={threads}");
        }
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
