//! The single scoped-thread work-splitting and chunked-summation module.
//!
//! The build environment has no registry access, so instead of rayon this
//! module provides every splitting primitive the concurrency layer
//! (DESIGN.md §6) uses — **all** scoped-thread spawning in the simulation
//! substrate lives here, so the parallel dense backend and the adaptive
//! backend share one implementation:
//!
//! * [`for_each_chunk_mut`] — run a closure over disjoint contiguous,
//!   boundary-aligned chunks of a mutable slice, one scoped thread per
//!   chunk;
//! * [`for_each_pair_chunk_mut`] — the same over two matching mutable
//!   slices (the `|…0…⟩`/`|…1…⟩` halves of a single huge gate block);
//! * [`par_block_partials`] — the generic engine computing per-block
//!   reduction partials on scoped workers, folded by the caller in block
//!   order;
//! * the *chunked reduction* family ([`chunked_norm_sqr`],
//!   [`chunked_inner`], [`chunked_prob_where`], their `par_*`
//!   counterparts, and the sparse-iteration form [`chunked_sum_sparse`])
//!   — floating-point sums accumulated per [`REDUCE_CHUNK`]-sized block
//!   and folded in block order.
//!
//! The chunked reductions define the workspace's **summation contract**:
//! every backend sums per-block partials in increasing block order, so
//! results are bit-for-bit identical regardless of how many threads
//! computed the partials — and regardless of whether the backend iterates
//! a dense slice or a sparse support ([`chunked_sum_sparse`] groups a
//! sparse in-order iteration by the same block boundaries; absent indices
//! contribute exactly `+0.0` to a dense partial, so the two agree
//! bitwise). This is what makes the "parallel-dense matches dense
//! digit-for-digit" and "adaptive matches dense digit-for-digit"
//! equivalence pins (tests/backend_pipelines.rs) exact equalities rather
//! than tolerances.
//!
//! *Inside* a block, accumulation is **stratified**: element `j` of a
//! block adds into lane `j & (REDUCE_LANES − 1)` of [`REDUCE_LANES`]
//! independent real accumulators folded as `((l0+l1)+l2)+l3` (complex
//! inner products use [`REDUCE_COMPLEX_LANES`] lanes folded `l0+l1`).
//! This order is what a 256-bit vector accumulator computes natively, so
//! the SIMD kernels in [`crate::simd`] reproduce the scalar reductions
//! bit for bit instead of merely approximately — and on scalar hardware
//! it breaks the add-latency dependency chain for free. Because
//! [`REDUCE_CHUNK`] is a multiple of the lane count, an element's lane is
//! the same under global or in-block indexing, which keeps the sparse
//! iteration form on the dense digits.

use crate::complex::{Complex, ZERO};
use crate::simd;

/// Number of stratified complex accumulation lanes for inner products
/// (re-exported from [`crate::simd`], which defines the kernels that
/// realize the contract).
pub use crate::simd::COMPLEX_LANES as REDUCE_COMPLEX_LANES;
/// Number of stratified real accumulation lanes inside a reduction block.
pub use crate::simd::LANES as REDUCE_LANES;

/// Block size (in elements) of the chunked floating-point reductions.
/// A power of two, so block boundaries always align with the `2^q` strides
/// of single-qubit gate application.
pub const REDUCE_CHUNK: usize = 1 << 12;

/// Number of worker threads the parallel backend uses by default: the
/// machine's available parallelism (1 when it cannot be queried).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f(offset, chunk)` over disjoint contiguous chunks of `data`, one
/// scoped thread per chunk, with every chunk boundary a multiple of
/// `align` elements. With `threads <= 1` (or when the slice is shorter
/// than one aligned block per thread) the call degrades to a single
/// in-place invocation — no thread is spawned.
///
/// `offset` is the chunk's starting index in `data`, so predicates over
/// basis indices stay correct inside a chunk.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], align: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let align = align.max(1);
    let blocks = len / align;
    if threads <= 1 || blocks <= 1 {
        f(0, data);
        return;
    }
    let per_chunk = blocks.div_ceil(threads) * align;
    std::thread::scope(|scope| {
        // Spawn workers for all chunks but the last, which runs inline on
        // the calling thread — it would otherwise idle inside the scope,
        // and one saved spawn is measurable at dimensions just above the
        // serial threshold.
        let mut chunks: Vec<(usize, &mut [T])> = data
            .chunks_mut(per_chunk)
            .enumerate()
            .map(|(i, c)| (i * per_chunk, c))
            .collect();
        let last = chunks.pop();
        for (offset, chunk) in chunks {
            let f = &f;
            scope.spawn(move || f(offset, chunk));
        }
        if let Some((offset, chunk)) = last {
            f(offset, chunk);
        }
    });
}

/// Splits two equal-length mutable slices into matching contiguous
/// sub-ranges of up to `⌈len/threads⌉` elements and runs `f(lo, hi)` on
/// one scoped worker per pair; the last pair runs inline on the calling
/// thread. The parallel dense backend's single-huge-block gate path (high
/// target qubit) pairs the `|…0…⟩` and `|…1…⟩` halves of a block this
/// way.
pub fn for_each_pair_chunk_mut<T, F>(los: &mut [T], his: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut [T], &mut [T]) + Sync,
{
    debug_assert_eq!(los.len(), his.len());
    if threads <= 1 || los.len() <= 1 {
        f(los, his);
        return;
    }
    let per = los.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let mut pairs: Vec<(&mut [T], &mut [T])> =
            los.chunks_mut(per).zip(his.chunks_mut(per)).collect();
        let last = pairs.pop();
        for (lo_c, hi_c) in pairs {
            let f = &f;
            scope.spawn(move || f(lo_c, hi_c));
        }
        if let Some((lo_c, hi_c)) = last {
            f(lo_c, hi_c);
        }
    });
}

/// The generic parallel-reduction engine: computes `blocks` per-block
/// partials with `fill(block_index)` on up to `threads` scoped workers
/// (contiguous block groups, last group inline on the calling thread) and
/// returns them in block order. Callers fold the vector front to back —
/// the summation contract — so the result cannot depend on the thread
/// count. Every `par_*` reduction in this module is a thin wrapper over
/// this engine; new backends must not re-derive the grouping.
pub fn par_block_partials<A, F>(blocks: usize, threads: usize, fill: F) -> Vec<A>
where
    A: Send + Default,
    F: Fn(usize) -> A + Sync,
{
    let mut partials: Vec<A> = std::iter::repeat_with(A::default).take(blocks).collect();
    let per = blocks.div_ceil(threads.max(1));
    let run = |group_idx: usize, slots: &mut [A]| {
        for (bi, slot) in slots.iter_mut().enumerate() {
            *slot = fill(group_idx * per + bi);
        }
    };
    std::thread::scope(|scope| {
        let mut groups: Vec<(usize, &mut [A])> = partials.chunks_mut(per).enumerate().collect();
        let last = groups.pop();
        for (group_idx, slots) in groups {
            let run = &run;
            scope.spawn(move || run(group_idx, slots));
        }
        if let Some((group_idx, slots)) = last {
            run(group_idx, slots);
        }
    });
    partials
}

/// Stratified sum of `term(base + j, element)` over one block: element `j`
/// accumulates into lane `j & (REDUCE_LANES − 1)`, and the lanes are folded
/// as `((l0 + l1) + l2) + l3`. This is the canonical in-block accumulation
/// order shared by the scalar and SIMD kernels.
pub fn block_sum_with<T, F: Fn(usize, &T) -> f64>(base: usize, chunk: &[T], term: F) -> f64 {
    let mut lanes = [0.0f64; REDUCE_LANES];
    for (j, t) in chunk.iter().enumerate() {
        lanes[j & (REDUCE_LANES - 1)] += term(base + j, t);
    }
    simd::scalar::fold_lanes(lanes)
}

/// Serial per-block partial sums of `term(index, element)` over
/// [`REDUCE_CHUNK`]-sized blocks ([`block_sum_with`] inside each block),
/// folded in block order. The canonical (reference) summation every
/// backend agrees with.
pub fn chunked_sum<T, F: Fn(usize, &T) -> f64>(data: &[T], term: F) -> f64 {
    let mut total = 0.0;
    for (ci, chunk) in data.chunks(REDUCE_CHUNK).enumerate() {
        total += block_sum_with(ci * REDUCE_CHUNK, chunk, &term);
    }
    total
}

/// [`chunked_sum`] over a *sparse* in-order iteration: `entries` yields
/// `(global_index, term)` pairs with strictly increasing indices, and the
/// terms are accumulated into per-[`REDUCE_CHUNK`]-block stratified
/// partials folded in block order. Bitwise equal to [`chunked_sum`] over
/// the equivalent dense vector whenever (a) the dense vector's
/// off-support terms are exactly `+0.0` and (b) all terms are
/// non-negative (so no lane is `-0.0`): adding `+0.0` to a lane, or an
/// empty block's `+0.0` partial to the total, never changes a bit. An
/// element's stratified lane is `i & (REDUCE_LANES − 1)` under *global*
/// indexing too, because block bases are multiples of the lane count.
/// The sparse and adaptive backends' probability/norm reductions go
/// through here, which is what keeps them on the dense backend's digits.
pub fn chunked_sum_sparse<I>(entries: I) -> f64
where
    I: IntoIterator<Item = (usize, f64)>,
{
    let mut total = 0.0;
    let mut lanes = [0.0f64; REDUCE_LANES];
    let mut block = 0usize;
    for (i, t) in entries {
        let b = i / REDUCE_CHUNK;
        if b != block {
            total += simd::scalar::fold_lanes(lanes);
            lanes = [0.0; REDUCE_LANES];
            block = b;
        }
        lanes[i & (REDUCE_LANES - 1)] += t;
    }
    total + simd::scalar::fold_lanes(lanes)
}

/// Parallel version of [`chunked_sum`]: the per-block partials are
/// computed on up to `threads` scoped threads via
/// [`par_block_partials`], then folded serially in block order —
/// bit-for-bit equal to the serial result.
pub fn par_chunked_sum<T, F>(data: &[T], threads: usize, term: F) -> f64
where
    T: Sync,
    F: Fn(usize, &T) -> f64 + Sync,
{
    if threads <= 1 || data.len() <= REDUCE_CHUNK {
        return chunked_sum(data, term);
    }
    let blocks = data.len().div_ceil(REDUCE_CHUNK);
    let partials = par_block_partials(blocks, threads, |b| {
        let base = b * REDUCE_CHUNK;
        let chunk = &data[base..data.len().min(base + REDUCE_CHUNK)];
        block_sum_with(base, chunk, &term)
    });
    let mut total = 0.0;
    for p in partials {
        total += p;
    }
    total
}

/// Canonical chunked `Σ |a_i|²` (squared norm) of a dense amplitude slice,
/// via the dispatched [`simd::block_norm_sqr`] kernel.
pub fn chunked_norm_sqr(amps: &[Complex]) -> f64 {
    let mut total = 0.0;
    for chunk in amps.chunks(REDUCE_CHUNK) {
        total += simd::block_norm_sqr(chunk);
    }
    total
}

/// Parallel [`chunked_norm_sqr`]; bit-for-bit equal to the serial form.
pub fn par_chunked_norm_sqr(amps: &[Complex], threads: usize) -> f64 {
    if threads <= 1 || amps.len() <= REDUCE_CHUNK {
        return chunked_norm_sqr(amps);
    }
    let blocks = amps.len().div_ceil(REDUCE_CHUNK);
    let partials = par_block_partials(blocks, threads, |b| {
        let base = b * REDUCE_CHUNK;
        simd::block_norm_sqr(&amps[base..amps.len().min(base + REDUCE_CHUNK)])
    });
    let mut total = 0.0;
    for p in partials {
        total += p;
    }
    total
}

/// Canonical chunked probability mass of the basis states satisfying
/// `pred`. Adding a skipped state's `+0.0` to a lane is bitwise identical
/// to not touching the lane, so this agrees exactly with
/// [`chunked_prob_mask`] when `pred(b) == (b & mask != 0)`.
pub fn chunked_prob_where<F: Fn(usize) -> bool>(amps: &[Complex], pred: F) -> f64 {
    chunked_sum(amps, |b, a| if pred(b) { a.norm_sqr() } else { 0.0 })
}

/// Parallel [`chunked_prob_where`]; bit-for-bit equal to the serial form.
pub fn par_chunked_prob_where<F>(amps: &[Complex], threads: usize, pred: F) -> f64
where
    F: Fn(usize) -> bool + Sync,
{
    par_chunked_sum(
        amps,
        threads,
        |b, a: &Complex| if pred(b) { a.norm_sqr() } else { 0.0 },
    )
}

/// Canonical chunked probability mass of the basis states `b` with
/// `b & mask != 0`, via the dispatched [`simd::block_prob_mask`] kernel.
/// Bitwise equal to `chunked_prob_where(amps, |b| b & mask != 0)` — the
/// single-qubit measurement reduction in vectorizable form.
pub fn chunked_prob_mask(amps: &[Complex], mask: usize) -> f64 {
    let mut total = 0.0;
    for (ci, chunk) in amps.chunks(REDUCE_CHUNK).enumerate() {
        total += simd::block_prob_mask(ci * REDUCE_CHUNK, chunk, mask);
    }
    total
}

/// Parallel [`chunked_prob_mask`]; bit-for-bit equal to the serial form.
pub fn par_chunked_prob_mask(amps: &[Complex], threads: usize, mask: usize) -> f64 {
    if threads <= 1 || amps.len() <= REDUCE_CHUNK {
        return chunked_prob_mask(amps, mask);
    }
    let blocks = amps.len().div_ceil(REDUCE_CHUNK);
    let partials = par_block_partials(blocks, threads, |b| {
        let base = b * REDUCE_CHUNK;
        simd::block_prob_mask(base, &amps[base..amps.len().min(base + REDUCE_CHUNK)], mask)
    });
    let mut total = 0.0;
    for p in partials {
        total += p;
    }
    total
}

/// Canonical chunked inner product `⟨a|b⟩` of two equal-length dense
/// amplitude slices: per-block complex partials ([`simd::block_inner`],
/// stratified over [`REDUCE_COMPLEX_LANES`] lanes) folded in block order.
pub fn chunked_inner(a: &[Complex], b: &[Complex]) -> Complex {
    debug_assert_eq!(a.len(), b.len());
    let mut total = ZERO;
    for (ca, cb) in a.chunks(REDUCE_CHUNK).zip(b.chunks(REDUCE_CHUNK)) {
        total += simd::block_inner(ca, cb);
    }
    total
}

/// Parallel [`chunked_inner`]; bit-for-bit equal to the serial form.
pub fn par_chunked_inner(a: &[Complex], b: &[Complex], threads: usize) -> Complex {
    debug_assert_eq!(a.len(), b.len());
    if threads <= 1 || a.len() <= REDUCE_CHUNK {
        return chunked_inner(a, b);
    }
    let blocks = a.len().div_ceil(REDUCE_CHUNK);
    let partials = par_block_partials(blocks, threads, |bi| {
        let base = bi * REDUCE_CHUNK;
        let end = a.len().min(base + REDUCE_CHUNK);
        simd::block_inner(&a[base..end], &b[base..end])
    });
    let mut total = ZERO;
    for p in partials {
        total += p;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::ONE;

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 * 0.01, -(i as f64) * 0.003))
            .collect()
    }

    #[test]
    fn for_each_chunk_mut_covers_whole_slice_with_aligned_offsets() {
        for threads in [1usize, 2, 3, 8] {
            let mut data: Vec<usize> = vec![0; 1024];
            for_each_chunk_mut(&mut data, 16, threads, |offset, chunk| {
                assert_eq!(offset % 16, 0, "threads={threads}");
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = offset + i;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i, "threads={threads}");
            }
        }
    }

    #[test]
    fn for_each_pair_chunk_mut_pairs_matching_ranges() {
        for threads in [1usize, 2, 3, 8] {
            let mut lo: Vec<usize> = (0..100).collect();
            let mut hi: Vec<usize> = (100..200).collect();
            for_each_pair_chunk_mut(&mut lo, &mut hi, threads, |lc, hc| {
                assert_eq!(lc.len(), hc.len());
                for (l, h) in lc.iter_mut().zip(hc.iter_mut()) {
                    assert_eq!(*h, *l + 100, "pairs must stay aligned");
                    std::mem::swap(l, h);
                }
            });
            for (i, v) in lo.iter().enumerate() {
                assert_eq!(*v, i + 100, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_sums_are_bitwise_equal_to_serial() {
        // Cross the REDUCE_CHUNK boundary with a ragged tail.
        let amps = ramp(3 * REDUCE_CHUNK + 17);
        let serial = chunked_norm_sqr(&amps);
        for threads in [1usize, 2, 3, 5, 8] {
            let par = par_chunked_norm_sqr(&amps, threads);
            assert_eq!(serial.to_bits(), par.to_bits(), "threads={threads}");
        }
        let serial_p = chunked_prob_where(&amps, |b| b % 3 == 0);
        for threads in [2usize, 7] {
            let par = par_chunked_prob_where(&amps, threads, |b| b % 3 == 0);
            assert_eq!(serial_p.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_inner_is_bitwise_equal_to_serial() {
        let a = ramp(2 * REDUCE_CHUNK + 5);
        let b: Vec<Complex> = a.iter().map(|c| *c * Complex::new(0.5, 0.25)).collect();
        let serial = chunked_inner(&a, &b);
        for threads in [2usize, 4, 9] {
            let par = par_chunked_inner(&a, &b, threads);
            assert_eq!(serial.re.to_bits(), par.re.to_bits(), "threads={threads}");
            assert_eq!(serial.im.to_bits(), par.im.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chunked_sum_indexes_globally() {
        let amps = vec![ONE; REDUCE_CHUNK + 3];
        // Count the elements whose global index is beyond the first block.
        let count = chunked_sum(&amps, |i, _| if i >= REDUCE_CHUNK { 1.0 } else { 0.0 });
        assert_eq!(count, 3.0);
    }

    #[test]
    fn sparse_chunked_sum_matches_dense_bitwise() {
        // A dense vector that is zero except on a scattered support
        // spanning several blocks: the sparse iteration must reproduce
        // the dense chunked sum bit for bit.
        let len = 3 * REDUCE_CHUNK + 100;
        let support: Vec<usize> = (0..len).filter(|i| i % 97 == 13).collect();
        let mut dense = vec![ZERO; len];
        for &i in &support {
            dense[i] = Complex::new(0.01 + i as f64 * 1e-6, -1e-7 * i as f64);
        }
        let reference = chunked_norm_sqr(&dense);
        let sparse = chunked_sum_sparse(support.iter().map(|&i| (i, dense[i].norm_sqr())));
        assert_eq!(reference.to_bits(), sparse.to_bits());
        // Empty iteration sums to exactly zero.
        assert_eq!(
            chunked_sum_sparse(std::iter::empty()).to_bits(),
            0.0f64.to_bits()
        );
    }

    #[test]
    fn prob_mask_matches_prob_where_bitwise() {
        let amps = ramp(2 * REDUCE_CHUNK + 31);
        for &mask in &[1usize, 2, 1 << 5, (1 << 13) | 1, 3] {
            let via_pred = chunked_prob_where(&amps, |b| b & mask != 0);
            let via_mask = chunked_prob_mask(&amps, mask);
            assert_eq!(via_pred.to_bits(), via_mask.to_bits(), "mask={mask}");
            for threads in [2usize, 7] {
                let par = par_chunked_prob_mask(&amps, threads, mask);
                assert_eq!(
                    via_mask.to_bits(),
                    par.to_bits(),
                    "mask={mask} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn block_sum_with_stratifies_by_in_block_index() {
        // Lane assignment is j & 3: four elements landing in four distinct
        // lanes sum independently before the canonical fold.
        let chunk = [1.0f64, 2.0, 4.0, 8.0, 16.0];
        let s = block_sum_with(0, &chunk, |_, t| *t);
        // lanes: [1+16, 2, 4, 8] → ((17+2)+4)+8 = 31.
        assert_eq!(s, 31.0);
        // The base offset feeds the term's global index, not the lane.
        let idx_sum = block_sum_with(REDUCE_CHUNK, &chunk, |i, _| i as f64);
        let expected: f64 = (0..5).map(|j| (REDUCE_CHUNK + j) as f64).sum();
        assert_eq!(idx_sum, expected);
    }

    #[test]
    fn par_block_partials_orders_blocks() {
        for threads in [1usize, 2, 5, 16] {
            let partials = par_block_partials(11, threads, |b| b as f64);
            let expected: Vec<f64> = (0..11).map(|b| b as f64).collect();
            assert_eq!(partials, expected, "threads={threads}");
        }
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
