//! # oqsc-quantum — state-vector quantum simulation substrate
//!
//! The quantum substrate for the reproduction of Le Gall,
//! *Exponential Separation of Quantum and Classical Online Space
//! Complexity* (SPAA 2006). The paper's machine model (Definition 2.3) is a
//! classical one-way Turing machine that writes a quantum circuit over the
//! universal set `G = {H, T, CNOT}`; the circuit is then applied to
//! `|0…0⟩` and its first qubit measured. Since no quantum hardware is
//! required (or exists at the paper's envisioned scale), this crate supplies
//! an exact dense state-vector simulator as the substitute substrate:
//!
//! * [`complex`] — complex arithmetic (`num-complex` is outside the offline
//!   crate set, so the needed subset lives here);
//! * [`matrix`] — small dense matrices for gate definitions and for
//!   verifying circuit identities with Kronecker products;
//! * [`gate`] — the strict paper set plus standard derived gates;
//! * [`backend`] — the [`QuantumBackend`] trait every simulator implements
//!   and every consumer crate is generic over;
//! * [`state`] — the dense `O(2^n)`-amplitude simulator with `O(2^n)`-time
//!   gate application and `O(1)`-time streaming structured updates;
//! * [`sparse`] — the support-proportional simulator for the structured
//!   states of procedure A3 (amplitudes keyed by basis index);
//! * [`par`] — **the** scoped-thread work-splitting module (every spawn in
//!   the substrate lives here) plus the chunked floating-point summation
//!   contract all backends' reductions follow;
//! * [`parallel`] — the parallel dense backend ([`ParallelStateVector`]):
//!   dense semantics bit-for-bit, `O(2^n)` passes split across scoped
//!   worker threads above a size threshold;
//! * [`simd`] — explicit AVX2/NEON kernels for the dense inner loops,
//!   runtime-dispatched with a scalar reference fallback, bit-for-bit
//!   equal to the scalar paths (the only module with `unsafe` code);
//! * [`adaptive`] — the adaptive backend ([`AdaptiveState`]): starts
//!   sparse, promotes to parallel-dense when the support density crosses a
//!   deterministic threshold (a pure function of the state);
//! * [`snapshot`] — versioned byte-exact state serialization
//!   ([`StateSnapshot`]), the quantum half of the session engine's
//!   suspend/resume seam;
//! * [`circuit`] — circuit IR, plus the paper's exact `a#b#c` output-tape
//!   format (serializer and validating parser);
//! * [`structured`] — the operators `U_k`, `S_k`, `V_x`, `W_x`, `R_x` of
//!   procedure A3, in both whole-block and per-streamed-bit forms;
//! * [`decompose`] — **exact** lowering of every operator the paper uses to
//!   the strict `{H, T, CNOT}` set (Toffoli networks, multi-controlled
//!   X/Z via ancilla chains);
//! * [`synth`] — approximate single-qubit synthesis over `⟨H, T⟩`,
//!   demonstrating the universality claim quantitatively;
//! * [`optimize`] — exact peephole optimization of strict circuits
//!   (pair cancellation, `T`-run folding mod 8), quantifying how much of
//!   the mechanical lowering overhead is recoverable.

#![warn(missing_docs)]
#![deny(unsafe_code)] // `simd.rs` alone opts back in; see its module docs.

pub mod adaptive;
pub mod backend;
pub mod circuit;
pub mod complex;
pub mod decompose;
pub mod diagnostics;
pub mod gate;
pub mod matrix;
pub mod optimize;
pub mod par;
pub mod parallel;
pub mod simd;
pub mod snapshot;
pub mod sparse;
pub mod state;
pub mod structured;
pub mod synth;

pub use adaptive::AdaptiveState;
pub use backend::QuantumBackend;
pub use circuit::{Circuit, FormatError, StrictCircuit, StrictOp};
pub use complex::Complex;
pub use diagnostics::{chi_squared_quantile_bound, SampleHistogram};
pub use gate::Gate;
pub use matrix::Matrix;
pub use optimize::{optimize_circuit, optimize_gates, optimize_strict, OptimizeStats};
pub use parallel::{ParallelStateVector, PARALLEL_THRESHOLD};
pub use simd::SimdLevel;
pub use snapshot::{SnapshotError, StateSnapshot, SNAPSHOT_VERSION};
pub use sparse::SparseState;
pub use state::StateVector;
pub use structured::GroverLayout;
