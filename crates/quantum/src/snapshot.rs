//! Versioned state snapshots: the serialization half of the session
//! engine's quantum seam.
//!
//! A [`StateSnapshot`] is the byte-exact, backend-portable encoding of a
//! pure state mid-run. [`QuantumBackend::snapshot`] produces one and
//! [`QuantumBackend::restore`] rebuilds the state **without
//! renormalizing**, so a suspend → bytes → resume round trip reproduces
//! every amplitude bit for bit — the property the session engine's
//! "checkpointed run equals uninterrupted run" contract (DESIGN.md §7)
//! rests on.
//!
//! ## Encoding (version 1)
//!
//! ```text
//! byte 0         version tag (1)
//! byte 1         kind: 0 = dense, 1 = sparse
//! bytes 2..6     qubit count, u32 little-endian
//! bytes 6..14    entry count, u64 little-endian
//! then per entry
//!   dense:  re.to_bits() u64 LE, im.to_bits() u64 LE   (index implicit)
//!   sparse: index u64 LE, re u64 LE, im u64 LE          (increasing index)
//! ```
//!
//! Amplitudes travel as raw IEEE-754 bit patterns ([`f64::to_bits`]), so
//! the round trip is exact, including signed zeros. Dense backends encode
//! all `2^n` amplitudes; sparse backends encode only their support, in
//! increasing basis order. Either kind restores into any backend: a dense
//! backend fills the off-support entries with exact `+0.0`, a sparse
//! backend drops sub-threshold entries exactly as its own setters would.
//!
//! Decoders reject unknown version tags with
//! [`SnapshotError::UnsupportedVersion`] instead of guessing — a
//! checkpoint written by a future layout must never be half-read.

use crate::complex::Complex;

/// The current snapshot encoding version.
pub const SNAPSHOT_VERSION: u8 = 1;

const KIND_DENSE: u8 = 0;
const KIND_SPARSE: u8 = 1;
const HEADER_LEN: usize = 14;

/// Why a snapshot could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The version tag is not one this build understands.
    UnsupportedVersion(u8),
    /// The byte stream is structurally invalid (truncated, bad kind tag,
    /// inconsistent entry count, out-of-range basis index, …).
    Malformed(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported state-snapshot version {v} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Malformed(what) => write!(f, "malformed state snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A versioned, byte-exact encoding of a pure state (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateSnapshot {
    bytes: Vec<u8>,
}

impl StateSnapshot {
    /// Encodes a dense amplitude vector (`amps.len() = 2^n`).
    pub fn encode_dense(n: usize, amps: &[Complex]) -> Self {
        debug_assert_eq!(amps.len(), 1usize << n);
        let mut bytes = Vec::with_capacity(HEADER_LEN + 16 * amps.len());
        Self::push_header(&mut bytes, KIND_DENSE, n, amps.len());
        for a in amps {
            bytes.extend_from_slice(&a.re.to_bits().to_le_bytes());
            bytes.extend_from_slice(&a.im.to_bits().to_le_bytes());
        }
        StateSnapshot { bytes }
    }

    /// Encodes a sparse support given as `(basis index, amplitude)` pairs
    /// in strictly increasing index order.
    pub fn encode_sparse<I>(n: usize, entries: I) -> Self
    where
        I: IntoIterator<Item = (usize, Complex)>,
    {
        let mut body = Vec::new();
        let mut count = 0usize;
        for (b, a) in entries {
            body.extend_from_slice(&(b as u64).to_le_bytes());
            body.extend_from_slice(&a.re.to_bits().to_le_bytes());
            body.extend_from_slice(&a.im.to_bits().to_le_bytes());
            count += 1;
        }
        let mut bytes = Vec::with_capacity(HEADER_LEN + body.len());
        Self::push_header(&mut bytes, KIND_SPARSE, n, count);
        bytes.extend_from_slice(&body);
        StateSnapshot { bytes }
    }

    fn push_header(bytes: &mut Vec<u8>, kind: u8, n: usize, count: usize) {
        bytes.push(SNAPSHOT_VERSION);
        bytes.push(kind);
        bytes.extend_from_slice(&(n as u32).to_le_bytes());
        bytes.extend_from_slice(&(count as u64).to_le_bytes());
    }

    /// The raw encoded bytes (what a [`SessionCheckpoint`] embeds).
    ///
    /// [`SessionCheckpoint`]: https://docs.rs/oqsc-machine
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Length of the encoding in bytes — the serialized register size a
    /// migration actually moves.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Validates the header (version tag, minimum length) and adopts raw
    /// bytes produced by [`Self::as_bytes`]. The body is validated by
    /// [`decode`](Self::decode) — which every restore path runs exactly
    /// once — so adopting does not parse the (possibly multi-megabyte)
    /// amplitude payload twice.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Malformed("truncated header"));
        }
        if bytes[0] != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(bytes[0]));
        }
        Ok(StateSnapshot { bytes })
    }

    /// The encoded qubit count.
    pub fn num_qubits(&self) -> usize {
        // from_bytes/encode_* guarantee a well-formed header.
        u32::from_le_bytes(self.bytes[2..6].try_into().expect("header")) as usize
    }

    /// Decodes into the logical content: qubit count plus the explicitly
    /// stored `(basis index, amplitude)` pairs in increasing index order
    /// (dense encodings include exact zeros; sparse ones do not).
    pub fn decode(&self) -> Result<DecodedSnapshot, SnapshotError> {
        let bytes = &self.bytes;
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Malformed("truncated header"));
        }
        if bytes[0] != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(bytes[0]));
        }
        let kind = bytes[1];
        let n = u32::from_le_bytes(bytes[2..6].try_into().expect("len checked")) as usize;
        if n >= usize::BITS as usize {
            return Err(SnapshotError::Malformed("qubit count out of range"));
        }
        let count = u64::from_le_bytes(bytes[6..14].try_into().expect("len checked")) as usize;
        let dim = 1usize << n;
        let body = &bytes[HEADER_LEN..];
        let dense = match kind {
            KIND_DENSE => true,
            KIND_SPARSE => false,
            _ => return Err(SnapshotError::Malformed("unknown encoding kind")),
        };
        let entry_len = if dense { 16 } else { 24 };
        // Checked arithmetic and a dimension bound: a crafted count must
        // not wrap the length check or drive `with_capacity` into an
        // allocation abort — untrusted bytes fail with an error, always.
        let body_len = count
            .checked_mul(entry_len)
            .ok_or(SnapshotError::Malformed("entry count overflows"))?;
        if body.len() != body_len {
            return Err(SnapshotError::Malformed("entry count mismatch"));
        }
        if dense && count != dim {
            return Err(SnapshotError::Malformed("dense entry count != 2^n"));
        }
        if !dense && count > dim {
            return Err(SnapshotError::Malformed(
                "sparse entry count exceeds dimension",
            ));
        }
        let mut entries = Vec::with_capacity(count);
        let mut prev: Option<usize> = None;
        for (i, e) in body.chunks_exact(entry_len).enumerate() {
            let (b, amp_bytes) = if dense {
                (i, e)
            } else {
                let b = u64::from_le_bytes(e[..8].try_into().expect("len")) as usize;
                if b >= dim {
                    return Err(SnapshotError::Malformed("basis index out of range"));
                }
                if prev.is_some_and(|p| p >= b) {
                    return Err(SnapshotError::Malformed("indices must strictly increase"));
                }
                prev = Some(b);
                (b, &e[8..])
            };
            let re = f64::from_bits(u64::from_le_bytes(amp_bytes[..8].try_into().expect("len")));
            let im = f64::from_bits(u64::from_le_bytes(
                amp_bytes[8..16].try_into().expect("len"),
            ));
            entries.push((b, Complex::new(re, im)));
        }
        Ok(DecodedSnapshot {
            num_qubits: n,
            dense,
            entries,
        })
    }
}

/// The logical content of a decoded [`StateSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct DecodedSnapshot {
    /// Qubit count of the encoded state.
    pub num_qubits: usize,
    /// Whether the encoding was dense (all `2^n` amplitudes explicit).
    pub dense: bool,
    /// `(basis index, amplitude)` pairs in increasing index order.
    pub entries: Vec<(usize, Complex)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{ONE, ZERO};

    #[test]
    fn dense_round_trip_is_exact() {
        let amps = vec![
            Complex::new(0.1, -0.2),
            Complex::new(-0.0, 0.0),
            ZERO,
            Complex::new(1e-300, std::f64::consts::PI),
        ];
        let snap = StateSnapshot::encode_dense(2, &amps);
        assert_eq!(snap.num_qubits(), 2);
        let dec = snap.decode().expect("well formed");
        assert!(dec.dense);
        assert_eq!(dec.entries.len(), 4);
        for (i, (b, a)) in dec.entries.iter().enumerate() {
            assert_eq!(*b, i);
            assert_eq!(a.re.to_bits(), amps[i].re.to_bits());
            assert_eq!(a.im.to_bits(), amps[i].im.to_bits());
        }
    }

    #[test]
    fn sparse_round_trip_is_exact() {
        let entries = vec![(3usize, ONE), (17, Complex::new(-0.5, 0.25))];
        let snap = StateSnapshot::encode_sparse(5, entries.clone());
        let dec = snap.decode().expect("well formed");
        assert!(!dec.dense);
        assert_eq!(dec.entries, entries);
        // Adopting the raw bytes validates and succeeds.
        let again = StateSnapshot::from_bytes(snap.as_bytes().to_vec()).expect("valid");
        assert_eq!(again, snap);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let snap = StateSnapshot::encode_sparse(2, vec![(0usize, ONE)]);
        let mut bytes = snap.as_bytes().to_vec();
        bytes[0] = 99;
        match StateSnapshot::from_bytes(bytes) {
            Err(SnapshotError::UnsupportedVersion(99)) => {}
            other => panic!("expected version rejection, got {other:?}"),
        }
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        assert!(matches!(
            StateSnapshot::from_bytes(vec![SNAPSHOT_VERSION]),
            Err(SnapshotError::Malformed(_))
        ));
        // Truncated body: the header-only adoption succeeds, but decode
        // (which every restore runs) rejects it.
        let snap = StateSnapshot::encode_dense(1, &[ONE, ZERO]);
        let mut bytes = snap.as_bytes().to_vec();
        bytes.pop();
        let truncated = StateSnapshot::from_bytes(bytes).expect("header intact");
        assert!(matches!(
            truncated.decode(),
            Err(SnapshotError::Malformed(_))
        ));
        // Out-of-order sparse indices.
        let bad = StateSnapshot::encode_sparse(3, vec![(4usize, ONE), (2, ONE)]);
        assert!(matches!(bad.decode(), Err(SnapshotError::Malformed(_))));
        // A crafted sparse count that would wrap the length check or
        // claim more entries than the dimension holds is rejected, not
        // allocated.
        let small = StateSnapshot::encode_sparse(2, vec![(0usize, ONE)]);
        let mut crafted = small.as_bytes().to_vec();
        let wrap = (u64::MAX / 24 + 2).to_le_bytes(); // count·24 wraps small
        crafted[6..14].copy_from_slice(&wrap);
        let crafted = StateSnapshot::from_bytes(crafted).expect("header intact");
        assert!(matches!(crafted.decode(), Err(SnapshotError::Malformed(_))));
        let over = StateSnapshot::encode_sparse(1, vec![(0usize, ONE)]);
        let mut too_many = over.as_bytes().to_vec();
        too_many[6..14].copy_from_slice(&3u64.to_le_bytes());
        too_many.extend_from_slice(&[0u8; 48]); // body length matches count = 3
        let too_many = StateSnapshot::from_bytes(too_many).expect("header intact");
        assert!(matches!(
            too_many.decode(),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
