//! Cross-backend equivalence: [`SparseState`] must agree with the dense
//! [`StateVector`] reference — fidelity `≥ 1 − 1e−9` — on random circuits
//! up to 10 qubits, on every structured operator of procedure A3, and
//! through measurement collapse. [`ParallelStateVector`] is held to a
//! strictly harsher pin: **bit-for-bit** equality with the dense
//! reference at every worker count (the DESIGN.md §6 determinism
//! contract). The sparse runs also exercise the pruning-audit hook
//! ([`SparseState::assert_support_pruned`]) after every operation: no
//! cancelled amplitude may silently survive in the support.

use oqsc_quantum::{
    simd, AdaptiveState, Complex, Gate, GroverLayout, ParallelStateVector, QuantumBackend,
    SimdLevel, SnapshotError, SparseState, StateSnapshot, StateVector, PARALLEL_THRESHOLD,
    SNAPSHOT_VERSION,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

const FIDELITY_EPS: f64 = 1e-9;

fn random_gate(n: usize, rng: &mut StdRng) -> Gate {
    let q = rng.gen_range(0..n);
    let r = (q + 1 + rng.gen_range(0..n - 1)) % n;
    match rng.gen_range(0u8..10) {
        0 => Gate::H(q),
        1 => Gate::T(q),
        2 => Gate::Tdg(q),
        3 => Gate::X(q),
        4 => Gate::Z(q),
        5 => Gate::S(q),
        6 => Gate::Phase(q, rng.gen_range(0.0..std::f64::consts::TAU)),
        7 => Gate::Cnot {
            control: q,
            target: r,
        },
        8 => Gate::Cz(q, r),
        _ => Gate::Swap(q, r),
    }
}

fn assert_equivalent(sparse: &SparseState, dense: &StateVector, context: &str) {
    let fidelity = sparse.to_dense().fidelity(dense);
    assert!(
        fidelity >= 1.0 - FIDELITY_EPS,
        "{context}: fidelity {fidelity} below 1 - 1e-9"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random circuits on 2–10 qubits: both backends reach the same state.
    #[test]
    fn prop_random_circuits_agree(seed in any::<u64>(), n in 2usize..=10, len in 1usize..120) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sparse = SparseState::zero(n);
        let mut dense = StateVector::zero(n);
        for step in 0..len {
            let gate = random_gate(n, &mut rng);
            sparse.apply_gate(&gate);
            dense.apply(&gate);
            sparse.assert_support_pruned();
            prop_assert!(sparse.support_len() <= dense.dim());
            prop_assert!(
                sparse.to_dense().fidelity(&dense) >= 1.0 - FIDELITY_EPS,
                "seed {} step {} gate {:?}", seed, step, gate
            );
        }
        prop_assert!((sparse.norm() - 1.0).abs() < 1e-8);
    }

    /// The parallel dense backend is the dense reference, bit for bit, at
    /// every worker count — including counts far above the host's cores.
    #[test]
    fn prop_parallel_dense_is_bitwise_dense(seed in any::<u64>(), threads in 1usize..=8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 8;
        let mut dense = StateVector::zero(n);
        let mut par = ParallelStateVector::with_threads(StateVector::zero(n), threads);
        for _ in 0..40 {
            let gate = random_gate(n, &mut rng);
            dense.apply(&gate);
            par.apply_gate(&gate);
        }
        for (x, y) in dense.amplitudes().iter().zip(par.as_dense().amplitudes()) {
            prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
            prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        prop_assert_eq!(dense.norm().to_bits(), par.norm().to_bits());
        let q = rng.gen_range(0..n);
        prop_assert_eq!(dense.prob_one(q).to_bits(), par.prob_one(q).to_bits());
    }

    /// The structured A3 operators (block and bit mode) agree across
    /// backends, and the diagonal/permutation ones never grow the sparse
    /// support.
    #[test]
    fn prop_structured_operators_agree(seed in any::<u64>(), k in 1u32..=3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = GroverLayout::for_k(k);
        let m = layout.domain();
        let x: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
        let y: Vec<bool> = (0..m).map(|_| rng.gen()).collect();

        let mut sparse: SparseState = layout.phi_in();
        let mut dense: StateVector = layout.phi();
        prop_assert_eq!(sparse.support(), m);
        assert_equivalent(&sparse, &dense, "phi");

        layout.apply_grover_iteration(&mut sparse, &x, &y, &x);
        layout.apply_grover_iteration(&mut dense, &x, &y, &x);
        assert_equivalent(&sparse, &dense, "grover iteration");

        // Bit-mode streaming updates (the O(1)-per-symbol path).
        for (i, (&xi, &yi)) in x.iter().zip(&y).enumerate() {
            layout.apply_vx_bit(&mut sparse, i, xi);
            layout.apply_vx_bit(&mut dense, i, xi);
            layout.apply_wx_bit(&mut sparse, i, yi);
            layout.apply_wx_bit(&mut dense, i, yi);
            layout.apply_rx_bit(&mut sparse, i, xi);
            layout.apply_rx_bit(&mut dense, i, xi);
            sparse.assert_support_pruned();
        }
        assert_equivalent(&sparse, &dense, "bit-mode stream");
        // |i⟩ ⊗ |h⟩ ⊗ |l⟩ support never exceeds index ⨯ branch count.
        prop_assert!(sparse.support_len() <= 4 * m);
    }

    /// The structured A3 operators on the parallel backend reproduce the
    /// dense reference digit for digit.
    #[test]
    fn prop_structured_operators_bitwise_on_parallel(seed in any::<u64>(), k in 1u32..=3, threads in 1usize..=4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = GroverLayout::for_k(k);
        let m = layout.domain();
        let x: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
        let y: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
        let mut dense: StateVector = layout.phi();
        let mut par =
            ParallelStateVector::with_threads(layout.phi(), threads);
        layout.apply_grover_iteration(&mut dense, &x, &y, &x);
        layout.apply_grover_iteration(&mut par, &x, &y, &x);
        for (i, (&xi, &yi)) in x.iter().zip(&y).enumerate() {
            layout.apply_vx_bit(&mut dense, i, xi);
            layout.apply_vx_bit(&mut par, i, xi);
            layout.apply_rx_bit(&mut dense, i, yi);
            layout.apply_rx_bit(&mut par, i, yi);
        }
        for (p, d) in par.as_dense().amplitudes().iter().zip(dense.amplitudes()) {
            prop_assert_eq!(p.re.to_bits(), d.re.to_bits());
            prop_assert_eq!(p.im.to_bits(), d.im.to_bits());
        }
        let l = layout.l_qubit();
        prop_assert_eq!(dense.prob_one(l).to_bits(), par.prob_one(l).to_bits());
    }

    /// The adaptive backend is the dense reference **digit for digit**
    /// through random circuits — before, across, and after its promotion
    /// boundary (±0.0 identified: a diagonal phase can leave a −0.0 on a
    /// dense zero the sparse phase never stores; the sign of zero is
    /// unobservable in every reduction).
    #[test]
    fn prop_adaptive_is_digitwise_dense(seed in any::<u64>(), n in 2usize..=9, len in 1usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dense = StateVector::zero(n);
        let mut ad = AdaptiveState::zero(n);
        for step in 0..len {
            let gate = random_gate(n, &mut rng);
            dense.apply(&gate);
            ad.apply_gate(&gate);
            for b in 0..dense.dim() {
                let (x, y) = (dense.amp(b), ad.amp(b));
                prop_assert!(
                    x.re == y.re && x.im == y.im,
                    "seed {} step {} amp {}: {:?} vs {:?}", seed, step, b, x, y
                );
            }
        }
        let q = rng.gen_range(0..n);
        prop_assert_eq!(dense.prob_one(q).to_bits(), ad.prob_one(q).to_bits());
        prop_assert_eq!(dense.norm().to_bits(), ad.norm().to_bits());
    }

    /// Snapshot → bytes → restore is a bit-exact round trip on every
    /// backend, from any reachable state.
    #[test]
    fn prop_snapshot_round_trip_is_exact(seed in any::<u64>(), n in 2usize..=8, len in 0usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gates: Vec<Gate> = (0..len).map(|_| random_gate(n, &mut rng)).collect();
        fn check<B: QuantumBackend>(n: usize, gates: &[Gate]) -> proptest::TestCaseResult {
            let mut s = B::zero(n);
            for g in gates {
                s.apply_gate(g);
            }
            let wire = s.snapshot().as_bytes().to_vec();
            let snap = StateSnapshot::from_bytes(wire).expect("well formed");
            let r = B::restore(&snap).expect("own snapshot restores");
            prop_assert_eq!(r.num_qubits(), s.num_qubits());
            prop_assert_eq!(r.support(), s.support());
            for b in 0..(1usize << n) {
                let (x, y) = (s.amp(b), r.amp(b));
                prop_assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "amp {}: {:?} vs {:?}", b, x, y
                );
            }
            Ok(())
        }
        check::<StateVector>(n, &gates)?;
        check::<ParallelStateVector>(n, &gates)?;
        check::<SparseState>(n, &gates)?;
        check::<AdaptiveState>(n, &gates)?;
    }

    /// Measurement statistics and collapse agree: prob_one everywhere, and
    /// the post-collapse states match.
    #[test]
    fn prop_measurement_agrees(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2usize..=6);
        let mut sparse = SparseState::zero(n);
        let mut dense = StateVector::zero(n);
        for _ in 0..30 {
            let gate = random_gate(n, &mut rng);
            sparse.apply_gate(&gate);
            dense.apply(&gate);
        }
        for q in 0..n {
            let (ps, pd) = (sparse.prob_one(q), dense.prob_one(q));
            prop_assert!((ps - pd).abs() < 1e-9, "qubit {}: {} vs {}", q, ps, pd);
        }
        // Collapse onto whichever outcome has the larger probability (so it
        // is never numerically impossible) and compare the posteriors.
        let q = rng.gen_range(0..n);
        let outcome = u8::from(dense.prob_one(q) > 0.5);
        sparse.collapse_qubit(q, outcome);
        dense.collapse_qubit(q, outcome);
        assert_equivalent(&sparse, &dense, "post-collapse");
    }
}

/// Above [`PARALLEL_THRESHOLD`] the *threaded* kernels run — the
/// proptest circuits (n ≤ 10, 1024 amplitudes) stay below it and
/// exercise only the serial fallback, so this 14-qubit deterministic
/// case is what actually pins the chunked scoped-thread paths (gates,
/// sweeps, reductions, reflection, collapse) bit-for-bit against dense.
/// CI runs this suite under `--release`, putting the optimized codegen
/// of those kernels under test.
#[test]
fn threaded_kernels_bitwise_above_threshold() {
    let n = 14; // 2^14 amplitudes, above PARALLEL_THRESHOLD = 2^13
    assert!(1usize << n > PARALLEL_THRESHOLD);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let gates: Vec<Gate> = (0..30).map(|_| random_gate(n, &mut rng)).collect();
    let psi_dense = StateVector::uniform(n);

    let mut dense = StateVector::zero(n);
    for g in &gates {
        dense.apply(g);
    }
    dense.apply_hadamard_all(&[0, n / 2, n - 1]);
    dense.reflect_about(&psi_dense);
    let outcome = u8::from(dense.prob_one(3) > 0.5);
    dense.collapse_qubit(3, outcome);

    for threads in [2usize, 3, 8] {
        let mut par = ParallelStateVector::with_threads(StateVector::zero(n), threads);
        for g in &gates {
            par.apply_gate(g);
        }
        par.apply_hadamard_all(&[0, n / 2, n - 1]);
        par.reflect_about(&ParallelStateVector::with_threads(
            psi_dense.clone(),
            threads,
        ));
        par.collapse_qubit(3, outcome);
        for (x, y) in dense.amplitudes().iter().zip(par.as_dense().amplitudes()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "threads={threads}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "threads={threads}");
        }
        assert_eq!(
            dense.norm().to_bits(),
            par.norm().to_bits(),
            "threads={threads}"
        );
        let (pd, pp) = (
            QuantumBackend::probability_where(&dense, |b| b % 5 == 2),
            par.probability_where(|b| b % 5 == 2),
        );
        assert_eq!(pd.to_bits(), pp.to_bits(), "threads={threads}");
    }
}

/// Cross-backend restore: a sparse snapshot restores into every backend
/// (dense fills zeros exactly), a dense snapshot restores into sparse
/// (pruned by the sparse setters' own rule), and an unknown snapshot
/// version is rejected by every backend rather than guessed at.
#[test]
fn snapshots_restore_across_backends_and_reject_unknown_versions() {
    let mut sparse = SparseState::zero(6);
    sparse.apply_gate(&Gate::H(0));
    sparse.apply_gate(&Gate::Cnot {
        control: 0,
        target: 4,
    });
    let snap = sparse.snapshot();
    let dense = StateVector::restore(&snap).expect("sparse → dense");
    let par = ParallelStateVector::restore(&snap).expect("sparse → parallel");
    let ad = AdaptiveState::restore(&snap).expect("sparse → adaptive");
    for b in 0..64 {
        let want = sparse.amp(b);
        assert_eq!(want.re.to_bits(), dense.amp(b).re.to_bits(), "amp {b}");
        assert_eq!(want.re.to_bits(), par.amp(b).re.to_bits(), "amp {b}");
        assert_eq!(want.re.to_bits(), ad.amp(b).re.to_bits(), "amp {b}");
    }
    // Dense snapshot into sparse keeps exactly the nonzero support.
    let back = SparseState::restore(&QuantumBackend::snapshot(&dense)).expect("dense → sparse");
    assert_eq!(back.support(), sparse.support());

    // Unknown version: every backend refuses.
    let mut bytes = snap.as_bytes().to_vec();
    bytes[0] = SNAPSHOT_VERSION + 7;
    let err = StateSnapshot::from_bytes(bytes).expect_err("future version");
    assert_eq!(err, SnapshotError::UnsupportedVersion(SNAPSHOT_VERSION + 7));

    // A dense restore of an over-wide sparse state is a clean error, not
    // an allocation attempt.
    let wide = SparseState::basis(40, 1 << 33);
    let wide_snap = wide.snapshot();
    assert!(matches!(
        StateVector::restore(&wide_snap),
        Err(SnapshotError::Malformed(_))
    ));
    assert!(SparseState::restore(&wide_snap).is_ok());
}

/// Deterministic spot check: a GHZ-style circuit where the sparse support
/// stays tiny while the dense vector is exponentially padded.
#[test]
fn ghz_support_is_two() {
    let n = 10;
    let mut sparse = SparseState::zero(n);
    let mut dense = StateVector::zero(n);
    sparse.apply_gate(&Gate::H(0));
    dense.apply(&Gate::H(0));
    for q in 1..n {
        let g = Gate::Cnot {
            control: 0,
            target: q,
        };
        sparse.apply_gate(&g);
        dense.apply(&g);
    }
    assert_eq!(sparse.support(), 2);
    assert_eq!(QuantumBackend::support(&dense), 1 << n);
    assert_equivalent(&sparse, &dense, "GHZ");
}

/// Sampling distributions agree between backends under a shared seed
/// stream length (statistical check).
#[test]
fn sampling_distributions_agree() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut sparse = SparseState::zero(3);
    let mut dense = StateVector::zero(3);
    for g in [
        Gate::H(0),
        Gate::H(1),
        Gate::Cnot {
            control: 1,
            target: 2,
        },
    ] {
        sparse.apply_gate(&g);
        dense.apply(&g);
    }
    let trials = 8000;
    let mut counts_sparse = [0u32; 8];
    let mut counts_dense = [0u32; 8];
    for _ in 0..trials {
        counts_sparse[sparse.sample_basis(&mut rng)] += 1;
        counts_dense[dense.sample_basis(&mut rng)] += 1;
    }
    for b in 0..8 {
        let fs = f64::from(counts_sparse[b]) / trials as f64;
        let fd = f64::from(counts_dense[b]) / trials as f64;
        assert!((fs - fd).abs() < 0.03, "basis {b}: {fs} vs {fd}");
    }
}

// --- Forced-scalar vs SIMD equality -----------------------------------------
//
// `simd::force` overrides a process-global dispatch level, so tests that
// toggle it serialize on this mutex and restore auto-detection on drop (even
// when an assertion panics mid-test).

static SIMD_FORCE_LOCK: Mutex<()> = Mutex::new(());

struct SimdForceGuard;

impl Drop for SimdForceGuard {
    fn drop(&mut self) {
        simd::force(None);
    }
}

/// Fingerprint of everything a pipeline can observe from a backend: the raw
/// amplitude bit patterns plus every reduction the experiments consume.
#[derive(Debug, PartialEq, Eq)]
struct BitTrace {
    amps: Vec<(u64, u64)>,
    norm: u64,
    prob_one: u64,
    prob_even: u64,
    probs: Vec<u64>,
    inner: (u64, u64),
    samples: Vec<usize>,
}

fn bit_trace<B: QuantumBackend>(state: &B, reference: &B) -> BitTrace {
    let n = state.num_qubits();
    let mut probs = Vec::new();
    state.probabilities_into(&mut probs);
    let mut srng = StdRng::seed_from_u64(0xB177_2ACE);
    let samples = (0..32).map(|_| state.sample_basis(&mut srng)).collect();
    let ip = state.inner(reference);
    BitTrace {
        amps: (0..state.dim())
            .map(|b| {
                let a = state.amp(b);
                (a.re.to_bits(), a.im.to_bits())
            })
            .collect(),
        norm: state.norm().to_bits(),
        prob_one: state.prob_one(n - 1).to_bits(),
        prob_even: state.probability_where(|b| b & 1 == 0).to_bits(),
        probs: probs.iter().map(|p| p.to_bits()).collect(),
        inner: (ip.re.to_bits(), ip.im.to_bits()),
        samples,
    }
}

/// Run the shared mixed workload (random circuit + Hadamard sweep +
/// reflection + a collapse) on one backend and fingerprint the result.
fn forced_workload<B: QuantumBackend>(
    n: usize,
    gates: &[Gate],
    mk: &dyn Fn(usize) -> B,
) -> BitTrace {
    let mut s = mk(n);
    for g in gates {
        s.apply_gate(g);
    }
    let qs: Vec<usize> = (0..n).collect();
    s.apply_hadamard_all(&qs);
    let mirror = B::uniform(n);
    s.reflect_about(&mirror);
    s.add_scaled(&mirror, Complex::new(0.125, -0.25));
    s.collapse_qubit(0, 0);
    bit_trace(&s, &mirror)
}

/// The tentpole contract: with SIMD forced off and with the hardware level
/// active, every backend produces bit-for-bit identical amplitudes,
/// reductions, probability tables, and sampling decisions. n = 14 crosses
/// `PARALLEL_THRESHOLD` and spans four `REDUCE_CHUNK` blocks.
#[test]
fn forced_scalar_and_simd_backends_are_bitwise_identical() {
    let _lock = SIMD_FORCE_LOCK.lock().unwrap();
    let _guard = SimdForceGuard;
    let n = 14;
    let mut rng = StdRng::seed_from_u64(0x51D_CAFE);
    let gates: Vec<Gate> = (0..24).map(|_| random_gate(n, &mut rng)).collect();

    let run_all = |level: Option<SimdLevel>| {
        simd::force(level);
        let dense = forced_workload(n, &gates, &|n| StateVector::zero(n));
        let par: Vec<BitTrace> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                forced_workload(n, &gates, &move |n| {
                    ParallelStateVector::with_threads(StateVector::zero(n), t)
                })
            })
            .collect();
        let sparse = forced_workload(n, &gates, &|n| SparseState::zero(n));
        let adaptive = forced_workload(n, &gates, &|n| AdaptiveState::zero(n));
        (dense, par, sparse, adaptive)
    };

    let scalar = run_all(Some(SimdLevel::Scalar));
    let auto = run_all(None);

    assert_eq!(scalar.0, auto.0, "dense trace diverged under SIMD");
    for (t, (s, a)) in scalar.1.iter().zip(auto.1.iter()).enumerate() {
        assert_eq!(s, a, "parallel trace diverged under SIMD (threads idx {t})");
        assert_eq!(s, &scalar.0, "parallel trace diverged from dense");
    }
    assert_eq!(scalar.2, auto.2, "sparse trace diverged under SIMD");
    assert_eq!(scalar.3, auto.3, "adaptive trace diverged under SIMD");
    assert_eq!(scalar.3, scalar.0, "adaptive trace diverged from dense");
}

/// Forcing a level the hardware lacks must clamp to scalar and stay bitwise
/// equal to an explicit scalar run, so CI on any host exercises both arms.
#[test]
fn forcing_unavailable_levels_is_bitwise_scalar() {
    let _lock = SIMD_FORCE_LOCK.lock().unwrap();
    let _guard = SimdForceGuard;
    let n = 10;
    let mut rng = StdRng::seed_from_u64(31);
    let gates: Vec<Gate> = (0..12).map(|_| random_gate(n, &mut rng)).collect();

    simd::force(Some(SimdLevel::Scalar));
    let scalar = forced_workload(n, &gates, &|n| StateVector::zero(n));
    for level in [SimdLevel::Avx2, SimdLevel::Neon] {
        simd::force(Some(level));
        let forced = forced_workload(n, &gates, &|n| StateVector::zero(n));
        // Either the level is real on this host (bitwise contract) or it was
        // clamped to scalar (identical code path); both must match.
        assert_eq!(forced, scalar, "{} diverged from scalar", level.name());
    }
}

/// `sample_basis` walks chunked prefix sums; every backend must make the
/// same block-skip decisions and return the same basis state for the same
/// RNG stream (off-support sparse entries subtract exactly +0.0).
#[test]
fn sample_basis_is_bitwise_identical_across_backends() {
    let n = 14;
    let mut rng = StdRng::seed_from_u64(0x5A3);
    let amps: Vec<Complex> = (0..1usize << n)
        .map(|_| Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect();
    let dense = StateVector::from_amplitudes(amps.clone());
    let par = ParallelStateVector::with_threads(StateVector::from_amplitudes(amps.clone()), 4);
    let sparse = SparseState::from_amplitudes(amps.clone());
    let adaptive = AdaptiveState::from_amplitudes(amps);
    for seed in 0..64u64 {
        let mut r = [
            StdRng::seed_from_u64(seed),
            StdRng::seed_from_u64(seed),
            StdRng::seed_from_u64(seed),
            StdRng::seed_from_u64(seed),
        ];
        let b = dense.sample_basis(&mut r[0]);
        assert_eq!(b, par.sample_basis(&mut r[1]), "parallel, seed {seed}");
        assert_eq!(
            b,
            QuantumBackend::sample_basis(&sparse, &mut r[2]),
            "sparse, seed {seed}"
        );
        assert_eq!(b, adaptive.sample_basis(&mut r[3]), "adaptive, seed {seed}");
    }
}

/// The reusable-buffer probability path must agree bitwise with the
/// allocating one and fully overwrite whatever the caller hands it.
#[test]
fn probabilities_into_matches_allocating_path() {
    let n = 12;
    let mut rng = StdRng::seed_from_u64(77);
    let mut s = StateVector::zero(n);
    for _ in 0..16 {
        let g = random_gate(n, &mut rng);
        s.apply(&g);
    }
    let fresh = s.probabilities();
    let mut reused = vec![f64::NAN; 7];
    s.probabilities_into(&mut reused);
    assert_eq!(reused.len(), 1 << n);
    for (a, b) in fresh.iter().zip(reused.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // And again into an oversized buffer.
    let mut oversized = vec![f64::NAN; 1 << (n + 1)];
    s.probabilities_into(&mut oversized);
    assert_eq!(oversized.len(), 1 << n);
    let par = ParallelStateVector::with_threads(s.clone(), 3);
    let mut via_par = Vec::new();
    par.probabilities_into(&mut via_par);
    for (a, b) in fresh.iter().zip(via_par.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
