//! Cross-backend equivalence: [`SparseState`] must agree with the dense
//! [`StateVector`] reference — fidelity `≥ 1 − 1e−9` — on random circuits
//! up to 10 qubits, on every structured operator of procedure A3, and
//! through measurement collapse.

use oqsc_quantum::{Gate, GroverLayout, QuantumBackend, SparseState, StateVector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FIDELITY_EPS: f64 = 1e-9;

fn random_gate(n: usize, rng: &mut StdRng) -> Gate {
    let q = rng.gen_range(0..n);
    let r = (q + 1 + rng.gen_range(0..n - 1)) % n;
    match rng.gen_range(0u8..10) {
        0 => Gate::H(q),
        1 => Gate::T(q),
        2 => Gate::Tdg(q),
        3 => Gate::X(q),
        4 => Gate::Z(q),
        5 => Gate::S(q),
        6 => Gate::Phase(q, rng.gen_range(0.0..std::f64::consts::TAU)),
        7 => Gate::Cnot {
            control: q,
            target: r,
        },
        8 => Gate::Cz(q, r),
        _ => Gate::Swap(q, r),
    }
}

fn assert_equivalent(sparse: &SparseState, dense: &StateVector, context: &str) {
    let fidelity = sparse.to_dense().fidelity(dense);
    assert!(
        fidelity >= 1.0 - FIDELITY_EPS,
        "{context}: fidelity {fidelity} below 1 - 1e-9"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random circuits on 2–10 qubits: both backends reach the same state.
    #[test]
    fn prop_random_circuits_agree(seed in any::<u64>(), n in 2usize..=10, len in 1usize..120) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sparse = SparseState::zero(n);
        let mut dense = StateVector::zero(n);
        for step in 0..len {
            let gate = random_gate(n, &mut rng);
            sparse.apply_gate(&gate);
            dense.apply(&gate);
            prop_assert!(
                sparse.to_dense().fidelity(&dense) >= 1.0 - FIDELITY_EPS,
                "seed {} step {} gate {:?}", seed, step, gate
            );
        }
        prop_assert!((sparse.norm() - 1.0).abs() < 1e-8);
    }

    /// The structured A3 operators (block and bit mode) agree across
    /// backends, and the diagonal/permutation ones never grow the sparse
    /// support.
    #[test]
    fn prop_structured_operators_agree(seed in any::<u64>(), k in 1u32..=3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = GroverLayout::for_k(k);
        let m = layout.domain();
        let x: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
        let y: Vec<bool> = (0..m).map(|_| rng.gen()).collect();

        let mut sparse: SparseState = layout.phi_in();
        let mut dense: StateVector = layout.phi();
        prop_assert_eq!(sparse.support(), m);
        assert_equivalent(&sparse, &dense, "phi");

        layout.apply_grover_iteration(&mut sparse, &x, &y, &x);
        layout.apply_grover_iteration(&mut dense, &x, &y, &x);
        assert_equivalent(&sparse, &dense, "grover iteration");

        // Bit-mode streaming updates (the O(1)-per-symbol path).
        for (i, (&xi, &yi)) in x.iter().zip(&y).enumerate() {
            layout.apply_vx_bit(&mut sparse, i, xi);
            layout.apply_vx_bit(&mut dense, i, xi);
            layout.apply_wx_bit(&mut sparse, i, yi);
            layout.apply_wx_bit(&mut dense, i, yi);
            layout.apply_rx_bit(&mut sparse, i, xi);
            layout.apply_rx_bit(&mut dense, i, xi);
        }
        assert_equivalent(&sparse, &dense, "bit-mode stream");
        // |i⟩ ⊗ |h⟩ ⊗ |l⟩ support never exceeds index ⨯ branch count.
        prop_assert!(sparse.support() <= 4 * m);
    }

    /// Measurement statistics and collapse agree: prob_one everywhere, and
    /// the post-collapse states match.
    #[test]
    fn prop_measurement_agrees(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2usize..=6);
        let mut sparse = SparseState::zero(n);
        let mut dense = StateVector::zero(n);
        for _ in 0..30 {
            let gate = random_gate(n, &mut rng);
            sparse.apply_gate(&gate);
            dense.apply(&gate);
        }
        for q in 0..n {
            let (ps, pd) = (sparse.prob_one(q), dense.prob_one(q));
            prop_assert!((ps - pd).abs() < 1e-9, "qubit {}: {} vs {}", q, ps, pd);
        }
        // Collapse onto whichever outcome has the larger probability (so it
        // is never numerically impossible) and compare the posteriors.
        let q = rng.gen_range(0..n);
        let outcome = u8::from(dense.prob_one(q) > 0.5);
        sparse.collapse_qubit(q, outcome);
        dense.collapse_qubit(q, outcome);
        assert_equivalent(&sparse, &dense, "post-collapse");
    }
}

/// Deterministic spot check: a GHZ-style circuit where the sparse support
/// stays tiny while the dense vector is exponentially padded.
#[test]
fn ghz_support_is_two() {
    let n = 10;
    let mut sparse = SparseState::zero(n);
    let mut dense = StateVector::zero(n);
    sparse.apply_gate(&Gate::H(0));
    dense.apply(&Gate::H(0));
    for q in 1..n {
        let g = Gate::Cnot {
            control: 0,
            target: q,
        };
        sparse.apply_gate(&g);
        dense.apply(&g);
    }
    assert_eq!(sparse.support(), 2);
    assert_eq!(QuantumBackend::support(&dense), 1 << n);
    assert_equivalent(&sparse, &dense, "GHZ");
}

/// Sampling distributions agree between backends under a shared seed
/// stream length (statistical check).
#[test]
fn sampling_distributions_agree() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut sparse = SparseState::zero(3);
    let mut dense = StateVector::zero(3);
    for g in [
        Gate::H(0),
        Gate::H(1),
        Gate::Cnot {
            control: 1,
            target: 2,
        },
    ] {
        sparse.apply_gate(&g);
        dense.apply(&g);
    }
    let trials = 8000;
    let mut counts_sparse = [0u32; 8];
    let mut counts_dense = [0u32; 8];
    for _ in 0..trials {
        counts_sparse[sparse.sample_basis(&mut rng)] += 1;
        counts_dense[dense.sample_basis(&mut rng)] += 1;
    }
    for b in 0..8 {
        let fs = f64::from(counts_sparse[b]) / trials as f64;
        let fd = f64::from(counts_dense[b]) / trials as f64;
        assert!((fs - fd).abs() < 0.03, "basis {b}: {fs} vs {fd}");
    }
}
